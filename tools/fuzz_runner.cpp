// Pinned-seed fuzz/audit gate (scripts/fuzz.sh, wired into check.sh).
//
// Builds the structured corpus from src/audit/fuzzers.hpp and pushes every
// case through the invariant auditors: chordal graph cases run the full
// differential execution matrix (threads {1,8} x cache {on,off} x engine
// {fast,ref}) with every per-claim auditor enabled; near-chordal cases must
// be rejected with a typed exception; corrupted byte streams must parse
// canonically or throw - never crash. Intended to run under ASan+UBSan:
// any sanitizer report, crash, or auditor violation fails the gate.
//
// Chordal graph cases are joined by dynamic update schedules: each replays
// a seeded edge/vertex churn sequence through DynamicChordal under the full
// execution matrix, asserting incremental state == full recomputation after
// every step and validating every rejection's witness cycle (see
// audit/update_fuzz.cpp).
//
// Usage: fuzz_runner [--seed S] [--per-family N] [--streams N]
//                    [--schedules N] [--max-matrix-n N] [--per-node-n N]
//                    [--verbose]
// CHORDAL_FUZZ_ITERS scales the corpus (approximate static case count;
// default 500, floor 60). Update schedules default to max(500, iters) -
// the PR-8 gate requires at least 500.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include <fstream>

#include "audit/auditors.hpp"
#include "audit/fuzzers.hpp"
#include "graph/graphio.hpp"
#include "obs/trace.hpp"

namespace {

using namespace chordal;

bool graphs_equal(const Graph& a, const Graph& b) {
  return a.num_vertices() == b.num_vertices() && a.edges() == b.edges();
}

/// Parse-or-typed-throw plus canonical round-trip; returns an error
/// description, empty on success.
std::string check_stream(const audit::StreamCase& sc) {
  Graph parsed;
  bool parsed_ok = false;
  try {
    parsed = graph_from_string(sc.text);
    parsed_ok = true;
  } catch (const std::exception&) {
    parsed_ok = false;  // typed rejection is always acceptable
  }
  if (sc.expect == audit::StreamExpect::kMustParse && !parsed_ok) {
    return "well-formed stream rejected";
  }
  if (sc.expect == audit::StreamExpect::kMustReject && parsed_ok) {
    return "malformed stream accepted";
  }
  if (parsed_ok) {
    // Whatever parsed must be a well-formed CSR slab before anything else
    // consumes it.
    try {
      audit::audit_graph_csr(parsed);
    } catch (const std::exception& e) {
      return std::string("parsed graph fails CSR audit: ") + e.what();
    }
    // Canonical fixpoint: serialize -> reparse must reproduce the graph.
    Graph reparsed = graph_from_string(graph_to_string(parsed));
    if (!graphs_equal(parsed, reparsed)) {
      return "graph_from_string(graph_to_string(g)) != g";
    }
  }
  return {};
}

/// Re-runs the failing graph case under an obs::Tracer and writes the
/// Chrome trace next to the failing input: the causal event stream (peel
/// and local decisions, audit verdicts, cache traffic) of the exact run
/// that tripped the auditor, loadable in Perfetto for triage. The re-run
/// is expected to throw again; a case that no longer fails is noted.
void dump_failure_trace(const audit::GraphCase& gc, double eps_color,
                        double eps_mis, bool per_node,
                        const std::string& path) {
  obs::Tracer tracer;
  bool rethrew = false;
  {
    obs::ScopedTracer scope(tracer);
    try {
      audit::run_driver_audit_matrix(gc.graph, eps_color, eps_mis, per_node);
    } catch (const std::exception&) {
      rethrew = true;
    }
  }
  std::ofstream out(path);
  out << tracer.to_chrome_json() << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "  (cannot write failure trace %s)\n", path.c_str());
    return;
  }
  std::fprintf(stderr, "  failure trace: %s%s\n", path.c_str(),
               rethrew ? "" : " (did not reproduce on re-run)");
}

long long arg_value(int argc, char** argv, const char* flag, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  long long iters = 500;
  if (const char* env = std::getenv("CHORDAL_FUZZ_ITERS")) {
    iters = std::atoll(env);
  }
  if (iters < 60) iters = 60;

  audit::CorpusConfig config;
  config.seed = static_cast<std::uint64_t>(
      arg_value(argc, argv, "--seed", 0xC0FFEE));
  // Default split: ~70% byte streams (cheap), ~30% graph matrix runs.
  config.num_streams =
      static_cast<int>(arg_value(argc, argv, "--streams", iters * 7 / 10));
  config.per_graph_family = static_cast<int>(arg_value(
      argc, argv, "--per-family", (iters - config.num_streams) / 4));
  config.num_schedules = static_cast<int>(
      arg_value(argc, argv, "--schedules", iters < 500 ? 500 : iters));
  long long max_matrix_n = arg_value(argc, argv, "--max-matrix-n", 100000);
  long long per_node_n = arg_value(argc, argv, "--per-node-n", 48);
  bool verbose = has_flag(argc, argv, "--verbose");

  audit::Corpus corpus = audit::build_corpus(config);
  std::printf(
      "fuzz corpus: %zu graph cases + %zu stream cases + %zu update "
      "schedules (seed %llu)\n",
      corpus.graphs.size(), corpus.streams.size(), corpus.schedules.size(),
      static_cast<unsigned long long>(config.seed));

  int failures = 0;
  int matrix_configs = 0;
  auto report = [&failures](const std::string& name, const std::string& why) {
    ++failures;
    std::fprintf(stderr, "FAIL %s: %s\n", name.c_str(), why.c_str());
  };

  for (const audit::StreamCase& sc : corpus.streams) {
    std::string err = check_stream(sc);
    if (!err.empty()) report(sc.name, err);
    if (verbose) std::printf("stream %-28s ok\n", sc.name.c_str());
  }

  for (const audit::GraphCase& gc : corpus.graphs) {
    try {
      if (!gc.chordal) {
        audit::audit_rejects_non_chordal(gc.graph);
      } else if (gc.graph.num_vertices() <= max_matrix_n) {
        matrix_configs += audit::run_driver_audit_matrix(
            gc.graph, /*eps_color=*/0.5, /*eps_mis=*/0.25,
            /*check_per_node_pruning=*/gc.graph.num_vertices() <= per_node_n);
      }
      if (verbose) {
        std::printf("graph %-28s %s ok\n", gc.name.c_str(),
                    gc.graph.summary().c_str());
      }
    } catch (const std::exception& e) {
      report(gc.name, e.what());
      if (gc.chordal && gc.graph.num_vertices() <= max_matrix_n) {
        // Also persist the failing input itself so the trace has a graph
        // to be replayed against.
        std::string base = "fuzz_fail_" + gc.name;
        std::ofstream graph_out(base + ".graph");
        graph_out << graph_to_string(gc.graph);
        dump_failure_trace(gc, /*eps_color=*/0.5, /*eps_mis=*/0.25,
                           gc.graph.num_vertices() <= per_node_n,
                           base + ".trace.json");
      }
    }
  }

  int schedule_configs = 0;
  for (const audit::ScheduleCase& sc : corpus.schedules) {
    try {
      schedule_configs +=
          audit::run_update_schedule_matrix(sc.base, sc.seed, sc.steps);
      if (verbose) {
        std::printf("schedule %-28s %s ok\n", sc.name.c_str(),
                    sc.base.summary().c_str());
      }
    } catch (const std::exception& e) {
      report(sc.name, e.what());
    }
  }

  std::printf(
      "fuzz summary: %zu streams, %zu graphs, %d matrix configurations, "
      "%zu schedules (%d schedule configurations), %d failure(s)\n",
      corpus.streams.size(), corpus.graphs.size(), matrix_configs,
      corpus.schedules.size(), schedule_configs, failures);
  return failures == 0 ? 0 : 1;
}
