// Scenario: exploring the clique forest and a node's local view (Section 3).
//
// Reproduces the paper's Figures 2-4 on the Figure 1 graph: prints the
// maximal cliques, the deterministic clique forest, and the coherent local
// view node 10 obtains from its distance-3 ball.
#include <cstdio>

#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "cliqueforest/paths.hpp"
#include "graph/graph.hpp"

namespace {

chordal::Graph figure1() {
  const std::vector<std::vector<int>> cliques = {
      {1, 2, 3},    {2, 3, 4},    {4, 5, 6},    {5, 6, 7},    {2, 4, 8},
      {8, 9, 10},   {9, 10, 11},  {11, 12, 13}, {12, 13, 14}, {14, 15, 16},
      {15, 16, 19}, {16, 17, 18}, {19, 20, 21}, {21, 22},     {21, 23}};
  chordal::GraphBuilder b(23);
  for (const auto& clique : cliques) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        b.add_edge(clique[i] - 1, clique[j] - 1);
      }
    }
  }
  return b.build();
}

void print_clique(chordal::CliqueWord clique) {
  std::printf("{");
  for (std::size_t i = 0; i < clique.size(); ++i) {
    // paper is 1-indexed
    std::printf("%s%d", i ? "," : "", static_cast<int>(clique[i]) + 1);
  }
  std::printf("}");
}

}  // namespace

int main() {
  using namespace chordal;
  Graph g = figure1();
  CliqueForest forest = CliqueForest::build(g);

  std::printf("Maximal cliques (Figure 2 vertices):\n");
  for (int c = 0; c < forest.num_cliques(); ++c) {
    std::printf("  C%-2d = ", c);
    print_clique(forest.clique(c));
    std::printf("\n");
  }

  std::printf("\nClique forest edges (the unique tie-broken MWSF):\n");
  for (auto [a, b] : forest.forest_edges()) {
    std::printf("  ");
    print_clique(forest.clique(a));
    std::printf(" -- ");
    print_clique(forest.clique(b));
    std::printf("\n");
  }

  std::printf("\nMaximal binary paths of the forest:\n");
  std::vector<char> active(static_cast<std::size_t>(forest.num_cliques()), 1);
  for (const auto& path : maximal_binary_paths(forest, active)) {
    std::printf("  %s path of %zu cliques, diameter %d, alpha %d\n",
                path.pendant ? "pendant " : "internal",
                path.cliques.size(), path_diameter(g, forest, path),
                path_independence(forest, path));
  }

  std::printf("\nLocal view of node 10 from its distance-3 ball "
              "(Figures 3-4):\n");
  LocalView view = compute_local_view(g, /*observer=*/9, /*radius=*/3);
  std::printf("  sees %zu maximal cliques, %zu forest edges, trusts %zu "
              "vertices\n",
              view.cliques.size(), view.forest_edges.size(),
              view.trusted_vertices.size());
  for (auto [a, b] : view.forest_edges) {
    std::printf("  ");
    print_clique(view.cliques[a]);
    std::printf(" -- ");
    print_clique(view.cliques[b]);
    std::printf("\n");
  }
  std::printf("\nEvery edge above is an edge of the global forest (Lemma 2):"
              " nodes obtain coherent local views.\n");
  return 0;
}
