// Scenario: duty-cycling sensors along a highway.
//
// Sensors cover overlapping stretches of a highway (intervals on a line -
// an interval graph). At any time we want a maximum set of active sensors
// whose ranges do not overlap (to avoid radio interference): a maximum
// independent set. Sensors only talk to overlapping peers, so the selection
// must be computed in the LOCAL model; Algorithm 5 gives (1+eps)-optimal
// selections in O((1/eps) log* n) rounds (Theorem 6).
#include <cstdio>

#include "graph/generators.hpp"
#include "interval/mis_interval.hpp"
#include "interval/offline.hpp"
#include "interval/rep.hpp"
#include "support/table.hpp"

int main() {
  using namespace chordal;
  Table table({"deployment", "sensors", "eps", "active (ours)",
               "active (optimal)", "ratio", "LOCAL rounds"});
  struct Scenario {
    const char* name;
    double min_len, max_len, window_factor;
  };
  // Dense urban corridors collapse to scattered exact subproblems after the
  // domination reduction; sparse rural chains exercise the full anchored
  // machinery (ruling set + per-gap exact solves).
  const Scenario scenarios[] = {
      {"urban (dense)", 0.5, 3.0, 0.25},
      {"rural (sparse chain)", 0, 0, 0},  // staircase deployment
  };
  for (const auto& scenario : scenarios) {
    bool staircase = scenario.min_len == 0;
    for (int n : {1000, 5000}) {
      for (double eps : {0.5, 0.1}) {
        auto gen = staircase
                       ? staircase_interval(n, 0.62, 0.05, 77)
                       : random_interval({.n = n,
                                          .window = n * scenario.window_factor,
                                          .min_len = scenario.min_len,
                                          .max_len = scenario.max_len,
                                          .seed = 77});
        auto rep = interval::from_geometry(gen.left, gen.right);
        auto ours = interval::approx_mis_interval(rep, eps);
        int opt = interval::alpha(rep);
        table.add_row({scenario.name, Table::fmt(n), Table::fmt(eps, 2),
                       Table::fmt((long long)ours.chosen.size()),
                       Table::fmt(opt),
                       Table::fmt(static_cast<double>(opt) /
                                      static_cast<double>(ours.chosen.size()),
                                  4),
                       Table::fmt(ours.rounds)});
      }
    }
  }
  std::printf("Highway sensor duty-cycling via distributed interval MIS\n\n");
  table.print();
  std::printf("\nratio = optimal / ours; the guarantee is ratio <= 1+eps.\n");
  return 0;
}
