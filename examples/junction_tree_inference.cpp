// Scenario: exact marginal inference on a chordal Markov random field.
//
// The paper motivates chordal graphs via belief propagation: a chordal
// graph's clique forest is exactly the junction tree that makes sum-product
// inference exact. This example builds a pairwise binary MRF whose
// dependency graph is chordal, extracts the junction tree with the
// library's deterministic clique forest, runs two-pass message passing over
// it, and cross-checks a few marginals against brute-force enumeration.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "cliqueforest/forest.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace chordal;

struct Mrf {
  Graph graph;
  // Pairwise log-potentials theta[{u,v}] (coupling) and unary field[u].
  std::map<std::pair<int, int>, double> coupling;
  std::vector<double> field;

  double edge_weight(int u, int v) const {
    auto it = coupling.find(std::minmax(u, v));
    return it == coupling.end() ? 0.0 : it->second;
  }

  /// Unnormalized log-score of a full assignment (x[v] in {0,1}).
  double score(const std::vector<int>& x) const {
    double s = 0;
    for (std::size_t v = 0; v < x.size(); ++v) s += field[v] * x[v];
    for (const auto& [edge, w] : coupling) s += w * x[edge.first] * x[edge.second];
    return s;
  }
};

Mrf make_mrf(int n_bags, std::uint64_t seed) {
  CliqueTreeConfig config;
  config.num_bags = n_bags;
  config.min_bag_size = 2;
  config.max_bag_size = 3;
  config.shape = TreeShape::kRandom;
  config.seed = seed;
  auto gen = random_chordal_from_clique_tree(config);
  Mrf mrf;
  mrf.graph = gen.graph;
  Rng rng(seed * 7 + 1);
  mrf.field.resize(static_cast<std::size_t>(mrf.graph.num_vertices()));
  for (auto& f : mrf.field) f = rng.uniform01() - 0.5;
  for (auto [u, v] : mrf.graph.edges()) {
    mrf.coupling[{u, v}] = (rng.uniform01() - 0.5) * 1.5;
  }
  return mrf;
}

/// Sum-product over the junction tree: returns per-vertex P(x_v = 1).
std::vector<double> junction_tree_marginals(const Mrf& mrf) {
  CliqueForest forest = CliqueForest::build(mrf.graph);
  const int m = forest.num_cliques();

  // Clique potential tables (over the clique's own variables). Each edge
  // and unary potential is assigned to exactly one containing clique.
  std::vector<std::vector<double>> table(static_cast<std::size_t>(m));
  std::vector<char> unary_done(mrf.graph.num_vertices(), 0);
  std::map<std::pair<int, int>, char> pair_done;
  for (int c = 0; c < m; ++c) {
    const auto& clique = forest.clique(c);
    std::size_t states = 1u << clique.size();
    table[c].assign(states, 0.0);
    for (std::size_t mask = 0; mask < states; ++mask) {
      double s = 0;
      for (std::size_t i = 0; i < clique.size(); ++i) {
        int u = static_cast<int>(clique[i]);
        int xu = (mask >> i) & 1u;
        if (!unary_done[u]) s += mrf.field[u] * xu;
        for (std::size_t j = i + 1; j < clique.size(); ++j) {
          int v = static_cast<int>(clique[j]);
          auto key = std::minmax(u, v);
          if (!pair_done.count(key)) {
            s += mrf.edge_weight(u, v) * xu * ((mask >> j) & 1u);
          }
        }
      }
      table[c][mask] = s;
    }
    for (VertexId u : clique) unary_done[u] = 1;
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        pair_done[std::minmax(static_cast<int>(clique[i]),
                              static_cast<int>(clique[j]))] = 1;
      }
    }
  }
  // Convert log-potentials to linear domain.
  for (auto& t : table) {
    for (auto& x : t) x = std::exp(x);
  }

  // Two-pass message passing over each tree of the forest (post-order up,
  // pre-order down), with messages over separators.
  std::vector<std::map<int, std::vector<double>>> msg(
      static_cast<std::size_t>(m));  // msg[from][to]
  auto separator = [&](int a, int b) {
    std::vector<int> sep;
    const auto ca = forest.clique(a);
    for (VertexId u : forest.clique(b)) {
      if (std::binary_search(ca.begin(), ca.end(), u)) {
        sep.push_back(static_cast<int>(u));
      }
    }
    return sep;
  };
  auto send = [&](int from, int to) {
    auto sep = separator(from, to);
    const auto& clique = forest.clique(from);
    std::vector<double> out(1u << sep.size(), 0.0);
    for (std::size_t mask = 0; mask < table[from].size(); ++mask) {
      double value = table[from][mask];
      for (CliqueId nbid : forest.forest_neighbors(from)) {
        int nb = static_cast<int>(nbid);
        if (nb == to || !msg[nb].count(from)) continue;
        auto nb_sep = separator(nb, from);
        std::size_t sep_mask = 0;
        for (std::size_t s = 0; s < nb_sep.size(); ++s) {
          std::size_t idx =
              std::lower_bound(clique.begin(), clique.end(), nb_sep[s]) -
              clique.begin();
          sep_mask |= ((mask >> idx) & 1u) << s;
        }
        value *= msg[nb][from][sep_mask];
      }
      std::size_t sep_mask = 0;
      for (std::size_t s = 0; s < sep.size(); ++s) {
        std::size_t idx =
            std::lower_bound(clique.begin(), clique.end(), sep[s]) -
            clique.begin();
        sep_mask |= ((mask >> idx) & 1u) << s;
      }
      out[sep_mask] += value;
    }
    msg[from][to] = std::move(out);
  };

  // Root each tree at its smallest clique index; schedule via DFS orders.
  std::vector<int> parent(static_cast<std::size_t>(m), -2);
  std::vector<int> order;
  for (int root = 0; root < m; ++root) {
    if (parent[root] != -2) continue;
    parent[root] = -1;
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int c = stack.back();
      stack.pop_back();
      order.push_back(c);
      for (CliqueId nbid : forest.forest_neighbors(c)) {
        int nb = static_cast<int>(nbid);
        if (parent[nb] == -2) {
          parent[nb] = c;
          stack.push_back(nb);
        }
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (parent[*it] >= 0) send(*it, parent[*it]);  // upward pass
  }
  for (int c : order) {
    if (parent[c] >= 0) send(parent[c], c);  // downward pass
  }

  // Beliefs: clique table times all incoming messages; marginalize.
  std::vector<double> p1(static_cast<std::size_t>(mrf.graph.num_vertices()),
                         -1.0);
  for (int c = 0; c < m; ++c) {
    const auto& clique = forest.clique(c);
    std::vector<double> belief = table[c];
    for (std::size_t mask = 0; mask < belief.size(); ++mask) {
      for (CliqueId nbid : forest.forest_neighbors(c)) {
        int nb = static_cast<int>(nbid);
        auto sep = separator(nb, c);
        std::size_t sep_mask = 0;
        for (std::size_t s = 0; s < sep.size(); ++s) {
          std::size_t idx =
              std::lower_bound(clique.begin(), clique.end(), sep[s]) -
              clique.begin();
          sep_mask |= ((mask >> idx) & 1u) << s;
        }
        belief[mask] *= msg[nb][c][sep_mask];
      }
    }
    double z = 0;
    for (double b : belief) z += b;
    for (std::size_t i = 0; i < clique.size(); ++i) {
      if (p1[clique[i]] >= 0) continue;
      double on = 0;
      for (std::size_t mask = 0; mask < belief.size(); ++mask) {
        if ((mask >> i) & 1u) on += belief[mask];
      }
      p1[clique[i]] = on / z;
    }
  }
  return p1;
}

/// Brute-force marginals (for the cross-check; n <= ~20).
std::vector<double> brute_marginals(const Mrf& mrf) {
  const int n = mrf.graph.num_vertices();
  std::vector<double> on(static_cast<std::size_t>(n), 0.0);
  double z = 0;
  std::vector<int> x(static_cast<std::size_t>(n), 0);
  for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1u;
    double w = std::exp(mrf.score(x));
    z += w;
    for (int v = 0; v < n; ++v) {
      if (x[v]) on[v] += w;
    }
  }
  for (auto& o : on) o /= z;
  return on;
}

}  // namespace

int main() {
  // Small MRF: verify exactness against enumeration.
  Mrf small = make_mrf(7, 3);
  if (small.graph.num_vertices() <= 20) {
    auto jt = junction_tree_marginals(small);
    auto brute = brute_marginals(small);
    double max_err = 0;
    for (std::size_t v = 0; v < jt.size(); ++v) {
      max_err = std::max(max_err, std::abs(jt[v] - brute[v]));
    }
    std::printf("small MRF (n=%d): junction-tree vs brute-force marginals, "
                "max |error| = %.2e\n",
                small.graph.num_vertices(), max_err);
  }

  // Large MRF: enumeration is hopeless (2^n states); the junction tree from
  // the clique forest makes it linear in the number of cliques.
  Mrf big = make_mrf(400, 9);
  auto marginals = junction_tree_marginals(big);
  double mean = 0;
  for (double p : marginals) mean += p;
  mean /= static_cast<double>(marginals.size());
  std::printf("large MRF (n=%d, 2^n states): exact inference via the clique "
              "forest; mean P(x=1) = %.4f\n",
              big.graph.num_vertices(), mean);
  std::printf("first five marginals:");
  for (int v = 0; v < 5; ++v) std::printf(" %.4f", marginals[v]);
  std::printf("\n");
  return 0;
}
