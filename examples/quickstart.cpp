// Quickstart: build a chordal graph, run both headline algorithms, and
// inspect the guarantees.
//
//   $ ./examples/quickstart
//
// The graph is the 23-node worked example from Figure 1 of the paper.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/graph.hpp"
#include "graph/peo.hpp"

namespace {

chordal::Graph figure1() {
  // Maximal cliques of the paper's Figure 1 graph (1-indexed in the paper).
  const std::vector<std::vector<int>> cliques = {
      {1, 2, 3},    {2, 3, 4},    {4, 5, 6},    {5, 6, 7},    {2, 4, 8},
      {8, 9, 10},   {9, 10, 11},  {11, 12, 13}, {12, 13, 14}, {14, 15, 16},
      {15, 16, 19}, {16, 17, 18}, {19, 20, 21}, {21, 22},     {21, 23}};
  chordal::GraphBuilder b(23);
  for (const auto& clique : cliques) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        b.add_edge(clique[i] - 1, clique[j] - 1);
      }
    }
  }
  return b.build();
}

}  // namespace

int main() {
  chordal::Graph g = figure1();
  std::printf("Input: %s, chordal: %s\n", g.summary().c_str(),
              chordal::is_chordal(g) ? "yes" : "no");

  // --- Minimum Vertex Coloring (Theorem 4) -------------------------------
  auto coloring = chordal::core::mvc_chordal(g, {.eps = 1.0});
  int chi = chordal::baselines::chromatic_number_chordal(g);
  std::printf("\n(1+eps)-coloring with eps=1.0:\n");
  std::printf("  colors used: %d (chi = %d, guarantee <= %d)\n",
              coloring.num_colors, chi, static_cast<int>(2.0 * chi));
  std::printf("  LOCAL rounds: %lld (pruning %lld, coloring %lld, "
              "correction %lld) over %d layers\n",
              static_cast<long long>(coloring.rounds),
              static_cast<long long>(coloring.pruning_rounds),
              static_cast<long long>(coloring.coloring_rounds),
              static_cast<long long>(coloring.correction_rounds),
              coloring.num_layers);
  std::printf("  color of paper-node 10: %d\n", coloring.colors[9]);

  // --- Maximum Independent Set (Theorem 8) -------------------------------
  auto mis = chordal::core::mis_chordal(g, {.eps = 0.25});
  int alpha = chordal::baselines::independence_number_chordal(g);
  std::printf("\n(1+eps)-independent set with eps=0.25:\n");
  std::printf("  size: %zu (alpha = %d)\n", mis.chosen.size(), alpha);
  std::printf("  members (paper 1-indexed):");
  for (int v : mis.chosen) std::printf(" %d", v + 1);
  std::printf("\n  LOCAL rounds: %lld over %d peel iterations\n",
              static_cast<long long>(mis.rounds), mis.iterations);
  return 0;
}
