// Scenario: frequency assignment in a hierarchical backbone network.
//
// A regional backbone is built by recursive attachment: each new relay
// station joins an existing trunk group (a clique of mutually interfering
// stations). The interference graph is chordal by construction. Stations
// must pick frequencies so that no two interfering stations share one -
// vertex coloring - and each extra frequency costs licensed spectrum, so we
// want close to chi(G) frequencies, computed distributively by the
// stations themselves (Theorem 4).
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/mvc.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

int main() {
  using namespace chordal;
  Table table({"stations", "interference edges", "chi", "ours(eps=.5)",
               "(Delta+1) greedy", "LOCAL rounds"});
  for (int n : {500, 2000, 8000}) {
    RandomChordalConfig config;
    config.n = n;
    config.max_clique = 6;   // trunk groups of up to 6 stations
    config.chain_bias = 0.8; // mostly chains of relay stations
    config.seed = 20240706;
    Graph g = random_chordal(config);

    auto ours = core::mvc_chordal(g, {.eps = 0.5});
    auto greedy = baselines::dplus1_coloring(g, 1);
    int chi = baselines::chromatic_number_chordal(g);

    table.add_row({Table::fmt(n), Table::fmt((long long)g.num_edges()),
                   Table::fmt(chi), Table::fmt(ours.num_colors),
                   Table::fmt(greedy.num_colors), Table::fmt(ours.rounds)});
  }
  std::printf("Frequency assignment on chordal interference graphs\n");
  std::printf("(the (Delta+1) baseline wastes spectrum; ours stays within "
              "(1+eps) of chi)\n\n");
  table.print();
  return 0;
}
