// BallWorkspace parity: the workspace (allocation-lean) forms of
// collect_ball and compute_local_view must be bit-identical to the
// allocating reference paths, including after heavy reuse of one workspace
// and under restricted active sets, and must charge the same telemetry.
#include <gtest/gtest.h>

#include <vector>

#include "cliqueforest/local_view.hpp"
#include "graph/generators.hpp"
#include "local/ball.hpp"
#include "local/workspace.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

using local::Ball;
using local::BallWorkspace;
using local::RoundLedger;

std::vector<std::vector<int>> adjacency(const Graph& g) {
  std::vector<std::vector<int>> adj;
  adj.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& nbrs = g.neighbors(v);
    adj.emplace_back(nbrs.begin(), nbrs.end());
  }
  return adj;
}

void expect_same_ball(const Ball& ref, const Ball& ws) {
  EXPECT_EQ(ref.vertices, ws.vertices);
  EXPECT_EQ(ref.dist, ws.dist);
  ASSERT_EQ(ref.graph.num_vertices(), ws.graph.num_vertices());
  EXPECT_EQ(ref.graph.num_edges(), ws.graph.num_edges());
  EXPECT_EQ(adjacency(ref.graph), adjacency(ws.graph));
}

void expect_same_view(const LocalView& ref, const LocalView& ws) {
  EXPECT_EQ(ref.cliques, ws.cliques);
  EXPECT_EQ(ref.trusted_vertices, ws.trusted_vertices);
  EXPECT_EQ(ref.forest_edges, ws.forest_edges);
}

TEST(BallWorkspace, CollectBallMatchesAllocatingPath) {
  Graph g = testing::paper_figure1_graph();
  BallWorkspace workspace;
  Ball out;
  for (int radius = 1; radius <= 5; ++radius) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      Ball ref = local::collect_ball(g, v, radius, nullptr, nullptr);
      local::collect_ball(g, v, radius, nullptr, nullptr, workspace, out);
      expect_same_ball(ref, out);
    }
  }
}

TEST(BallWorkspace, CollectBallMatchesUnderActiveMask) {
  RandomChordalConfig config;
  config.n = 120;
  config.max_clique = 5;
  config.seed = 7;
  Graph g = random_chordal(config);
  // Deterministic mask knocking out a third of the vertices.
  std::vector<char> active(static_cast<std::size_t>(g.num_vertices()), 1);
  for (int v = 0; v < g.num_vertices(); v += 3) active[v] = 0;
  BallWorkspace workspace;
  Ball out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!active[v]) continue;
    Ball ref = local::collect_ball(g, v, 3, &active, nullptr);
    local::collect_ball(g, v, 3, &active, nullptr, workspace, out);
    expect_same_ball(ref, out);
  }
}

TEST(BallWorkspace, ReusedWorkspaceStaysExact) {
  // The whole point of the workspace: repeated collections on one instance
  // must not leak state between calls (epoch stamping, no clears).
  Graph g = caterpillar(30, 2);
  BallWorkspace workspace;
  Ball out;
  for (int pass = 0; pass < 3; ++pass) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      int radius = 1 + (v + pass) % 4;
      Ball ref = local::collect_ball(g, v, radius, nullptr, nullptr);
      local::collect_ball(g, v, radius, nullptr, nullptr, workspace, out);
      expect_same_ball(ref, out);
    }
  }
}

TEST(BallWorkspace, ChargesSameLedgerRounds) {
  Graph g = testing::paper_figure1_graph();
  RoundLedger ref_ledger(g.num_vertices());
  RoundLedger ws_ledger(g.num_vertices());
  BallWorkspace workspace;
  Ball out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    local::collect_ball(g, v, 2 + v % 3, nullptr, &ref_ledger);
    local::collect_ball(g, v, 2 + v % 3, nullptr, &ws_ledger, workspace, out);
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(ref_ledger.clock(v), ws_ledger.clock(v));
  }
  EXPECT_EQ(ref_ledger.max_clock(), ws_ledger.max_clock());
}

TEST(BallWorkspace, ChargesSameTelemetry) {
  Graph g = testing::paper_figure1_graph();
  obs::Registry ref_reg, ws_reg;
  {
    obs::ScopedRegistry scope(ref_reg);
    for (int v = 0; v < g.num_vertices(); ++v) {
      local::collect_ball(g, v, 3, nullptr, nullptr);
    }
  }
  {
    obs::ScopedRegistry scope(ws_reg);
    BallWorkspace workspace;
    Ball out;
    for (int v = 0; v < g.num_vertices(); ++v) {
      local::collect_ball(g, v, 3, nullptr, nullptr, workspace, out);
    }
  }
  const obs::Counter* ref_c = ref_reg.find_counter("ball.collections");
  const obs::Counter* ws_c = ws_reg.find_counter("ball.collections");
  ASSERT_NE(ref_c, nullptr);
  ASSERT_NE(ws_c, nullptr);
  EXPECT_EQ(ref_c->value(), ws_c->value());
  const obs::Histogram* ref_h = ref_reg.find_histogram("ball.volume_words");
  const obs::Histogram* ws_h = ws_reg.find_histogram("ball.volume_words");
  ASSERT_NE(ref_h, nullptr);
  ASSERT_NE(ws_h, nullptr);
  EXPECT_EQ(ref_h->count(), ws_h->count());
  EXPECT_EQ(ref_h->mean(), ws_h->mean());
  EXPECT_EQ(ref_h->max(), ws_h->max());
}

TEST(BallWorkspace, LocalViewMatchesAllocatingPath) {
  Graph g = testing::paper_figure1_graph();
  BallWorkspace workspace;
  LocalView out;
  for (int radius = 2; radius <= 6; ++radius) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      LocalView ref = compute_local_view(g, v, radius, nullptr);
      local::compute_local_view(g, v, radius, nullptr, workspace, out);
      expect_same_view(ref, out);
    }
  }
}

TEST(BallWorkspace, LocalViewMatchesOnRandomChordalWithMask) {
  RandomChordalConfig config;
  config.n = 90;
  config.max_clique = 4;
  config.chain_bias = 0.8;
  config.seed = 21;
  Graph g = random_chordal(config);
  std::vector<char> active(static_cast<std::size_t>(g.num_vertices()), 1);
  for (int v = 1; v < g.num_vertices(); v += 4) active[v] = 0;
  BallWorkspace workspace;
  LocalView out;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!active[v]) continue;
    LocalView ref = compute_local_view(g, v, 4, &active);
    local::compute_local_view(g, v, 4, &active, workspace, out);
    expect_same_view(ref, out);
  }
}

TEST(BallWorkspace, LastBallDistReportsRestrictedDistances) {
  Graph g = path_graph(12);
  BallWorkspace workspace;
  LocalView out;
  local::compute_local_view(g, 5, 3, nullptr, workspace, out);
  for (int v = 0; v < g.num_vertices(); ++v) {
    int expected = std::abs(v - 5) <= 3 ? std::abs(v - 5) : -1;
    EXPECT_EQ(workspace.last_ball_dist(v), expected) << "v=" << v;
  }
}

}  // namespace
}  // namespace chordal
