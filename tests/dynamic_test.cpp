// Mutation-API edge cases for the dynamic layer: argument validation
// (loops, duplicates, dead slots), rejection witnesses that really are
// chordless cycles, clique-family behavior when a maximal clique loses its
// last vertex, updates on the empty graph, slot reuse, and a mixed
// all-four-mutations schedule whose Signature parity is id-width
// independent (the same test binary runs in the CHORDAL_WIDE_IDS=ON tree,
// see scripts/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/dynamic.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/peo.hpp"

namespace chordal {
namespace {

Graph path_graph(int n) {
  GraphBuilder b(n);
  for (int v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return b.build();
}

/// Asserts `cycle` is a chordless cycle of length >= 4 under the given
/// adjacency predicate (the graph *after* the rejected update would have
/// been applied).
void expect_chordless_cycle(const std::vector<int>& cycle,
                            const std::function<bool(int, int)>& adj) {
  ASSERT_GE(cycle.size(), 4u);
  std::vector<int> sorted = cycle;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "witness repeats a vertex";
  const int k = static_cast<int>(cycle.size());
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      bool consecutive = (j == i + 1) || (i == 0 && j == k - 1);
      EXPECT_EQ(adj(cycle[static_cast<std::size_t>(i)],
                    cycle[static_cast<std::size_t>(j)]),
                consecutive)
          << "witness pair (" << cycle[static_cast<std::size_t>(i)] << ", "
          << cycle[static_cast<std::size_t>(j)] << ")";
    }
  }
}

void expect_parity(const DynamicChordal& dc) {
  EXPECT_TRUE(dc.signature() == DynamicChordal::recompute_signature(dc.graph()));
}

TEST(DynamicGraphTest, RejectsMalformedMutations) {
  DynamicChordal dc(path_graph(3));
  EXPECT_THROW(dc.insert_edge(1, 1), std::invalid_argument);  // self-loop
  EXPECT_THROW(dc.insert_edge(0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(dc.insert_edge(0, 7), std::invalid_argument);  // no such slot
  EXPECT_THROW(dc.delete_edge(0, 2), std::invalid_argument);  // not an edge
  EXPECT_THROW(dc.delete_edge(2, 2), std::invalid_argument);
  EXPECT_THROW(dc.delete_vertex(9), std::invalid_argument);
  int dup[] = {1, 1};
  EXPECT_THROW(dc.insert_vertex(dup), std::invalid_argument);
  int dead[] = {0};
  dc.delete_vertex(0);
  EXPECT_THROW(dc.insert_vertex(dead), std::invalid_argument);
  EXPECT_THROW(dc.delete_vertex(0), std::invalid_argument);  // already dead
  expect_parity(dc);
}

TEST(DynamicGraphTest, EdgeInsertRejectionCarriesChordlessCycle) {
  DynamicChordal dc(path_graph(4));  // 0-1-2-3
  auto before = dc.signature();
  try {
    dc.insert_edge(0, 3);  // would close the chordless 4-cycle 0,1,2,3
    FAIL() << "expected ChordalityViolation";
  } catch (const ChordalityViolation& e) {
    expect_chordless_cycle(e.witness_cycle(), [&](int a, int b) {
      if ((a == 0 && b == 3) || (a == 3 && b == 0)) return true;
      return dc.graph().has_edge(a, b);
    });
  }
  // Strong exception safety: the rejected mutation changed nothing.
  EXPECT_TRUE(dc.signature() == before);
  EXPECT_EQ(dc.stats().rejected, 1);
  expect_parity(dc);
}

TEST(DynamicGraphTest, EdgeDeleteRejectionCarriesChordlessCycle) {
  GraphBuilder b(4);  // 4-cycle plus the 0-2 chord: deleting it leaves C4
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  DynamicChordal dc(b.build());
  try {
    dc.delete_edge(0, 2);
    FAIL() << "expected ChordalityViolation";
  } catch (const ChordalityViolation& e) {
    expect_chordless_cycle(e.witness_cycle(), [&](int a, int b) {
      if ((a == 0 && b == 2) || (a == 2 && b == 0)) return false;
      return dc.graph().has_edge(a, b);
    });
  }
  EXPECT_TRUE(dc.graph().has_edge(0, 2));
  expect_parity(dc);
}

TEST(DynamicGraphTest, VertexInsertRejectionUsesNewVertexPlaceholder) {
  DynamicChordal dc(path_graph(3));  // 0-1-2
  int ends[] = {0, 2};
  try {
    dc.insert_vertex(ends);  // z-0-1-2-z would be a chordless 4-cycle
    FAIL() << "expected ChordalityViolation";
  } catch (const ChordalityViolation& e) {
    const auto& cycle = e.witness_cycle();
    ASSERT_EQ(std::count(cycle.begin(), cycle.end(),
                         ChordalityViolation::kNewVertex),
              1);
    expect_chordless_cycle(cycle, [&](int a, int b) {
      if (a == ChordalityViolation::kNewVertex) std::swap(a, b);
      if (b == ChordalityViolation::kNewVertex) {
        return a == 0 || a == 2;  // z's neighborhood is exactly X
      }
      return dc.graph().has_edge(a, b);
    });
  }
  EXPECT_EQ(dc.graph().num_alive(), 3);
  expect_parity(dc);
}

TEST(DynamicGraphTest, ValidNonCliqueNeighborhoodInsertAccepted) {
  // 0-1 plus isolated 2: X = {0, 2} spans two components of G - X, each
  // attachment a single vertex, so the insert is chordal despite X not
  // being a clique (exercises the G[X] clique decomposition path).
  GraphBuilder b(3);
  b.add_edge(0, 1);
  DynamicChordal dc(b.build());
  int x[] = {0, 2};
  int z = dc.insert_vertex(x);
  EXPECT_EQ(z, 3);
  EXPECT_TRUE(dc.graph().has_edge(z, 0));
  EXPECT_TRUE(dc.graph().has_edge(z, 2));
  expect_parity(dc);
}

TEST(DynamicGraphTest, DeletingLastVertexOfCliqueReinstatesSubcliques) {
  DynamicChordal dc(triangle());
  EXPECT_EQ(dc.max_clique_size(), 3);
  dc.delete_vertex(2);  // {0,1,2} dies; {0,1} is reinstated
  EXPECT_EQ(dc.max_clique_size(), 2);
  expect_parity(dc);
  dc.delete_vertex(1);
  EXPECT_EQ(dc.max_clique_size(), 1);
  expect_parity(dc);
  dc.delete_vertex(0);  // last vertex of the last clique
  EXPECT_EQ(dc.graph().num_alive(), 0);
  EXPECT_EQ(dc.max_clique_size(), 0);
  EXPECT_EQ(dc.num_colors(), 0);
  EXPECT_EQ(dc.mis_size(), 0);
  EXPECT_TRUE(dc.signature().family.empty());
  expect_parity(dc);
}

TEST(DynamicGraphTest, EmptyGraphGrowsAndShrinks) {
  DynamicChordal dc;  // empty: no vertices at all
  EXPECT_EQ(dc.graph().num_alive(), 0);
  EXPECT_EQ(dc.num_colors(), 0);
  expect_parity(dc);
  int a = dc.insert_vertex({});
  EXPECT_EQ(a, 0);
  int first[] = {a};
  int b = dc.insert_vertex(first);
  EXPECT_EQ(b, 1);
  EXPECT_TRUE(dc.graph().has_edge(a, b));
  EXPECT_EQ(dc.num_colors(), 2);
  EXPECT_EQ(dc.mis_size(), 1);
  expect_parity(dc);
  dc.delete_edge(a, b);
  EXPECT_EQ(dc.num_colors(), 1);
  EXPECT_EQ(dc.mis_size(), 2);
  expect_parity(dc);
  dc.delete_vertex(a);
  dc.delete_vertex(b);
  EXPECT_EQ(dc.graph().num_alive(), 0);
  expect_parity(dc);
}

TEST(DynamicGraphTest, DeletedSlotsAreReusedLowestFirst) {
  DynamicChordal dc(path_graph(5));
  dc.delete_vertex(3);
  dc.delete_vertex(1);
  EXPECT_EQ(dc.insert_vertex({}), 1);  // lowest dead slot first
  int nbr[] = {2};
  EXPECT_EQ(dc.insert_vertex(nbr), 3);
  EXPECT_EQ(dc.insert_vertex({}), 5);  // free list drained: fresh slot
  expect_parity(dc);
}

TEST(DynamicGraphTest, DirtyRegionTracksMutations) {
  DynamicChordal dc(path_graph(4));
  dc.drain_touched();
  dc.delete_vertex(1);
  auto killed = dc.killed();
  EXPECT_TRUE(std::find(killed.begin(), killed.end(), 1) != killed.end());
  auto touched = dc.touched();
  EXPECT_TRUE(std::find(touched.begin(), touched.end(), 0) != touched.end())
      << "former neighbors of a deleted vertex are adjacency-touched";
  dc.drain_touched();
  EXPECT_TRUE(dc.touched().empty());
  EXPECT_TRUE(dc.killed().empty());
  int back[] = {0, 2};
  int z = dc.insert_vertex(back);
  EXPECT_EQ(z, 1);
  auto revived = dc.revived();
  EXPECT_TRUE(std::find(revived.begin(), revived.end(), z) != revived.end());
}

// All four mutations on one instance, checking Signature parity after each
// step. Signatures are pure slot-id structures, so the expectations are
// identical in the 32-bit and CHORDAL_WIDE_IDS=ON builds - running this
// binary in both trees is the parity check.
TEST(DynamicGraphTest, MixedScheduleKeepsParityAcrossIdWidths) {
  RandomChordalConfig config;
  config.n = 60;
  config.max_clique = 4;
  config.chain_bias = 0.8;
  config.seed = 2024;
  DynamicChordal dc(random_chordal(config));
  expect_parity(dc);

  // Vertex delete + revive through the free list.
  dc.delete_vertex(10);
  expect_parity(dc);
  int nbr[] = {11};
  ASSERT_EQ(dc.insert_vertex(nbr), 10);
  expect_parity(dc);

  // Edge churn: delete an edge on a simplicial border, re-insert it.
  int u = -1, v = -1;
  for (int cand = 0; cand < dc.graph().num_slots() && u < 0; ++cand) {
    if (!dc.graph().alive(cand)) continue;
    for (VertexId w : dc.graph().neighbors(cand)) {
      if (certify_edge_delete(dc.graph(), cand, static_cast<int>(w)).empty()) {
        u = cand;
        v = static_cast<int>(w);
        break;
      }
    }
  }
  ASSERT_GE(u, 0) << "no safely deletable edge found";
  dc.delete_edge(u, v);
  expect_parity(dc);
  dc.insert_edge(u, v);
  expect_parity(dc);

  // Simplicial vertex insert: clone an existing closed neighborhood corner.
  std::vector<int> x;
  for (VertexId w : dc.graph().neighbors(u)) x.push_back(static_cast<int>(w));
  x.push_back(u);
  std::sort(x.begin(), x.end());
  // u's closed neighborhood need not be a clique; shrink to one greedily.
  std::vector<int> clique;
  for (int cand : x) {
    bool ok = true;
    for (int have : clique) {
      if (!dc.graph().has_edge(cand, have)) ok = false;
    }
    if (ok) clique.push_back(cand);
  }
  int z = dc.insert_vertex(clique);
  expect_parity(dc);
  dc.delete_vertex(z);
  expect_parity(dc);

  // The materialized snapshot is chordal throughout.
  EXPECT_TRUE(is_chordal(dc.materialize()));
}

}  // namespace
}  // namespace chordal
