#include <gtest/gtest.h>

#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "graph/peo.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

Graph cycle_graph(int n) {
  GraphBuilder b(n);
  for (int v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

TEST(Chordality, BasicFamilies) {
  EXPECT_TRUE(is_chordal(path_graph(10)));
  EXPECT_TRUE(is_chordal(complete_graph(6)));
  EXPECT_TRUE(is_chordal(star_graph(5)));
  EXPECT_TRUE(is_chordal(cycle_graph(3)));
  EXPECT_FALSE(is_chordal(cycle_graph(4)));
  EXPECT_FALSE(is_chordal(cycle_graph(7)));
  EXPECT_TRUE(is_chordal(testing::paper_figure1_graph()));
}

TEST(Chordality, ChordedCycleIsChordal) {
  Graph c4 = cycle_graph(4);
  GraphBuilder b(4);
  for (auto [u, v] : c4.edges()) b.add_edge(u, v);
  b.add_edge(0, 2);
  EXPECT_TRUE(is_chordal(b.build()));
}

TEST(Chordality, EmptyAndSingleton) {
  EXPECT_TRUE(is_chordal(Graph{}));
  GraphBuilder b(1);
  EXPECT_TRUE(is_chordal(b.build()));
}

TEST(Peo, VerifierRejectsBadOrder) {
  // On C4 no ordering is a PEO.
  Graph g = cycle_graph(4);
  EliminationOrder order;
  order.order = {0, 1, 2, 3};
  order.position = {0, 1, 2, 3};
  EXPECT_FALSE(is_perfect_elimination_order(g, order));
}

TEST(Peo, ThrowsOnNonChordal) {
  EXPECT_THROW(peo_or_throw(cycle_graph(5)), std::invalid_argument);
}

TEST(Peo, SimplicialDetection) {
  Graph g = testing::paper_figure1_graph();
  std::vector<char> active(23, 1);
  // Paper node 1 (vertex 0) lies only in clique {1,2,3}: simplicial.
  EXPECT_TRUE(is_simplicial(g, 0, active));
  // Paper node 2 (vertex 1) lies in three maximal cliques: not simplicial.
  EXPECT_FALSE(is_simplicial(g, 1, active));
}

class RandomChordalParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomChordalParam, IncrementalGeneratorIsChordal) {
  RandomChordalConfig config;
  config.n = 120;
  config.max_clique = 5;
  config.chain_bias = 0.6;
  config.seed = GetParam();
  Graph g = random_chordal(config);
  EXPECT_TRUE(is_chordal(g));
  EXPECT_LE(max_clique_size_chordal(g), 5);
}

TEST_P(RandomChordalParam, CliqueTreeGeneratorIsChordal) {
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    CliqueTreeConfig config;
    config.num_bags = 40;
    config.shape = shape;
    config.seed = GetParam();
    auto gen = random_chordal_from_clique_tree(config);
    EXPECT_TRUE(is_chordal(gen.graph))
        << "shape " << static_cast<int>(shape) << " seed " << GetParam();
  }
}

TEST_P(RandomChordalParam, KTreeIsChordal) {
  EXPECT_TRUE(is_chordal(random_k_tree(60, 4, GetParam())));
}

TEST_P(RandomChordalParam, IntervalGraphsAreChordal) {
  auto gen = random_interval({.n = 80, .window = 40.0, .min_len = 0.5,
                              .max_len = 6.0, .seed = GetParam()});
  EXPECT_TRUE(is_chordal(gen.graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChordalParam,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 99, 123,
                                           2024));

}  // namespace
}  // namespace chordal
