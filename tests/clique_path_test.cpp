// Cross-validation of the two independent maximal-clique pipelines on
// interval graphs: the geometric sweep (clique_path_from_geometry) and the
// Lex-BFS/PEO chordal extraction must produce the same clique family, and
// the compact clique-path model must agree with the endpoint-rank model.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "interval/offline.hpp"
#include "interval/rep.hpp"

namespace chordal {
namespace {

void expect_same_cliques(const GeneratedInterval& gen, const char* tag) {
  auto cp = interval::clique_path_from_geometry(gen.left, gen.right);
  auto sorted = cp.cliques;
  std::sort(sorted.begin(), sorted.end());
  auto from_graph = maximal_cliques_chordal(gen.graph);
  EXPECT_EQ(sorted, from_graph) << tag;
}

TEST(CliquePathFromGeometry, MatchesChordalExtraction) {
  for (std::uint64_t seed : {1u, 2u, 5u, 9u}) {
    expect_same_cliques(random_interval({.n = 80,
                                         .window = 40.0,
                                         .min_len = 0.5,
                                         .max_len = 6.0,
                                         .seed = seed}),
                        "dense");
    expect_same_cliques(staircase_interval(80, 0.62, 0.05, seed),
                        "staircase");
    expect_same_cliques(random_unit_interval(60, 30.0, seed), "unit");
  }
}

TEST(CliquePathFromGeometry, ConsecutiveOnesProperty) {
  auto gen = random_interval(
      {.n = 90, .window = 45.0, .min_len = 1.0, .max_len = 5.0, .seed = 7});
  auto cp = interval::clique_path_from_geometry(gen.left, gen.right);
  // Every vertex must appear in exactly the cliques [lo, hi] of its range.
  for (int v = 0; v < 90; ++v) {
    for (int c = 0; c < cp.rep.num_positions; ++c) {
      bool member = std::binary_search(cp.cliques[c].begin(),
                                       cp.cliques[c].end(), v);
      bool in_range = cp.rep.lo[v] <= c && c <= cp.rep.hi[v];
      EXPECT_EQ(member, in_range) << "v=" << v << " c=" << c;
    }
  }
}

TEST(CliquePathFromGeometry, ModelAgreesWithEndpointRanks) {
  for (std::uint64_t seed : {3u, 8u}) {
    auto gen = random_interval({.n = 70,
                                .window = 35.0,
                                .min_len = 0.5,
                                .max_len = 4.0,
                                .seed = seed});
    auto compact = interval::clique_path_from_geometry(gen.left, gen.right);
    auto ranks = interval::from_geometry(gen.left, gen.right);
    // Same adjacency...
    Graph g1 = interval::to_graph(compact.rep);
    Graph g2 = interval::to_graph(ranks);
    EXPECT_EQ(g1.edges(), g2.edges()) << "seed " << seed;
    // ... same omega and alpha, far fewer positions.
    EXPECT_EQ(interval::omega(compact.rep), interval::omega(ranks));
    EXPECT_EQ(interval::alpha(compact.rep), interval::alpha(ranks));
    EXPECT_LE(compact.rep.num_positions, ranks.num_positions);
  }
}

TEST(CliquePathFromGeometry, SingletonsAndNesting) {
  // Isolated interval, nested intervals, twins.
  std::vector<double> left = {0.0, 10.0, 10.5, 10.6, 20.0, 20.0};
  std::vector<double> right = {1.0, 14.0, 12.0, 11.0, 21.0, 21.0};
  auto cp = interval::clique_path_from_geometry(left, right);
  // Cliques: {0}, {1,2,3}, {1,2}? no - after 3 ends nothing new starts
  // before 2 ends, so the next maximal clique is {4,5}.
  ASSERT_EQ(cp.cliques.size(), 3u);
  EXPECT_EQ(cp.cliques[0], (std::vector<int>{0}));
  EXPECT_EQ(cp.cliques[1], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cp.cliques[2], (std::vector<int>{4, 5}));
}

TEST(CliquePathFromGeometry, RejectsBadInput) {
  EXPECT_THROW(interval::clique_path_from_geometry({0.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(interval::clique_path_from_geometry({2.0}, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace chordal
