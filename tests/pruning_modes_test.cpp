// Lemma 12, end to end: running the whole MVC pipeline with per-node
// local-view pruning decisions must reproduce the global-peel run exactly -
// identical layers, identical colors, identical round accounting.
#include <gtest/gtest.h>

#include "core/local_decision.hpp"
#include "core/mvc.hpp"
#include "core/peeling.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

void expect_identical_runs(const Graph& g, double eps) {
  auto global = core::mvc_chordal(
      g, {.eps = eps, .pruning = core::PruningMode::kGlobal});
  auto local = core::mvc_chordal(
      g, {.eps = eps, .pruning = core::PruningMode::kPerNodeLocalViews});
  EXPECT_EQ(global.colors, local.colors);
  EXPECT_EQ(global.num_layers, local.num_layers);
  EXPECT_EQ(global.rounds, local.rounds);
  EXPECT_TRUE(testing::is_proper_coloring(g, local.colors));
}

TEST(PruningModes, PaperExample) {
  expect_identical_runs(testing::paper_figure1_graph(), 1.0);
}

TEST(PruningModes, StructuredFamilies) {
  expect_identical_runs(path_graph(90), 0.5);
  expect_identical_runs(caterpillar(20, 2), 0.5);
  expect_identical_runs(broom(25, 4), 1.0);
  expect_identical_runs(star_graph(12), 0.5);
}

TEST(PruningModes, LayerPartitionsMatchDirectly) {
  for (std::uint64_t seed : {1u, 3u, 5u}) {
    CliqueTreeConfig config;
    config.num_bags = 45;
    config.shape = TreeShape::kRandom;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    CliqueForest forest = CliqueForest::build(gen.graph);
    core::PeelConfig pc;
    pc.mode = core::PeelMode::kColoring;
    pc.k = 2;
    auto global = core::peel(gen.graph, forest, pc);
    auto local = core::peel_with_local_decisions(gen.graph, forest, 2);
    EXPECT_EQ(global.layer_of, local.layer_of) << "seed " << seed;
    EXPECT_EQ(global.num_layers, local.num_layers) << "seed " << seed;
  }
}

TEST(PruningModes, RandomChordalSweep) {
  for (std::uint64_t seed : {2u, 4u}) {
    RandomChordalConfig config;
    config.n = 120;
    config.max_clique = 5;
    config.chain_bias = 0.7;
    config.seed = seed;
    expect_identical_runs(random_chordal(config), 0.5);
  }
}

}  // namespace
}  // namespace chordal
