// Structural discipline of the independent-set peeling (Algorithm 6 step
// 1): pendant paths are always taken; internal paths taken before the last
// iteration must have diameter >= 2d+3; internal paths taken in the last
// iteration must have independence number >= d; and everything NOT taken
// must fail the corresponding threshold.
#include <gtest/gtest.h>

#include "cliqueforest/paths.hpp"
#include "core/peeling.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

struct StructureCase {
  std::uint64_t seed;
  int d;
  int iterations;
  TreeShape shape;
};

class MisPeelStructure : public ::testing::TestWithParam<StructureCase> {};

TEST_P(MisPeelStructure, ThresholdsRespected) {
  auto [seed, d, iterations, shape] = GetParam();
  CliqueTreeConfig config;
  config.num_bags = 120;
  config.shape = shape;
  config.seed = seed;
  auto gen = random_chordal_from_clique_tree(config);
  const Graph& g = gen.graph;
  CliqueForest forest = CliqueForest::build(g);
  core::PeelConfig pc;
  pc.mode = core::PeelMode::kIndependentSet;
  pc.d = d;
  pc.max_iterations = iterations;
  auto result = core::peel(g, forest, pc);

  for (std::size_t idx = 0; idx < result.layers.size(); ++idx) {
    bool last = static_cast<int>(idx) + 1 == result.num_layers;
    // Taken paths pass their threshold...
    for (const auto& lp : result.layers[idx]) {
      if (lp.path.pendant) continue;
      if (last) {
        EXPECT_GE(path_independence(forest, lp.path), d)
            << "seed " << seed << " layer " << idx + 1;
      } else {
        EXPECT_GE(path_diameter(g, forest, lp.path), 2 * d + 3)
            << "seed " << seed << " layer " << idx + 1;
      }
    }
    // ... and every path NOT taken fails it (pendants are always taken, so
    // untaken ones must be internal below threshold).
    const auto& active = result.active_at[idx];
    std::vector<char> taken_clique(
        static_cast<std::size_t>(forest.num_cliques()), 0);
    for (const auto& lp : result.layers[idx]) {
      for (int c : lp.path.cliques) taken_clique[c] = 1;
    }
    for (const auto& path : maximal_binary_paths(forest, active)) {
      bool taken = taken_clique[path.cliques.front()] != 0;
      if (taken) continue;
      EXPECT_FALSE(path.pendant) << "seed " << seed << " layer " << idx + 1;
      if (last) {
        EXPECT_LT(path_independence(forest, path), d)
            << "seed " << seed << " layer " << idx + 1;
      } else {
        EXPECT_LT(path_diameter(g, forest, path), 2 * d + 3)
            << "seed " << seed << " layer " << idx + 1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisPeelStructure,
    ::testing::Values(StructureCase{1, 2, 4, TreeShape::kRandom},
                      StructureCase{2, 3, 3, TreeShape::kCaterpillar},
                      StructureCase{3, 2, 5, TreeShape::kBinary},
                      StructureCase{4, 4, 4, TreeShape::kSpider},
                      StructureCase{5, 5, 3, TreeShape::kPath},
                      StructureCase{6, 3, 4, TreeShape::kRandom}));

TEST(MisPeelStructure, ColoringModeTakesAllPendantsEveryIteration) {
  CliqueTreeConfig config;
  config.num_bags = 100;
  config.shape = TreeShape::kBinary;
  config.seed = 8;
  auto gen = random_chordal_from_clique_tree(config);
  CliqueForest forest = CliqueForest::build(gen.graph);
  core::PeelConfig pc;
  pc.mode = core::PeelMode::kColoring;
  pc.k = 3;
  auto result = core::peel(gen.graph, forest, pc);
  for (std::size_t idx = 0; idx < result.layers.size(); ++idx) {
    std::vector<char> taken_clique(
        static_cast<std::size_t>(forest.num_cliques()), 0);
    for (const auto& lp : result.layers[idx]) {
      for (int c : lp.path.cliques) taken_clique[c] = 1;
    }
    for (const auto& path :
         maximal_binary_paths(forest, result.active_at[idx])) {
      if (path.pendant) {
        EXPECT_TRUE(taken_clique[path.cliques.front()])
            << "layer " << idx + 1;
      }
    }
  }
}

}  // namespace
}  // namespace chordal
