// Distributed fidelity of the MIS peeling (Section 7.3): every layer
// decision re-derived from the owning node's distance-(4d+10) ball must
// match the global independent-set-mode peel - including the final
// iteration's independence-number threshold.
#include <gtest/gtest.h>

#include "core/local_decision.hpp"
#include "core/peeling.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

core::LocalDecisionAudit audit_mis(const Graph& g, int d, int iterations,
                                   int stride) {
  CliqueForest forest = CliqueForest::build(g);
  core::PeelConfig config;
  config.mode = core::PeelMode::kIndependentSet;
  config.d = d;
  config.max_iterations = iterations;
  auto peeling = core::peel(g, forest, config);
  return core::audit_local_pruning_mis(g, forest, peeling, d, stride);
}

TEST(MisFidelity, PaperExample) {
  auto result = audit_mis(testing::paper_figure1_graph(), 2, 4, 1);
  EXPECT_GT(result.decisions_checked, 0);
  EXPECT_EQ(result.mismatches, 0);
}

TEST(MisFidelity, StructuredFamilies) {
  EXPECT_EQ(audit_mis(path_graph(150), 3, 5, 1).mismatches, 0);
  EXPECT_EQ(audit_mis(caterpillar(30, 2), 2, 4, 1).mismatches, 0);
  EXPECT_EQ(audit_mis(broom(40, 6), 3, 3, 1).mismatches, 0);
}

struct MisFidelityCase {
  std::uint64_t seed;
  int d;
  int iterations;
  TreeShape shape;
};

class MisFidelitySweep : public ::testing::TestWithParam<MisFidelityCase> {};

TEST_P(MisFidelitySweep, LocalDecisionsMatchGlobalPeel) {
  auto [seed, d, iterations, shape] = GetParam();
  CliqueTreeConfig config;
  config.num_bags = 60;
  config.min_bag_size = 2;
  config.max_bag_size = 5;
  config.shape = shape;
  config.seed = seed;
  auto gen = random_chordal_from_clique_tree(config);
  auto result = audit_mis(gen.graph, d, iterations, 3);
  EXPECT_GT(result.decisions_checked, 0);
  EXPECT_EQ(result.mismatches, 0)
      << "seed " << seed << " d " << d << " iters " << iterations;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisFidelitySweep,
    ::testing::Values(MisFidelityCase{1, 2, 3, TreeShape::kRandom},
                      MisFidelityCase{2, 3, 4, TreeShape::kCaterpillar},
                      MisFidelityCase{3, 2, 5, TreeShape::kBinary},
                      MisFidelityCase{4, 4, 3, TreeShape::kSpider},
                      MisFidelityCase{5, 3, 4, TreeShape::kRandom},
                      MisFidelityCase{6, 5, 2, TreeShape::kPath}));

}  // namespace
}  // namespace chordal
