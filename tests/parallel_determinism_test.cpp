// Thread-count invariance of the parallel drivers: outputs, round ledgers,
// and every telemetry counter must be bit-identical across CHORDAL_THREADS
// = 1, 2, 8. The static index partition of support::parallel_for plus
// worker-order merging is what makes this hold; these tests are the
// tripwire for any driver that starts recording telemetry inside a
// parallel body or merging in a thread-dependent order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cliqueforest/forest.hpp"
#include "core/local_decision.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "core/peeling.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

const int kThreadCounts[] = {1, 2, 8};

/// Registry JSON with wall-clock timings removed: everything else (counter
/// values, histogram stats, span rounds/messages/notes, tree shape) must be
/// byte-identical across thread counts.
std::string scrub_wall(std::string json) {
  std::string out;
  std::size_t i = 0;
  const std::string key = "\"wall_ms\":";
  while (i < json.size()) {
    if (json.compare(i, key.size(), key) == 0) {
      i += key.size();
      while (i < json.size() && json[i] != ',' && json[i] != '}') ++i;
      if (i < json.size() && json[i] == ',') ++i;
      continue;
    }
    out.push_back(json[i]);
    ++i;
  }
  return out;
}

Graph determinism_workload() {
  RandomChordalConfig config;
  config.n = 600;
  config.max_clique = 5;
  config.chain_bias = 0.85;
  config.seed = 11;
  return random_chordal(config);
}

class ThreadRestorer {
 public:
  ~ThreadRestorer() { support::set_num_threads(0); }
};

TEST(ParallelDeterminism, MvcIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  Graph g = determinism_workload();
  std::vector<core::MvcResult> results;
  std::vector<std::string> telemetry;
  for (int threads : kThreadCounts) {
    support::set_num_threads(threads);
    obs::Registry reg;
    {
      obs::ScopedRegistry scope(reg);
      results.push_back(core::mvc_chordal(g));
    }
    telemetry.push_back(scrub_wall(reg.to_json()));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].colors, results[i].colors);
    EXPECT_EQ(results[0].num_colors, results[i].num_colors);
    EXPECT_EQ(results[0].rounds, results[i].rounds);
    EXPECT_EQ(results[0].pruning_rounds, results[i].pruning_rounds);
    EXPECT_EQ(results[0].coloring_rounds, results[i].coloring_rounds);
    EXPECT_EQ(results[0].correction_rounds, results[i].correction_rounds);
    EXPECT_EQ(results[0].palette_violations, results[i].palette_violations);
    EXPECT_EQ(results[0].recolored_vertices, results[i].recolored_vertices);
    EXPECT_EQ(telemetry[0], telemetry[i])
        << "telemetry diverged at " << kThreadCounts[i] << " threads";
  }
  EXPECT_TRUE(testing::is_proper_coloring(g, results[0].colors));
}

TEST(ParallelDeterminism, MisIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  Graph g = determinism_workload();
  std::vector<core::MisResult> results;
  std::vector<std::string> telemetry;
  for (int threads : kThreadCounts) {
    support::set_num_threads(threads);
    obs::Registry reg;
    {
      obs::ScopedRegistry scope(reg);
      results.push_back(core::mis_chordal(g));
    }
    telemetry.push_back(scrub_wall(reg.to_json()));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].chosen, results[i].chosen);
    EXPECT_EQ(results[0].rounds, results[i].rounds);
    EXPECT_EQ(results[0].absorbing_components, results[i].absorbing_components);
    EXPECT_EQ(results[0].approx_components, results[i].approx_components);
    EXPECT_EQ(telemetry[0], telemetry[i])
        << "telemetry diverged at " << kThreadCounts[i] << " threads";
  }
  EXPECT_TRUE(testing::is_independent_set(g, results[0].chosen));
}

TEST(ParallelDeterminism, PerNodePruningLedgerIdentical) {
  // PruningMode::kPerNodeLocalViews drives one BallWorkspace per worker and
  // a shared RoundLedger; the reported round totals come from
  // RoundLedger::max_clock() and must not depend on the thread count.
  ThreadRestorer restore;
  RandomChordalConfig config;
  config.n = 160;
  config.max_clique = 4;
  config.chain_bias = 0.9;
  config.seed = 5;
  Graph g = random_chordal(config);
  core::MvcOptions options;
  options.pruning = core::PruningMode::kPerNodeLocalViews;
  std::vector<core::MvcResult> results;
  for (int threads : kThreadCounts) {
    support::set_num_threads(threads);
    results.push_back(core::mvc_chordal(g, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].colors, results[i].colors);
    EXPECT_EQ(results[0].rounds, results[i].rounds);
    EXPECT_EQ(results[0].pruning_rounds, results[i].pruning_rounds);
    EXPECT_EQ(results[0].num_layers, results[i].num_layers);
  }
}

TEST(ParallelDeterminism, LocalDecisionAuditsIdentical) {
  ThreadRestorer restore;
  RandomChordalConfig config;
  config.n = 200;
  config.max_clique = 4;
  config.chain_bias = 0.9;
  config.seed = 13;
  Graph g = random_chordal(config);
  CliqueForest forest = CliqueForest::build(g);
  const int k = 4;
  core::PeelConfig peel_config;
  peel_config.mode = core::PeelMode::kColoring;
  peel_config.k = k;
  core::PeelingResult peeling = core::peel(g, forest, peel_config);
  std::vector<core::LocalDecisionAudit> audits;
  for (int threads : kThreadCounts) {
    support::set_num_threads(threads);
    audits.push_back(core::audit_local_pruning(g, forest, peeling, k, 2));
  }
  for (std::size_t i = 1; i < audits.size(); ++i) {
    EXPECT_EQ(audits[0].decisions_checked, audits[i].decisions_checked);
    EXPECT_EQ(audits[0].mismatches, audits[i].mismatches);
    EXPECT_EQ(audits[0].horizon_hits, audits[i].horizon_hits);
  }
  EXPECT_EQ(audits[0].mismatches, 0);
}

TEST(ParallelDeterminism, PeelLayersIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  Graph g = determinism_workload();
  CliqueForest forest = CliqueForest::build(g);
  core::PeelConfig config;
  config.mode = core::PeelMode::kColoring;
  config.k = 4;
  std::vector<core::PeelingResult> peels;
  for (int threads : kThreadCounts) {
    support::set_num_threads(threads);
    peels.push_back(core::peel(g, forest, config));
  }
  for (std::size_t i = 1; i < peels.size(); ++i) {
    EXPECT_EQ(peels[0].layer_of, peels[i].layer_of);
    EXPECT_EQ(peels[0].num_layers, peels[i].num_layers);
    EXPECT_EQ(peels[0].high_degree_counts, peels[i].high_degree_counts);
  }
}

}  // namespace
}  // namespace chordal
