#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "core/mvc.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

using core::LayerColoringMode;
using core::MvcOptions;
using core::MvcResult;

void expect_valid(const Graph& g, const MvcResult& result, double eps,
                  const char* tag) {
  EXPECT_TRUE(testing::is_proper_coloring(g, result.colors)) << tag;
  int chi = baselines::chromatic_number_chordal(g);
  EXPECT_EQ(result.omega, chi) << tag;
  // The algorithm's unconditional guarantee (Lemma 10 induction):
  // at most floor((1+1/k) chi) + 1 colors.
  int bound = chi + chi / result.k + 1;
  EXPECT_LE(result.num_colors, bound) << tag;
  // And the headline (1+eps) factor whenever eps >= 2/chi (Theorem 3).
  if (eps >= 2.0 / chi) {
    EXPECT_LE(result.num_colors, static_cast<int>((1.0 + eps) * chi)) << tag;
  }
  EXPECT_EQ(result.palette_violations, 0) << tag;
  EXPECT_GT(result.rounds, 0) << tag;
}

TEST(MvcChordal, PaperExampleGraph) {
  Graph g = testing::paper_figure1_graph();
  auto result = core::mvc_chordal(g, {.eps = 1.0});
  expect_valid(g, result, 1.0, "paper");
  EXPECT_EQ(result.omega, 3);
}

TEST(MvcChordal, SimpleFamilies) {
  for (double eps : {1.0, 0.5}) {
    auto path = core::mvc_chordal(path_graph(64), {.eps = eps});
    expect_valid(path_graph(64), path, eps, "path");
    auto star = core::mvc_chordal(star_graph(10), {.eps = eps});
    expect_valid(star_graph(10), star, eps, "star");
    auto complete = core::mvc_chordal(complete_graph(12), {.eps = eps});
    expect_valid(complete_graph(12), complete, eps, "complete");
    // A complete graph is one clique: exactly chi colors, one layer.
    EXPECT_EQ(complete.num_colors, 12);
    auto cat = core::mvc_chordal(caterpillar(30, 2), {.eps = eps});
    expect_valid(caterpillar(30, 2), cat, eps, "caterpillar");
  }
}

TEST(MvcChordal, EmptyAndTinyGraphs) {
  EXPECT_EQ(core::mvc_chordal(Graph{}).colors.size(), 0u);
  GraphBuilder b(1);
  auto one = core::mvc_chordal(b.build(), {.eps = 0.5});
  EXPECT_EQ(one.num_colors, 1);
  GraphBuilder b2(2);
  b2.add_edge(0, 1);
  auto two = core::mvc_chordal(b2.build(), {.eps = 0.5});
  EXPECT_EQ(two.num_colors, 2);
}

TEST(MvcChordal, RejectsBadEps) {
  EXPECT_THROW(core::mvc_chordal(path_graph(3), {.eps = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(core::mvc_chordal(path_graph(3), {.eps = -1.0}),
               std::invalid_argument);
}

struct MvcCase {
  std::uint64_t seed;
  double eps;
};

class MvcRandom : public ::testing::TestWithParam<MvcCase> {};

TEST_P(MvcRandom, IncrementalChordalGraphs) {
  auto [seed, eps] = GetParam();
  RandomChordalConfig config;
  config.n = 400;
  config.max_clique = 8;
  config.chain_bias = 0.7;
  config.seed = seed;
  Graph g = random_chordal(config);
  auto result = core::mvc_chordal(g, {.eps = eps});
  expect_valid(g, result, eps, "incremental");
}

TEST_P(MvcRandom, CliqueTreeShapes) {
  auto [seed, eps] = GetParam();
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    CliqueTreeConfig config;
    config.num_bags = 150;
    config.min_bag_size = 2;
    config.max_bag_size = 6;
    config.shape = shape;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    auto result = core::mvc_chordal(gen.graph, {.eps = eps});
    expect_valid(gen.graph, result, eps,
                 ("shape" + std::to_string(static_cast<int>(shape))).c_str());
  }
}

TEST_P(MvcRandom, CentralizedVariantAlsoValid) {
  auto [seed, eps] = GetParam();
  RandomChordalConfig config;
  config.n = 300;
  config.max_clique = 6;
  config.seed = seed;
  Graph g = random_chordal(config);
  auto result = core::mvc_chordal_centralized(g, eps);
  expect_valid(g, result, eps, "centralized");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvcRandom,
    ::testing::Values(MvcCase{1, 1.0}, MvcCase{2, 1.0}, MvcCase{3, 0.5},
                      MvcCase{4, 0.5}, MvcCase{5, 0.25}, MvcCase{6, 0.25},
                      MvcCase{7, 0.75}, MvcCase{8, 0.4}, MvcCase{9, 1.5},
                      MvcCase{10, 0.3}));

TEST(MvcChordal, RoundsScaleWithLayersTimesK) {
  // Lemma 12: rounds = O(k log n). Check the accounting identity: pruning
  // rounds equal (num_layers) * 10k at the deepest node.
  CliqueTreeConfig config;
  config.num_bags = 250;
  config.shape = TreeShape::kBinary;
  config.seed = 11;
  auto gen = random_chordal_from_clique_tree(config);
  auto result = core::mvc_chordal(gen.graph, {.eps = 0.5});
  EXPECT_EQ(result.pruning_rounds,
            static_cast<std::int64_t>(result.num_layers) * 10 * result.k);
}

TEST(MvcChordal, TreesGetThreeColorsAtMostWithLooseEps) {
  // chi = 2 on trees; with eps = 1 the bound is (1+1/2)*2+1 = 4, but the
  // engine typically lands on <= 3; assert the hard guarantee only.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g = random_tree(500, seed);
    auto result = core::mvc_chordal(g, {.eps = 1.0});
    EXPECT_TRUE(testing::is_proper_coloring(g, result.colors));
    EXPECT_LE(result.num_colors, 4);
  }
}

}  // namespace
}  // namespace chordal
