// Differential fuzz suite for the near-linear clique-forest engine: the
// counting-sort, rank-indexed, scratch-based MWSF construction
// (wcig_edges_counting / max_weight_spanning_forest / family_forest_edges)
// must be bit-identical to the allocating reference oracle
// (wcig_edges + wcig_edge_less + max_weight_spanning_forest_reference) on
// every workload - including the all-equal-weight tie storms of k-trees
// and unit-interval chains, where only the paper's deterministic
// (weight, word, word) order separates the candidate edges. On top of the
// construction-level checks, the drivers (MVC with per-node local views,
// MIS) must produce identical outputs and identical scrubbed telemetry
// under every combination of engine (fast / CHORDAL_FOREST_REFERENCE),
// thread count (1/2/8), and ball cache state (on/off).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/bfs.hpp"
#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "local/ball.hpp"
#include "local/ball_cache.hpp"
#include "local/workspace.hpp"
#include "obs/metrics.hpp"
#include "support/cachectl.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

std::vector<std::array<int, 3>> flat(const std::vector<WcigEdge>& edges) {
  std::vector<std::array<int, 3>> out;
  out.reserve(edges.size());
  for (const auto& e : edges) out.push_back({e.a, e.b, e.weight});
  return out;
}

/// The pre-engine local-view computation, kept verbatim as the oracle: an
/// O(n)-array membership build and a per-trusted-vertex deep copy of the
/// family cliques fed to the reference Kruskal.
LocalView reference_local_view(const Graph& g, int observer, int radius,
                               const std::vector<char>* active = nullptr) {
  std::vector<VertexId> ball =
      active == nullptr
          ? ball_vertices(g, observer, radius)
          : ball_vertices_restricted(g, observer, radius, *active);
  std::vector<int> original;
  Graph ball_graph = g.induced_subgraph(ball, &original);
  std::vector<int> dist_in_ball = bfs_distances(ball_graph, 0);
  auto local_cliques = maximal_cliques_chordal(ball_graph);
  LocalView view;
  std::vector<std::vector<int>> kept;
  for (auto& clique : local_cliques) {
    bool trusted = false;
    for (int lv : clique) trusted = trusted || dist_in_ball[lv] <= radius - 1;
    if (!trusted) continue;
    std::vector<int> global;
    global.reserve(clique.size());
    for (int lv : clique) global.push_back(original[lv]);
    std::sort(global.begin(), global.end());
    kept.push_back(std::move(global));
  }
  std::sort(kept.begin(), kept.end());
  for (const auto& clique : kept) view.cliques.push_word(clique);
  std::vector<std::pair<int, int>> phi_pairs;
  for (std::size_t c = 0; c < kept.size(); ++c) {
    for (int v : kept[c]) phi_pairs.emplace_back(v, static_cast<int>(c));
  }
  std::sort(phi_pairs.begin(), phi_pairs.end());
  for (int lv = 0; lv < ball_graph.num_vertices(); ++lv) {
    if (dist_in_ball[lv] <= radius - 1) {
      view.trusted_vertices.push_back(original[lv]);
    }
  }
  std::sort(view.trusted_vertices.begin(), view.trusted_vertices.end());
  std::vector<std::pair<int, int>> edges;
  std::size_t cursor = 0;
  std::vector<int> family;
  for (int u : view.trusted_vertices) {
    while (cursor < phi_pairs.size() && phi_pairs[cursor].first < u) ++cursor;
    family.clear();
    while (cursor < phi_pairs.size() && phi_pairs[cursor].first == u) {
      family.push_back(phi_pairs[cursor].second);
      ++cursor;
    }
    if (family.size() < 2) continue;
    std::vector<std::vector<int>> family_cliques;
    family_cliques.reserve(family.size());
    for (int c : family) family_cliques.push_back(kept[c]);
    for (const auto& e : max_weight_spanning_forest_reference(
             family_cliques, g.num_vertices())) {
      int a = family[e.a];
      int b = family[e.b];
      edges.emplace_back(std::min(a, b), std::max(a, b));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  view.forest_edges = std::move(edges);
  return view;
}

/// Differential workloads. The k-trees and unit-interval chains are the tie
/// storms: every separator of a k-tree has exactly k vertices, so whole
/// weight classes collide and the word order alone decides the forest.
std::vector<std::pair<std::string, Graph>> engine_workloads() {
  std::vector<std::pair<std::string, Graph>> out;
  out.emplace_back("paper_figure1", testing::paper_figure1_graph());
  for (std::uint64_t seed : {1, 7, 42}) {
    RandomChordalConfig config;
    config.n = 180;
    config.max_clique = 6;
    config.chain_bias = 0.7;
    config.seed = seed;
    out.emplace_back("random_chordal_" + std::to_string(seed),
                     random_chordal(config));
  }
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    CliqueTreeConfig config;
    config.num_bags = 70;
    config.shape = shape;
    config.seed = 13;
    out.emplace_back(
        "clique_tree_" + std::to_string(static_cast<int>(shape)),
        random_chordal_from_clique_tree(config).graph);
  }
  out.emplace_back("k_tree_2", random_k_tree(120, 2, 3));
  out.emplace_back("k_tree_4", random_k_tree(150, 4, 9));
  out.emplace_back("staircase_interval",
                   staircase_interval(160, 0.7, 0.1, 5).graph);
  out.emplace_back("unit_interval",
                   random_unit_interval(140, 60.0, 11).graph);
  out.emplace_back("path", path_graph(60));
  out.emplace_back("star", star_graph(12));
  out.emplace_back("complete", complete_graph(12));
  {
    GraphBuilder b(9);  // three components incl. an isolated vertex
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    b.add_edge(3, 4);
    b.add_edge(5, 6);
    b.add_edge(6, 7);
    out.emplace_back("disconnected", b.build());
  }
  return out;
}

class EngineRestorer {
 public:
  ~EngineRestorer() {
    support::set_forest_reference(-1);
    support::set_cache_enabled(-1);
    support::set_num_threads(0);
  }
};

/// Registry JSON with wall-clock timings and the cache.* counters removed
/// (a cached run publishes cache statistics the uncached run does not);
/// everything else must match byte for byte.
std::string scrub_volatile(const std::string& json) {
  std::string out;
  std::size_t i = 0;
  while (i < json.size()) {
    bool drop = json.compare(i, 7, "\"cache.") == 0 ||
                json.compare(i, 10, "\"wall_ms\":") == 0;
    if (!drop) {
      out.push_back(json[i]);
      ++i;
      continue;
    }
    ++i;  // opening quote of the key
    while (i < json.size() && json[i] != '"') ++i;
    i += 2;  // closing quote and ':'
    if (i < json.size() && (json[i] == '{' || json[i] == '[')) {
      int depth = 0;
      do {
        if (json[i] == '{' || json[i] == '[') ++depth;
        if (json[i] == '}' || json[i] == ']') --depth;
        ++i;
      } while (i < json.size() && depth > 0);
    } else {
      while (i < json.size() && json[i] != ',' && json[i] != '}') ++i;
    }
    if (i < json.size() && json[i] == ',') {
      ++i;  // the dropped member's separator
    } else if (!out.empty() && out.back() == ',') {
      out.pop_back();  // dropped the last member of its object
    }
  }
  return out;
}

TEST(ForestEngine, WcigCountingMatchesReference) {
  ForestScratch scratch;  // shared across workloads: epochs must not leak
  std::vector<WcigEdge> fast;
  for (const auto& [name, g] : engine_workloads()) {
    auto cliques = maximal_cliques_chordal(g);
    auto reference = wcig_edges(cliques, g.num_vertices());
    wcig_edges_counting(CliqueFamily(cliques), g.num_vertices(), scratch,
                        fast);
    EXPECT_EQ(flat(reference), flat(fast)) << name;
  }
}

TEST(ForestEngine, MwsfMatchesReferenceOnCanonicalFamilies) {
  ForestScratch scratch;
  std::vector<WcigEdge> fast;
  for (const auto& [name, g] : engine_workloads()) {
    auto cliques = maximal_cliques_chordal(g);
    ASSERT_TRUE(cliques_lex_sorted(cliques)) << name;
    auto reference =
        max_weight_spanning_forest_reference(cliques, g.num_vertices());
    max_weight_spanning_forest(CliqueFamily(cliques), g.num_vertices(),
                               scratch, fast);
    EXPECT_EQ(flat(reference), flat(fast)) << name;
  }
}

TEST(ForestEngine, MwsfMatchesReferenceOnShuffledFamilies) {
  // Non-canonical clique order exercises the explicit lexicographic
  // ranking + radix reorder path; the reference compares words directly and
  // is order-robust by construction.
  ForestScratch scratch;
  std::vector<WcigEdge> fast;
  std::mt19937 rng(20240807);
  for (const auto& [name, g] : engine_workloads()) {
    auto cliques = maximal_cliques_chordal(g);
    std::shuffle(cliques.begin(), cliques.end(), rng);
    auto reference =
        max_weight_spanning_forest_reference(cliques, g.num_vertices());
    max_weight_spanning_forest(CliqueFamily(cliques), g.num_vertices(),
                               scratch, fast);
    EXPECT_EQ(flat(reference), flat(fast)) << name;
  }
}

TEST(ForestEngine, FamilyEngineMatchesPerFamilyReference) {
  ForestScratch scratch;
  for (const auto& [name, g] : engine_workloads()) {
    CliqueForest forest = CliqueForest::build(g);
    std::vector<std::pair<int, int>> fast;
    for (int v = 0; v < g.num_vertices(); ++v) {
      const auto& family = forest.cliques_of(v);
      if (family.size() < 2) continue;
      std::vector<std::vector<int>> family_cliques;
      for (int c : family) family_cliques.push_back(word_vec(forest.clique(c)));
      std::vector<std::pair<int, int>> reference;
      for (const auto& e : max_weight_spanning_forest_reference(
               family_cliques, g.num_vertices())) {
        reference.emplace_back(family[e.a], family[e.b]);
      }
      fast.clear();
      family_forest_edges(forest.cliques(), family, scratch, fast);
      EXPECT_EQ(reference, fast) << name << " vertex " << v;
    }
  }
}

TEST(ForestEngine, LocalViewsMatchOracleAllPaths) {
  local::BallWorkspace ws;
  LocalView ws_view;
  for (const auto& [name, g] : engine_workloads()) {
    if (g.num_vertices() < 2) continue;
    local::BallCache cache(g, /*enabled=*/true);
    for (int radius : {2, 4}) {
      for (int v = 0; v < g.num_vertices(); v += 5) {
        LocalView oracle = reference_local_view(g, v, radius);
        LocalView allocating = compute_local_view(g, v, radius);
        EXPECT_EQ(oracle.cliques, allocating.cliques) << name;
        EXPECT_EQ(oracle.forest_edges, allocating.forest_edges) << name;
        EXPECT_EQ(oracle.trusted_vertices, allocating.trusted_vertices)
            << name;
        local::compute_local_view(g, v, radius, nullptr, ws, ws_view);
        EXPECT_EQ(oracle.cliques, ws_view.cliques) << name;
        EXPECT_EQ(oracle.forest_edges, ws_view.forest_edges) << name;
        EXPECT_EQ(oracle.trusted_vertices, ws_view.trusted_vertices) << name;
        const LocalView& cached = *cache.shard(0).local_view(v, radius).view;
        EXPECT_EQ(oracle.cliques, cached.cliques) << name;
        EXPECT_EQ(oracle.forest_edges, cached.forest_edges) << name;
        EXPECT_EQ(oracle.trusted_vertices, cached.trusted_vertices) << name;
      }
    }
  }
}

TEST(ForestEngine, LocalViewsMatchOracleUnderActivityMask) {
  RandomChordalConfig config;
  config.n = 150;
  config.max_clique = 5;
  config.chain_bias = 0.8;
  config.seed = 77;
  Graph g = random_chordal(config);
  std::vector<char> active(static_cast<std::size_t>(g.num_vertices()), 1);
  for (int v = 0; v < g.num_vertices(); v += 3) active[v] = 0;
  local::BallWorkspace ws;
  LocalView ws_view;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!active[v]) continue;
    LocalView oracle = reference_local_view(g, v, 4, &active);
    LocalView allocating = compute_local_view(g, v, 4, &active);
    EXPECT_EQ(oracle.cliques, allocating.cliques);
    EXPECT_EQ(oracle.forest_edges, allocating.forest_edges);
    EXPECT_EQ(oracle.trusted_vertices, allocating.trusted_vertices);
    local::compute_local_view(g, v, 4, &active, ws, ws_view);
    EXPECT_EQ(oracle.forest_edges, ws_view.forest_edges);
  }
}

TEST(ForestEngine, ReferenceGateProducesIdenticalForests) {
  EngineRestorer restore;
  for (const auto& [name, g] : engine_workloads()) {
    support::set_forest_reference(0);
    CliqueForest fast = CliqueForest::build(g);
    support::set_forest_reference(1);
    CliqueForest reference = CliqueForest::build(g);
    support::set_forest_reference(-1);
    EXPECT_EQ(fast.forest_edges(), reference.forest_edges()) << name;
    EXPECT_EQ(fast.cliques(), reference.cliques()) << name;
  }
}

TEST(ForestEngine, DriverOutputsAndTelemetryEngineInvariant) {
  // MVC through per-node local views (one Lemma 2 family selection per
  // active node per peel iteration - the engine's hottest consumer) and the
  // full MIS driver: outputs and scrubbed telemetry must be identical at
  // every (engine, threads, cache) combination.
  EngineRestorer restore;
  RandomChordalConfig config;
  config.n = 160;
  config.max_clique = 4;
  config.chain_bias = 0.9;
  config.seed = 5;
  Graph g = random_chordal(config);
  core::MvcOptions options;
  options.pruning = core::PruningMode::kPerNodeLocalViews;
  std::vector<core::MvcResult> mvc_results;
  std::vector<core::MisResult> mis_results;
  std::vector<std::string> telemetry;
  std::vector<std::string> labels;
  for (int reference : {0, 1}) {
    for (int cached : {1, 0}) {
      for (int threads : {1, 2, 8}) {
        support::set_forest_reference(reference);
        support::set_cache_enabled(cached);
        support::set_num_threads(threads);
        obs::Registry reg;
        {
          obs::ScopedRegistry scope(reg);
          mvc_results.push_back(core::mvc_chordal(g, options));
          mis_results.push_back(core::mis_chordal(g));
        }
        telemetry.push_back(scrub_volatile(reg.to_json()));
        labels.push_back("reference=" + std::to_string(reference) +
                         " cached=" + std::to_string(cached) +
                         " threads=" + std::to_string(threads));
      }
    }
  }
  for (std::size_t i = 1; i < mvc_results.size(); ++i) {
    EXPECT_EQ(mvc_results[0].colors, mvc_results[i].colors) << labels[i];
    EXPECT_EQ(mvc_results[0].num_colors, mvc_results[i].num_colors)
        << labels[i];
    EXPECT_EQ(mvc_results[0].rounds, mvc_results[i].rounds) << labels[i];
    EXPECT_EQ(mvc_results[0].pruning_rounds, mvc_results[i].pruning_rounds)
        << labels[i];
    EXPECT_EQ(mvc_results[0].num_layers, mvc_results[i].num_layers)
        << labels[i];
    EXPECT_EQ(mis_results[0].chosen, mis_results[i].chosen) << labels[i];
    EXPECT_EQ(mis_results[0].rounds, mis_results[i].rounds) << labels[i];
    EXPECT_EQ(telemetry[0], telemetry[i]) << "telemetry diverged: "
                                          << labels[i];
  }
}

TEST(ForestEngine, FamilyEngineSteadyStateIsAllocationFree) {
  // After one warm-up pass the scratch buffers must have reached their
  // high-water marks: a second identical pass may not grow any capacity
  // (the observable proxy for "zero steady-state allocations" that does
  // not require hooking the global allocator).
  auto gen = random_chordal_from_clique_tree(
      {.num_bags = 120, .shape = TreeShape::kRandom, .seed = 21});
  CliqueForest forest = CliqueForest::build(gen.graph);
  ForestScratch scratch;
  std::vector<std::pair<int, int>> out;
  auto sweep = [&] {
    for (int v = 0; v < gen.graph.num_vertices(); ++v) {
      out.clear();
      family_forest_edges(forest.cliques(), forest.cliques_of(v), scratch,
                          out);
    }
  };
  sweep();  // warm-up
  const std::array<std::size_t, 6> caps = {
      scratch.occ.capacity(),    scratch.pair_a.capacity(),
      scratch.counts.capacity(), scratch.weights.capacity(),
      scratch.uf_parent.capacity(), scratch.vertex_stamp.capacity()};
  sweep();
  const std::array<std::size_t, 6> caps_after = {
      scratch.occ.capacity(),    scratch.pair_a.capacity(),
      scratch.counts.capacity(), scratch.weights.capacity(),
      scratch.uf_parent.capacity(), scratch.vertex_stamp.capacity()};
  EXPECT_EQ(caps, caps_after);
}

}  // namespace
}  // namespace chordal
