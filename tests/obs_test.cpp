#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace chordal {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::JsonWriter;
using obs::Registry;
using obs::ScopedRegistry;
using obs::Span;
using obs::SpanNode;

// ---------------------------------------------------------------------------
// A tiny recursive-descent JSON syntax checker, used to assert that what the
// emitter produces is actually well-formed JSON (the acceptance criterion),
// without depending on an external parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool parse_value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics.

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge g;
  g.set(3.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(Metrics, HistogramPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_NEAR(h.p50(), 50.5, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Metrics, HistogramInterleavesAddAndQuery) {
  // The lazy-sort accumulator must stay correct when adds arrive after a
  // percentile query invalidated the sorted cache.
  Histogram h;
  h.add(10.0);
  h.add(30.0);
  EXPECT_DOUBLE_EQ(h.p50(), 20.0);
  h.add(20.0);
  EXPECT_DOUBLE_EQ(h.p50(), 20.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(Metrics, RegistryHandsOutStableNamedMetrics) {
  Registry reg;
  Counter& c = reg.counter("net.messages");
  c.add(7);
  EXPECT_EQ(reg.counter("net.messages").value(), 7);
  EXPECT_EQ(&reg.counter("net.messages"), &c);
  EXPECT_EQ(reg.find_counter("net.messages"), &c);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  reg.histogram("h").add(1.0);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
}

// ---------------------------------------------------------------------------
// Spans.

TEST(Spans, NoRegistryMeansInert) {
  ASSERT_EQ(obs::current(), nullptr);
  Span span("free-standing");
  EXPECT_FALSE(span.live());
  // All of these must be harmless no-ops.
  span.add_rounds(5);
  span.add_messages(1, 2);
  span.set_rounds(9);
  span.note("k", 4.0);
  Span::charge_rounds(3);
  Span::charge_messages(1, 1);
  Span::annotate("x", 1.0);
}

TEST(Spans, NestingBuildsTheTree) {
  Registry reg;
  {
    ScopedRegistry scope(reg);
    ASSERT_EQ(obs::current(), &reg);
    Span outer("outer");
    ASSERT_TRUE(outer.live());
    outer.add_rounds(10);
    {
      Span inner("inner");
      inner.add_messages(4, 100);
      inner.note("layers", 3.0);
      // Static charging lands on the innermost live span.
      Span::charge_rounds(2);
    }
    {
      Span sibling("sibling");
      sibling.set_rounds(7);
    }
  }
  const SpanNode& root = reg.span_root();
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.rounds, 10);
  EXPECT_GE(outer.wall_ms, 0.0);
  ASSERT_EQ(outer.children.size(), 2u);
  const SpanNode& inner = *outer.children[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.rounds, 2);
  EXPECT_EQ(inner.messages, 4);
  EXPECT_EQ(inner.payload_words, 100);
  ASSERT_EQ(inner.notes.size(), 1u);
  EXPECT_EQ(inner.notes[0].first, "layers");
  EXPECT_DOUBLE_EQ(inner.notes[0].second, 3.0);
  EXPECT_EQ(outer.children[1]->name, "sibling");
  EXPECT_EQ(outer.children[1]->rounds, 7);
}

TEST(Spans, ScopedRegistryRestoresPrevious) {
  Registry a;
  Registry b;
  {
    ScopedRegistry scope_a(a);
    EXPECT_EQ(obs::current(), &a);
    {
      ScopedRegistry scope_b(b);
      EXPECT_EQ(obs::current(), &b);
      Span span("into-b");
    }
    EXPECT_EQ(obs::current(), &a);
  }
  EXPECT_EQ(obs::current(), nullptr);
  EXPECT_EQ(b.span_root().children.size(), 1u);
  EXPECT_TRUE(a.span_root().children.empty());
}

TEST(Spans, NoteUpserts) {
  SpanNode node;
  node.note("colors", 4.0);
  node.note("colors", 8.0);
  ASSERT_EQ(node.notes.size(), 1u);
  EXPECT_DOUBLE_EQ(node.notes[0].second, 8.0);
}

// ---------------------------------------------------------------------------
// JSON writer.

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, WritesNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("bench");
  w.key("n").value(4096);
  w.key("ratio").value(1.25);
  w.key("ok").value(true);
  w.key("missing").null();
  w.key("rows").begin_array();
  w.value("a");
  w.value(std::int64_t{-3});
  w.begin_object();
  w.key("inner").value(0.5);
  w.end_object();
  w.end_array();
  w.end_object();
  const std::string& doc = w.str();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"name\":\"bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"missing\":null"), std::string::npos);
}

// Regression (fuzz-found): %.12g truncated integer-valued doubles above
// ~2^39 (13+ significant digits), so round/message totals silently lost
// precision in bench JSON. The writer now emits the shortest representation
// that strtod parses back to the exact same bits.
TEST(Json, DoublesRoundTripExactly) {
  const double cases[] = {
      0.0,
      -0.0,
      0.1,
      1.0 / 3.0,
      6.02214076e23,
      5e-324,  // smallest subnormal
      static_cast<double>((1LL << 40) + 1),   // 13 digits: broke %.12g
      static_cast<double>((1LL << 53) - 1),   // largest exact int64 double
      9007199254740991.0,
      -123456789012345.0,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
  };
  for (double v : cases) {
    JsonWriter w;
    w.begin_array();
    w.value(v);
    w.end_array();
    std::string doc = w.str();
    ASSERT_GE(doc.size(), 3u);
    double parsed = std::strtod(doc.c_str() + 1, nullptr);  // skip '['
    EXPECT_EQ(parsed, v) << doc;
    if (v == 0.0) {  // both zeros must keep their sign bit
      EXPECT_EQ(std::signbit(parsed), std::signbit(v)) << doc;
    }
  }
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, RejectsStructuralMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("x"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // incomplete document
  }
}

TEST(Json, RegistrySerializesToWellFormedJson) {
  Registry reg;
  reg.counter("net.messages").add(12);
  reg.gauge("eps").set(0.25);
  Histogram& h = reg.histogram("net.node_max_inbox_words");
  for (int i = 0; i < 32; ++i) h.add(i * 3.0);
  {
    ScopedRegistry scope(reg);
    Span outer("phase \"quoted\" name");  // must survive escaping
    outer.add_rounds(5);
    Span inner("child");
    inner.add_messages(2, 64);
    inner.note("layers", 2.0);
  }
  std::string doc = reg.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"spans\""), std::string::npos);
  EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"p95\""), std::string::npos);
}

TEST(Json, EmptyRegistryStillWellFormed) {
  Registry reg;
  std::string doc = reg.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
}

}  // namespace
}  // namespace chordal
