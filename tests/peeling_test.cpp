#include <gtest/gtest.h>

#include <cmath>

#include "core/peeling.hpp"
#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "graph/peo.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

using core::PeelConfig;
using core::PeelMode;
using core::PeelingResult;

PeelingResult run_coloring_peel(const Graph& g, int k,
                                CliqueForest* out_forest = nullptr) {
  CliqueForest forest = CliqueForest::build(g);
  PeelConfig config;
  config.mode = PeelMode::kColoring;
  config.k = k;
  auto result = core::peel(g, forest, config);
  if (out_forest != nullptr) *out_forest = forest;
  return result;
}

TEST(Peeling, PathGraphPeelsInOneLayer) {
  Graph g = path_graph(50);
  auto result = run_coloring_peel(g, 2);
  EXPECT_EQ(result.num_layers, 1);
  for (int v = 0; v < 50; ++v) EXPECT_EQ(result.layer_of[v], 1);
}

TEST(Peeling, PaperExampleAssignsAllVertices) {
  Graph g = testing::paper_figure1_graph();
  auto result = run_coloring_peel(g, 2);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(result.layer_of[v], 1) << "vertex " << v;
  }
}

TEST(Peeling, RespectsLogNLayerBound) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CliqueTreeConfig config;
    config.num_bags = 300;
    config.shape = TreeShape::kRandom;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    auto result = run_coloring_peel(gen.graph, 2);
    double bound = std::ceil(std::log2(gen.graph.num_vertices())) + 1;
    EXPECT_LE(result.num_layers, bound) << "seed " << seed;
    for (int v = 0; v < gen.graph.num_vertices(); ++v) {
      EXPECT_GE(result.layer_of[v], 1);
    }
  }
}

TEST(Peeling, Lemma6HighDegreeCountsHalve) {
  // The Pruning Lemma: after each iteration the number of degree->=3 forest
  // vertices at least halves.
  for (std::uint64_t seed : {3u, 6u, 9u}) {
    CliqueTreeConfig config;
    config.num_bags = 400;
    config.shape = TreeShape::kBinary;  // many branch vertices
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    auto result = run_coloring_peel(gen.graph, 2);
    const auto& counts = result.high_degree_counts;
    for (std::size_t i = 1; i < counts.size(); ++i) {
      EXPECT_LE(counts[i], counts[i - 1] / 2)
          << "seed " << seed << " iteration " << i;
    }
  }
}

TEST(Peeling, LayersInduceIntervalGraphs) {
  // Each layer is a disjoint union of path-owned sets, each of which must
  // induce an interval graph in G; we check the weaker-but-sufficient
  // property used everywhere: the induced subgraph is chordal and its
  // interval model matches adjacency (done in paths_test) - here we verify
  // chordality of whole layers.
  for (std::uint64_t seed : {2u, 5u}) {
    CliqueTreeConfig config;
    config.num_bags = 120;
    config.shape = TreeShape::kCaterpillar;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    auto result = run_coloring_peel(gen.graph, 2);
    for (int layer = 1; layer <= result.num_layers; ++layer) {
      std::vector<int> members;
      for (int v = 0; v < gen.graph.num_vertices(); ++v) {
        if (result.layer_of[v] == layer) members.push_back(v);
      }
      if (members.empty()) continue;
      Graph induced = gen.graph.induced_subgraph(members);
      EXPECT_TRUE(is_chordal(induced)) << "seed " << seed;
    }
  }
}

TEST(Peeling, Lemma11NeighborsOfOwnedSetsLandInHigherLayers) {
  for (std::uint64_t seed : {1u, 4u, 8u}) {
    CliqueTreeConfig config;
    config.num_bags = 150;
    config.shape = TreeShape::kRandom;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    auto result = run_coloring_peel(gen.graph, 2);
    // Lemma 11 concerns neighborhoods inside G_i = G[U_i]: a neighbor that
    // is still unpeeled when layer i is removed (layer >= i) and outside the
    // path's owned set must land in a strictly HIGHER layer. (Neighbors in
    // lower layers are fine - they were the W' of those layers.)
    for (std::size_t i = 0; i < result.layers.size(); ++i) {
      int this_layer = static_cast<int>(i) + 1;
      for (const auto& lp : result.layers[i]) {
        for (int v : lp.owned) {
          for (int w : gen.graph.neighbors(v)) {
            bool in_same_path = std::binary_search(lp.owned.begin(),
                                                   lp.owned.end(), w);
            if (!in_same_path && result.layer_of[w] >= this_layer) {
              EXPECT_GT(result.layer_of[w], this_layer)
                  << "seed " << seed << " v=" << v << " w=" << w;
            }
          }
        }
      }
    }
  }
}

TEST(Peeling, MisModeStopsAfterRequestedIterations) {
  CliqueTreeConfig config;
  config.num_bags = 200;
  config.shape = TreeShape::kBinary;
  config.seed = 7;
  auto gen = random_chordal_from_clique_tree(config);
  CliqueForest forest = CliqueForest::build(gen.graph);
  PeelConfig pc;
  pc.mode = PeelMode::kIndependentSet;
  pc.d = 3;
  pc.max_iterations = 2;
  auto result = core::peel(gen.graph, forest, pc);
  EXPECT_LE(result.num_layers, 2);
}

TEST(Peeling, RejectsBadConfigs) {
  Graph g = path_graph(4);
  CliqueForest forest = CliqueForest::build(g);
  PeelConfig bad1;
  bad1.mode = PeelMode::kColoring;
  bad1.k = 1;
  EXPECT_THROW(core::peel(g, forest, bad1), std::invalid_argument);
  PeelConfig bad2;
  bad2.mode = PeelMode::kIndependentSet;
  bad2.d = 0;
  bad2.max_iterations = 3;
  EXPECT_THROW(core::peel(g, forest, bad2), std::invalid_argument);
}

}  // namespace
}  // namespace chordal
