#include <gtest/gtest.h>

#include "core/checks.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/peo.hpp"
#include "graph/power.hpp"
#include "interval/rep.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

TEST(GraphPower, PathSquared) {
  Graph g = graph_power(path_graph(6), 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.num_edges(), 5u + 4u);
}

TEST(GraphPower, PowerOneIsIdentity) {
  Graph g = testing::paper_figure1_graph();
  Graph p1 = graph_power(g, 1);
  EXPECT_EQ(p1.edges(), g.edges());
  EXPECT_THROW(graph_power(g, 0), std::invalid_argument);
}

TEST(GraphPower, MatchesPairwiseDistances) {
  for (std::uint64_t seed : {1u, 4u}) {
    Graph g = random_tree(40, seed);
    for (int k : {2, 3}) {
      Graph p = graph_power(g, k);
      for (int v = 0; v < 40; ++v) {
        auto dist = bfs_distances(g, v);
        for (int u = 0; u < 40; ++u) {
          if (u == v) continue;
          EXPECT_EQ(p.has_edge(v, u), dist[u] <= k)
              << "seed " << seed << " k " << k;
        }
      }
    }
  }
}

TEST(GraphPower, PowersOfIntervalGraphsStayChordal) {
  // Raychaudhuri: powers of interval graphs are interval (hence chordal).
  for (std::uint64_t seed : {3u, 7u}) {
    auto gen = staircase_interval(80, 0.62, 0.05, seed);
    for (int k : {2, 3, 5}) {
      EXPECT_TRUE(is_chordal(graph_power(gen.graph, k)))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(Checks, ProperColoringValidation) {
  Graph g = path_graph(4);
  std::vector<int> good = {0, 1, 0, 1};
  std::vector<int> clash = {0, 1, 1, 0};
  std::vector<int> hole = {0, -1, 0, 1};
  EXPECT_TRUE(core::is_proper_coloring(g, good));
  EXPECT_FALSE(core::is_proper_coloring(g, clash));
  EXPECT_FALSE(core::is_proper_coloring(g, hole));
  EXPECT_NO_THROW(core::require_proper_coloring(g, good));
  EXPECT_THROW(core::require_proper_coloring(g, clash), std::logic_error);
  EXPECT_THROW(core::require_proper_coloring(g, hole), std::logic_error);
  std::vector<int> short_vec = {0, 1};
  EXPECT_THROW(core::require_proper_coloring(g, short_vec), std::logic_error);
}

TEST(Checks, IndependentSetValidation) {
  Graph g = path_graph(5);
  std::vector<int> good = {0, 2, 4};
  std::vector<int> adjacent = {0, 1};
  std::vector<int> duplicate = {0, 0};
  std::vector<int> oob = {0, 9};
  EXPECT_TRUE(core::is_independent_set(g, good));
  EXPECT_FALSE(core::is_independent_set(g, adjacent));
  EXPECT_FALSE(core::is_independent_set(g, duplicate));
  EXPECT_FALSE(core::is_independent_set(g, oob));
  EXPECT_NO_THROW(core::require_independent_set(g, good));
  EXPECT_THROW(core::require_independent_set(g, adjacent), std::logic_error);
  EXPECT_THROW(core::require_independent_set(g, duplicate), std::logic_error);
  EXPECT_THROW(core::require_independent_set(g, oob), std::logic_error);
}

TEST(Checks, CountColorsIgnoresNegatives) {
  std::vector<int> colors = {0, 3, 3, -1, 7};
  EXPECT_EQ(core::count_colors(colors), 3);
  EXPECT_EQ(core::count_colors(std::vector<int>{}), 0);
}

}  // namespace
}  // namespace chordal
