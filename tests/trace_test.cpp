// Causal event tracing (obs/trace.hpp): the trace of a run is part of its
// deterministic output. Scrubbing wall_ns (the only wall-clock field),
// the merged event stream of a driver run must be bit-identical across
// thread counts {1, 2, 8} for every cache {on, off} x forest engine
// {fast, reference} combination; across cache settings it must be
// identical outside the cache.* events and the view-rebuild forest.build
// events (views are rebuilt only on miss); and across engines it must be
// identical outright (the engines agree on every chosen edge). Message
// lineage must be causal: every net.deliver resolves through its lineage
// id to exactly one earlier net.send.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "support/cachectl.hpp"
#include "support/parallel.hpp"

namespace chordal {
namespace {

using obs::TraceEvent;
using obs::TraceEventKind;

Graph trace_workload() {
  RandomChordalConfig config;
  config.n = 220;
  config.max_clique = 5;
  config.chain_bias = 0.85;
  config.seed = 19;
  return random_chordal(config);
}

/// Restores every toggle this test flips, whatever the exit path.
class ToggleRestorer {
 public:
  ~ToggleRestorer() {
    support::set_num_threads(0);
    support::set_cache_enabled(-1);
    support::set_forest_reference(-1);
  }
};

/// One full driver run (per-node MVC + MIS) under a fresh tracer; returns
/// the merged event stream with wall_ns zeroed (the only field allowed to
/// vary between otherwise identical runs).
std::vector<TraceEvent> traced_run(const Graph& g, int threads, int cache,
                                   int reference_engine) {
  support::set_num_threads(threads);
  support::set_cache_enabled(cache);
  support::set_forest_reference(reference_engine);
  obs::Tracer tracer;
  {
    obs::ScopedTracer scope(tracer);
    core::MvcOptions mvc;
    mvc.pruning = core::PruningMode::kPerNodeLocalViews;
    core::mvc_chordal(g, mvc);
    core::mis_chordal(g);
  }
  std::vector<TraceEvent> events = tracer.ordered_events();
  EXPECT_EQ(tracer.dropped(), 0);
  for (TraceEvent& e : events) e.wall_ns = 0;
  return events;
}

/// Drops the effectiveness events that legitimately differ between cache
/// settings: cache.* (only the cached run has hits/extends; epochs and
/// revisions exist only there) and forest.build (local views are rebuilt
/// per call when uncached but only on miss when cached).
std::vector<TraceEvent> scrub_cache_events(std::vector<TraceEvent> events) {
  std::erase_if(events, [](const TraceEvent& e) {
    return obs::trace_event_is_cache(e.kind) ||
           e.kind == TraceEventKind::kForestBuild;
  });
  // Ticks renumber once events are dropped; compare by order instead.
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].tick = static_cast<std::int64_t>(i) + 1;
  }
  return events;
}

TEST(TraceDeterminism, IdenticalAcrossThreadsCacheAndEngine) {
  ToggleRestorer restore;
  Graph g = trace_workload();
  const int kThreads[] = {1, 2, 8};

  std::vector<TraceEvent> cross_cache_baseline;
  for (int cache : {1, 0}) {
    std::vector<TraceEvent> engine_baseline;
    for (int reference : {0, 1}) {
      std::vector<TraceEvent> thread_baseline;
      for (int threads : kThreads) {
        std::vector<TraceEvent> events =
            traced_run(g, threads, cache, reference);
        ASSERT_FALSE(events.empty());
        if (threads == kThreads[0]) {
          thread_baseline = events;
        } else {
          // The headline guarantee: scrubbed streams are bit-identical at
          // any thread count, library events included.
          EXPECT_EQ(thread_baseline, events)
              << "threads=" << threads << " cache=" << cache
              << " reference=" << reference;
        }
      }
      if (reference == 0) {
        engine_baseline = thread_baseline;
      } else {
        // Fast and reference forest engines choose identical edges, so
        // even the forest.build events match.
        EXPECT_EQ(engine_baseline, thread_baseline) << "cache=" << cache;
      }
    }
    if (cache == 1) {
      cross_cache_baseline = scrub_cache_events(engine_baseline);
    } else {
      EXPECT_EQ(cross_cache_baseline, scrub_cache_events(engine_baseline));
    }
  }
}

TEST(TraceDeterminism, DriverEventFamiliesPresent) {
  ToggleRestorer restore;
  Graph g = trace_workload();
  std::vector<TraceEvent> events = traced_run(g, 2, 1, 0);
  auto count = [&](TraceEventKind kind) {
    return std::count_if(events.begin(), events.end(),
                         [&](const TraceEvent& e) { return e.kind == kind; });
  };
  EXPECT_GT(count(TraceEventKind::kPhaseBegin), 0);
  EXPECT_EQ(count(TraceEventKind::kPhaseBegin),
            count(TraceEventKind::kPhaseEnd));
  EXPECT_GT(count(TraceEventKind::kLocalDecision), 0);
  EXPECT_GT(count(TraceEventKind::kPeelCommit), 0);
  EXPECT_GT(count(TraceEventKind::kColorCommit), 0);
  EXPECT_GT(count(TraceEventKind::kMisPick), 0);
  // Per-node peeling rebuilds views after each layer's deactivations, so
  // the cached run shows misses and invalidations; full hits are absorbed
  // by the per-vertex decision memo and may legitimately be zero.
  EXPECT_GT(count(TraceEventKind::kCacheMiss), 0);
  EXPECT_GT(count(TraceEventKind::kCacheInvalidate), 0);
  EXPECT_GT(count(TraceEventKind::kForestBuild), 0);

  // Every vertex's color is committed exactly once.
  EXPECT_EQ(count(TraceEventKind::kColorCommit), g.num_vertices());
}

TEST(TraceQuery, NodeAndRoundSlices) {
  ToggleRestorer restore;
  Graph g = trace_workload();
  obs::TraceQuery q(traced_run(g, 2, 1, 0));

  // Find a peeled vertex and check the node slice is exactly its events.
  const TraceEvent* commit = nullptr;
  for (const TraceEvent& e : q.events()) {
    if (e.kind == TraceEventKind::kPeelCommit) {
      commit = &e;
      break;
    }
  }
  ASSERT_NE(commit, nullptr);
  std::vector<TraceEvent> for_node = q.events_for_node(commit->node);
  ASSERT_FALSE(for_node.empty());
  for (const TraceEvent& e : for_node) EXPECT_EQ(e.node, commit->node);
  EXPECT_TRUE(std::is_sorted(
      for_node.begin(), for_node.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.tick < b.tick; }));

  std::vector<TraceEvent> layer1 = q.round_slice(1);
  ASSERT_FALSE(layer1.empty());
  for (const TraceEvent& e : layer1) EXPECT_EQ(e.round, 1);
}

TEST(TraceLineage, EveryDeliverResolvesToOnePriorSend) {
  ToggleRestorer restore;
  support::set_num_threads(2);
  Graph g = trace_workload();
  obs::Tracer tracer;
  {
    obs::ScopedTracer scope(tracer);
    baselines::dplus1_coloring(g, /*seed=*/7);
  }
  obs::TraceQuery q(tracer.ordered_events());
  EXPECT_TRUE(q.lineage_intact());

  std::int64_t sends = 0, delivers = 0;
  const TraceEvent* delivered = nullptr;
  for (const TraceEvent& e : q.events()) {
    if (e.kind == TraceEventKind::kNetSend) ++sends;
    if (e.kind == TraceEventKind::kNetDeliver) {
      ++delivers;
      delivered = &e;
    }
  }
  ASSERT_GT(sends, 0);
  ASSERT_GT(delivers, 0);

  // A delivered message's chain is exactly {send, deliver}, in tick order,
  // agreeing on sender, recipient, and payload size.
  std::vector<TraceEvent> chain = q.lineage_chain(delivered->lineage);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].kind, TraceEventKind::kNetSend);
  EXPECT_EQ(chain[1].kind, TraceEventKind::kNetDeliver);
  EXPECT_LT(chain[0].tick, chain[1].tick);
  EXPECT_EQ(chain[0].node, chain[1].arg0);   // sender
  EXPECT_EQ(chain[0].arg0, chain[1].node);   // recipient
  EXPECT_EQ(chain[0].arg1, chain[1].arg1);   // payload words
}

TEST(TraceBuf, BoundedRingWrapsOverOldest) {
  obs::TraceBuf buf(4);
  for (int i = 0; i < 7; ++i) {
    buf.emit(TraceEventKind::kPeelCommit, i, 1);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 3);
  std::vector<TraceEvent> out;
  buf.drain_to(out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].node, 3 + i);  // oldest first
}

TEST(TraceDisabled, NoTracerMeansNoEvents) {
  ASSERT_EQ(obs::tracer(), nullptr);
  // Emitting through the helper with no tracer installed is a no-op, not
  // a crash — the zero-cost disabled path of every instrumented site.
  obs::trace_emit(nullptr, TraceEventKind::kPeelCommit, 1, 1);
  Graph g = trace_workload();
  core::mvc_chordal(g);
  ASSERT_EQ(obs::tracer(), nullptr);
}

}  // namespace
}  // namespace chordal
