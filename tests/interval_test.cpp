#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "interval/absorbing_mis.hpp"
#include "interval/col_int_graph.hpp"
#include "interval/mis_interval.hpp"
#include "interval/offline.hpp"
#include "interval/proper.hpp"
#include "interval/rep.hpp"
#include "interval/window_recolor.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

using interval::PathIntervals;

PathIntervals rep_from_random(int n, double window, double max_len,
                              std::uint64_t seed,
                              GeneratedInterval* out_gen = nullptr) {
  auto gen = random_interval(
      {.n = n, .window = window, .min_len = 0.5, .max_len = max_len,
       .seed = seed});
  if (out_gen != nullptr) *out_gen = gen;
  return interval::from_geometry(gen.left, gen.right);
}

TEST(IntervalRep, GeometryRoundTripPreservesAdjacency) {
  GeneratedInterval gen;
  auto rep = rep_from_random(70, 40.0, 5.0, 3, &gen);
  Graph g = interval::to_graph(rep);
  EXPECT_EQ(g.num_edges(), gen.graph.num_edges());
  for (auto [u, v] : gen.graph.edges()) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(IntervalRep, ComponentsMatchGraphComponents) {
  auto rep = rep_from_random(80, 400.0, 3.0, 5);
  Graph g = interval::to_graph(rep);
  auto graph_comps = connected_components(g);
  auto rep_comps = interval::components(rep);
  EXPECT_EQ(static_cast<int>(rep_comps.size()), graph_comps.count);
}

TEST(IntervalRep, OmegaEqualsBruteForceChromatic) {
  for (std::uint64_t seed : {1u, 2u, 6u}) {
    auto rep = rep_from_random(16, 10.0, 4.0, seed);
    Graph g = interval::to_graph(rep);
    EXPECT_EQ(interval::omega(rep), testing::brute_force_chromatic(g));
  }
}

TEST(IntervalRep, DiameterMatchesExact) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 7u, 11u}) {
    auto rep = rep_from_random(60, 80.0, 4.0, seed);
    for (const auto& comp : interval::components(rep)) {
      auto sub = interval::restrict(rep, comp);
      Graph g = interval::to_graph(sub);
      if (g.num_vertices() <= 1) continue;
      EXPECT_EQ(interval::diameter(sub), diameter_exact(g)) << "seed " << seed;
    }
  }
}

TEST(IntervalOffline, OptimalColoringUsesOmegaColors) {
  for (std::uint64_t seed : {1u, 4u, 9u}) {
    auto rep = rep_from_random(100, 50.0, 6.0, seed);
    auto colors = interval::color_optimal(rep);
    EXPECT_TRUE(interval::is_proper(rep, colors));
    int used = *std::max_element(colors.begin(), colors.end()) + 1;
    EXPECT_EQ(used, interval::omega(rep));
  }
}

TEST(IntervalOffline, ExactMisMatchesBruteForce) {
  for (std::uint64_t seed : {2u, 5u, 8u}) {
    auto rep = rep_from_random(18, 12.0, 4.0, seed);
    Graph g = interval::to_graph(rep);
    EXPECT_EQ(interval::alpha(rep), testing::brute_force_alpha(g));
  }
}

TEST(ProperReduction, KeepsAlphaAndRemovesDominated) {
  for (std::uint64_t seed : {1u, 3u, 7u}) {
    auto rep = rep_from_random(40, 20.0, 8.0, seed);
    auto kept = interval::proper_reduction(rep);
    auto reduced = interval::restrict(rep, kept);
    // alpha unchanged (dominated vertices are never needed).
    EXPECT_EQ(interval::alpha(reduced), interval::alpha(rep));
    // The reduced graph must be proper interval, i.e. claw-free (Roberts):
    // any claw's center strictly dominates the middle leaf's closed
    // neighborhood, so centers are always removed.
    Graph g = interval::to_graph(reduced);
    for (int v = 0; v < g.num_vertices(); ++v) {
      auto nb = g.neighbors(v);
      for (std::size_t a = 0; a < nb.size(); ++a) {
        for (std::size_t b = a + 1; b < nb.size(); ++b) {
          if (g.has_edge(nb[a], nb[b])) continue;
          for (std::size_t c = b + 1; c < nb.size(); ++c) {
            bool claw = !g.has_edge(nb[a], nb[c]) && !g.has_edge(nb[b], nb[c]);
            EXPECT_FALSE(claw) << "seed " << seed << " center " << v;
          }
        }
      }
    }
  }
}

TEST(WindowRecolor, CompletesFreeColoringGreedily) {
  auto rep = rep_from_random(60, 30.0, 5.0, 12);
  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed.assign(rep.vertices.size(), -1);
  problem.palette = interval::omega(rep);
  auto solved = interval::extend_coloring(problem);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(interval::is_proper(rep, *solved));
}

TEST(WindowRecolor, RespectsFixedColors) {
  auto rep = rep_from_random(50, 25.0, 5.0, 21);
  auto base = interval::color_optimal(rep);
  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed.assign(rep.vertices.size(), -1);
  // Freeze a scattered third of the vertices at their optimal colors.
  for (std::size_t i = 0; i < rep.vertices.size(); i += 3) {
    problem.fixed[i] = base[i];
  }
  problem.palette = interval::omega(rep);
  auto solved = interval::extend_coloring(problem);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(interval::is_proper(rep, *solved));
  for (std::size_t i = 0; i < rep.vertices.size(); i += 3) {
    EXPECT_EQ((*solved)[i], base[i]);
  }
}

TEST(WindowRecolor, DetectsImproperPrecoloring) {
  PathIntervals rep;
  rep.num_positions = 3;
  rep.vertices = {0, 1};
  rep.lo = {0, 1};
  rep.hi = {2, 2};
  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed = {0, 0};  // adjacent, same color
  problem.palette = 2;
  EXPECT_THROW(interval::extend_coloring(problem), std::invalid_argument);
}

TEST(WindowRecolor, ReportsInfeasibleTinyPalette) {
  // A triangle (three mutually overlapping intervals) cannot be 2-colored.
  PathIntervals rep;
  rep.num_positions = 4;
  rep.vertices = {0, 1, 2};
  rep.lo = {0, 1, 2};
  rep.hi = {3, 3, 3};
  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed = {-1, -1, -1};
  problem.palette = 2;
  EXPECT_FALSE(interval::extend_coloring(problem).has_value());
}

TEST(WindowRecolor, TwoSidedBoundaryExtension) {
  // Lemma 9 setting: both end columns frozen with clashing layouts; the
  // middle must absorb the permutation within (1 + 1/k) omega + 1 colors.
  const int n = 40;
  PathIntervals rep;
  rep.num_positions = n + 4;
  // Four "tracks" of consecutive unit intervals.
  int id = 0;
  for (int track = 0; track < 4; ++track) {
    for (int p = track % 2; p < n; p += 2) {
      rep.vertices.push_back(id++);
      rep.lo.push_back(p);
      rep.hi.push_back(p + 2);
    }
  }
  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed.assign(rep.vertices.size(), -1);
  // Freeze the leftmost interval of each track to color = track and the
  // rightmost to a rotated color.
  for (int track = 0; track < 4; ++track) {
    std::size_t first = 0, last = 0;
    int best_lo = 1 << 30, best_hi = -1;
    for (std::size_t i = 0; i < rep.vertices.size(); ++i) {
      bool in_track = false;
      // Recover track by construction: intervals were appended per track.
      // Track t spans indices [t*per, (t+1)*per).
      std::size_t per = rep.vertices.size() / 4;
      in_track = i / per == static_cast<std::size_t>(track);
      if (!in_track) continue;
      if (rep.lo[i] < best_lo) {
        best_lo = rep.lo[i];
        first = i;
      }
      if (rep.hi[i] > best_hi) {
        best_hi = rep.hi[i];
        last = i;
      }
    }
    problem.fixed[first] = track;
    problem.fixed[last] = (track + 1) % 4;
  }
  int w = interval::omega(rep);
  int k = 8;
  problem.palette = w + w / k + 1;
  auto solved = interval::extend_coloring(problem);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(interval::is_proper(rep, *solved));
}

class ColIntGraphSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColIntGraphSeeds, MeetsLemmaColorBound) {
  for (int k : {2, 4, 8}) {
    auto rep = rep_from_random(300, 120.0, 6.0, GetParam());
    auto result = interval::col_int_graph(rep, k);
    EXPECT_TRUE(interval::is_proper(rep, result.colors)) << "k=" << k;
    EXPECT_LE(result.num_colors, result.color_bound) << "k=" << k;
    EXPECT_EQ(result.palette_violations, 0) << "k=" << k;
    EXPECT_GT(result.rounds, 0);
  }
}

TEST_P(ColIntGraphSeeds, ApproxMisMeetsRatio) {
  for (double eps : {0.5, 0.25}) {
    auto rep = rep_from_random(400, 160.0, 5.0, GetParam());
    auto result = interval::approx_mis_interval(rep, eps);
    // Independence.
    Graph g = interval::to_graph(rep);
    std::vector<int> chosen_vertices;
    for (std::size_t i : result.chosen) {
      chosen_vertices.push_back(static_cast<int>(i));
    }
    EXPECT_TRUE(testing::is_independent_set(g, chosen_vertices));
    // Ratio.
    int opt = interval::alpha(rep);
    EXPECT_GE(static_cast<double>(result.chosen.size()) * (1.0 + eps),
              static_cast<double>(opt))
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColIntGraphSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AbsorbingMis, IsAlwaysOptimal) {
  for (std::uint64_t seed : {1u, 4u, 6u}) {
    auto rep = rep_from_random(20, 12.0, 4.0, seed);
    Graph g = interval::to_graph(rep);
    int opt = testing::brute_force_alpha(g);
    for (auto side : {interval::AttachSide::kNone, interval::AttachSide::kLeft,
                      interval::AttachSide::kRight}) {
      auto mis = interval::absorbing_mis(rep, side);
      std::vector<int> verts(mis.begin(), mis.end());
      std::vector<int> as_int;
      for (std::size_t i : mis) as_int.push_back(static_cast<int>(i));
      EXPECT_TRUE(testing::is_independent_set(g, as_int));
      EXPECT_EQ(static_cast<int>(mis.size()), opt);
    }
  }
}

TEST(AbsorbingMis, AbsorbsClosedNeighborhood) {
  // |I| must equal alpha(Gamma[I]) when sweeping away from the attachment.
  for (std::uint64_t seed : {2u, 3u, 5u, 9u}) {
    auto rep = rep_from_random(18, 10.0, 4.0, seed);
    Graph g = interval::to_graph(rep);
    for (auto side : {interval::AttachSide::kLeft,
                      interval::AttachSide::kRight}) {
      auto mis = interval::absorbing_mis(rep, side);
      std::set<int> closure;
      for (std::size_t i : mis) {
        closure.insert(static_cast<int>(i));
        for (int w : g.neighbors(static_cast<int>(i))) closure.insert(w);
      }
      std::vector<int> closure_list(closure.begin(), closure.end());
      Graph sub = g.induced_subgraph(closure_list);
      EXPECT_EQ(testing::brute_force_alpha(sub), static_cast<int>(mis.size()))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace chordal
