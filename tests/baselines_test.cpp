// Coverage for the baseline algorithms: the distributed (Delta+1) greedy
// (previously only exercised by benches) and corner cases of the exact
// chordal baselines and Luby.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/checks.hpp"
#include "graph/generators.hpp"
#include "local/luby.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

class DPlusOneSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DPlusOneSeeds, ProperAndWithinDeltaPlusOne) {
  RandomChordalConfig config;
  config.n = 250;
  config.max_clique = 6;
  config.seed = GetParam();
  Graph g = random_chordal(config);
  auto result = baselines::dplus1_coloring(g, GetParam() * 11 + 5);
  EXPECT_TRUE(core::is_proper_coloring(g, result.colors));
  EXPECT_LE(result.num_colors, g.max_degree() + 1);
  EXPECT_GT(result.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DPlusOneSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DPlusOne, CornerGraphs) {
  auto star = baselines::dplus1_coloring(star_graph(7), 3);
  EXPECT_TRUE(core::is_proper_coloring(star_graph(7), star.colors));
  EXPECT_EQ(star.num_colors, 2);

  auto complete = baselines::dplus1_coloring(complete_graph(9), 4);
  EXPECT_TRUE(core::is_proper_coloring(complete_graph(9), complete.colors));
  EXPECT_EQ(complete.num_colors, 9);

  GraphBuilder lonely(3);
  auto iso = baselines::dplus1_coloring(lonely.build(), 1);
  EXPECT_EQ(iso.num_colors, 1);
}

TEST(ExactBaselines, CornerGraphs) {
  EXPECT_EQ(baselines::chromatic_number_chordal(complete_graph(5)), 5);
  EXPECT_EQ(baselines::chromatic_number_chordal(star_graph(6)), 2);
  EXPECT_EQ(baselines::independence_number_chordal(complete_graph(5)), 1);
  EXPECT_EQ(baselines::independence_number_chordal(star_graph(6)), 6);
  EXPECT_EQ(baselines::independence_number_chordal(path_graph(9)), 5);
  GraphBuilder b(2);
  EXPECT_EQ(baselines::independence_number_chordal(b.build()), 2);
}

TEST(ExactBaselines, RejectNonChordalInput) {
  GraphBuilder b(5);
  for (int v = 0; v < 5; ++v) b.add_edge(v, (v + 1) % 5);  // C5
  Graph c5 = b.build();
  EXPECT_THROW(baselines::chromatic_number_chordal(c5),
               std::invalid_argument);
  EXPECT_THROW(baselines::maximum_independent_set_chordal(c5),
               std::invalid_argument);
}

TEST(LubyBaseline, CornerGraphs) {
  auto complete = local::luby_mis(complete_graph(10), 7);
  EXPECT_EQ(complete.independent_set.size(), 1u);
  auto star = local::luby_mis(star_graph(8), 7);
  // Maximal on a star: either the center alone or all leaves.
  EXPECT_TRUE(star.independent_set.size() == 1u ||
              star.independent_set.size() == 8u);
  GraphBuilder b(4);
  auto empty_graph = local::luby_mis(b.build(), 7);
  EXPECT_EQ(empty_graph.independent_set.size(), 4u);
}

}  // namespace
}  // namespace chordal
