#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/union_find.hpp"

namespace chordal {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(9);
  auto p = rng.permutation(50);
  std::vector<char> seen(50, 0);
  for (int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

// Regression (fuzz-found): next_below(0) was a division by zero (SIGFPE)
// and uniform_int with hi < lo wrapped the span through UB; both are now
// typed contract violations.
TEST(Rng, DegenerateBoundsThrowInsteadOfCrashing) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
  EXPECT_THROW(rng.permutation(-1), std::invalid_argument);
  EXPECT_EQ(rng.uniform_int(7, 7), 7);  // single-point range stays legal
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, UniformIntCoversExtremeRanges) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    // The full int64 span used to overflow hi - lo + 1; the unsigned span
    // arithmetic must keep every draw in range.
    auto v = rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::max());
    (void)v;  // any value is in range by type; the draw must not trap
    auto w = rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::min() + 1);
    EXPECT_LE(w, std::numeric_limits<std::int64_t>::min() + 1);
  }
}

TEST(Stats, AccumulatorMoments) {
  StatAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, Percentiles) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Stats, SamplesPercentileEndpoints) {
  Samples s;
  for (double x : {9.0, 2.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 9.0);
  Samples single;
  single.add(4.5);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 4.5);
  EXPECT_DOUBLE_EQ(single.percentile(1.0), 4.5);
  EXPECT_DOUBLE_EQ(single.p50(), 4.5);
  Samples empty;
  EXPECT_THROW(empty.percentile(0.5), std::invalid_argument);
}

TEST(UnionFindTest, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.num_sets(), 2);
  EXPECT_TRUE(uf.same(1, 2));
  EXPECT_FALSE(uf.same(1, 4));
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| name  "), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, RendersWithNoRows) {
  Table t({"phase", "rounds"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("phase"), std::string::npos);
  EXPECT_NE(s.find("rounds"), std::string::npos);
  EXPECT_TRUE(t.rows().empty());
  t.print();  // must not crash on the empty body
}

}  // namespace
}  // namespace chordal
