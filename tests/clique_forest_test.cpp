#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

// Maps a clique (as 1-indexed paper vertices) to its index in the canonical
// clique list of the built forest.
int clique_index(const CliqueForest& forest, std::vector<int> paper_clique) {
  for (int& v : paper_clique) --v;
  std::sort(paper_clique.begin(), paper_clique.end());
  for (int c = 0; c < forest.num_cliques(); ++c) {
    if (word_vec(forest.clique(c)) == paper_clique) return c;
  }
  ADD_FAILURE() << "clique not found";
  return -1;
}

TEST(CliqueForest, PaperExampleForestEdges) {
  Graph g = testing::paper_figure1_graph();
  CliqueForest forest = CliqueForest::build(g);
  EXPECT_EQ(forest.num_cliques(), 15);
  forest.verify(g);

  // Applying the paper's deterministic tie-breaking order by hand yields the
  // following 14 spanning-tree edges (see Figure 2): weight-2 edges C1C2,
  // C2C5, C3C4, C6C7, C8C9, C10C11 plus weight-1 edges chosen in decreasing
  // lexicographic order: C14C15, C13C15, C11C13, C11C12, C9C10, C7C8, C5C6,
  // C3C5.
  auto idx = [&](std::vector<int> clique) {
    return clique_index(forest, std::move(clique));
  };
  std::vector<std::pair<std::vector<int>, std::vector<int>>> expected = {
      {{1, 2, 3}, {2, 3, 4}},     {{2, 3, 4}, {2, 4, 8}},
      {{4, 5, 6}, {5, 6, 7}},     {{8, 9, 10}, {9, 10, 11}},
      {{11, 12, 13}, {12, 13, 14}}, {{14, 15, 16}, {15, 16, 19}},
      {{21, 22}, {21, 23}},       {{19, 20, 21}, {21, 23}},
      {{15, 16, 19}, {19, 20, 21}}, {{15, 16, 19}, {16, 17, 18}},
      {{12, 13, 14}, {14, 15, 16}}, {{9, 10, 11}, {11, 12, 13}},
      {{2, 4, 8}, {8, 9, 10}},    {{4, 5, 6}, {2, 4, 8}},
  };
  std::vector<std::pair<int, int>> expected_edges;
  for (auto& [a, b] : expected) {
    int ia = idx(a), ib = idx(b);
    expected_edges.emplace_back(std::min(ia, ib), std::max(ia, ib));
  }
  std::sort(expected_edges.begin(), expected_edges.end());
  auto actual = forest.forest_edges();
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected_edges);
}

TEST(CliqueForest, MembershipInducesSubtrees) {
  Graph g = testing::paper_figure1_graph();
  CliqueForest forest = CliqueForest::build(g);
  // Paper node 21 (vertex 20) belongs to C13, C14, C15.
  auto family = forest.cliques_of(20);
  EXPECT_EQ(family.size(), 3u);
  // Paper node 4 (vertex 3) belongs to C2, C3, C5.
  EXPECT_EQ(forest.cliques_of(3).size(), 3u);
}

TEST(CliqueForest, ForestOfDisconnectedGraphHasOneTreePerComponent) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  Graph g = b.build();  // path of 3, edge, isolated vertex
  CliqueForest forest = CliqueForest::build(g);
  forest.verify(g);
  // Cliques: {0,1}, {1,2}, {3,4}, {5} -> edges only between first two.
  EXPECT_EQ(forest.num_cliques(), 4);
  EXPECT_EQ(forest.forest_edges().size(), 1u);
}

class ForestSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForestSeeds, VerifyOnRandomChordal) {
  RandomChordalConfig config;
  config.n = 150;
  config.max_clique = 6;
  config.seed = GetParam();
  Graph g = random_chordal(config);
  CliqueForest forest = CliqueForest::build(g);
  forest.verify(g);
}

TEST_P(ForestSeeds, VerifyOnCliqueTreeShapes) {
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    CliqueTreeConfig config;
    config.num_bags = 60;
    config.shape = shape;
    config.seed = GetParam();
    auto gen = random_chordal_from_clique_tree(config);
    CliqueForest forest = CliqueForest::build(gen.graph);
    forest.verify(gen.graph);
  }
}

TEST_P(ForestSeeds, IntervalGraphForestVerifies) {
  // Note: Theorem 1 guarantees interval graphs possess *a* linear clique
  // forest, but the deterministic tie-broken MWSF is not always that one
  // (e.g. the star K_{1,4}: its W_G is a K_4 of weight-1 edges, and the
  // lexicographic Kruskal picks a star-shaped tree). The algorithms only
  // rely on the forward direction (forest paths induce interval graphs), so
  // here we check the tree-decomposition axioms.
  auto gen = random_interval({.n = 90, .window = 45.0, .min_len = 1.0,
                              .max_len = 7.0, .seed = GetParam()});
  CliqueForest forest = CliqueForest::build(gen.graph);
  forest.verify(gen.graph);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 21, 34, 55, 89,
                                           144));

TEST(LocalView, PaperFigure4Example) {
  Graph g = testing::paper_figure1_graph();
  // Observer is paper node 10 (vertex 9) with a distance-3 ball.
  LocalView view = compute_local_view(g, 9, 3);
  // Figure 4: C' = {C1, C2, C3, C5, C6, C7, C8, C9}.
  std::vector<std::vector<int>> expected_cliques = {
      {1, 2, 3},   {2, 3, 4},   {4, 5, 6},    {2, 4, 8},
      {8, 9, 10},  {9, 10, 11}, {11, 12, 13}, {12, 13, 14}};
  for (auto& clique : expected_cliques) {
    for (int& v : clique) --v;
    std::sort(clique.begin(), clique.end());
  }
  std::sort(expected_cliques.begin(), expected_cliques.end());
  CliqueFamily expected_family;
  for (const auto& clique : expected_cliques) expected_family.push_word(clique);
  EXPECT_EQ(view.cliques, expected_family);
  // The local forest must be the subtree of the global clique forest induced
  // by C': seven edges.
  EXPECT_EQ(view.forest_edges.size(), 7u);
}

TEST(LocalView, Lemma2ConsistencyWithGlobalForest) {
  // Every local-view forest edge must be a global clique-forest edge, and
  // for every trusted vertex u the full subtree T(u) must appear.
  for (std::uint64_t seed : {1, 2, 3, 7, 19}) {
    RandomChordalConfig config;
    config.n = 70;
    config.max_clique = 4;
    config.seed = seed;
    Graph g = random_chordal(config);
    CliqueForest global = CliqueForest::build(g);

    std::map<std::vector<std::vector<int>>, char> global_edges;
    for (auto [a, b] : global.forest_edges()) {
      std::vector<std::vector<int>> key = {word_vec(global.clique(a)),
                                           word_vec(global.clique(b))};
      std::sort(key.begin(), key.end());
      global_edges[key] = 1;
    }
    for (int v = 0; v < g.num_vertices(); v += 7) {
      LocalView view = compute_local_view(g, v, 4);
      for (auto [a, b] : view.forest_edges) {
        std::vector<std::vector<int>> key = {word_vec(view.cliques[a]),
                                             word_vec(view.cliques[b])};
        std::sort(key.begin(), key.end());
        EXPECT_TRUE(global_edges.count(key))
            << "seed " << seed << " observer " << v;
      }
      // Subtree completeness for trusted vertices.
      for (int u : view.trusted_vertices) {
        const auto& family = global.cliques_of(u);
        int expected_subtree_edges = static_cast<int>(family.size()) - 1;
        int found = 0;
        for (auto [a, b] : view.forest_edges) {
          const auto& ca = view.cliques[a];
          const auto& cb = view.cliques[b];
          bool in_a = std::binary_search(ca.begin(), ca.end(), u);
          bool in_b = std::binary_search(cb.begin(), cb.end(), u);
          if (in_a && in_b) ++found;
        }
        EXPECT_EQ(found, expected_subtree_edges)
            << "seed " << seed << " observer " << v << " vertex " << u;
      }
    }
  }
}

}  // namespace
}  // namespace chordal
