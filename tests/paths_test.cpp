#include <gtest/gtest.h>

#include <algorithm>

#include "cliqueforest/paths.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

std::vector<char> all_active(const CliqueForest& forest) {
  return std::vector<char>(static_cast<std::size_t>(forest.num_cliques()), 1);
}

TEST(ForestPaths, PathGraphIsOnePendantPath) {
  Graph g = path_graph(8);
  CliqueForest forest = CliqueForest::build(g);
  auto paths = maximal_binary_paths(forest, all_active(forest));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].pendant);
  EXPECT_EQ(paths[0].cliques.size(), 7u);
  EXPECT_EQ(paths[0].attach_left, -1);
  EXPECT_EQ(paths[0].attach_right, -1);
}

TEST(ForestPaths, StarDecomposesIntoPendantLeaves) {
  Graph g = star_graph(5);
  CliqueForest forest = CliqueForest::build(g);
  // Clique forest of a 5-leaf star: 5 bags {center, leaf} forming a star
  // around... every bag has degree 4 in no case; the forest is a tree over
  // the 5 bags. Bags of forest-degree <= 2 form the binary paths.
  auto paths = maximal_binary_paths(forest, all_active(forest));
  for (const auto& p : paths) EXPECT_TRUE(p.pendant || !p.cliques.empty());
  // Every clique must be covered by at most one path.
  std::vector<int> seen;
  for (const auto& p : paths) {
    seen.insert(seen.end(), p.cliques.begin(), p.cliques.end());
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(ForestPaths, PaperExampleDecomposition) {
  Graph g = testing::paper_figure1_graph();
  CliqueForest forest = CliqueForest::build(g);
  auto paths = maximal_binary_paths(forest, all_active(forest));
  // Global forest degrees: C5 (cliques {2,4,8}... 0-indexed {1,3,7}) has
  // degree 3 (C2, C3, C6) and C13 ({19,20,21}->{18,19,20}) plus C11
  // ({15,16,19}) etc. Verify basic sanity: paths partition the degree<=2
  // cliques and each path's cliques are consecutive in the forest.
  std::size_t covered = 0;
  for (const auto& p : paths) {
    covered += p.cliques.size();
    for (std::size_t i = 0; i + 1 < p.cliques.size(); ++i) {
      const auto& nb = forest.forest_neighbors(p.cliques[i]);
      EXPECT_TRUE(std::find(nb.begin(), nb.end(), p.cliques[i + 1]) !=
                  nb.end());
    }
  }
  int low_degree = 0;
  for (int c = 0; c < forest.num_cliques(); ++c) {
    if (forest.forest_degree(c) <= 2) ++low_degree;
  }
  EXPECT_EQ(covered, static_cast<std::size_t>(low_degree));
}

TEST(ForestPaths, OwnedVerticesExcludeSharedWithAttachment) {
  // Chain of triangles sharing single vertices; build explicitly:
  // cliques {0,1,2},{2,3,4},{4,5,6} in a path; plus a branch at {4,7},{4,8},
  // {4,9} making the middle clique's bag... simpler: use the paper graph.
  Graph g = testing::paper_figure1_graph();
  CliqueForest forest = CliqueForest::build(g);
  auto paths = maximal_binary_paths(forest, all_active(forest));
  for (const auto& p : paths) {
    auto owned = path_owned_vertices(forest, all_active(forest), p);
    auto uni = path_union_vertices(forest, p);
    // Owned is a subset of the union.
    for (int v : owned) {
      EXPECT_TRUE(std::binary_search(uni.begin(), uni.end(), v));
    }
    // A vertex shared with an attachment clique must not be owned.
    for (int att : {p.attach_left, p.attach_right}) {
      if (att == -1) continue;
      for (int v : forest.clique(att)) {
        EXPECT_FALSE(std::binary_search(owned.begin(), owned.end(), v));
      }
    }
  }
}

TEST(ForestPaths, IntervalModelMatchesInducedGraph) {
  for (std::uint64_t seed : {3u, 5u, 8u, 13u}) {
    CliqueTreeConfig config;
    config.num_bags = 30;
    config.shape = TreeShape::kCaterpillar;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    CliqueForest forest = CliqueForest::build(gen.graph);
    std::vector<char> active(static_cast<std::size_t>(forest.num_cliques()),
                             1);
    for (const auto& p : maximal_binary_paths(forest, active)) {
      PathIntervals rep = path_intervals(forest, p);
      for (std::size_t i = 0; i < rep.vertices.size(); ++i) {
        for (std::size_t j = i + 1; j < rep.vertices.size(); ++j) {
          bool overlap = rep.lo[i] <= rep.hi[j] && rep.lo[j] <= rep.hi[i];
          EXPECT_EQ(gen.graph.has_edge(rep.vertices[i], rep.vertices[j]),
                    overlap)
              << "seed " << seed;
        }
      }
    }
  }
}

TEST(ForestPaths, DiameterMatchesExactBfs) {
  for (std::uint64_t seed : {1u, 2u, 4u, 6u, 9u, 12u}) {
    CliqueTreeConfig config;
    config.num_bags = 40;
    config.shape = TreeShape::kPath;  // one long path: big diameters
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    CliqueForest forest = CliqueForest::build(gen.graph);
    std::vector<char> active(static_cast<std::size_t>(forest.num_cliques()),
                             1);
    for (const auto& p : maximal_binary_paths(forest, active)) {
      auto uni = path_union_vertices(forest, p);
      Graph induced = gen.graph.induced_subgraph(uni);
      EXPECT_EQ(path_diameter(gen.graph, forest, p), diameter_exact(induced))
          << "seed " << seed;
    }
  }
}

TEST(ForestPaths, IndependenceMatchesBruteForce) {
  for (std::uint64_t seed : {1u, 3u, 5u, 7u}) {
    CliqueTreeConfig config;
    config.num_bags = 12;
    config.shape = TreeShape::kPath;
    config.max_bag_size = 4;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    CliqueForest forest = CliqueForest::build(gen.graph);
    std::vector<char> active(static_cast<std::size_t>(forest.num_cliques()),
                             1);
    for (const auto& p : maximal_binary_paths(forest, active)) {
      auto uni = path_union_vertices(forest, p);
      Graph induced = gen.graph.induced_subgraph(uni);
      EXPECT_EQ(path_independence(forest, p),
                testing::brute_force_alpha(induced))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace chordal
