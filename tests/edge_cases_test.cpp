// Failure-injection and edge-case coverage for the end-to-end pipelines:
// disconnected inputs, isolated vertices, degenerate parameters, large
// smoke runs, and the staircase generator's guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/baselines.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/generators.hpp"
#include "graph/graphio.hpp"
#include "graph/peo.hpp"
#include "interval/rep.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

Graph disconnected_mix(std::uint64_t seed) {
  // Union of: a random chordal blob, a path, a clique, isolated vertices.
  RandomChordalConfig config;
  config.n = 60;
  config.max_clique = 5;
  config.seed = seed;
  Graph blob = random_chordal(config);
  GraphBuilder b(60 + 20 + 6 + 4);
  for (auto [u, v] : blob.edges()) b.add_edge(u, v);
  for (int i = 0; i < 19; ++i) b.add_edge(60 + i, 60 + i + 1);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) b.add_edge(80 + i, 80 + j);
  }
  return b.build();  // vertices 86..89 isolated
}

TEST(EdgeCases, MvcOnDisconnectedGraphWithIsolatedVertices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g = disconnected_mix(seed);
    auto result = core::mvc_chordal(g, {.eps = 0.5});
    EXPECT_TRUE(testing::is_proper_coloring(g, result.colors));
    int chi = baselines::chromatic_number_chordal(g);
    EXPECT_LE(result.num_colors, chi + chi / result.k + 1);
  }
}

TEST(EdgeCases, MisOnDisconnectedGraphWithIsolatedVertices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g = disconnected_mix(seed);
    auto result = core::mis_chordal(g, {.eps = 0.25});
    EXPECT_TRUE(testing::is_independent_set(g, result.chosen));
    int alpha = baselines::independence_number_chordal(g);
    EXPECT_GE(result.chosen.size() * 5 / 4 + 1,
              static_cast<std::size_t>(alpha));
    // Isolated vertices must always be picked.
    for (int v : {86, 87, 88, 89}) {
      EXPECT_TRUE(std::binary_search(result.chosen.begin(),
                                     result.chosen.end(), v));
    }
  }
}

TEST(EdgeCases, EdgelessGraph) {
  GraphBuilder b(12);
  Graph g = b.build();
  auto coloring = core::mvc_chordal(g, {.eps = 0.5});
  EXPECT_EQ(coloring.num_colors, 1);
  auto mis = core::mis_chordal(g, {.eps = 0.25});
  EXPECT_EQ(mis.chosen.size(), 12u);
}

TEST(EdgeCases, VeryLooseEpsStillSound) {
  Graph g = testing::paper_figure1_graph();
  auto result = core::mvc_chordal(g, {.eps = 100.0});  // k clamps to 2
  EXPECT_TRUE(testing::is_proper_coloring(g, result.colors));
  EXPECT_EQ(result.k, 2);
}

TEST(EdgeCases, TwoCliquesSharingOneVertex) {
  // Classic "bowtie" chordal graph; the shared vertex sits in two maximal
  // cliques and must end up colored consistently with both.
  GraphBuilder b(9);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) b.add_edge(i, j);  // clique {0..3}
  }
  for (int i = 3; i < 9; ++i) {
    for (int j = i + 1; j < 9; ++j) b.add_edge(i, j);  // clique {3..8}
  }
  Graph g = b.build();
  auto result = core::mvc_chordal(g, {.eps = 0.5});
  EXPECT_TRUE(testing::is_proper_coloring(g, result.colors));
  EXPECT_EQ(result.omega, 6);
}

TEST(EdgeCases, LargeSmokeRunStaysWithinBounds) {
  CliqueTreeConfig config;
  config.num_bags = 10000;
  config.shape = TreeShape::kRandom;
  config.seed = 99;
  auto gen = random_chordal_from_clique_tree(config);
  ASSERT_GT(gen.graph.num_vertices(), 15000);
  auto coloring = core::mvc_chordal(gen.graph, {.eps = 0.5});
  EXPECT_TRUE(testing::is_proper_coloring(gen.graph, coloring.colors));
  EXPECT_LE(coloring.num_colors,
            coloring.omega + coloring.omega / coloring.k + 1);
  EXPECT_EQ(coloring.palette_violations, 0);
  auto mis = core::mis_chordal(gen.graph, {.eps = 0.3});
  EXPECT_TRUE(testing::is_independent_set(gen.graph, mis.chosen));
  int alpha = baselines::independence_number_chordal(gen.graph);
  EXPECT_GE(static_cast<double>(mis.chosen.size()) * 1.3,
            static_cast<double>(alpha));
}

TEST(EdgeCases, StaircaseGeneratorGeometryAndChordality) {
  for (std::uint64_t seed : {1u, 5u}) {
    auto gen = staircase_interval(300, 0.62, 0.05, seed);
    EXPECT_TRUE(is_chordal(gen.graph));
    // Geometry consistency.
    for (int u = 0; u < 300; ++u) {
      for (int v = u + 1; v < std::min(300, u + 6); ++v) {
        bool overlap =
            gen.left[u] <= gen.right[v] && gen.left[v] <= gen.right[u];
        EXPECT_EQ(gen.graph.has_edge(u, v), overlap);
      }
    }
    // Step 0.62 with small jitter: consecutive intervals overlap (one
    // connected chain), and vertices three steps apart never touch.
    for (int v = 0; v + 1 < 300; ++v) EXPECT_TRUE(gen.graph.has_edge(v, v + 1));
    for (int v = 0; v + 3 < 300; ++v) {
      EXPECT_FALSE(gen.graph.has_edge(v, v + 3));
    }
  }
}

TEST(EdgeCases, GraphIoFileRoundTrip) {
  Graph g = testing::paper_figure1_graph();
  const char* path = "graphio_roundtrip.tmp";
  {
    std::ofstream out(path);
    write_graph(out, g);
  }
  std::ifstream in(path);
  Graph g2 = read_graph(in);
  EXPECT_EQ(g2.edges(), g.edges());
  std::remove(path);
}

TEST(EdgeCases, GraphIoRejectsGarbage) {
  EXPECT_THROW(graph_from_string("not a graph"), std::runtime_error);
  EXPECT_THROW(graph_from_string("3 2\n0 1"), std::runtime_error);
  // Out-of-range endpoints are now caught by read_graph itself (with the
  // offending line in the message) instead of leaking a GraphBuilder error.
  EXPECT_THROW(graph_from_string("3 1\n0 5"), std::runtime_error);
}

}  // namespace
}  // namespace chordal
