// Definition 1 (parents/children) and Corollary 2 (parents live in strictly
// higher layers).
#include <gtest/gtest.h>

#include "core/parents.hpp"
#include "core/peeling.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

struct Fixture {
  Graph g;
  CliqueForest forest;
  core::PeelingResult peeling;
  core::ParentAssignment parents;
  int k;
};

Fixture make(const Graph& g, int k) {
  Fixture s{g, CliqueForest::build(g), {}, {}, k};
  core::PeelConfig config;
  config.mode = core::PeelMode::kColoring;
  config.k = k;
  s.peeling = core::peel(s.g, s.forest, config);
  s.parents = core::compute_parents(s.g, s.forest, s.peeling, k);
  return s;
}

TEST(Parents, Corollary2ParentsInHigherLayers) {
  for (std::uint64_t seed : {1u, 3u, 6u, 9u}) {
    CliqueTreeConfig config;
    config.num_bags = 90;
    config.shape = TreeShape::kRandom;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    Fixture s = make(gen.graph, 2);
    for (int v = 0; v < s.g.num_vertices(); ++v) {
      int p = s.parents.parent[v];
      if (p == -1) continue;
      EXPECT_GT(s.peeling.layer_of[p], s.peeling.layer_of[v])
          << "seed " << seed << " v " << v << " parent " << p;
      EXPECT_NE(p, v);
    }
    // children lists are the inverse relation.
    for (int c = 0; c < s.g.num_vertices(); ++c) {
      for (int child : s.parents.children[c]) {
        EXPECT_EQ(s.parents.parent[child], c);
      }
    }
  }
}

TEST(Parents, WholeComponentPathsHaveNoParent) {
  // A pure path graph peels in one layer as a component: nobody needs
  // correction, so every parent is the paper's bottom.
  Fixture s = make(path_graph(40), 2);
  for (int v = 0; v < 40; ++v) EXPECT_EQ(s.parents.parent[v], -1);
}

TEST(Parents, ParentsAreNearby) {
  // A parent is at distance <= k+4 from its child in G (child within k+3 of
  // the attachment clique; the parent is inside that clique).
  for (std::uint64_t seed : {2u, 5u}) {
    CliqueTreeConfig config;
    config.num_bags = 70;
    config.shape = TreeShape::kCaterpillar;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    Fixture s = make(gen.graph, 2);
    for (int v = 0; v < s.g.num_vertices(); ++v) {
      int p = s.parents.parent[v];
      if (p == -1) continue;
      EXPECT_LE(distance_between(s.g, v, p), s.k + 4)
          << "seed " << seed << " v " << v;
    }
  }
}

TEST(Parents, PaperExampleHasParentsForLayerOne) {
  // In the Figure 1 graph the peel has two layers; every layer-1 node close
  // to its attachment clique gets a parent from layer 2.
  Fixture s = make(testing::paper_figure1_graph(), 2);
  ASSERT_EQ(s.peeling.num_layers, 2);
  int with_parent = 0;
  for (int v = 0; v < s.g.num_vertices(); ++v) {
    if (s.parents.parent[v] != -1) {
      ++with_parent;
      EXPECT_EQ(s.peeling.layer_of[v], 1);
      EXPECT_EQ(s.peeling.layer_of[s.parents.parent[v]], 2);
    }
  }
  EXPECT_GT(with_parent, 0);
}

}  // namespace
}  // namespace chordal
