// Reproduces the paper's remaining worked examples: Figures 5 and 6
// illustrate Lemma 3 - peeling the internal path P = C6,...,C10 off the
// Figure 1 graph leaves exactly the clique forest T - P for the induced
// subgraph. (Figures 1-4 are covered in clique_forest_test.cpp.)
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cliqueforest/forest.hpp"
#include "cliqueforest/paths.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

std::vector<int> paper_clique(std::initializer_list<int> nodes) {
  std::vector<int> c;
  for (int v : nodes) c.push_back(v - 1);
  std::sort(c.begin(), c.end());
  return c;
}

TEST(PaperFigures, Lemma3PathRemovalFigure5And6) {
  Graph g = testing::paper_figure1_graph();
  CliqueForest forest = CliqueForest::build(g);

  // P = C6,...,C10 of Figure 2.
  std::vector<std::vector<int>> path_cliques = {
      paper_clique({8, 9, 10}),   paper_clique({9, 10, 11}),
      paper_clique({11, 12, 13}), paper_clique({12, 13, 14}),
      paper_clique({14, 15, 16})};
  std::set<std::vector<int>> in_path(path_cliques.begin(),
                                     path_cliques.end());

  // U = nodes whose subtree lies inside P: paper nodes 9..14.
  std::set<int> u_expected;
  for (int v : {9, 10, 11, 12, 13, 14}) u_expected.insert(v - 1);
  std::set<int> u_actual;
  for (int v = 0; v < g.num_vertices(); ++v) {
    bool inside = true;
    for (int c : forest.cliques_of(v)) {
      inside = inside && in_path.count(word_vec(forest.clique(c))) > 0;
    }
    if (inside) u_actual.insert(v);
  }
  EXPECT_EQ(u_actual, u_expected);

  // Remove U; the remaining graph's clique forest must be exactly the old
  // forest minus the path cliques (same maximal cliques, Figure 6).
  std::vector<int> rest;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (!u_actual.count(v)) rest.push_back(v);
  }
  std::vector<int> original;
  Graph h = g.induced_subgraph(rest, &original);
  CliqueForest smaller = CliqueForest::build(h);

  std::set<std::vector<int>> expected_cliques;
  for (int c = 0; c < forest.num_cliques(); ++c) {
    if (!in_path.count(word_vec(forest.clique(c)))) {
      expected_cliques.insert(word_vec(forest.clique(c)));
    }
  }
  std::set<std::vector<int>> actual_cliques;
  for (int c = 0; c < smaller.num_cliques(); ++c) {
    std::vector<int> global;
    for (int lv : smaller.clique(c)) global.push_back(original[lv]);
    std::sort(global.begin(), global.end());
    actual_cliques.insert(global);
  }
  EXPECT_EQ(actual_cliques, expected_cliques);

  // Edge set of the smaller forest = old forest edges among survivors
  // (uniqueness of the tie-broken MWSF makes this exact, Lemma 1).
  std::set<std::pair<std::vector<int>, std::vector<int>>> expected_edges;
  for (auto [a, b] : forest.forest_edges()) {
    if (in_path.count(word_vec(forest.clique(a))) ||
        in_path.count(word_vec(forest.clique(b)))) {
      continue;
    }
    std::vector<int> ga = word_vec(forest.clique(a));
    std::vector<int> gb = word_vec(forest.clique(b));
    expected_edges.insert(std::minmax(ga, gb));
  }
  std::set<std::pair<std::vector<int>, std::vector<int>>> actual_edges;
  for (auto [a, b] : smaller.forest_edges()) {
    std::vector<int> ga, gb;
    for (int lv : smaller.clique(a)) ga.push_back(original[lv]);
    for (int lv : smaller.clique(b)) gb.push_back(original[lv]);
    std::sort(ga.begin(), ga.end());
    std::sort(gb.begin(), gb.end());
    actual_edges.insert(std::minmax(ga, gb));
  }
  EXPECT_EQ(actual_edges, expected_edges);
}

TEST(PaperFigures, PathDecompositionFindsC6C10AsInternal) {
  // In the full forest of Figure 2, C6..C10 lie on a maximal internal path
  // (C5 and C11 both have degree 3).
  Graph g = testing::paper_figure1_graph();
  CliqueForest forest = CliqueForest::build(g);
  std::vector<char> active(static_cast<std::size_t>(forest.num_cliques()),
                           1);
  bool found = false;
  for (const auto& path : maximal_binary_paths(forest, active)) {
    if (path.pendant) continue;
    std::set<std::vector<int>> cliques;
    for (int c : path.cliques) cliques.insert(word_vec(forest.clique(c)));
    if (cliques.count(paper_clique({8, 9, 10})) &&
        cliques.count(paper_clique({14, 15, 16}))) {
      found = true;
      EXPECT_EQ(path.cliques.size(), 5u);
      EXPECT_NE(path.attach_left, -1);
      EXPECT_NE(path.attach_right, -1);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace chordal
