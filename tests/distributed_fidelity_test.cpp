// Lemma 12 as an executable statement: re-derive pruning decisions from
// nodes' distance-10k balls alone and compare with the global peeling.
#include <gtest/gtest.h>

#include "core/local_decision.hpp"
#include "core/peeling.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

core::LocalDecisionAudit audit(const Graph& g, int k, int stride) {
  CliqueForest forest = CliqueForest::build(g);
  core::PeelConfig config;
  config.mode = core::PeelMode::kColoring;
  config.k = k;
  auto peeling = core::peel(g, forest, config);
  return core::audit_local_pruning(g, forest, peeling, k, stride);
}

TEST(DistributedFidelity, PaperExampleAllNodesAllIterations) {
  auto result = audit(testing::paper_figure1_graph(), 2, 1);
  EXPECT_GT(result.decisions_checked, 0);
  EXPECT_EQ(result.mismatches, 0);
}

TEST(DistributedFidelity, PathAndCaterpillar) {
  EXPECT_EQ(audit(path_graph(120), 2, 1).mismatches, 0);
  EXPECT_EQ(audit(caterpillar(25, 2), 2, 1).mismatches, 0);
  EXPECT_EQ(audit(broom(30, 5), 3, 1).mismatches, 0);
}

struct FidelityCase {
  std::uint64_t seed;
  int k;
  TreeShape shape;
};

class FidelitySweep : public ::testing::TestWithParam<FidelityCase> {};

TEST_P(FidelitySweep, LocalDecisionsMatchGlobalPeel) {
  auto [seed, k, shape] = GetParam();
  CliqueTreeConfig config;
  config.num_bags = 70;
  config.min_bag_size = 2;
  config.max_bag_size = 5;
  config.shape = shape;
  config.seed = seed;
  auto gen = random_chordal_from_clique_tree(config);
  auto result = audit(gen.graph, k, 3);
  EXPECT_GT(result.decisions_checked, 0);
  EXPECT_EQ(result.mismatches, 0)
      << "seed " << seed << " k " << k << " checked "
      << result.decisions_checked;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FidelitySweep,
    ::testing::Values(FidelityCase{1, 2, TreeShape::kRandom},
                      FidelityCase{2, 2, TreeShape::kCaterpillar},
                      FidelityCase{3, 2, TreeShape::kBinary},
                      FidelityCase{4, 3, TreeShape::kSpider},
                      FidelityCase{5, 3, TreeShape::kRandom},
                      FidelityCase{6, 4, TreeShape::kPath},
                      FidelityCase{7, 2, TreeShape::kSpider},
                      FidelityCase{8, 3, TreeShape::kBinary}));

TEST(DistributedFidelity, HorizonRuleEngagesOnLongPaths) {
  // A very long path forces ball-bounded views: the >= 3k horizon rule must
  // fire and still produce correct decisions.
  auto result = audit(path_graph(600), 2, 7);
  EXPECT_EQ(result.mismatches, 0);
  EXPECT_GT(result.horizon_hits, 0);
}

}  // namespace
}  // namespace chordal
