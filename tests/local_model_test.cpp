#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "interval/rep.hpp"
#include "local/ball.hpp"
#include "local/cole_vishkin.hpp"
#include "local/luby.hpp"
#include "local/network.hpp"
#include "local/ruling_set.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

using local::CvResult;
using local::Network;
using local::RoundLedger;

TEST(Network, DeliversOnlyAfterRoundBoundary) {
  Graph g = path_graph(3);
  Network net(g);
  net.send(0, 1, {42});
  EXPECT_TRUE(net.inbox(1).empty());
  net.deliver();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 0);
  EXPECT_EQ(net.inbox(1)[0].data[0], 42);
  EXPECT_EQ(net.rounds(), 1);
  net.deliver();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, RejectsNonNeighborSend) {
  Graph g = path_graph(3);
  Network net(g);
  EXPECT_THROW(net.send(0, 2, {1}), std::invalid_argument);
}

TEST(Network, BroadcastReachesAllNeighbors) {
  Graph g = star_graph(4);
  Network net(g);
  net.broadcast(0, {7});
  net.deliver();
  for (int leaf = 1; leaf <= 4; ++leaf) {
    ASSERT_EQ(net.inbox(leaf).size(), 1u);
    EXPECT_EQ(net.inbox(leaf)[0].data[0], 7);
  }
}

TEST(Network, BroadcastSharesOnePayloadSlab) {
  Graph g = star_graph(4);  // center 0, leaves 1..4
  Network net(g);
  net.broadcast(0, {5, 6, 7});
  net.deliver();
  const local::Payload* slab = net.inbox(1)[0].data.slab();
  ASSERT_NE(slab, nullptr);
  for (int leaf = 2; leaf <= 4; ++leaf) {
    // All copies of the broadcast alias the same backing storage.
    EXPECT_EQ(net.inbox(leaf)[0].data.slab(), slab);
  }
  // Accounting is still per delivered copy: 4 messages of 3 words each.
  EXPECT_EQ(net.stats().total_messages, 4);
  EXPECT_EQ(net.stats().total_payload_words, 12);
  // Point-to-point sends keep private slabs.
  net.send(1, 0, {9});
  net.send(2, 0, {9});
  net.deliver();
  EXPECT_NE(net.inbox(0)[0].data.slab(), net.inbox(0)[1].data.slab());
}

TEST(Network, BroadcastOnIsolatedVertexIsSilentNoop) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);  // vertex 2 stays isolated
  Graph g = builder.build();
  Network net(g);
  net.broadcast(2, {99});
  net.deliver();
  for (int v = 0; v < 3; ++v) EXPECT_TRUE(net.inbox(v).empty());
  EXPECT_EQ(net.stats().total_messages, 0);
  EXPECT_EQ(net.rounds(), 1);
}

TEST(Network, InboxClearsAcrossDelivers) {
  Graph g = path_graph(3);
  Network net(g);
  net.send(0, 1, {1});
  net.deliver();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  net.send(2, 1, {2});
  net.deliver();
  // Round 1's message must be gone; only round 2's remains.
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 2);
  EXPECT_EQ(net.inbox(1)[0].data[0], 2);
  net.deliver();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, RoundCounterIsMonotone) {
  Graph g = path_graph(2);
  Network net(g);
  EXPECT_EQ(net.rounds(), 0);
  int previous = 0;
  for (int i = 0; i < 5; ++i) {
    if (i % 2 == 0) net.send(0, 1, {i});
    net.deliver();
    EXPECT_EQ(net.rounds(), previous + 1);  // +1 per deliver, even when idle
    previous = net.rounds();
  }
}

TEST(Network, StatsTrackCongestionMaxima) {
  Graph g = star_graph(3);  // center 0, leaves 1..3
  Network net(g);
  // Round 1: every leaf sends 2 words to the center.
  for (int leaf = 1; leaf <= 3; ++leaf) net.send(leaf, 0, {1, 2});
  net.deliver();
  // Round 2: one large message in the other direction.
  net.send(0, 1, {1, 2, 3, 4, 5});
  net.deliver();
  const local::NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.total_messages, 4);
  EXPECT_EQ(stats.total_payload_words, 11);
  EXPECT_EQ(stats.max_message_words, 5);
  EXPECT_EQ(stats.max_inbox_messages, 3);  // center, round 1
  EXPECT_EQ(stats.max_inbox_words, 6);     // center, round 1
  ASSERT_EQ(stats.node_max_inbox_messages.size(), 4u);
  EXPECT_EQ(stats.node_max_inbox_messages[0], 3);
  EXPECT_EQ(stats.node_max_inbox_words[0], 6);
  EXPECT_EQ(stats.node_max_inbox_messages[1], 1);
  EXPECT_EQ(stats.node_max_inbox_words[1], 5);
  EXPECT_EQ(stats.node_max_inbox_messages[2], 0);
}

TEST(Network, PublishesMetricsToRegistry) {
  obs::Registry reg;
  {
    obs::ScopedRegistry scope(reg);
    obs::Span phase("test phase");
    Graph g = path_graph(3);
    Network net(g);
    net.send(0, 1, {1, 2, 3});
    net.deliver();
    net.deliver();  // silent round still counts
  }
  const obs::Counter* messages = reg.find_counter("net.messages");
  ASSERT_NE(messages, nullptr);
  EXPECT_EQ(messages->value(), 1);
  const obs::Counter* rounds = reg.find_counter("net.rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value(), 2);
  const obs::Histogram* inbox_words =
      reg.find_histogram("net.node_max_inbox_words");
  ASSERT_NE(inbox_words, nullptr);
  EXPECT_EQ(inbox_words->count(), 3u);
  EXPECT_DOUBLE_EQ(inbox_words->max(), 3.0);
  // Traffic was charged to the innermost live span.
  ASSERT_EQ(reg.span_root().children.size(), 1u);
  const obs::SpanNode& span = *reg.span_root().children[0];
  EXPECT_EQ(span.rounds, 2);
  EXPECT_EQ(span.messages, 1);
  EXPECT_EQ(span.payload_words, 3);
}

// Regression (fuzz-found): publish_metrics gated on rounds_ == 0 alone, so
// a run that sent traffic but never reached deliver() (early driver exit,
// thrown exception) published nothing and its nonzero totals vanished from
// the ledger. Such runs are exactly the ones worth inspecting.
TEST(Network, PublishesTotalsWhenTrafficSentButNeverDelivered) {
  obs::Registry reg;
  {
    obs::ScopedRegistry scope(reg);
    Graph g = path_graph(3);
    Network net(g);
    net.send(0, 1, {1, 2, 3});
    // No deliver(): the message stays in flight.
  }
  const obs::Counter* messages = reg.find_counter("net.messages");
  ASSERT_NE(messages, nullptr);
  EXPECT_EQ(messages->value(), 1);
  const obs::Counter* words = reg.find_counter("net.payload_words");
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(words->value(), 3);
  const obs::Counter* rounds = reg.find_counter("net.rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value(), 0);
}

TEST(Network, QuietNetworkStillPublishesNothing) {
  obs::Registry reg;
  {
    obs::ScopedRegistry scope(reg);
    Graph g = path_graph(3);
    Network net(g);  // constructed and destroyed without any traffic
  }
  EXPECT_EQ(reg.find_counter("net.messages"), nullptr);
  EXPECT_EQ(reg.find_counter("net.rounds"), nullptr);
}

TEST(RoundLedgerTest, ClocksAndSynchronization) {
  RoundLedger ledger(4);
  ledger.charge(0, 10);
  ledger.charge(1, 3);
  ledger.wait_until(1, 7);
  EXPECT_EQ(ledger.clock(1), 7);
  std::vector<int> group = {0, 1};
  ledger.synchronize(group);
  EXPECT_EQ(ledger.clock(1), 10);
  EXPECT_EQ(ledger.max_clock(), 10);
}

TEST(CollectBall, ChargesRadiusRounds) {
  Graph g = path_graph(9);
  RoundLedger ledger(9);
  auto ball = local::collect_ball(g, 4, 2, nullptr, &ledger);
  EXPECT_EQ(ledger.clock(4), 2);
  EXPECT_EQ(ball.vertices.size(), 5u);
  EXPECT_EQ(ball.vertices[0], 4);
  EXPECT_EQ(ball.graph.num_edges(), 4u);
}

TEST(ColeVishkin, PathColoringIsProperAndFast) {
  for (int n : {1, 2, 3, 10, 100, 5000}) {
    std::vector<std::int64_t> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = (i * 2654435761LL) % 1000003 + i * 1000003LL;
    CvResult cv = local::cole_vishkin_path(ids);
    ASSERT_EQ(cv.colors.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_GE(cv.colors[i], 0);
      EXPECT_LE(cv.colors[i], 2);
      if (i > 0) {
        EXPECT_NE(cv.colors[i], cv.colors[i - 1]) << "n=" << n;
      }
    }
    // log* flavor: even 5000 ids of ~60 bits need very few rounds.
    EXPECT_LE(cv.rounds, 12) << "n=" << n;
  }
}

TEST(ColeVishkin, ForestColoringIsProper) {
  Graph g = random_tree(300, 3);
  // Root at 0; parents via BFS order.
  std::vector<int> parent(300, -1);
  std::vector<int> order;
  std::vector<char> seen(300, 0);
  order.push_back(0);
  seen[0] = 1;
  for (std::size_t head = 0; head < order.size(); ++head) {
    int v = order[head];
    for (int w : g.neighbors(v)) {
      if (!seen[w]) {
        seen[w] = 1;
        parent[w] = v;
        order.push_back(w);
      }
    }
  }
  std::vector<std::int64_t> ids(300);
  for (int i = 0; i < 300; ++i) ids[i] = i * 977 + 13;
  CvResult cv = local::cole_vishkin_pseudoforest(ids, parent);
  for (int v = 0; v < 300; ++v) {
    if (parent[v] != -1) {
      EXPECT_NE(cv.colors[v], cv.colors[parent[v]]);
    }
  }
}

TEST(ColeVishkin, RejectsMismatchedInput) {
  std::vector<std::int64_t> ids = {1, 2};
  std::vector<int> parent = {-1};
  EXPECT_THROW(local::cole_vishkin_pseudoforest(ids, parent),
               std::invalid_argument);
}

PathIntervals line_rep(int n) {
  // Unit-ish intervals [i, i+1]: a path-like proper interval graph.
  PathIntervals rep;
  rep.num_positions = n + 1;
  for (int i = 0; i < n; ++i) {
    rep.vertices.push_back(i);
    rep.lo.push_back(i);
    rep.hi.push_back(i + 1);
  }
  return rep;
}

TEST(IntervalDistances, MatchGraphBfsOnRandomModels) {
  for (std::uint64_t seed : {2u, 4u, 8u}) {
    auto gen = random_interval({.n = 50, .window = 25.0, .min_len = 1.0,
                                .max_len = 4.0, .seed = seed});
    auto rep = interval::from_geometry(gen.left, gen.right);
    Graph g = interval::to_graph(rep);
    for (std::size_t s = 0; s < 50; s += 9) {
      auto by_rep = local::interval_distances_from(rep, s);
      auto by_bfs = bfs_distances(g, static_cast<int>(s));
      for (int v = 0; v < 50; ++v) {
        EXPECT_EQ(by_rep[v], by_bfs[v]) << "seed " << seed << " src " << s;
      }
    }
  }
}

TEST(RulingSet, DistanceKMisContract) {
  for (int k : {1, 2, 3, 5, 8}) {
    PathIntervals rep = line_rep(60);
    auto result = local::distance_k_mis_interval(rep, k);
    ASSERT_FALSE(result.anchors.empty());
    // Independence in G^k and maximality.
    std::vector<std::vector<int>> dists;
    for (std::size_t a : result.anchors) {
      dists.push_back(local::interval_distances_from(rep, a));
    }
    for (std::size_t i = 0; i < result.anchors.size(); ++i) {
      for (std::size_t j = i + 1; j < result.anchors.size(); ++j) {
        EXPECT_GT(dists[i][result.anchors[j]], k) << "k=" << k;
      }
    }
    for (std::size_t v = 0; v < rep.vertices.size(); ++v) {
      int best = 1 << 30;
      for (const auto& d : dists) best = std::min(best, d[v]);
      EXPECT_LE(best, k) << "k=" << k << " vertex " << v;
    }
    EXPECT_GT(result.rounds, 0);
  }
}

TEST(RulingSet, WorksOnRandomIntervalModels) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    auto gen = random_interval({.n = 120, .window = 200.0, .min_len = 1.0,
                                .max_len = 6.0, .seed = seed});
    auto rep = interval::from_geometry(gen.left, gen.right);
    for (const auto& comp : interval::components(rep)) {
      auto sub = interval::restrict(rep, comp);
      auto result = local::distance_k_mis_interval(sub, 3);
      for (std::size_t v = 0; v < sub.vertices.size(); ++v) {
        int best = 1 << 30;
        for (std::size_t a : result.anchors) {
          auto d = local::interval_distances_from(sub, a);
          best = std::min(best, d[v]);
        }
        EXPECT_LE(best, 3);
      }
    }
  }
}

TEST(Luby, ComputesMaximalIndependentSet) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    RandomChordalConfig config;
    config.n = 200;
    config.max_clique = 5;
    config.seed = seed;
    Graph g = random_chordal(config);
    auto result = local::luby_mis(g, seed * 31 + 1);
    EXPECT_TRUE(testing::is_independent_set(g, result.independent_set));
    // Maximality: every vertex is in the set or adjacent to it.
    std::set<int> in(result.independent_set.begin(),
                     result.independent_set.end());
    for (int v = 0; v < g.num_vertices(); ++v) {
      bool covered = in.count(v) > 0;
      for (int w : g.neighbors(v)) covered = covered || in.count(w) > 0;
      EXPECT_TRUE(covered) << "vertex " << v;
    }
    EXPECT_GT(result.rounds, 0);
    // Luby terminates in O(log n) phases with high probability.
    EXPECT_LE(result.phases, 40);
  }
}

}  // namespace
}  // namespace chordal
