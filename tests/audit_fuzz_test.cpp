// Differential fuzz/audit loop plus regression tests for every bug the
// harness flushed out. The heavyweight >= 500-case corpus gate lives in
// tools/fuzz_runner (scripts/fuzz.sh); this test keeps a representative
// slice in the ordinary ctest run: the full degenerate catalogue and a few
// seeds per adversarial family, each pushed through the complete execution
// matrix (threads {1,8} x cache {on,off} x engine {fast,ref}) with every
// per-claim auditor enabled.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "audit/auditors.hpp"
#include "audit/fuzzers.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/graph.hpp"
#include "graph/graphio.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/parallel.hpp"

namespace chordal {
namespace {

// ---------------------------------------------------------------------------
// Differential matrix loop over the structured corpus
// ---------------------------------------------------------------------------

TEST(AuditFuzz, DegenerateCatalogueSurvivesFullMatrix) {
  for (int which = 0; which < audit::num_degenerate_graphs(); ++which) {
    Graph g = audit::degenerate_graph(which);
    SCOPED_TRACE("degenerate#" + std::to_string(which) + " " + g.summary());
    int configs = audit::run_driver_audit_matrix(
        g, /*eps_color=*/0.5, /*eps_mis=*/0.25, /*check_per_node_pruning=*/true);
    EXPECT_EQ(configs, 8);
  }
}

TEST(AuditFuzz, SeededFamiliesSurviveFullMatrix) {
  struct Family {
    const char* name;
    Graph (*make)(std::uint64_t);
  };
  const Family kFamilies[] = {
      {"chordal_mix", audit::random_chordal_mix},
      {"union", audit::disconnected_union},
      {"tie_storm", audit::tie_storm},
  };
  for (const Family& family : kFamilies) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Graph g = family.make(seed);
      SCOPED_TRACE(std::string(family.name) + "#" + std::to_string(seed) +
                   " " + g.summary());
      int configs = audit::run_driver_audit_matrix(
          g, /*eps_color=*/0.5, /*eps_mis=*/0.25,
          /*check_per_node_pruning=*/g.num_vertices() <= 48);
      EXPECT_EQ(configs, 8);
    }
  }
}

TEST(AuditFuzz, NearChordalAdversariesAreRejectedTyped) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = audit::near_chordal(seed);
    SCOPED_TRACE("near_chordal#" + std::to_string(seed) + " " + g.summary());
    EXPECT_NO_THROW(audit::audit_rejects_non_chordal(g));
  }
}

TEST(AuditFuzz, CorruptedStreamsParseOrRejectAndRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    audit::StreamCase sc = audit::corrupt_stream(seed);
    SCOPED_TRACE(sc.name);
    Graph parsed;
    bool parsed_ok = false;
    try {
      parsed = graph_from_string(sc.text);
      parsed_ok = true;
    } catch (const std::exception&) {
      parsed_ok = false;  // typed rejection: acceptable unless kMustParse
    }
    switch (sc.expect) {
      case audit::StreamExpect::kMustParse:
        EXPECT_TRUE(parsed_ok) << "well-formed stream rejected";
        break;
      case audit::StreamExpect::kMustReject:
        EXPECT_FALSE(parsed_ok) << "malformed stream accepted";
        break;
      case audit::StreamExpect::kNoCrash:
        break;  // reaching this line is the assertion
    }
    if (parsed_ok) {
      Graph reparsed = graph_from_string(graph_to_string(parsed));
      EXPECT_EQ(parsed.num_vertices(), reparsed.num_vertices());
      EXPECT_EQ(parsed.edges(), reparsed.edges());
    }
  }
}

TEST(AuditFuzz, CorpusIsDeterministicInItsSeed) {
  audit::CorpusConfig config;
  config.per_graph_family = 2;
  config.num_streams = 10;
  config.num_schedules = 6;
  audit::Corpus a = audit::build_corpus(config);
  audit::Corpus b = audit::build_corpus(config);
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  ASSERT_EQ(a.streams.size(), b.streams.size());
  ASSERT_EQ(a.schedules.size(), b.schedules.size());
  for (std::size_t i = 0; i < a.graphs.size(); ++i) {
    EXPECT_EQ(a.graphs[i].name, b.graphs[i].name);
    EXPECT_EQ(a.graphs[i].graph.edges(), b.graphs[i].graph.edges());
  }
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].name, b.streams[i].name);
    EXPECT_EQ(a.streams[i].text, b.streams[i].text);
  }
  for (std::size_t i = 0; i < a.schedules.size(); ++i) {
    EXPECT_EQ(a.schedules[i].name, b.schedules[i].name);
    EXPECT_EQ(a.schedules[i].steps, b.schedules[i].steps);
    EXPECT_EQ(a.schedules[i].base.edges(), b.schedules[i].base.edges());
  }
}

TEST(AuditFuzz, UpdateSchedulesSurviveFullMatrix) {
  auto schedules = audit::build_update_schedules(0xFEED, 10);
  ASSERT_EQ(schedules.size(), 10u);
  for (const audit::ScheduleCase& sc : schedules) {
    SCOPED_TRACE(sc.name + " " + sc.base.summary());
    EXPECT_EQ(audit::run_update_schedule_matrix(sc.base, sc.seed, sc.steps),
              8);
  }
}

TEST(AuditFuzz, UpdateScheduleExercisesRejections) {
  // Over a batch of schedules the harness must see all three outcome
  // classes - applied mutations, certified rejections, and the injected
  // violations folded into `rejected` - or the fuzzer is toothless.
  audit::UpdateScheduleStats totals;
  audit::DriverAuditConfig config;
  for (const audit::ScheduleCase& sc :
       audit::build_update_schedules(0xD1CE, 12)) {
    audit::UpdateScheduleStats s = audit::run_update_schedule_audit(
        sc.base, sc.seed, sc.steps, config, nullptr);
    totals.steps += s.steps;
    totals.applied += s.applied;
    totals.rejected += s.rejected;
    totals.skipped += s.skipped;
  }
  EXPECT_GT(totals.applied, 0);
  EXPECT_GT(totals.rejected, 0);
  EXPECT_EQ(totals.steps, totals.applied + totals.rejected + totals.skipped);
}

// ---------------------------------------------------------------------------
// The auditors must actually detect violations (meta-tests)
// ---------------------------------------------------------------------------

TEST(Auditors, CatchImproperColoring) {
  Graph g = audit::random_chordal_mix(11);
  ASSERT_FALSE(g.edges().empty());
  core::MvcResult r = core::mvc_chordal(g);
  ASSERT_NO_THROW(audit::audit_coloring(g, r));
  // Corrupt one endpoint of one edge to its neighbor's color.
  auto [u, v] = g.edges().front();
  r.colors[static_cast<std::size_t>(u)] = r.colors[static_cast<std::size_t>(v)];
  EXPECT_THROW(audit::audit_coloring(g, r), audit::AuditFailure);
}

TEST(Auditors, CatchDependentOrUndersizedMis) {
  Graph g = audit::random_chordal_mix(11);
  ASSERT_FALSE(g.edges().empty());
  core::MisResult r = core::mis_chordal(g);
  ASSERT_NO_THROW(audit::audit_mis(g, r, 0.25));
  core::MisResult corrupted = r;
  auto [u, v] = g.edges().front();
  corrupted.chosen = {std::min(u, v), std::max(u, v)};  // adjacent pair
  EXPECT_THROW(audit::audit_mis(g, corrupted, 0.25), audit::AuditFailure);
  core::MisResult empty = r;
  empty.chosen.clear();  // far below (1+eps)-optimal on any non-empty graph
  EXPECT_THROW(audit::audit_mis(g, empty, 0.25), audit::AuditFailure);
}

TEST(Auditors, CatchBrokenConservation) {
  obs::Registry reg;
  reg.counter("net.rounds").add(2);
  reg.counter("net.messages").add(7);
  reg.counter("net.payload_words").add(9);
  reg.histogram("net.round_messages").add(3);
  reg.histogram("net.round_messages").add(4);
  reg.histogram("net.round_payload_words").add(5);
  reg.histogram("net.round_payload_words").add(4);
  ASSERT_NO_THROW(audit::audit_network_conservation(reg));
  reg.counter("net.messages").add(1);  // lost delivery / double publish
  EXPECT_THROW(audit::audit_network_conservation(reg),
               audit::AuditFailure);
}

TEST(Auditors, MaximalIndependentSetPredicate) {
  Graph g = audit::degenerate_graph(0);  // empty graph: empty set is maximal
  EXPECT_TRUE(audit::is_maximal_independent_set(g, {}));
  Graph path = graph_from_string("3 2\n0 1\n1 2\n");
  std::vector<int> maximal = {0, 2};
  std::vector<int> not_maximal = {1};
  std::vector<int> dependent = {0, 1};
  EXPECT_TRUE(audit::is_maximal_independent_set(path, maximal));
  EXPECT_TRUE(audit::is_maximal_independent_set(path, not_maximal));
  EXPECT_FALSE(audit::is_maximal_independent_set(path, {}));
  EXPECT_FALSE(audit::is_maximal_independent_set(path, dependent));
}

// ---------------------------------------------------------------------------
// Regressions for fuzz-found bugs (each failed before its fix)
// ---------------------------------------------------------------------------

// Fuzz-found (degenerate#0): mvc_chordal returned k = 0 on the empty graph,
// violating the documented "k = ceil(2/eps), floored at 2" contract; the
// scale parameters are pure functions of eps, not of the graph.
TEST(AuditRegression, EmptyGraphDriversHonorScaleParameterContracts) {
  Graph empty;
  core::MvcResult mvc = core::mvc_chordal(empty);
  EXPECT_EQ(mvc.k, 4);  // default eps = 0.5 -> ceil(2/0.5) = 4
  core::MvcOptions tight;
  tight.eps = 0.1;
  EXPECT_EQ(core::mvc_chordal(empty, tight).k, 20);
  core::MvcOptions loose;
  loose.eps = 4.0;
  EXPECT_EQ(core::mvc_chordal(empty, loose).k, 2);  // the floor

  core::MisResult mis = core::mis_chordal(empty);
  core::MisResult mis_k1 = core::mis_chordal(audit::degenerate_graph(1));
  EXPECT_GT(mis.d, 0);
  EXPECT_GT(mis.iterations, 0);
  // Same options, graph-independent parameters: must match a non-empty run.
  EXPECT_EQ(mis.d, mis_k1.d);
  EXPECT_EQ(mis.iterations, mis_k1.iterations);
}

// Fuzz-found (tie_storm#7120702119832725337): spans opened inside
// parallel_for bodies (the ruling-set / Cole-Vishkin solves of a layer) were
// recorded only by the thread carrying the installed registry, so the span
// tree depended on CHORDAL_THREADS. Span construction is now suppressed
// inside parallel regions at every thread count.
TEST(AuditRegression, SpanTreeIsThreadCountInvariant) {
  Graph g = audit::tie_storm(7120702119832725337ULL);
  audit::DriverAuditConfig one;
  one.threads = 1;
  audit::DriverAuditConfig eight = one;
  eight.threads = 8;
  audit::DriverAuditResult r1 = audit::run_driver_audit(g, one);
  audit::DriverAuditResult r8 = audit::run_driver_audit(g, eight);
  EXPECT_EQ(r1.colors, r8.colors);
  EXPECT_EQ(r1.mis, r8.mis);
  EXPECT_EQ(r1.telemetry, r8.telemetry);
}

TEST(AuditRegression, SpansInsideParallelRegionsAreSuppressed) {
  for (int threads : {1, 8}) {
    obs::Registry reg;
    {
      obs::ScopedRegistry scope(reg);
      support::set_num_threads(threads);
      obs::Span outer("outer");
      support::parallel_for(4, [](std::size_t, std::size_t) {
        obs::Span inner("inner");  // must not be recorded on any worker
        inner.add_rounds(1);
      });
    }
    support::set_num_threads(0);
    const obs::SpanNode& root = reg.span_root();
    ASSERT_EQ(root.children.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(root.children[0]->name, "outer");
    EXPECT_TRUE(root.children[0]->children.empty()) << "threads=" << threads;
  }
}

TEST(AuditRegression, InParallelRegionFlagCoversInlinePath) {
  EXPECT_FALSE(support::in_parallel_region());
  support::set_num_threads(1);  // force the inline single-worker path
  bool seen = false;
  support::parallel_for(1, [&seen](std::size_t, std::size_t) {
    seen = support::in_parallel_region();
  });
  support::set_num_threads(0);
  EXPECT_TRUE(seen);
  EXPECT_FALSE(support::in_parallel_region());
}

}  // namespace
}  // namespace chordal
