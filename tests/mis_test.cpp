#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/mis.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

void expect_valid_mis(const Graph& g, const core::MisResult& result,
                      double eps, const char* tag) {
  EXPECT_TRUE(testing::is_independent_set(g, result.chosen)) << tag;
  int opt = baselines::independence_number_chordal(g);
  EXPECT_GE(static_cast<double>(result.chosen.size()) * (1.0 + eps),
            static_cast<double>(opt))
      << tag << " got " << result.chosen.size() << " of " << opt;
}

TEST(MisChordal, PaperExampleGraph) {
  Graph g = testing::paper_figure1_graph();
  auto result = core::mis_chordal(g, {.eps = 0.25});
  expect_valid_mis(g, result, 0.25, "paper");
}

TEST(MisChordal, SimpleFamilies) {
  for (double eps : {0.4, 0.2}) {
    expect_valid_mis(path_graph(101), core::mis_chordal(path_graph(101),
                                                        {.eps = eps}),
                     eps, "path");
    expect_valid_mis(star_graph(9),
                     core::mis_chordal(star_graph(9), {.eps = eps}), eps,
                     "star");
    expect_valid_mis(complete_graph(7),
                     core::mis_chordal(complete_graph(7), {.eps = eps}), eps,
                     "complete");
    Graph cat = caterpillar(40, 3);
    expect_valid_mis(cat, core::mis_chordal(cat, {.eps = eps}), eps, "cat");
  }
}

TEST(MisChordal, RejectsBadEps) {
  EXPECT_THROW(core::mis_chordal(path_graph(4), {.eps = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(core::mis_chordal(path_graph(4), {.eps = 0.5}),
               std::invalid_argument);
}

TEST(MisChordal, EmptyGraph) {
  EXPECT_TRUE(core::mis_chordal(Graph{}).chosen.empty());
}

struct MisCase {
  std::uint64_t seed;
  double eps;
};

class MisRandom : public ::testing::TestWithParam<MisCase> {};

TEST_P(MisRandom, IncrementalChordalGraphs) {
  auto [seed, eps] = GetParam();
  RandomChordalConfig config;
  config.n = 350;
  config.max_clique = 6;
  config.chain_bias = 0.6;
  config.seed = seed;
  Graph g = random_chordal(config);
  expect_valid_mis(g, core::mis_chordal(g, {.eps = eps}), eps, "incremental");
}

TEST_P(MisRandom, CliqueTreeShapes) {
  auto [seed, eps] = GetParam();
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    CliqueTreeConfig config;
    config.num_bags = 140;
    config.shape = shape;
    config.seed = seed;
    auto gen = random_chordal_from_clique_tree(config);
    expect_valid_mis(gen.graph, core::mis_chordal(gen.graph, {.eps = eps}),
                     eps, "shape");
  }
}

TEST_P(MisRandom, TightDOverrideStillSound) {
  // The paper's d = 64/eps is a worst-case constant; the approximation test
  // must also hold with the ablated, much smaller d (quality can only
  // change, soundness - independence - cannot). We only check independence
  // plus a weak ratio here.
  auto [seed, eps] = GetParam();
  RandomChordalConfig config;
  config.n = 300;
  config.max_clique = 5;
  config.seed = seed;
  Graph g = random_chordal(config);
  auto result = core::mis_chordal(g, {.eps = eps, .d_override = 8});
  EXPECT_TRUE(testing::is_independent_set(g, result.chosen));
  int opt = baselines::independence_number_chordal(g);
  EXPECT_GE(static_cast<double>(result.chosen.size()) * 2.0,
            static_cast<double>(opt));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisRandom,
    ::testing::Values(MisCase{1, 0.45}, MisCase{2, 0.3}, MisCase{3, 0.2},
                      MisCase{4, 0.1}, MisCase{5, 0.45}, MisCase{6, 0.25},
                      MisCase{7, 0.15}, MisCase{8, 0.35}));

TEST(MisChordal, BaselineExactMisIsExactOnSmallGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    RandomChordalConfig config;
    config.n = 24;
    config.max_clique = 5;
    config.seed = seed;
    Graph g = random_chordal(config);
    EXPECT_EQ(baselines::independence_number_chordal(g),
              testing::brute_force_alpha(g))
        << "seed " << seed;
  }
}

TEST(MisChordal, BaselineOptimalColoringIsOptimalOnSmallGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    RandomChordalConfig config;
    config.n = 20;
    config.max_clique = 5;
    config.seed = seed;
    Graph g = random_chordal(config);
    auto colors = baselines::optimal_coloring_chordal(g);
    EXPECT_TRUE(testing::is_proper_coloring(g, colors));
    EXPECT_EQ(baselines::chromatic_number_chordal(g),
              testing::brute_force_chromatic(g))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace chordal
