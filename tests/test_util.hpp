// Shared helpers for the test suite: the paper's worked example (Figures
// 1-4) and small brute-force oracles used by property tests.
#pragma once

#include <algorithm>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::testing {

/// The 23-node chordal graph of Figure 1, 0-indexed (paper node i is vertex
/// i-1). Built as the union of its maximal cliques as listed in Figure 2.
inline const std::vector<std::vector<int>>& paper_cliques_1indexed() {
  static const std::vector<std::vector<int>> cliques = {
      {1, 2, 3},    {2, 3, 4},    {4, 5, 6},    {5, 6, 7},   {2, 4, 8},
      {8, 9, 10},   {9, 10, 11},  {11, 12, 13}, {12, 13, 14}, {14, 15, 16},
      {15, 16, 19}, {16, 17, 18}, {19, 20, 21}, {21, 22},     {21, 23}};
  return cliques;
}

inline Graph paper_figure1_graph() {
  GraphBuilder b(23);
  for (const auto& clique : paper_cliques_1indexed()) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        b.add_edge(clique[i] - 1, clique[j] - 1);
      }
    }
  }
  return b.build();
}

/// Exhaustive maximum independent set size; n <= 30 or so.
inline int brute_force_alpha(const Graph& g) {
  const int n = g.num_vertices();
  // Branch and bound on vertices in order; simple but fine for tests.
  std::vector<int> best{0};
  std::vector<char> banned(static_cast<std::size_t>(n), 0);
  auto rec = [&](auto&& self, int v, int size) -> void {
    if (v == n) {
      best[0] = std::max(best[0], size);
      return;
    }
    if (size + (n - v) <= best[0]) return;  // prune
    if (!banned[v]) {
      std::vector<int> newly;
      for (int w : g.neighbors(v)) {
        if (w > v && !banned[w]) {
          banned[w] = 1;
          newly.push_back(w);
        }
      }
      self(self, v + 1, size + 1);
      for (int w : newly) banned[w] = 0;
    }
    self(self, v + 1, size);
  };
  rec(rec, 0, 0);
  return best[0];
}

/// Exhaustive chromatic number; n small.
inline int brute_force_chromatic(const Graph& g) {
  const int n = g.num_vertices();
  if (n == 0) return 0;
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  auto feasible = [&](auto&& self, int v, int limit) -> bool {
    if (v == n) return true;
    for (int c = 0; c < limit; ++c) {
      bool ok = true;
      for (int w : g.neighbors(v)) {
        ok = ok && color[w] != c;
      }
      if (ok) {
        color[v] = c;
        if (self(self, v + 1, limit)) return true;
        color[v] = -1;
      }
    }
    return false;
  };
  for (int limit = 1; limit <= n; ++limit) {
    std::fill(color.begin(), color.end(), -1);
    if (feasible(feasible, 0, limit)) return limit;
  }
  return n;
}

/// True iff `coloring` is a proper coloring of g (every vertex colored >= 0).
inline bool is_proper_coloring(const Graph& g, const std::vector<int>& coloring) {
  if (static_cast<int>(coloring.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (coloring[v] < 0) return false;
    for (int w : g.neighbors(v)) {
      if (coloring[v] == coloring[w]) return false;
    }
  }
  return true;
}

/// True iff `set` (vertex list) is independent in g.
inline bool is_independent_set(const Graph& g, const std::vector<int>& set) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (g.has_edge(set[i], set[j])) return false;
    }
  }
  return true;
}

}  // namespace chordal::testing
