// Seeded fuzz-style integration sweep: many random workloads pushed through
// both headline pipelines with every invariant asserted. Each seed covers a
// different (shape, size, eps) combination; failures print the seed for
// exact replay.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/checks.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/generators.hpp"
#include "graph/peo.hpp"
#include "support/rng.hpp"

namespace chordal {
namespace {

Graph random_workload(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b9ULL + 1);
  switch (rng.next_below(3)) {
    case 0: {
      RandomChordalConfig config;
      config.n = 50 + static_cast<int>(rng.next_below(250));
      config.max_clique = 3 + static_cast<int>(rng.next_below(6));
      config.chain_bias = rng.uniform01();
      config.seed = seed;
      return random_chordal(config);
    }
    case 1: {
      CliqueTreeConfig config;
      config.num_bags = 20 + static_cast<int>(rng.next_below(100));
      config.min_bag_size = 2;
      config.max_bag_size = 3 + static_cast<int>(rng.next_below(4));
      config.max_shared = 1 + static_cast<int>(rng.next_below(3));
      config.shape = static_cast<TreeShape>(rng.next_below(5));
      config.seed = seed;
      return random_chordal_from_clique_tree(config).graph;
    }
    default:
      return random_k_tree(30 + static_cast<int>(rng.next_below(120)),
                           1 + static_cast<int>(rng.next_below(4)), seed);
  }
}

class IntegrationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationFuzz, FullPipelineInvariants) {
  std::uint64_t seed = GetParam();
  Graph g = random_workload(seed);
  ASSERT_TRUE(is_chordal(g)) << "seed " << seed;

  Rng rng(seed);
  double eps_color = 0.2 + rng.uniform01() * 1.2;
  double eps_mis = 0.1 + rng.uniform01() * 0.35;

  auto coloring = core::mvc_chordal(g, {.eps = eps_color});
  core::require_proper_coloring(g, coloring.colors);
  int chi = baselines::chromatic_number_chordal(g);
  EXPECT_EQ(coloring.omega, chi) << "seed " << seed;
  EXPECT_LE(coloring.num_colors, chi + chi / coloring.k + 1)
      << "seed " << seed << " eps " << eps_color;
  EXPECT_EQ(coloring.palette_violations, 0) << "seed " << seed;
  EXPECT_EQ(core::count_colors(coloring.colors), coloring.num_colors);
  EXPECT_GE(coloring.num_colors, chi) << "seed " << seed;

  auto mis = core::mis_chordal(g, {.eps = eps_mis});
  core::require_independent_set(g, mis.chosen);
  int alpha = baselines::independence_number_chordal(g);
  EXPECT_GE(static_cast<double>(mis.chosen.size()) * (1.0 + eps_mis),
            static_cast<double>(alpha))
      << "seed " << seed << " eps " << eps_mis;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace chordal
