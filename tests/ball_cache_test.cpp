// Cross-iteration cache parity: BallCache (balls, local views, ledgers,
// telemetry replay) and PathMetricCache must be bit-identical to the
// uncached recompute paths under arbitrary monotone deactivation schedules
// and radius growth. The fuzz tests drive random chordal graphs through
// random deactivation batches and compare every lookup against a fresh
// collection; the driver tests toggle the process-wide cache switch and
// assert outputs plus scrubbed telemetry agree.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "cliqueforest/path_cache.hpp"
#include "core/local_decision.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "core/peeling.hpp"
#include "graph/generators.hpp"
#include "local/ball.hpp"
#include "local/ball_cache.hpp"
#include "local/workspace.hpp"
#include "obs/metrics.hpp"
#include "support/cachectl.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

using local::Ball;
using local::BallCache;
using local::RoundLedger;

class CacheRestorer {
 public:
  ~CacheRestorer() { support::set_cache_enabled(-1); }
};

std::vector<std::vector<int>> adjacency(const Graph& g) {
  std::vector<std::vector<int>> adj;
  adj.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& nbrs = g.neighbors(v);
    adj.emplace_back(nbrs.begin(), nbrs.end());
  }
  return adj;
}

void expect_same_ball(const Ball& ref, const Ball& got) {
  EXPECT_EQ(ref.vertices, got.vertices);
  EXPECT_EQ(ref.dist, got.dist);
  ASSERT_EQ(ref.graph.num_vertices(), got.graph.num_vertices());
  EXPECT_EQ(ref.graph.num_edges(), got.graph.num_edges());
  EXPECT_EQ(adjacency(ref.graph), adjacency(got.graph));
}

void expect_same_view(const LocalView& ref, const LocalView& got) {
  EXPECT_EQ(ref.cliques, got.cliques);
  EXPECT_EQ(ref.trusted_vertices, got.trusted_vertices);
  EXPECT_EQ(ref.forest_edges, got.forest_edges);
}

Graph fuzz_graph(std::uint64_t seed) {
  RandomChordalConfig config;
  config.n = 140;
  config.max_clique = 5;
  config.chain_bias = 0.8;
  config.seed = seed;
  return random_chordal(config);
}

/// A random deactivation batch over the still-active vertices (possibly
/// empty); deterministic given the rng state.
std::vector<int> random_batch(const std::vector<char>& active,
                              std::mt19937& rng) {
  std::vector<int> batch;
  for (int v = 0; v < static_cast<int>(active.size()); ++v) {
    if (active[v] && rng() % 100 < 12) batch.push_back(v);
  }
  return batch;
}

/// Registry JSON with wall-clock timings and the cache.* counters removed:
/// a cached run publishes cache statistics the uncached run does not, and
/// everything else must match byte for byte.
std::string scrub_volatile(const std::string& json) {
  std::string out;
  std::size_t i = 0;
  while (i < json.size()) {
    bool drop = json.compare(i, 7, "\"cache.") == 0 ||
                json.compare(i, 10, "\"wall_ms\":") == 0;
    if (!drop) {
      out.push_back(json[i]);
      ++i;
      continue;
    }
    ++i;  // opening quote of the key
    while (i < json.size() && json[i] != '"') ++i;
    i += 2;  // closing quote and ':'
    if (i < json.size() && (json[i] == '{' || json[i] == '[')) {
      int depth = 0;
      do {
        if (json[i] == '{' || json[i] == '[') ++depth;
        if (json[i] == '}' || json[i] == ']') --depth;
        ++i;
      } while (i < json.size() && depth > 0);
    } else {
      while (i < json.size() && json[i] != ',' && json[i] != '}') ++i;
    }
    if (i < json.size() && json[i] == ',') {
      ++i;  // the dropped member's separator
    } else if (!out.empty() && out.back() == ',') {
      out.pop_back();  // dropped the last member of its object
    }
  }
  return out;
}

TEST(BallCacheFuzz, CollectBallMatchesFreshUnderDeactivationSchedules) {
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    Graph g = fuzz_graph(seed);
    BallCache cache(g, true);
    BallCache::Shard& shard = cache.shard(0);
    std::mt19937 rng(static_cast<unsigned>(seed * 1009 + 1));
    for (int epoch = 0; epoch < 6; ++epoch) {
      for (int v = 0; v < g.num_vertices(); ++v) {
        if (!cache.active()[v]) continue;
        // Varying radius exercises hits (same, every other epoch),
        // extensions (larger), and rebuilds (smaller) on one entry history.
        int radius = 2 + (v + epoch / 2) % 3;
        Ball fresh = local::collect_ball(g, v, radius, &cache.active(),
                                         nullptr);
        const Ball& cached = shard.collect_ball(v, radius);
        expect_same_ball(fresh, cached);
      }
      cache.deactivate(random_batch(cache.active(), rng));
    }
    BallCache::Stats stats = cache.stats();
    EXPECT_GT(stats.hits, 0) << "seed " << seed;
    EXPECT_GT(stats.extensions, 0) << "seed " << seed;
    EXPECT_GT(stats.invalidations, 0) << "seed " << seed;
    EXPECT_GT(stats.resident_words, 0) << "seed " << seed;
  }
}

TEST(BallCacheFuzz, RadiusGrowthExtendsBitIdentically) {
  Graph g = fuzz_graph(41);
  BallCache cache(g, true);
  BallCache::Shard& shard = cache.shard(0);
  std::mt19937 rng(4242);
  // Ascending radii per center force the frontier-resume path; interleaved
  // deactivations force extensions of both pristine and rebuilt entries.
  for (int radius = 1; radius <= 6; ++radius) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (!cache.active()[v]) continue;
      Ball fresh = local::collect_ball(g, v, radius, &cache.active(), nullptr);
      expect_same_ball(fresh, shard.collect_ball(v, radius));
    }
    if (radius % 2 == 0) cache.deactivate(random_batch(cache.active(), rng));
  }
  EXPECT_GT(cache.stats().extensions, 0);
}

TEST(BallCacheFuzz, LocalViewMatchesFreshAndRevisionTracksContent) {
  for (std::uint64_t seed : {5u, 23u}) {
    Graph g = fuzz_graph(seed);
    BallCache cache(g, true);
    BallCache::Shard& shard = cache.shard(0);
    std::mt19937 rng(static_cast<unsigned>(seed * 7 + 3));
    std::vector<std::uint64_t> last_revision(
        static_cast<std::size_t>(g.num_vertices()), 0);
    std::vector<char> had_entry(static_cast<std::size_t>(g.num_vertices()), 0);
    for (int epoch = 0; epoch < 4; ++epoch) {
      for (int v = 0; v < g.num_vertices(); ++v) {
        if (!cache.active()[v]) continue;
        LocalView fresh = compute_local_view(g, v, 4, &cache.active());
        BallCache::ViewRef ref = shard.local_view(v, 4);
        expect_same_view(fresh, *ref.view);
        if (ref.hit) {
          // A hit may only be served while the content version is the one
          // the previous lookup reported.
          EXPECT_TRUE(had_entry[v]);
          EXPECT_EQ(ref.revision, last_revision[v]) << "v=" << v;
        }
        // Same lookup again: must hit with an unchanged revision.
        BallCache::ViewRef again = shard.local_view(v, 4);
        EXPECT_TRUE(again.hit);
        EXPECT_EQ(again.revision, ref.revision);
        expect_same_view(fresh, *again.view);
        last_revision[v] = ref.revision;
        had_entry[v] = 1;
      }
      cache.deactivate(random_batch(cache.active(), rng));
    }
  }
}

TEST(BallCacheFuzz, BallDistMatchesWorkspaceStamps) {
  Graph g = fuzz_graph(11);
  BallCache cache(g, true);
  BallCache::Shard& shard = cache.shard(0);
  local::BallWorkspace reference_ws;
  LocalView scratch_view;
  std::mt19937 rng(77);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int v = 0; v < g.num_vertices(); v += 3) {
      if (!cache.active()[v]) continue;
      local::compute_local_view(g, v, 4, &cache.active(), reference_ws,
                                scratch_view);
      BallCache::ViewRef ref = shard.local_view(v, 4);
      if (ref.hit) shard.ensure_dists(v);
      for (int u = 0; u < g.num_vertices(); ++u) {
        EXPECT_EQ(shard.ball_dist(u), reference_ws.last_ball_dist(u))
            << "center " << v << " vertex " << u;
      }
    }
    cache.deactivate(random_batch(cache.active(), rng));
  }
}

TEST(BallCache, LedgerParityCachedVsUncached) {
  Graph g = fuzz_graph(19);
  BallCache cached(g, true);
  BallCache uncached(g, false);
  RoundLedger cached_ledger(g.num_vertices());
  RoundLedger uncached_ledger(g.num_vertices());
  std::mt19937 rng_a(55), rng_b(55);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (!cached.active()[v]) continue;
      int radius = 2 + v % 2;
      cached.shard(0).collect_ball(v, radius, &cached_ledger);
      uncached.shard(0).collect_ball(v, radius, &uncached_ledger);
    }
    cached.deactivate(random_batch(cached.active(), rng_a));
    uncached.deactivate(random_batch(uncached.active(), rng_b));
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(cached_ledger.clock(v), uncached_ledger.clock(v)) << "v=" << v;
  }
  EXPECT_EQ(cached_ledger.max_clock(), uncached_ledger.max_clock());
  EXPECT_GT(cached.stats().hits, 0);
  EXPECT_EQ(uncached.stats().hits, 0);
}

TEST(BallCache, TelemetryReplayMatchesUncached) {
  Graph g = fuzz_graph(31);
  std::vector<std::string> telemetry;
  for (bool enabled : {true, false}) {
    obs::Registry reg;
    {
      obs::ScopedRegistry scope(reg);
      BallCache cache(g, enabled);
      std::mt19937 rng(99);
      for (int epoch = 0; epoch < 3; ++epoch) {
        for (int v = 0; v < g.num_vertices(); ++v) {
          if (!cache.active()[v]) continue;
          cache.shard(0).collect_ball(v, 3);
        }
        cache.deactivate(random_batch(cache.active(), rng));
      }
    }
    telemetry.push_back(scrub_volatile(reg.to_json()));
  }
  // Hits replay the exact counter bump and histogram sample of a fresh
  // collection, so everything except the cache.* stats is byte-identical.
  EXPECT_EQ(telemetry[0], telemetry[1]);
}

/// Runs two identical passes of every metric over `g`'s maximal binary
/// paths, asserting cached == plain throughout, and returns the cache stats.
PathMetricCache::Stats path_cache_parity_passes(const Graph& g,
                                                std::size_t* cacheable_count) {
  CliqueForest forest = CliqueForest::build(g);
  std::vector<char> active(static_cast<std::size_t>(forest.num_cliques()), 1);
  auto paths = maximal_binary_paths(forest, active);
  EXPECT_FALSE(paths.empty());
  *cacheable_count = 0;
  for (const ForestPath& path : paths) {
    if (PathMetricCache::cacheable(path)) ++*cacheable_count;
  }
  PathMetricCache cache(true);
  std::vector<PathMetricCache::WorkerLog> logs(1);
  PathScratch scratch;
  PathIntervals storage;
  for (int pass = 0; pass < 2; ++pass) {
    for (const ForestPath& path : paths) {
      EXPECT_EQ(cached_path_diameter(g, forest, path, scratch, cache, logs[0]),
                path_diameter(g, forest, path, scratch));
      EXPECT_EQ(cached_path_independence(forest, path, scratch, cache,
                                         logs[0]),
                path_independence(forest, path, scratch));
      const PathIntervals* rep = cached_path_intervals(forest, path, scratch,
                                                       storage, cache, logs[0]);
      PathIntervals fresh;
      path_intervals(forest, path, scratch, fresh);
      EXPECT_EQ(rep->vertices, fresh.vertices);
      EXPECT_EQ(rep->lo, fresh.lo);
      EXPECT_EQ(rep->hi, fresh.hi);
      EXPECT_EQ(rep->num_positions, fresh.num_positions);
    }
    cache.merge(logs);
  }
  return cache.stats();
}

TEST(PathMetricCache, MetricsMatchUncachedAndOnlyLongPathsAreCached) {
  // Mixed workload: only paths of >= kMinCliques cliques enter the map.
  std::size_t cacheable = 0;
  PathMetricCache::Stats stats =
      path_cache_parity_passes(fuzz_graph(13), &cacheable);
  EXPECT_EQ(stats.entries, static_cast<std::int64_t>(cacheable));
  if (cacheable > 0) {
    EXPECT_GT(stats.hits, 0);
  }
}

TEST(PathMetricCache, LongPathHitsOnRepeat) {
  // A path-shaped clique tree is one long maximal binary path, guaranteed
  // past the kMinCliques gate: the second pass must hit on every metric.
  CliqueTreeConfig config;
  config.num_bags = 60;
  config.shape = TreeShape::kPath;
  config.seed = 7;
  std::size_t cacheable = 0;
  PathMetricCache::Stats stats = path_cache_parity_passes(
      random_chordal_from_clique_tree(config).graph, &cacheable);
  EXPECT_GT(cacheable, 0u);
  EXPECT_EQ(stats.entries, static_cast<std::int64_t>(cacheable));
  // Pass 1: three misses per path (diameter, independence, intervals - the
  // map only absorbs the worker log at the end of the pass). Pass 2: three
  // hits per path.
  EXPECT_EQ(stats.misses, 3 * static_cast<std::int64_t>(cacheable));
  EXPECT_EQ(stats.hits, stats.misses);
}

Graph path_graph(int n) {
  GraphBuilder b(n);
  for (int v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

// Regression for the remove/re-insert aliasing hole in the monotone-epoch
// design: a ball rebuilt while v was deactivated does not contain v, so it
// is not indexed under v, and flipping the activity mask back on without
// further invalidation would serve that stale ball forever - missing v and
// everything behind it. reactivate() must kill the entries holding a
// neighbor of v (the only balls a revived v can enter).
TEST(BallCacheDynamic, ReactivationInvalidatesBallsThatCanAbsorb) {
  Graph g = path_graph(5);  // 0-1-2-3-4
  BallCache cache(g, true);
  BallCache::Shard& shard = cache.shard(0);
  const Ball full = shard.collect_ball(0, 4);
  ASSERT_EQ(full.vertices.size(), 5u);

  int dead[] = {2};
  cache.deactivate(dead);
  const Ball cut = shard.collect_ball(0, 4);  // rebuild: {0, 1}
  ASSERT_EQ(cut.vertices.size(), 2u);

  cache.reactivate(dead);
  // The {0, 1} entry contains 1, a neighbor of 2, so it must have died;
  // a stale hit here would return {0, 1} again.
  Ball fresh = local::collect_ball(g, 0, 4, &cache.active(), nullptr);
  EXPECT_EQ(fresh.vertices.size(), 5u);
  expect_same_ball(fresh, shard.collect_ball(0, 4));
}

TEST(BallCacheDynamic, ReactivationLeavesDisjointBallsCached) {
  Graph g = path_graph(8);
  BallCache cache(g, true);
  BallCache::Shard& shard = cache.shard(0);
  shard.collect_ball(7, 1);  // ball {6, 7}: no neighbor of 2
  std::int64_t hits_before = cache.stats().hits;
  int dead[] = {2};
  cache.deactivate(dead);
  cache.reactivate(dead);
  // 2's reactivation cannot change a ball that holds no neighbor of 2.
  shard.collect_ball(7, 1);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

TEST(BallCacheDynamic, ActivityGenerationDistinguishesIncarnations) {
  Graph g = path_graph(4);
  BallCache cache(g, true);
  EXPECT_EQ(cache.activity_generation(1), 0u);
  int batch[] = {1};
  cache.deactivate(batch);
  EXPECT_GT(cache.deactivation_epoch(1), 0u);
  cache.reactivate(batch);
  EXPECT_EQ(cache.activity_generation(1), 1u);
  EXPECT_EQ(cache.deactivation_epoch(1), 0u) << "epoch must reset on revive";
  EXPECT_EQ(cache.active()[1], 1);
  // Reactivating an active vertex is a no-op, not a new incarnation.
  cache.reactivate(batch);
  EXPECT_EQ(cache.activity_generation(1), 1u);
  // A second remove/re-insert cycle is a second incarnation.
  cache.deactivate(batch);
  cache.reactivate(batch);
  EXPECT_EQ(cache.activity_generation(1), 2u);
}

TEST(BallCacheDynamic, InvalidateTouchedKillsExactlyContainingEntries) {
  Graph g = path_graph(8);
  BallCache cache(g, true);
  BallCache::Shard& shard = cache.shard(0);
  shard.collect_ball(0, 2);  // {0, 1, 2}
  shard.collect_ball(6, 1);  // {5, 6, 7}
  std::int64_t hits_before = cache.stats().hits;
  int touched[] = {1};
  cache.invalidate_touched(touched);
  shard.collect_ball(6, 1);  // untouched region: still a hit
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  shard.collect_ball(0, 2);  // contained 1: must rebuild
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  EXPECT_GE(cache.stats().invalidations, 1);
}

TEST(BallCacheDynamic, RebindGrowsTablesAndServesNewSlots) {
  Graph small = path_graph(4);
  BallCache cache(small, true);
  BallCache::Shard& shard = cache.shard(0);
  shard.collect_ball(0, 2);  // builds the per-vertex tables at n=4
  Graph big = path_graph(6);
  cache.rebind(big);
  // Slots 0..3 have identical rows in both snapshots except 3 (gained 4),
  // which the dynamic layer reports as touched.
  int touched[] = {3, 4};
  cache.invalidate_touched(touched);
  for (int v = 0; v < 6; ++v) {
    Ball fresh = local::collect_ball(big, v, 3, &cache.active(), nullptr);
    expect_same_ball(fresh, shard.collect_ball(v, 3));
  }
  EXPECT_EQ(cache.activity_generation(5), 0u);
}

Graph driver_workload() {
  RandomChordalConfig config;
  config.n = 400;
  config.max_clique = 5;
  config.chain_bias = 0.85;
  config.seed = 47;
  return random_chordal(config);
}

TEST(CacheParity, MvcIdenticalWithAndWithoutCache) {
  CacheRestorer restore;
  Graph g = driver_workload();
  std::vector<core::MvcResult> results;
  std::vector<std::string> telemetry;
  for (int enabled : {1, 0}) {
    support::set_cache_enabled(enabled);
    obs::Registry reg;
    {
      obs::ScopedRegistry scope(reg);
      results.push_back(core::mvc_chordal(g));
    }
    telemetry.push_back(scrub_volatile(reg.to_json()));
  }
  EXPECT_EQ(results[0].colors, results[1].colors);
  EXPECT_EQ(results[0].num_colors, results[1].num_colors);
  EXPECT_EQ(results[0].rounds, results[1].rounds);
  EXPECT_EQ(results[0].pruning_rounds, results[1].pruning_rounds);
  EXPECT_EQ(results[0].coloring_rounds, results[1].coloring_rounds);
  EXPECT_EQ(results[0].correction_rounds, results[1].correction_rounds);
  EXPECT_EQ(telemetry[0], telemetry[1]) << "telemetry diverged under cache";
  EXPECT_TRUE(testing::is_proper_coloring(g, results[0].colors));
}

TEST(CacheParity, MisIdenticalWithAndWithoutCache) {
  CacheRestorer restore;
  Graph g = driver_workload();
  std::vector<core::MisResult> results;
  std::vector<std::string> telemetry;
  for (int enabled : {1, 0}) {
    support::set_cache_enabled(enabled);
    obs::Registry reg;
    {
      obs::ScopedRegistry scope(reg);
      results.push_back(core::mis_chordal(g));
    }
    telemetry.push_back(scrub_volatile(reg.to_json()));
  }
  EXPECT_EQ(results[0].chosen, results[1].chosen);
  EXPECT_EQ(results[0].rounds, results[1].rounds);
  EXPECT_EQ(results[0].absorbing_components, results[1].absorbing_components);
  EXPECT_EQ(results[0].approx_components, results[1].approx_components);
  EXPECT_EQ(telemetry[0], telemetry[1]) << "telemetry diverged under cache";
  EXPECT_TRUE(testing::is_independent_set(g, results[0].chosen));
}

TEST(CacheParity, PerNodePruningIdenticalWithAndWithoutCache) {
  CacheRestorer restore;
  RandomChordalConfig config;
  config.n = 160;
  config.max_clique = 4;
  config.chain_bias = 0.9;
  config.seed = 5;
  Graph g = random_chordal(config);
  core::MvcOptions options;
  options.pruning = core::PruningMode::kPerNodeLocalViews;
  std::vector<core::MvcResult> results;
  for (int enabled : {1, 0}) {
    support::set_cache_enabled(enabled);
    results.push_back(core::mvc_chordal(g, options));
  }
  EXPECT_EQ(results[0].colors, results[1].colors);
  EXPECT_EQ(results[0].rounds, results[1].rounds);
  EXPECT_EQ(results[0].pruning_rounds, results[1].pruning_rounds);
  EXPECT_EQ(results[0].num_layers, results[1].num_layers);
}

TEST(CacheParity, AuditsIdenticalWithAndWithoutCache) {
  CacheRestorer restore;
  RandomChordalConfig config;
  config.n = 200;
  config.max_clique = 4;
  config.chain_bias = 0.9;
  config.seed = 13;
  Graph g = random_chordal(config);
  CliqueForest forest = CliqueForest::build(g);
  const int k = 4;
  core::PeelConfig coloring_config;
  coloring_config.mode = core::PeelMode::kColoring;
  coloring_config.k = k;
  core::PeelingResult coloring_peel = core::peel(g, forest, coloring_config);
  const int d = 4;
  core::PeelConfig mis_config;
  mis_config.mode = core::PeelMode::kIndependentSet;
  mis_config.d = d;
  mis_config.max_iterations = 6;
  core::PeelingResult mis_peel = core::peel(g, forest, mis_config);
  std::vector<core::LocalDecisionAudit> coloring_audits, mis_audits;
  for (int enabled : {1, 0}) {
    support::set_cache_enabled(enabled);
    coloring_audits.push_back(
        core::audit_local_pruning(g, forest, coloring_peel, k, 2));
    mis_audits.push_back(
        core::audit_local_pruning_mis(g, forest, mis_peel, d, 3));
  }
  EXPECT_EQ(coloring_audits[0].decisions_checked,
            coloring_audits[1].decisions_checked);
  EXPECT_EQ(coloring_audits[0].mismatches, coloring_audits[1].mismatches);
  EXPECT_EQ(coloring_audits[0].horizon_hits, coloring_audits[1].horizon_hits);
  EXPECT_EQ(coloring_audits[0].mismatches, 0);
  EXPECT_EQ(mis_audits[0].decisions_checked, mis_audits[1].decisions_checked);
  EXPECT_EQ(mis_audits[0].mismatches, mis_audits[1].mismatches);
  EXPECT_EQ(mis_audits[0].horizon_hits, mis_audits[1].horizon_hits);
  EXPECT_EQ(mis_audits[0].mismatches, 0);
}

}  // namespace
}  // namespace chordal
