#include <gtest/gtest.h>

#include "graph/cliques.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

TEST(Cliques, PaperExampleMaximalCliques) {
  Graph g = testing::paper_figure1_graph();
  auto cliques = maximal_cliques_chordal(g);
  std::vector<std::vector<int>> expected;
  for (auto clique : testing::paper_cliques_1indexed()) {
    for (int& v : clique) --v;
    expected.push_back(clique);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cliques, expected);
}

TEST(Cliques, PathAndCompleteAndStar) {
  auto path_cliques = maximal_cliques_chordal(path_graph(4));
  EXPECT_EQ(path_cliques.size(), 3u);
  auto complete = maximal_cliques_chordal(complete_graph(5));
  ASSERT_EQ(complete.size(), 1u);
  EXPECT_EQ(complete[0].size(), 5u);
  auto star = maximal_cliques_chordal(star_graph(4));
  EXPECT_EQ(star.size(), 4u);
}

TEST(Cliques, IsolatedVerticesAreTheirOwnClique) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  auto cliques = maximal_cliques_chordal(b.build());
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[1], (std::vector<int>{2}));
}

TEST(Cliques, BruteForceAgreesOnPaperExample) {
  Graph g = testing::paper_figure1_graph();
  EXPECT_EQ(maximal_cliques_chordal(g), maximal_cliques_bruteforce(g));
}

class CliqueSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CliqueSeeds, ChordalExtractionMatchesBronKerbosch) {
  RandomChordalConfig config;
  config.n = 40;
  config.max_clique = 5;
  config.chain_bias = 0.4;
  config.seed = GetParam();
  Graph g = random_chordal(config);
  EXPECT_EQ(maximal_cliques_chordal(g), maximal_cliques_bruteforce(g));
}

TEST_P(CliqueSeeds, CliqueTreeGeneratorMatchesBronKerbosch) {
  CliqueTreeConfig config;
  config.num_bags = 18;
  config.seed = GetParam();
  auto gen = random_chordal_from_clique_tree(config);
  EXPECT_EQ(maximal_cliques_chordal(gen.graph),
            maximal_cliques_bruteforce(gen.graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliqueSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(Cliques, MaxCliqueSizeOnKnownGraphs) {
  EXPECT_EQ(max_clique_size_chordal(complete_graph(7)), 7);
  EXPECT_EQ(max_clique_size_chordal(path_graph(5)), 2);
  EXPECT_EQ(max_clique_size_chordal(testing::paper_figure1_graph()), 3);
}

}  // namespace
}  // namespace chordal
