// The compact memory substrate: checked id narrowing, the CsrAssembler
// bulk-ingest path, CliqueFamily slab semantics, and the streaming
// million-node generators. The streaming k-tree must be bit-identical to
// random_k_tree (same RNG sequence, same CSR), and the streaming interval
// generator must produce exactly the overlap graph of its own endpoints.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/auditors.hpp"
#include "cliqueforest/family.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graphio.hpp"
#include "graph/ids.hpp"

namespace chordal {
namespace {

bool same_graph(const Graph& a, const Graph& b) {
  return a.num_vertices() == b.num_vertices() &&
         a.num_edges() == b.num_edges() && a.edges() == b.edges();
}

TEST(Ids, CheckedNarrowingAcceptsTheFullRange) {
  EXPECT_EQ(checked_vertex_id(0, "t"), 0);
  EXPECT_EQ(checked_vertex_id(123, "t"), 123);
  constexpr long long kMax =
      static_cast<long long>(std::numeric_limits<VertexId>::max());
  EXPECT_EQ(static_cast<long long>(checked_vertex_id(kMax, "t")), kMax);
  EXPECT_EQ(static_cast<long long>(checked_edge_index(kMax, "t")), kMax);
}

TEST(Ids, CheckedNarrowingThrowsTypedOverflow) {
  constexpr long long kMax =
      static_cast<long long>(std::numeric_limits<VertexId>::max());
  if (kMax < std::numeric_limits<long long>::max()) {
    EXPECT_THROW(checked_vertex_id(kMax + 1, "vertex count"),
                 IdOverflowError);
    EXPECT_THROW(checked_edge_index(kMax + 1, "adjacency volume"),
                 IdOverflowError);
  }
  EXPECT_THROW(checked_vertex_id(-1, "vertex count"), IdOverflowError);
  // The typed error is still a runtime_error, so existing hostile-input
  // handling that catches runtime_error keeps working.
  try {
    checked_vertex_id(-1, "vertex count");
    ADD_FAILURE() << "no throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("vertex count"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("CHORDAL_WIDE_IDS"),
              std::string::npos);
  }
}

TEST(Ids, ReadGraphOverflowIsTyped) {
  // A header vertex count beyond the id width must raise IdOverflowError
  // specifically (not just any runtime_error), and name the rebuild knob.
  const std::string text = "9223372036854775806 0\n";
  EXPECT_THROW(graph_from_string(text), IdOverflowError);
  try {
    graph_from_string(text);
  } catch (const IdOverflowError& e) {
    EXPECT_NE(std::string(e.what()).find("read_graph"), std::string::npos);
  }
}

TEST(CsrAssembler, MatchesGraphBuilderWithDuplicates) {
  GraphBuilder b(6);
  CsrAssembler a(6);
  const std::pair<int, int> edges[] = {{0, 1}, {1, 0}, {2, 3}, {3, 4},
                                       {2, 3}, {0, 5}, {4, 5}};
  for (auto [u, v] : edges) {
    b.add_edge(u, v);
    a.add_edge(u, v);
  }
  Graph via_builder = b.build();
  Graph via_assembler = a.finish();
  EXPECT_TRUE(same_graph(via_builder, via_assembler));
  audit::audit_graph_csr(via_assembler);
}

TEST(CsrAssembler, RejectsBadEdgesLikeGraphBuilder) {
  CsrAssembler a(3);
  EXPECT_THROW(a.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(a.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(a.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(CsrAssembler(-1), std::invalid_argument);
}

TEST(CsrAssembler, FinishReleasesStagingAndIsReusable) {
  CsrAssembler a(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  EXPECT_GT(a.staged_bytes(), 0u);
  Graph g1 = a.finish();
  EXPECT_EQ(g1.num_edges(), 2u);
  EXPECT_EQ(a.staged_edges(), 0u);
  a.add_edge(1, 2);
  Graph g2 = a.finish();
  EXPECT_EQ(g2.num_edges(), 1u);
  EXPECT_TRUE(g2.has_edge(1, 2));
  audit::audit_graph_csr(g2);
}

TEST(CsrAssembler, EmptyAndIsolatedVertices) {
  EXPECT_EQ(CsrAssembler(0).finish().num_vertices(), 0);
  Graph g = CsrAssembler(5).finish();
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0u);
  audit::audit_graph_csr(g);
}

TEST(CliqueFamily, SlabRoundTripsNestedCliques) {
  std::vector<std::vector<int>> nested = {{0, 1, 2}, {2, 3}, {4}, {1, 4, 5}};
  CliqueFamily fam(nested);
  ASSERT_EQ(fam.size(), nested.size());
  for (std::size_t c = 0; c < nested.size(); ++c) {
    EXPECT_EQ(word_vec(fam[c]), nested[c]);
  }
  EXPECT_EQ(fam.to_nested(), nested);
  EXPECT_EQ(fam.total_vertices(), 9u);
  CliqueFamily rebuilt;
  for (const auto& clique : nested) rebuilt.push_word(clique);
  EXPECT_EQ(fam, rebuilt);
}

TEST(CliqueFamily, ClearKeepsCapacityForReuse) {
  CliqueFamily fam;
  fam.push_word(std::vector<int>{1, 2, 3});
  fam.push_word(std::vector<int>{4, 5});
  std::size_t bytes = fam.memory_bytes();
  fam.clear();
  EXPECT_TRUE(fam.empty());
  EXPECT_EQ(fam.total_vertices(), 0u);
  EXPECT_EQ(fam.memory_bytes(), bytes);  // capacity retained
  fam.push_word(std::vector<int>{7});
  ASSERT_EQ(fam.size(), 1u);
  EXPECT_EQ(word_vec(fam[0]), (std::vector<int>{7}));
}

TEST(CliqueFamily, WordOrderHelpersMatchVectorSemantics) {
  CliqueFamily fam(std::vector<std::vector<int>>{{1, 2}, {1, 2, 3}, {2}});
  EXPECT_TRUE(word_less(fam[0], fam[1]));   // prefix < longer
  EXPECT_TRUE(word_less(fam[1], fam[2]));   // 1xx < 2
  EXPECT_FALSE(word_less(fam[2], fam[2]));
  EXPECT_TRUE(word_eq(fam[0], fam[0]));
  EXPECT_FALSE(word_eq(fam[0], fam[1]));
}

TEST(StreamingGenerators, KTreeBitIdenticalToLegacy) {
  // Identical RNG call sequence and clique decode: the CSR must match the
  // legacy GraphBuilder construction edge-for-edge across shapes and seeds.
  for (int k : {1, 2, 3, 5}) {
    for (long long n : {static_cast<long long>(k + 1), 10LL, 257LL}) {
      for (std::uint64_t seed : {1ULL, 42ULL}) {
        Graph legacy = random_k_tree(static_cast<int>(n), k, seed);
        Graph streaming = streaming_k_tree(n, k, seed);
        EXPECT_TRUE(same_graph(legacy, streaming))
            << "k=" << k << " n=" << n << " seed=" << seed;
        audit::audit_graph_csr(streaming);
      }
    }
  }
}

TEST(StreamingGenerators, KTreeValidatesLikeLegacy) {
  EXPECT_THROW(streaming_k_tree(3, 3, 1), std::invalid_argument);
  EXPECT_THROW(streaming_k_tree(5, 0, 1), std::invalid_argument);
}

TEST(StreamingGenerators, IntervalMatchesItsOwnGeometry) {
  StreamingIntervalConfig config;
  config.n = 400;
  config.gap_mean = 1.0;
  config.min_len = 2.0;
  config.max_len = 6.0;
  config.seed = 9;
  StreamingInterval gen = streaming_interval_graph(config);
  ASSERT_EQ(gen.graph.num_vertices(), 400);
  EXPECT_TRUE(std::is_sorted(gen.left.begin(), gen.left.end()));
  audit::audit_graph_csr(gen.graph);
  for (int u = 0; u < 400; ++u) {
    for (int v = u + 1; v < 400; ++v) {
      bool overlap =
          gen.left[u] <= gen.right[v] && gen.left[v] <= gen.right[u];
      ASSERT_EQ(gen.graph.has_edge(u, v), overlap) << u << "," << v;
    }
  }
}

TEST(StreamingGenerators, IntervalHandlesDegenerateSizes) {
  StreamingIntervalConfig config;
  config.n = 0;
  EXPECT_EQ(streaming_interval_graph(config).graph.num_vertices(), 0);
  config.n = 1;
  StreamingInterval one = streaming_interval_graph(config);
  EXPECT_EQ(one.graph.num_vertices(), 1);
  EXPECT_EQ(one.graph.num_edges(), 0u);
  config.n = -1;
  EXPECT_THROW(streaming_interval_graph(config), std::invalid_argument);
  config.n = 10;
  config.max_len = 0.5;  // max_len < min_len
  EXPECT_THROW(streaming_interval_graph(config), std::invalid_argument);
}

TEST(GraphCsr, AdoptAndAssignRoundTrip) {
  // adopt_csr moves slabs in; assign_csr copies into reused storage.
  std::vector<EdgeIndex> offsets = {0, 2, 4, 6};
  std::vector<VertexId> adj = {1, 2, 0, 2, 0, 1};  // triangle
  Graph g;
  g.adopt_csr(3, std::move(offsets), std::move(adj));
  EXPECT_EQ(g.num_edges(), 3u);
  audit::audit_graph_csr(g);

  Graph other = path_graph(4);
  other.assign_csr(g.num_vertices(), g.offsets_span(),
                   {g.neighbors(0).data(), 6});
  EXPECT_TRUE(same_graph(g, other));
  audit::audit_graph_csr(other);
}

TEST(GraphCsr, AuditCatchesCorruptSlabs) {
  std::vector<EdgeIndex> offsets = {0, 1, 2};
  std::vector<VertexId> adj = {1, 0};
  Graph good;
  good.adopt_csr(2, std::move(offsets), std::move(adj));
  audit::audit_graph_csr(good);

  // Asymmetric adjacency: 0 -> 1 without the mirror slot.
  Graph bad;
  bad.adopt_csr(2, std::vector<EdgeIndex>{0, 1, 1}, std::vector<VertexId>{1});
  EXPECT_THROW(audit::audit_graph_csr(bad), audit::AuditFailure);

  // Unsorted row.
  Graph unsorted;
  unsorted.adopt_csr(3, std::vector<EdgeIndex>{0, 2, 3, 4},
                     std::vector<VertexId>{2, 1, 0, 0});
  EXPECT_THROW(audit::audit_graph_csr(unsorted), audit::AuditFailure);
}

TEST(GraphCsr, MemoryBytesTracksSlabFootprint) {
  Graph g = path_graph(1000);
  // 1001 offsets + 2 * 999 adjacency slots, modulo capacity slack.
  std::size_t floor_bytes = 1001 * sizeof(EdgeIndex) +
                            2u * 999u * sizeof(VertexId);
  EXPECT_GE(g.memory_bytes(), floor_bytes);
}

}  // namespace
}  // namespace chordal
