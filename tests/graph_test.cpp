#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graphio.hpp"
#include "test_util.hpp"

namespace chordal {
namespace {

TEST(GraphBuilder, DeduplicatesAndSortsNeighbors) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate in reverse
  b.add_edge(3, 1);
  b.add_edge(2, 3);
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3u);
  auto nb = g.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphBuilder, RejectsBadEdges) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(b.add_edge(-1, 0), std::out_of_range);
}

TEST(Graph, EdgesRoundTripThroughIo) {
  Graph g = testing::paper_figure1_graph();
  Graph g2 = graph_from_string(graph_to_string(g));
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.edges(), g.edges());
}

// Regression (fuzz-found): read_graph trusted its header. A negative m
// wrapped through size_t into a misleading "truncated" error, an absurd m
// allocated unbounded work, and endpoint errors leaked GraphBuilder
// exceptions with no line context. Every field is now validated before the
// builder, and messages name the offending line.
TEST(Graph, ReadGraphRejectsHostileHeadersWithLineContext) {
  struct Case {
    const char* text;
    const char* expect_fragment;
  };
  const Case kCases[] = {
      {"", "line 1"},
      {"x", "expected vertex count"},
      {"-3 1\n0 1\n", "negative vertex count"},
      {"2147483648 0\n", "overflows the"},
      {"2 -1\n", "negative edge count"},
      {"3 99\n", "exceeds n*(n-1)/2"},
      {"3 1\n", "truncated edge list"},
      {"3 1\n0", "truncated edge list"},
      {"3 1\n0 zz\n", "truncated edge list"},
      {"3 1\n0 5\n", "endpoint out of range"},
      {"3 1\n-1 2\n", "endpoint out of range"},
      {"3 1\n1 1\n", "self-loop"},
      {"3 2\n0 1\n1 3\n", "line 3"},  // second edge line is line 3
  };
  for (const Case& c : kCases) {
    try {
      graph_from_string(c.text);
      ADD_FAILURE() << "accepted: " << c.text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("read_graph"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(c.expect_fragment),
                std::string::npos)
          << "input " << c.text << " gave: " << e.what();
    }
  }
}

TEST(Graph, ReadGraphAcceptsDuplicatesAndCanonicalizes) {
  // Duplicate edge lines are legal input (the builder deduplicates); the
  // parse must reach the canonical fixpoint in one serialize/reparse.
  Graph g = graph_from_string("4 3\n0 1\n1 0\n2 3\n");
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 2u);
  Graph g2 = graph_from_string(graph_to_string(g));
  EXPECT_EQ(g2.edges(), g.edges());
  // Degenerate but legal: empty graph and isolated vertices.
  EXPECT_EQ(graph_from_string("0 0\n").num_vertices(), 0);
  EXPECT_EQ(graph_from_string("5 0\n").num_edges(), 0u);
}

TEST(Graph, InducedSubgraphRelabelsConsistently) {
  Graph g = path_graph(6);
  std::vector<int> keep = {1, 3, 4};
  std::vector<int> orig;
  Graph sub = g.induced_subgraph(keep, &orig);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(orig, keep);
  EXPECT_TRUE(sub.has_edge(1, 2));   // 3-4 edge survives
  EXPECT_FALSE(sub.has_edge(0, 1));  // 1-3 were not adjacent
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g = path_graph(4);
  std::vector<int> bad = {1, 1};
  EXPECT_THROW(g.induced_subgraph(bad), std::invalid_argument);
}

TEST(Bfs, DistancesOnPath) {
  Graph g = path_graph(5);
  auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(distance_between(g, 1, 4), 3);
}

TEST(Bfs, RestrictedSearchRespectsActiveSet) {
  Graph g = path_graph(5);
  std::vector<char> active = {1, 1, 0, 1, 1};
  auto dist = bfs_distances_restricted(g, 0, active);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], -1);  // cut off by inactive vertex 2
}

TEST(Bfs, BallCollectsClosedNeighborhoodByRadius) {
  Graph g = testing::paper_figure1_graph();
  // Paper node 10 = vertex 9; Figure 3's Gamma^2[10] in 0-indexed terms.
  auto ball = ball_vertices(g, 9, 2);
  std::sort(ball.begin(), ball.end());
  EXPECT_EQ(ball, (std::vector<VertexId>{1, 3, 7, 8, 9, 10, 11, 12}));
}

TEST(Components, CountsAndGroups) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Graph g = b.build();
  auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 4);
  auto groups = comps.groups();
  EXPECT_EQ(groups.size(), 4u);
}

TEST(Components, RestrictedIgnoresInactive) {
  Graph g = path_graph(5);
  std::vector<char> active = {1, 1, 0, 1, 1};
  auto comps = connected_components_restricted(g, active);
  EXPECT_EQ(comps.count, 2);
  EXPECT_EQ(comps.component[2], -1);
}

TEST(Diameter, ExactAndDoubleSweepAgreeOnTrees) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Graph g = random_tree(40, seed);
    EXPECT_EQ(diameter_exact(g), diameter_double_sweep(g)) << "seed " << seed;
  }
}

TEST(Diameter, ThrowsOnDisconnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_THROW(diameter_exact(g), std::invalid_argument);
}

TEST(Generators, FamiliesHaveExpectedShape) {
  EXPECT_EQ(path_graph(7).num_edges(), 6u);
  EXPECT_EQ(complete_graph(5).num_edges(), 10u);
  EXPECT_EQ(star_graph(8).num_edges(), 8u);
  Graph cat = caterpillar(4, 2);
  EXPECT_EQ(cat.num_vertices(), 12);
  EXPECT_EQ(cat.num_edges(), 11u);  // tree
  Graph br = broom(5, 3);
  EXPECT_EQ(br.num_vertices(), 8);
  EXPECT_EQ(br.degree(4), 4);  // end of handle holds bristles
}

TEST(Generators, RandomTreeIsTree) {
  Graph g = random_tree(50, 7);
  EXPECT_EQ(g.num_edges(), 49u);
  EXPECT_EQ(connected_components(g).count, 1);
}

TEST(Generators, RandomIntervalMatchesGeometry) {
  auto gen = random_interval({.n = 60, .window = 30.0, .min_len = 1.0,
                              .max_len = 5.0, .seed = 11});
  for (int u = 0; u < 60; ++u) {
    for (int v = u + 1; v < 60; ++v) {
      bool overlap = gen.left[u] <= gen.right[v] && gen.left[v] <= gen.right[u];
      EXPECT_EQ(gen.graph.has_edge(u, v), overlap) << u << "," << v;
    }
  }
}

TEST(Generators, KTreeHasRightEdgeCount) {
  Graph g = random_k_tree(30, 3, 5);
  // k-tree edges: C(k+1,2) + (n-k-1)*k.
  EXPECT_EQ(g.num_edges(), 6u + 26u * 3u);
}

}  // namespace
}  // namespace chordal
