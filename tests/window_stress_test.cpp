// Randomized stress for the Lemma 9 window solver: adversarially precolored
// boundary columns at distance >= k+3 must always extend within the
// floor((1+1/k) omega) + 1 palette.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "interval/offline.hpp"
#include "interval/rep.hpp"
#include "interval/window_recolor.hpp"
#include "local/ruling_set.hpp"
#include "support/rng.hpp"

namespace chordal {
namespace {

using interval::PathIntervals;

/// Builds a multi-track staircase window: `tracks` parallel chains of unit
/// intervals (omega == tracks or tracks+1 depending on phase).
PathIntervals multi_track(int tracks, int length, Rng& rng) {
  PathIntervals rep;
  rep.num_positions = 2 * length + 4;
  int id = 0;
  for (int t = 0; t < tracks; ++t) {
    for (int p = t % 2; p < 2 * length; p += 2) {
      rep.vertices.push_back(id++);
      rep.lo.push_back(p);
      rep.hi.push_back(p + 2 + static_cast<int>(rng.next_below(1)));
    }
  }
  return rep;
}

struct StressCase {
  std::uint64_t seed;
  int tracks;
  int k;
};

class WindowStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(WindowStress, TwoColumnExtensionAlwaysFeasible) {
  auto [seed, tracks, k] = GetParam();
  Rng rng(seed);
  PathIntervals rep = multi_track(tracks, 20 + k * 3, rng);
  int w = interval::omega(rep);

  // Left column: vertices crossing the leftmost crossing position; right
  // column symmetric. Color both columns with random injections into
  // [0, w) - the adversarial part: the injections disagree.
  auto column_at = [&rep](int pos) {
    std::vector<std::size_t> col;
    for (std::size_t i = 0; i < rep.vertices.size(); ++i) {
      if (rep.lo[i] <= pos && pos <= rep.hi[i]) col.push_back(i);
    }
    return col;
  };
  auto left = column_at(2);
  auto right = column_at(rep.num_positions - 4);
  ASSERT_FALSE(left.empty());
  ASSERT_FALSE(right.empty());

  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed.assign(rep.vertices.size(), -1);
  std::vector<int> palette_perm(static_cast<std::size_t>(w));
  std::iota(palette_perm.begin(), palette_perm.end(), 0);
  rng.shuffle(palette_perm);
  for (std::size_t i = 0; i < left.size(); ++i) {
    problem.fixed[left[i]] = palette_perm[i];
  }
  rng.shuffle(palette_perm);
  for (std::size_t i = 0; i < right.size(); ++i) {
    // Skip vertices precolored already (left/right columns are far apart,
    // so this never happens; guard anyway).
    if (problem.fixed[right[i]] == -1) {
      problem.fixed[right[i]] = palette_perm[i];
    }
  }
  problem.palette = w + w / k + 1;

  interval::RecolorStats stats;
  auto solved = interval::extend_coloring(problem, &stats);
  ASSERT_TRUE(solved.has_value())
      << "tracks=" << tracks << " k=" << k << " omega=" << w;
  EXPECT_TRUE(interval::is_proper(rep, *solved));
  for (std::size_t i = 0; i < rep.vertices.size(); ++i) {
    if (problem.fixed[i] >= 0) {
      EXPECT_EQ((*solved)[i], problem.fixed[i]);
    }
    EXPECT_LT((*solved)[i], problem.palette);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowStress,
    ::testing::Values(StressCase{1, 2, 2}, StressCase{2, 3, 2},
                      StressCase{3, 4, 2}, StressCase{4, 5, 3},
                      StressCase{5, 6, 3}, StressCase{6, 4, 4},
                      StressCase{7, 8, 4}, StressCase{8, 6, 8},
                      StressCase{9, 3, 8}, StressCase{10, 10, 5},
                      StressCase{11, 7, 2}, StressCase{12, 2, 16}));

TEST(WindowStress, InfeasiblePaletteReportsCleanly) {
  // palette = omega - 1 is unsatisfiable; the solver must report nullopt
  // (by exhaustion or proof) within its budget, not loop or crash.
  Rng rng(5);
  PathIntervals rep = multi_track(8, 30, rng);
  interval::RecolorProblem problem;
  problem.rep = rep;
  problem.fixed.assign(rep.vertices.size(), -1);
  problem.palette = interval::omega(rep) - 1;
  interval::RecolorStats stats;
  auto solved = interval::extend_coloring(problem, &stats, /*budget=*/5000);
  EXPECT_FALSE(solved.has_value());
}

}  // namespace
}  // namespace chordal
