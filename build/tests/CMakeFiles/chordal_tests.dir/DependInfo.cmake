
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/chordal_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/chordal_recognition_test.cpp" "tests/CMakeFiles/chordal_tests.dir/chordal_recognition_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/chordal_recognition_test.cpp.o.d"
  "/root/repo/tests/clique_forest_test.cpp" "tests/CMakeFiles/chordal_tests.dir/clique_forest_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/clique_forest_test.cpp.o.d"
  "/root/repo/tests/clique_path_test.cpp" "tests/CMakeFiles/chordal_tests.dir/clique_path_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/clique_path_test.cpp.o.d"
  "/root/repo/tests/cliques_test.cpp" "tests/CMakeFiles/chordal_tests.dir/cliques_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/cliques_test.cpp.o.d"
  "/root/repo/tests/distributed_fidelity_test.cpp" "tests/CMakeFiles/chordal_tests.dir/distributed_fidelity_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/distributed_fidelity_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/chordal_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/chordal_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_fuzz_test.cpp" "tests/CMakeFiles/chordal_tests.dir/integration_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/integration_fuzz_test.cpp.o.d"
  "/root/repo/tests/interval_test.cpp" "tests/CMakeFiles/chordal_tests.dir/interval_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/interval_test.cpp.o.d"
  "/root/repo/tests/local_model_test.cpp" "tests/CMakeFiles/chordal_tests.dir/local_model_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/local_model_test.cpp.o.d"
  "/root/repo/tests/mis_fidelity_test.cpp" "tests/CMakeFiles/chordal_tests.dir/mis_fidelity_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/mis_fidelity_test.cpp.o.d"
  "/root/repo/tests/mis_peeling_structure_test.cpp" "tests/CMakeFiles/chordal_tests.dir/mis_peeling_structure_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/mis_peeling_structure_test.cpp.o.d"
  "/root/repo/tests/mis_test.cpp" "tests/CMakeFiles/chordal_tests.dir/mis_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/mis_test.cpp.o.d"
  "/root/repo/tests/mvc_test.cpp" "tests/CMakeFiles/chordal_tests.dir/mvc_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/mvc_test.cpp.o.d"
  "/root/repo/tests/paper_figures_test.cpp" "tests/CMakeFiles/chordal_tests.dir/paper_figures_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/paper_figures_test.cpp.o.d"
  "/root/repo/tests/parents_test.cpp" "tests/CMakeFiles/chordal_tests.dir/parents_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/parents_test.cpp.o.d"
  "/root/repo/tests/paths_test.cpp" "tests/CMakeFiles/chordal_tests.dir/paths_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/paths_test.cpp.o.d"
  "/root/repo/tests/peeling_test.cpp" "tests/CMakeFiles/chordal_tests.dir/peeling_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/peeling_test.cpp.o.d"
  "/root/repo/tests/power_and_checks_test.cpp" "tests/CMakeFiles/chordal_tests.dir/power_and_checks_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/power_and_checks_test.cpp.o.d"
  "/root/repo/tests/pruning_modes_test.cpp" "tests/CMakeFiles/chordal_tests.dir/pruning_modes_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/pruning_modes_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/chordal_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/window_stress_test.cpp" "tests/CMakeFiles/chordal_tests.dir/window_stress_test.cpp.o" "gcc" "tests/CMakeFiles/chordal_tests.dir/window_stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_cliqueforest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
