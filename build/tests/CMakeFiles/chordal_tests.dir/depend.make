# Empty dependencies file for chordal_tests.
# This may be replaced when dependencies are built.
