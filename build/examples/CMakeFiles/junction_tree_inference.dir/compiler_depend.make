# Empty compiler generated dependencies file for junction_tree_inference.
# This may be replaced when dependencies are built.
