file(REMOVE_RECURSE
  "CMakeFiles/junction_tree_inference.dir/junction_tree_inference.cpp.o"
  "CMakeFiles/junction_tree_inference.dir/junction_tree_inference.cpp.o.d"
  "junction_tree_inference"
  "junction_tree_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/junction_tree_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
