
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sensor_scheduling.cpp" "examples/CMakeFiles/sensor_scheduling.dir/sensor_scheduling.cpp.o" "gcc" "examples/CMakeFiles/sensor_scheduling.dir/sensor_scheduling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_cliqueforest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
