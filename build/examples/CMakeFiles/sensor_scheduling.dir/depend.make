# Empty dependencies file for sensor_scheduling.
# This may be replaced when dependencies are built.
