file(REMOVE_RECURSE
  "CMakeFiles/sensor_scheduling.dir/sensor_scheduling.cpp.o"
  "CMakeFiles/sensor_scheduling.dir/sensor_scheduling.cpp.o.d"
  "sensor_scheduling"
  "sensor_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
