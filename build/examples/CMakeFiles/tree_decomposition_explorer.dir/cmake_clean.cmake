file(REMOVE_RECURSE
  "CMakeFiles/tree_decomposition_explorer.dir/tree_decomposition_explorer.cpp.o"
  "CMakeFiles/tree_decomposition_explorer.dir/tree_decomposition_explorer.cpp.o.d"
  "tree_decomposition_explorer"
  "tree_decomposition_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_decomposition_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
