# Empty compiler generated dependencies file for tree_decomposition_explorer.
# This may be replaced when dependencies are built.
