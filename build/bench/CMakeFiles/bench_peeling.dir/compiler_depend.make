# Empty compiler generated dependencies file for bench_peeling.
# This may be replaced when dependencies are built.
