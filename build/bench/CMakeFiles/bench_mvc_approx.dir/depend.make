# Empty dependencies file for bench_mvc_approx.
# This may be replaced when dependencies are built.
