file(REMOVE_RECURSE
  "CMakeFiles/bench_mvc_approx.dir/bench_mvc_approx.cpp.o"
  "CMakeFiles/bench_mvc_approx.dir/bench_mvc_approx.cpp.o.d"
  "bench_mvc_approx"
  "bench_mvc_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mvc_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
