file(REMOVE_RECURSE
  "CMakeFiles/bench_mis_chordal.dir/bench_mis_chordal.cpp.o"
  "CMakeFiles/bench_mis_chordal.dir/bench_mis_chordal.cpp.o.d"
  "bench_mis_chordal"
  "bench_mis_chordal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mis_chordal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
