# Empty dependencies file for bench_mis_chordal.
# This may be replaced when dependencies are built.
