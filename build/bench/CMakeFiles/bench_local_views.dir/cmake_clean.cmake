file(REMOVE_RECURSE
  "CMakeFiles/bench_local_views.dir/bench_local_views.cpp.o"
  "CMakeFiles/bench_local_views.dir/bench_local_views.cpp.o.d"
  "bench_local_views"
  "bench_local_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
