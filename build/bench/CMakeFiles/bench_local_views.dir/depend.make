# Empty dependencies file for bench_local_views.
# This may be replaced when dependencies are built.
