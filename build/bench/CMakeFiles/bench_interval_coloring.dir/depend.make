# Empty dependencies file for bench_interval_coloring.
# This may be replaced when dependencies are built.
