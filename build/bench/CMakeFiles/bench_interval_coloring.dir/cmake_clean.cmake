file(REMOVE_RECURSE
  "CMakeFiles/bench_interval_coloring.dir/bench_interval_coloring.cpp.o"
  "CMakeFiles/bench_interval_coloring.dir/bench_interval_coloring.cpp.o.d"
  "bench_interval_coloring"
  "bench_interval_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
