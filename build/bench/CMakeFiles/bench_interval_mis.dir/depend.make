# Empty dependencies file for bench_interval_mis.
# This may be replaced when dependencies are built.
