file(REMOVE_RECURSE
  "CMakeFiles/bench_interval_mis.dir/bench_interval_mis.cpp.o"
  "CMakeFiles/bench_interval_mis.dir/bench_interval_mis.cpp.o.d"
  "bench_interval_mis"
  "bench_interval_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
