# Empty compiler generated dependencies file for bench_mvc_rounds.
# This may be replaced when dependencies are built.
