file(REMOVE_RECURSE
  "CMakeFiles/bench_mvc_rounds.dir/bench_mvc_rounds.cpp.o"
  "CMakeFiles/bench_mvc_rounds.dir/bench_mvc_rounds.cpp.o.d"
  "bench_mvc_rounds"
  "bench_mvc_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mvc_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
