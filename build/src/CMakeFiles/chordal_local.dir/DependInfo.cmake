
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/local/ball.cpp" "src/CMakeFiles/chordal_local.dir/local/ball.cpp.o" "gcc" "src/CMakeFiles/chordal_local.dir/local/ball.cpp.o.d"
  "/root/repo/src/local/cole_vishkin.cpp" "src/CMakeFiles/chordal_local.dir/local/cole_vishkin.cpp.o" "gcc" "src/CMakeFiles/chordal_local.dir/local/cole_vishkin.cpp.o.d"
  "/root/repo/src/local/luby.cpp" "src/CMakeFiles/chordal_local.dir/local/luby.cpp.o" "gcc" "src/CMakeFiles/chordal_local.dir/local/luby.cpp.o.d"
  "/root/repo/src/local/network.cpp" "src/CMakeFiles/chordal_local.dir/local/network.cpp.o" "gcc" "src/CMakeFiles/chordal_local.dir/local/network.cpp.o.d"
  "/root/repo/src/local/ruling_set.cpp" "src/CMakeFiles/chordal_local.dir/local/ruling_set.cpp.o" "gcc" "src/CMakeFiles/chordal_local.dir/local/ruling_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_cliqueforest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
