# Empty dependencies file for chordal_local.
# This may be replaced when dependencies are built.
