file(REMOVE_RECURSE
  "CMakeFiles/chordal_local.dir/local/ball.cpp.o"
  "CMakeFiles/chordal_local.dir/local/ball.cpp.o.d"
  "CMakeFiles/chordal_local.dir/local/cole_vishkin.cpp.o"
  "CMakeFiles/chordal_local.dir/local/cole_vishkin.cpp.o.d"
  "CMakeFiles/chordal_local.dir/local/luby.cpp.o"
  "CMakeFiles/chordal_local.dir/local/luby.cpp.o.d"
  "CMakeFiles/chordal_local.dir/local/network.cpp.o"
  "CMakeFiles/chordal_local.dir/local/network.cpp.o.d"
  "CMakeFiles/chordal_local.dir/local/ruling_set.cpp.o"
  "CMakeFiles/chordal_local.dir/local/ruling_set.cpp.o.d"
  "libchordal_local.a"
  "libchordal_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
