file(REMOVE_RECURSE
  "libchordal_local.a"
)
