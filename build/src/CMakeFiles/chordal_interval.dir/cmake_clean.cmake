file(REMOVE_RECURSE
  "CMakeFiles/chordal_interval.dir/interval/absorbing_mis.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/absorbing_mis.cpp.o.d"
  "CMakeFiles/chordal_interval.dir/interval/col_int_graph.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/col_int_graph.cpp.o.d"
  "CMakeFiles/chordal_interval.dir/interval/mis_interval.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/mis_interval.cpp.o.d"
  "CMakeFiles/chordal_interval.dir/interval/offline.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/offline.cpp.o.d"
  "CMakeFiles/chordal_interval.dir/interval/proper.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/proper.cpp.o.d"
  "CMakeFiles/chordal_interval.dir/interval/rep.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/rep.cpp.o.d"
  "CMakeFiles/chordal_interval.dir/interval/window_recolor.cpp.o"
  "CMakeFiles/chordal_interval.dir/interval/window_recolor.cpp.o.d"
  "libchordal_interval.a"
  "libchordal_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
