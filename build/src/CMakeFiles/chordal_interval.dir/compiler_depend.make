# Empty compiler generated dependencies file for chordal_interval.
# This may be replaced when dependencies are built.
