file(REMOVE_RECURSE
  "libchordal_interval.a"
)
