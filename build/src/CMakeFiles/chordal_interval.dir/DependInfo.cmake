
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/absorbing_mis.cpp" "src/CMakeFiles/chordal_interval.dir/interval/absorbing_mis.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/absorbing_mis.cpp.o.d"
  "/root/repo/src/interval/col_int_graph.cpp" "src/CMakeFiles/chordal_interval.dir/interval/col_int_graph.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/col_int_graph.cpp.o.d"
  "/root/repo/src/interval/mis_interval.cpp" "src/CMakeFiles/chordal_interval.dir/interval/mis_interval.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/mis_interval.cpp.o.d"
  "/root/repo/src/interval/offline.cpp" "src/CMakeFiles/chordal_interval.dir/interval/offline.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/offline.cpp.o.d"
  "/root/repo/src/interval/proper.cpp" "src/CMakeFiles/chordal_interval.dir/interval/proper.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/proper.cpp.o.d"
  "/root/repo/src/interval/rep.cpp" "src/CMakeFiles/chordal_interval.dir/interval/rep.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/rep.cpp.o.d"
  "/root/repo/src/interval/window_recolor.cpp" "src/CMakeFiles/chordal_interval.dir/interval/window_recolor.cpp.o" "gcc" "src/CMakeFiles/chordal_interval.dir/interval/window_recolor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_cliqueforest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
