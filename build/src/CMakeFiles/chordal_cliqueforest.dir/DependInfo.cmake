
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cliqueforest/forest.cpp" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/forest.cpp.o" "gcc" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/forest.cpp.o.d"
  "/root/repo/src/cliqueforest/local_view.cpp" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/local_view.cpp.o" "gcc" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/local_view.cpp.o.d"
  "/root/repo/src/cliqueforest/paths.cpp" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/paths.cpp.o" "gcc" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/paths.cpp.o.d"
  "/root/repo/src/cliqueforest/wcig.cpp" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/wcig.cpp.o" "gcc" "src/CMakeFiles/chordal_cliqueforest.dir/cliqueforest/wcig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
