file(REMOVE_RECURSE
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/forest.cpp.o"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/forest.cpp.o.d"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/local_view.cpp.o"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/local_view.cpp.o.d"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/paths.cpp.o"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/paths.cpp.o.d"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/wcig.cpp.o"
  "CMakeFiles/chordal_cliqueforest.dir/cliqueforest/wcig.cpp.o.d"
  "libchordal_cliqueforest.a"
  "libchordal_cliqueforest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_cliqueforest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
