# Empty compiler generated dependencies file for chordal_cliqueforest.
# This may be replaced when dependencies are built.
