file(REMOVE_RECURSE
  "libchordal_cliqueforest.a"
)
