file(REMOVE_RECURSE
  "libchordal_lowerbound.a"
)
