# Empty compiler generated dependencies file for chordal_lowerbound.
# This may be replaced when dependencies are built.
