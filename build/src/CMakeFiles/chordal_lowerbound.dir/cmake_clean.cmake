file(REMOVE_RECURSE
  "CMakeFiles/chordal_lowerbound.dir/lowerbound/path_mis.cpp.o"
  "CMakeFiles/chordal_lowerbound.dir/lowerbound/path_mis.cpp.o.d"
  "libchordal_lowerbound.a"
  "libchordal_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
