file(REMOVE_RECURSE
  "libchordal_baselines.a"
)
