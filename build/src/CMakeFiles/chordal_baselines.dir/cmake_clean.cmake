file(REMOVE_RECURSE
  "CMakeFiles/chordal_baselines.dir/baselines/dplus1.cpp.o"
  "CMakeFiles/chordal_baselines.dir/baselines/dplus1.cpp.o.d"
  "CMakeFiles/chordal_baselines.dir/baselines/exact_mis.cpp.o"
  "CMakeFiles/chordal_baselines.dir/baselines/exact_mis.cpp.o.d"
  "CMakeFiles/chordal_baselines.dir/baselines/peo_color.cpp.o"
  "CMakeFiles/chordal_baselines.dir/baselines/peo_color.cpp.o.d"
  "libchordal_baselines.a"
  "libchordal_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
