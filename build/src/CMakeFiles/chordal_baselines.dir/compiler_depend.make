# Empty compiler generated dependencies file for chordal_baselines.
# This may be replaced when dependencies are built.
