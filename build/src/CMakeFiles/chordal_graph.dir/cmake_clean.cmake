file(REMOVE_RECURSE
  "CMakeFiles/chordal_graph.dir/graph/bfs.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/bfs.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/cliques.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/cliques.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/components.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/components.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/diameter.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/diameter.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/graphio.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/graphio.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/lexbfs.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/lexbfs.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/peo.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/peo.cpp.o.d"
  "CMakeFiles/chordal_graph.dir/graph/power.cpp.o"
  "CMakeFiles/chordal_graph.dir/graph/power.cpp.o.d"
  "libchordal_graph.a"
  "libchordal_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
