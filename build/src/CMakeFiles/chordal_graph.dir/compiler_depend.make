# Empty compiler generated dependencies file for chordal_graph.
# This may be replaced when dependencies are built.
