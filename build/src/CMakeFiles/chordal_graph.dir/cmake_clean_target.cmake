file(REMOVE_RECURSE
  "libchordal_graph.a"
)
