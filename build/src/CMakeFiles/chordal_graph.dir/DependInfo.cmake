
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/chordal_graph.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/cliques.cpp" "src/CMakeFiles/chordal_graph.dir/graph/cliques.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/cliques.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/chordal_graph.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/diameter.cpp" "src/CMakeFiles/chordal_graph.dir/graph/diameter.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/diameter.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/chordal_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/chordal_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/graphio.cpp" "src/CMakeFiles/chordal_graph.dir/graph/graphio.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/graphio.cpp.o.d"
  "/root/repo/src/graph/lexbfs.cpp" "src/CMakeFiles/chordal_graph.dir/graph/lexbfs.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/lexbfs.cpp.o.d"
  "/root/repo/src/graph/peo.cpp" "src/CMakeFiles/chordal_graph.dir/graph/peo.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/peo.cpp.o.d"
  "/root/repo/src/graph/power.cpp" "src/CMakeFiles/chordal_graph.dir/graph/power.cpp.o" "gcc" "src/CMakeFiles/chordal_graph.dir/graph/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
