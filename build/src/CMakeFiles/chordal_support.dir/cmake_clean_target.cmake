file(REMOVE_RECURSE
  "libchordal_support.a"
)
