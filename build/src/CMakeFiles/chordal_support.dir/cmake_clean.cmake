file(REMOVE_RECURSE
  "CMakeFiles/chordal_support.dir/support/rng.cpp.o"
  "CMakeFiles/chordal_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/chordal_support.dir/support/stats.cpp.o"
  "CMakeFiles/chordal_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/chordal_support.dir/support/table.cpp.o"
  "CMakeFiles/chordal_support.dir/support/table.cpp.o.d"
  "CMakeFiles/chordal_support.dir/support/union_find.cpp.o"
  "CMakeFiles/chordal_support.dir/support/union_find.cpp.o.d"
  "libchordal_support.a"
  "libchordal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
