# Empty compiler generated dependencies file for chordal_support.
# This may be replaced when dependencies are built.
