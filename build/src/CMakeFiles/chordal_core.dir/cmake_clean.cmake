file(REMOVE_RECURSE
  "CMakeFiles/chordal_core.dir/core/checks.cpp.o"
  "CMakeFiles/chordal_core.dir/core/checks.cpp.o.d"
  "CMakeFiles/chordal_core.dir/core/local_decision.cpp.o"
  "CMakeFiles/chordal_core.dir/core/local_decision.cpp.o.d"
  "CMakeFiles/chordal_core.dir/core/mis_chordal.cpp.o"
  "CMakeFiles/chordal_core.dir/core/mis_chordal.cpp.o.d"
  "CMakeFiles/chordal_core.dir/core/mvc_centralized.cpp.o"
  "CMakeFiles/chordal_core.dir/core/mvc_centralized.cpp.o.d"
  "CMakeFiles/chordal_core.dir/core/mvc_distributed.cpp.o"
  "CMakeFiles/chordal_core.dir/core/mvc_distributed.cpp.o.d"
  "CMakeFiles/chordal_core.dir/core/parents.cpp.o"
  "CMakeFiles/chordal_core.dir/core/parents.cpp.o.d"
  "CMakeFiles/chordal_core.dir/core/peeling.cpp.o"
  "CMakeFiles/chordal_core.dir/core/peeling.cpp.o.d"
  "libchordal_core.a"
  "libchordal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
