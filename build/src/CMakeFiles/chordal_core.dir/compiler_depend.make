# Empty compiler generated dependencies file for chordal_core.
# This may be replaced when dependencies are built.
