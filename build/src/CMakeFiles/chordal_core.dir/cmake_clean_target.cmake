file(REMOVE_RECURSE
  "libchordal_core.a"
)
