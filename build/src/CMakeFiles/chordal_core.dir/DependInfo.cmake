
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checks.cpp" "src/CMakeFiles/chordal_core.dir/core/checks.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/checks.cpp.o.d"
  "/root/repo/src/core/local_decision.cpp" "src/CMakeFiles/chordal_core.dir/core/local_decision.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/local_decision.cpp.o.d"
  "/root/repo/src/core/mis_chordal.cpp" "src/CMakeFiles/chordal_core.dir/core/mis_chordal.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/mis_chordal.cpp.o.d"
  "/root/repo/src/core/mvc_centralized.cpp" "src/CMakeFiles/chordal_core.dir/core/mvc_centralized.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/mvc_centralized.cpp.o.d"
  "/root/repo/src/core/mvc_distributed.cpp" "src/CMakeFiles/chordal_core.dir/core/mvc_distributed.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/mvc_distributed.cpp.o.d"
  "/root/repo/src/core/parents.cpp" "src/CMakeFiles/chordal_core.dir/core/parents.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/parents.cpp.o.d"
  "/root/repo/src/core/peeling.cpp" "src/CMakeFiles/chordal_core.dir/core/peeling.cpp.o" "gcc" "src/CMakeFiles/chordal_core.dir/core/peeling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chordal_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_local.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_cliqueforest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chordal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
