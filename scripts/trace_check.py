#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace.

Checks, in order:

  structure   the file parses, carries a traceEvents array in the
              JSON-object form, and every event has the trace_event
              required keys (name/ph/ts/pid/tid)
  ticks       the logical tick (args.tick, the tracer's deterministic
              merge order) is strictly increasing within every track
              (tid) and globally unique across the file
  phases      "B"/"E" events nest: never an end without a begin, and
              every begin is closed by end-of-file
  lineage     every net.deliver resolves through args.lineage to exactly
              one net.send with a strictly smaller tick (causality: a
              message is delivered after the send that created it)

When the tracer's bounded ring wrapped (otherData.dropped_events > 0) the
oldest events are gone, so an end may have lost its begin and a deliver its
send; those two checks then only reject *inconsistent* survivors (a send
that is present but not before its deliver) rather than missing ones, and
the --telemetry count cross-checks are skipped.

With --telemetry <path> (the same run's --json report) it additionally
cross-checks the trace against the telemetry tree: the number of net.round
events must equal the net.rounds counter, and the number of phase begins
must equal the number of spans (both counted over the whole run).

Exit status: 0 = valid, 1 = validation failure, 2 = unreadable input.
Only the Python standard library is used.

Usage:
  scripts/trace_check.py trace.json [--telemetry report.json]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"trace_check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def count_spans(spans):
    return sum(1 + count_spans(s.get("children", [])) for s in spans)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace")
    parser.add_argument("--telemetry", help="--json report of the same run")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"trace_check: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array (expected the JSON-object trace form)")
    dropped = doc.get("otherData", {}).get("dropped_events", 0)

    last_tick_by_tid = {}
    seen_ticks = set()
    open_phases = {}  # tid -> depth
    sends = {}  # lineage id -> send tick
    delivers = []  # (tick, lineage)
    rounds = 0
    phase_begins = 0

    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing {key!r}: {ev!r}")
        ph = ev["ph"]
        if ph == "M":
            continue  # metadata (thread names) carries no ts
        if "ts" not in ev:
            fail(f"event {i} missing 'ts': {ev!r}")
        tid = ev["tid"]
        tick = ev.get("args", {}).get("tick")
        if tick is not None:
            if tick in seen_ticks:
                fail(f"event {i}: duplicate tick {tick}")
            seen_ticks.add(tick)
            last = last_tick_by_tid.get(tid)
            if last is not None and tick <= last:
                fail(f"event {i}: tick {tick} <= {last} on track tid={tid}")
            last_tick_by_tid[tid] = tick
        if ph == "B":
            open_phases[tid] = open_phases.get(tid, 0) + 1
            phase_begins += 1
        elif ph == "E":
            depth = open_phases.get(tid, 0)
            if depth == 0 and not dropped:
                fail(f"event {i}: phase end without begin on tid={tid}")
            open_phases[tid] = max(0, depth - 1)
        name = ev["name"]
        if name == "net.send":
            lineage = ev.get("args", {}).get("lineage")
            if lineage is None:
                fail(f"event {i}: net.send without lineage")
            if lineage in sends:
                fail(f"event {i}: duplicate send lineage {lineage}")
            sends[lineage] = tick
        elif name == "net.deliver":
            lineage = ev.get("args", {}).get("lineage")
            if lineage is None:
                fail(f"event {i}: net.deliver without lineage")
            delivers.append((i, tick, lineage))
        elif name == "net.round":
            rounds += 1

    for tid, depth in open_phases.items():
        if depth != 0 and not dropped:
            fail(f"{depth} unclosed phase(s) on tid={tid}")

    for i, tick, lineage in delivers:
        if lineage not in sends:
            if dropped:
                continue  # the send fell off the wrapped ring
            fail(f"event {i}: deliver lineage {lineage} has no send")
        if not (sends[lineage] < tick):
            fail(
                f"event {i}: deliver tick {tick} not after send tick "
                f"{sends[lineage]} (lineage {lineage})"
            )

    if args.telemetry and not dropped:
        try:
            with open(args.telemetry) as f:
                telemetry = json.load(f).get("telemetry", {})
        except (OSError, ValueError) as e:
            print(f"trace_check: cannot read {args.telemetry}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        want_rounds = int(telemetry.get("counters", {}).get("net.rounds", 0))
        if rounds != want_rounds:
            fail(f"{rounds} net.round events but telemetry counted "
                 f"{want_rounds} network rounds")
        want_spans = count_spans(telemetry.get("spans", []))
        if phase_begins != want_spans:
            fail(f"{phase_begins} phase begins but telemetry recorded "
                 f"{want_spans} spans")

    suffix = f", {dropped} dropped (wrapped ring)" if dropped else ""
    print(
        f"trace OK: {len(events)} events, {len(last_tick_by_tid)} tracks, "
        f"{phase_begins} phases, {len(sends)} sends / {len(delivers)} "
        f"delivers, {rounds} rounds{suffix}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
