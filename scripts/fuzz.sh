#!/usr/bin/env bash
# Pinned-seed fuzz/audit gate: builds the ASan+UBSan configuration and runs
# tools/fuzz_runner over the structured corpus (degenerate graphs, chordal
# mixes, disconnected unions, tie storms, near-chordal adversaries, and
# corrupted read_graph byte streams). Every chordal graph case runs the full
# differential execution matrix - threads {1,8} x cache {on,off} x forest
# engine {fast,ref} - with all per-claim invariant auditors enabled; any
# sanitizer report, crash, or auditor violation fails the gate.
#
# The corpus is a pure function of the seed, so every failure line
# ("FAIL family#seed: ...") replays exactly with
#   fuzz_runner --seed <corpus-seed> ... (or the family call in a debugger).
#
# Usage: scripts/fuzz.sh [extra fuzz_runner args...]
#   CHORDAL_FUZZ_ITERS  approximate corpus size (default 500, floor 60);
#                       raise for deeper soak runs, lower for smoke tests.
#   CHORDAL_FUZZ_DIR    build directory (default build-san, shared with
#                       scripts/check.sh's sanitizer stage).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
dir="${CHORDAL_FUZZ_DIR:-$repo/build-san}"

cmake -B "$dir" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHORDAL_ASAN=ON -DCHORDAL_UBSAN=ON >/dev/null
cmake --build "$dir" -j "$jobs" --target fuzz_runner

"$dir/tools/fuzz_runner" "$@"
