#!/usr/bin/env python3
"""Compare two bench JSON files.

Default mode prints per-bench wall-clock deltas: every span of the repo's
--json telemetry format (name, wall_ms, recursively over children) or every
benchmark of a google-benchmark JSON file (name, cpu_time), matched by name,
with absolute and relative change.

--parity mode instead checks that the two files are byte-equivalent once
timing fields and cache-effectiveness metadata are scrubbed: wall_ms on
spans, real/cpu times and run metadata on google-benchmark output, and every
cache.* counter/gauge/histogram (the cached run publishes those, the
uncached run does not) and every engine.* counter (allocation accounting
that differs between the fast and CHORDAL_FOREST_REFERENCE forest
engines) - they are effectiveness telemetry, not output. The telemetry
"schema" marker (absent = v1, present = v2+) is scrubbed too, so reports
from either side of the versioning change compare clean.
Exits nonzero and reports the first differences when anything else differs.
Scripts use it as the cached-vs-uncached smoke gate; see scripts/check.sh.

Usage:
  bench_diff.py A.json B.json            # wall-clock comparison
  bench_diff.py --parity A.json B.json   # scrubbed equality gate

Only the Python standard library is used.
"""

import argparse
import json
import sys

TIMING_KEYS = {
    "wall_ms",
    "real_time",
    "cpu_time",
    "date",
    "host_name",
    "executable",
    "load_avg",
    "iterations",
    "items_per_second",
    "bytes_per_second",
    # google-benchmark BigO fits are derived from timings
    "cpu_coefficient",
    "real_coefficient",
    "rms",
}

# Cache-effectiveness counters: google-benchmark flattens state.counters
# into top-level keys, so the cached micro-benchmarks report bare
# "hits"/"misses" rather than cache.*-prefixed names.
CACHE_COUNTER_KEYS = {"hits", "misses"}


def is_cache_key(key):
    return key.startswith("cache.") or key in CACHE_COUNTER_KEYS


def is_effectiveness_key(key):
    # engine.* counters (e.g. bench_forest's per-phase allocation counts)
    # measure *how* a configurable engine did the work, not *what* it
    # produced; the fast and reference forest engines legitimately differ
    # on them while agreeing on every output cell. The schema marker is
    # format versioning, not output.
    return is_cache_key(key) or key.startswith("engine.") or key == "schema"


def check_schema(doc, path):
    """Accepts telemetry schema 1 (no marker) and 2; rejects the unknown."""
    schema = doc.get("telemetry", doc).get("schema", 1)
    if schema not in (1, 2):
        sys.exit(f"{path}: unsupported telemetry schema {schema!r}")


def scrub(node):
    """Removes timing fields and cache.*/engine.* metadata, recursively."""
    if isinstance(node, dict):
        return {
            k: scrub(v)
            for k, v in node.items()
            if k not in TIMING_KEYS and not is_effectiveness_key(k)
        }
    if isinstance(node, list):
        return [scrub(x) for x in node]
    return node


def walk_spans(spans, prefix, out):
    for span in spans:
        name = prefix + span.get("name", "?")
        if "wall_ms" in span:
            out[name] = float(span["wall_ms"])
        walk_spans(span.get("children", []), name + " / ", out)


def timings(doc):
    """name -> milliseconds for either supported JSON flavor.

    Tolerant of entries a file may have and its counterpart may not:
    google-benchmark aggregate rows (BigO/RMS fits carry coefficients, not a
    cpu_time) and malformed entries are skipped rather than raising
    KeyError, so two files listing different bench sets still diff — the
    caller reports unmatched names as added/removed.
    """
    out = {}
    if "benchmarks" in doc:  # google-benchmark
        unit_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
        for bench in doc["benchmarks"]:
            name = bench.get("name")
            cpu_time = bench.get("cpu_time")
            if name is None or cpu_time is None:
                continue
            scale = unit_ms.get(bench.get("time_unit", "ns"), 1e-6)
            out[name] = float(cpu_time) * scale
    telemetry = doc.get("telemetry", {})
    walk_spans(telemetry.get("spans", []), "", out)
    return out


def diff_report(a, b, path, lines, limit=20):
    if len(lines) >= limit:
        return
    if type(a) is not type(b):
        lines.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                lines.append(f"{path}.{key}: only in second file")
            elif key not in b:
                lines.append(f"{path}.{key}: only in first file")
            else:
                diff_report(a[key], b[key], f"{path}.{key}", lines, limit)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            lines.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff_report(x, y, f"{path}[{i}]", lines, limit)
        return
    if a != b:
        lines.append(f"{path}: {a!r} != {b!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument(
        "--parity",
        action="store_true",
        help="require equality outside timing and cache.* fields",
    )
    args = parser.parse_args()

    with open(args.a) as f:
        doc_a = json.load(f)
    with open(args.b) as f:
        doc_b = json.load(f)
    check_schema(doc_a, args.a)
    check_schema(doc_b, args.b)

    if args.parity:
        scrubbed_a, scrubbed_b = scrub(doc_a), scrub(doc_b)
        if scrubbed_a == scrubbed_b:
            print(f"parity OK: {args.a} == {args.b} outside timing/cache fields")
            return 0
        lines = []
        diff_report(scrubbed_a, scrubbed_b, "$", lines)
        print(f"parity FAILED: {args.a} vs {args.b}", file=sys.stderr)
        for line in lines:
            print("  " + line, file=sys.stderr)
        return 1

    times_a, times_b = timings(doc_a), timings(doc_b)
    shared = [name for name in times_a if name in times_b]
    if not shared:
        print("no common benches/spans to compare", file=sys.stderr)
        for name in sorted(times_b):
            print(f"(added, only in B)   {name}", file=sys.stderr)
        for name in sorted(times_a):
            print(f"(removed, only in A) {name}", file=sys.stderr)
        return 1
    def fmt_ms(value):
        # Sub-millisecond spans (dynamic-update repairs sit in the tens of
        # microseconds) print in microseconds so the delta column carries
        # signal instead of rounding to 0.000.
        if abs(value) < 1.0:
            return f"{value * 1000.0:.1f}us"
        return f"{value:.3f}"

    width = max(len(name) for name in shared)
    print(f"{'bench':<{width}}  {'A ms':>12}  {'B ms':>12}  {'delta':>10}  ratio")
    for name in shared:
        ta, tb = times_a[name], times_b[name]
        ratio = tb / ta if ta > 0 else float("inf")
        delta = tb - ta
        delta_str = ("-" if delta < 0 else "+") + fmt_ms(abs(delta))
        print(
            f"{name:<{width}}  {fmt_ms(ta):>12}  {fmt_ms(tb):>12}  "
            f"{delta_str:>10}  {ratio:.3f}x"
        )
    for name in sorted(set(times_b) - set(times_a)):
        print(f"(added, only in B)   {name}")
    for name in sorted(set(times_a) - set(times_b)):
        print(f"(removed, only in A) {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
