#!/usr/bin/env bash
# Runs the experiment benches at their pinned seeds (the seeds are baked
# into the bench sources) and writes canonical BENCH_*.json files at the
# repo root. With a suffix argument the files become BENCH_<NAME>_<SUFFIX>
# .json, which is how the cached/uncached evidence pairs are produced:
#
#   CHORDAL_BALL_CACHE=0 scripts/bench_all.sh UNCACHED
#   CHORDAL_BALL_CACHE=1 scripts/bench_all.sh CACHED
#   scripts/bench_diff.py BENCH_PEELING_UNCACHED.json BENCH_PEELING_CACHED.json
#
# The forest-engine evidence pairs are produced the same way with the
# CHORDAL_FOREST_REFERENCE gate:
#
#   CHORDAL_FOREST_REFERENCE=1 scripts/bench_all.sh BEFORE
#   scripts/bench_all.sh AFTER
#   scripts/bench_diff.py BENCH_FOREST_BEFORE.json BENCH_FOREST_AFTER.json
#
# Environment variables (CHORDAL_BALL_CACHE, CHORDAL_FOREST_REFERENCE,
# CHORDAL_THREADS) pass through to the benches. BUILD_DIR overrides the
# build tree (default: build-release, configured and built on demand) and
# OUT_DIR the output directory (default: the repo root — set it to a
# scratch directory for throwaway runs, e.g. the bench-gate step of
# scripts/check.sh, which compares a fresh OUT_DIR run against the
# committed baselines with scripts/bench_gate.py).
#
# Usage: scripts/bench_all.sh [suffix]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build-release}"
out_dir="${OUT_DIR:-$repo}"
suffix="${1:+_$1}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ ! -x "$build/bench/bench_peeling" ]]; then
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$build" -j "$jobs" >/dev/null
fi

run_table_bench() {
  local bench="$1" out="$out_dir/BENCH_$2$suffix.json"
  echo "== $bench -> $(basename "$out")"
  "$build/bench/$bench" --json "$out" >/dev/null
}

run_table_bench bench_peeling PEELING
run_table_bench bench_local_views LOCAL_VIEWS
run_table_bench bench_forest FOREST
run_table_bench bench_mvc_rounds MVC_ROUNDS
run_table_bench bench_mis_chordal MIS_CHORDAL

# E16 scale matrix (legacy vs compact substrate, peak-RSS gauges and
# budgets; --full adds the n=10^7 streaming-interval row). Each cell runs
# in its own child process because ru_maxrss is process-monotone.
out="$out_dir/BENCH_SCALE$suffix.json"
echo "== bench_scale -> $(basename "$out")"
"$build/bench/bench_scale" --full --json "$out" >/dev/null

# E17 dynamic churn matrix (incremental repair vs full rebuild, families
# interval/k-tree at n=10^4..10^6). Emits dyn.*.speedup gauges with
# dyn.*.speedup_floor siblings that bench_gate.py enforces as a hard floor.
# CHORDAL_DYNAMIC_SMOKE=1 restricts the matrix to the n=10^4 cells — the
# k-tree n=10^6 cell alone takes ~14 minutes (adopt + churn + one full
# rebuild), so check.sh's gate step uses the smoke matrix while the
# committed baseline is produced from a full run.
if [[ "${CHORDAL_DYNAMIC_SMOKE:-0}" == 1 ]]; then
  out="$out_dir/BENCH_DYNAMIC$suffix.json"
  echo "== bench_dynamic (smoke) -> $(basename "$out")"
  "$build/bench/bench_dynamic" --smoke --json "$out" >/dev/null
else
  run_table_bench bench_dynamic DYNAMIC
fi

out="$out_dir/BENCH_MICRO$suffix.json"
echo "== bench_micro -> $(basename "$out")"
"$build/bench/bench_micro" --benchmark_format=console \
  --benchmark_out_format=json --benchmark_out="$out" >/dev/null

echo "done: BENCH_*$suffix.json"
