#!/usr/bin/env bash
# Full pre-merge check: build and test the Release configuration, the
# combined ASan+UBSan configuration, and the ThreadSanitizer configuration
# (which exercises the parallel_for drivers at several worker counts). All
# must pass.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$repo" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

echo "== Release =="
run_config "$repo/build-release" -DCMAKE_BUILD_TYPE=Release

echo
echo "== ASan + UBSan =="
run_config "$repo/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHORDAL_ASAN=ON -DCHORDAL_UBSAN=ON

echo
echo "== TSan (parallel drivers, CHORDAL_THREADS=4) =="
CHORDAL_THREADS=4 run_config "$repo/build-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHORDAL_TSAN=ON

echo
echo "All configurations passed."
