#!/usr/bin/env bash
# Full pre-merge check: build and test the Release configuration, then the
# combined ASan+UBSan configuration. Both must pass.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$repo" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

echo "== Release =="
run_config "$repo/build-release" -DCMAKE_BUILD_TYPE=Release

echo
echo "== ASan + UBSan =="
run_config "$repo/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHORDAL_ASAN=ON -DCHORDAL_UBSAN=ON

echo
echo "All configurations passed."
