#!/usr/bin/env bash
# Full pre-merge check: build and test the Release configuration, the
# combined ASan+UBSan configuration, and the ThreadSanitizer configuration
# (which exercises the parallel_for drivers at several worker counts),
# then a cache-parity smoke run: one driver bench executed cached and
# uncached must produce identical JSON outside timing and cache.* fields,
# a trace smoke run (--trace output must validate: well-formed Chrome
# JSON, monotone ticks, resolvable message lineage, counts matching the
# telemetry report), and the bench-regression gate (a fresh bench_all.sh
# run must stay within tolerance of the committed BENCH_*.json baselines).
# All must pass.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S "$repo" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

echo "== Release =="
run_config "$repo/build-release" -DCMAKE_BUILD_TYPE=Release

echo
echo "== ASan + UBSan =="
run_config "$repo/build-san" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHORDAL_ASAN=ON -DCHORDAL_UBSAN=ON

echo
echo "== TSan (parallel drivers, CHORDAL_THREADS=4) =="
CHORDAL_THREADS=4 run_config "$repo/build-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHORDAL_TSAN=ON

echo
echo "== Wide ids (CHORDAL_WIDE_IDS=ON: 64-bit slabs, same outputs) =="
# The id width is storage-only: the full test suite - including the audit
# matrix (threads {1,8} x cache {on,off} x engine {fast,ref}) and the
# trace-parity suites - must pass identically in the 64-bit build.
run_config "$repo/build-wide" -DCMAKE_BUILD_TYPE=Release -DCHORDAL_WIDE_IDS=ON

echo
echo "== Fuzz/audit smoke (pinned-seed corpus under ASan+UBSan) =="
# The sanitizer build above is reused; CHORDAL_FUZZ_ITERS (default 500)
# scales the corpus for deeper soaks. scripts/fuzz.sh is the standalone
# entry point with the same knob.
CHORDAL_FUZZ_DIR="$repo/build-san" "$repo/scripts/fuzz.sh"

echo
echo "== Cache parity smoke (cached vs uncached driver run) =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
CHORDAL_BALL_CACHE=0 "$repo/build-release/bench/bench_local_views" \
  --json "$smoke_dir/uncached.json" >/dev/null
CHORDAL_BALL_CACHE=1 "$repo/build-release/bench/bench_local_views" \
  --json "$smoke_dir/cached.json" >/dev/null
python3 "$repo/scripts/bench_diff.py" --parity \
  "$smoke_dir/uncached.json" "$smoke_dir/cached.json"

echo
echo "== Trace smoke (--trace output validates against telemetry) =="
# One driver bench (no Network) and one message-passing bench: between
# them every event family is exercised — phases, peel/color/MIS decisions,
# cache traffic, forest builds, and network send/deliver lineage.
"$repo/build-release/bench/bench_mvc_rounds" \
  --trace "$smoke_dir/mvc.trace.json" --json "$smoke_dir/mvc.json" >/dev/null
python3 "$repo/scripts/trace_check.py" "$smoke_dir/mvc.trace.json" \
  --telemetry "$smoke_dir/mvc.json"
"$repo/build-release/bench/bench_baselines" \
  --trace "$smoke_dir/base.trace.json" --json "$smoke_dir/base.json" >/dev/null
python3 "$repo/scripts/trace_check.py" "$smoke_dir/base.trace.json" \
  --telemetry "$smoke_dir/base.json"

echo
echo "== Forest engine parity smoke (fast vs CHORDAL_FOREST_REFERENCE) =="
# The counting-sort forest engine and the reference sorted-merge Kruskal
# must agree on every output cell of the forest bench and of a driver-level
# run; only timings and cache.*/engine.* effectiveness telemetry may move.
"$repo/build-release/bench/bench_forest" \
  --json "$smoke_dir/forest_fast.json" >/dev/null
CHORDAL_FOREST_REFERENCE=1 "$repo/build-release/bench/bench_forest" \
  --json "$smoke_dir/forest_ref.json" >/dev/null
python3 "$repo/scripts/bench_diff.py" --parity \
  "$smoke_dir/forest_fast.json" "$smoke_dir/forest_ref.json"
CHORDAL_FOREST_REFERENCE=1 "$repo/build-release/bench/bench_local_views" \
  --json "$smoke_dir/views_ref.json" >/dev/null
python3 "$repo/scripts/bench_diff.py" --parity \
  "$smoke_dir/cached.json" "$smoke_dir/views_ref.json"

echo
echo "== Cross-width parity smoke (32-bit vs 64-bit id slabs) =="
# Same forest bench from the wide build: every output cell (sizes, weights,
# edge hashes) must match the 32-bit run bit-for-bit.
"$repo/build-wide/bench/bench_forest" \
  --json "$smoke_dir/forest_wide.json" >/dev/null
python3 "$repo/scripts/bench_diff.py" --parity \
  "$smoke_dir/forest_fast.json" "$smoke_dir/forest_wide.json"

echo
echo "== Scale smoke (n=10^5 streaming substrate under the RSS ceiling) =="
# Builds 10^5-vertex interval and k-tree graphs through the streaming CSR
# path, asserts allocation-free steady-state queries, and fails if peak RSS
# crosses the ceiling - the cheap always-on version of the E16 scale gate.
"$repo/build-release/bench/bench_scale" --smoke --rss-ceiling-mb 512 \
  >/dev/null

echo
echo "== Dynamic churn smoke (certified updates, colors == omega) =="
# Replays the E17 churn mix at n=10^4 on both graph families through
# DynamicChordal: every applied update repairs the clique forest and the
# labels incrementally, and the binary fails unless the coloring is still
# at omega afterwards. (The 500-schedule differential audit runs under
# ASan in the fuzz stage above; this is the fast release-mode pass.)
"$repo/build-release/bench/bench_dynamic" --smoke >/dev/null

echo
echo "== Bench regression gate (fresh run vs committed baselines) =="
# Regenerates the canonical (unsuffixed) bench set into the smoke dir and
# compares it against the committed BENCH_*.json; suffixed A/B variants
# (CACHED/UNCACHED/BEFORE/AFTER/...) are skipped automatically.
# CHORDAL_DYNAMIC_SMOKE keeps the E17 matrix at its n=10^4 cells here (the
# full matrix is a quarter-hour; its floors are still hard-checked on the
# fresh smoke cells, and the committed baseline comes from a full run).
OUT_DIR="$smoke_dir" BUILD_DIR="$repo/build-release" \
  CHORDAL_DYNAMIC_SMOKE=1 "$repo/scripts/bench_all.sh" >/dev/null
python3 "$repo/scripts/bench_gate.py" --fresh-dir "$smoke_dir"

echo
echo "All configurations passed."
