#!/usr/bin/env python3
"""Bench regression gate: fresh bench output vs. committed baselines.

Compares each baseline BENCH_*.json in --baseline-dir against the
same-named file in --fresh-dir (a fresh `OUT_DIR=<dir> scripts/bench_all.sh`
run) and fails when any tracked metric regresses beyond its tolerance:

  wall-clock   span wall_ms (telemetry tree, name-matched recursively) and
               google-benchmark cpu_time; --tolerance percent, default 60
               (shared machines are noisy; the gate is for 2x-class
               regressions, not microvariance), with a --min-ms floor so
               sub-millisecond spans never trip it
  allocations  every *.allocs counter (the forest engine's per-phase
               allocation accounting — deterministic for a fixed thread
               count); --alloc-tolerance percent, default 25

Two absolute (hard, tolerance-free) contracts are also enforced on the
fresh side: *.peak_rss_mb gauges must stay under their sibling
*.rss_budget_mb budgets (bench_scale), and *.speedup gauges must stay at
or above their sibling *.speedup_floor floors (bench_dynamic's
incremental-vs-full-rebuild ratio).

Benches, spans, or counters present on only one side are reported as
added/removed but do not fail the gate (layouts evolve; timings regress).
Improvements never fail. Telemetry schema 1 (no marker) and 2 are both
accepted; anything else is an error.

Exit status: 0 = within tolerance, 1 = regression(s), 2 = usage/setup.

Usage:
  scripts/bench_gate.py --fresh-dir /tmp/bench.fresh
  scripts/bench_gate.py --fresh-dir d --tolerance 40 BENCH_MVC_ROUNDS_CACHED.json

Only the Python standard library is used. scripts/check.sh runs this after
regenerating the bench set; see README "Tracing and the bench gate".
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("telemetry", doc).get("schema", 1)
    if schema not in (1, 2):
        sys.exit(f"{path}: unsupported telemetry schema {schema!r}")
    return doc


def walk_spans(spans, prefix, out):
    for span in spans:
        name = prefix + span.get("name", "?")
        if "wall_ms" in span:
            out[name] = float(span["wall_ms"])
        walk_spans(span.get("children", []), name + " / ", out)


def wall_clocks(doc):
    """name -> milliseconds (telemetry spans and google-benchmark rows)."""
    out = {}
    if "benchmarks" in doc:
        unit_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
        for bench in doc["benchmarks"]:
            name, cpu_time = bench.get("name"), bench.get("cpu_time")
            if name is None or cpu_time is None:
                continue  # aggregate rows (BigO/RMS) carry no cpu_time
            out[name] = float(cpu_time) * unit_ms.get(
                bench.get("time_unit", "ns"), 1e-6
            )
    walk_spans(doc.get("telemetry", {}).get("spans", []), "", out)
    return out


def alloc_counters(doc):
    """name -> count for every *.allocs telemetry counter."""
    counters = doc.get("telemetry", {}).get("counters", {})
    return {
        k: float(v) for k, v in counters.items() if k.endswith(".allocs")
    }


def rss_gauges(doc):
    """name -> MB for every *.peak_rss_mb telemetry gauge."""
    gauges = doc.get("telemetry", {}).get("gauges", {})
    return {
        k: float(v) for k, v in gauges.items() if k.endswith(".peak_rss_mb")
    }


def check_rss_budgets(name, doc, failures):
    """Absolute peak-RSS budgets: a *.peak_rss_mb gauge whose sibling
    *.rss_budget_mb gauge exists must stay under it (bench_scale emits the
    pair per cell). Unlike the relative tolerances this is a hard ceiling:
    the substrate's memory contract, not a noise bound."""
    gauges = doc.get("telemetry", {}).get("gauges", {})
    for key, value in sorted(gauges.items()):
        if not key.endswith(".peak_rss_mb"):
            continue
        budget_key = key[: -len(".peak_rss_mb")] + ".rss_budget_mb"
        budget = gauges.get(budget_key)
        if budget is None:
            continue
        if float(value) > float(budget):
            failures.append(
                f"{name}: peak-RSS budget exceeded: {key}: "
                f"{float(value):.1f} MB > budget {float(budget):.1f} MB"
            )


def check_speedup_floors(name, doc, failures):
    """Absolute incremental-vs-rebuild floors: a *.speedup gauge whose
    sibling *.speedup_floor gauge exists must stay at or above it
    (bench_dynamic emits the pair per churn cell). Like the RSS budgets
    this is a hard contract, not a noise tolerance: incremental repair
    that degenerates toward full-rebuild cost is a correctness-of-design
    failure even if it is "only" a slowdown."""
    gauges = doc.get("telemetry", {}).get("gauges", {})
    for key, value in sorted(gauges.items()):
        if not key.endswith(".speedup"):
            continue
        floor = gauges.get(key + "_floor")
        if floor is None:
            continue
        if float(value) < float(floor):
            failures.append(
                f"{name}: speedup floor violated: {key}: "
                f"{float(value):.1f}x < floor {float(floor):.1f}x"
            )


def compare(name, kind, base, fresh, tol_pct, min_abs, failures, notes):
    """Flags fresh[k] > base[k] * (1 + tol) for every shared key."""
    for key in sorted(set(base) | set(fresh)):
        if key not in fresh:
            notes.append(f"{name}: {kind} removed: {key}")
            continue
        if key not in base:
            notes.append(f"{name}: {kind} added: {key}")
            continue
        b, f = base[key], fresh[key]
        if b < min_abs and f < min_abs:
            continue  # too small for a relative bound to mean anything
        limit = b * (1.0 + tol_pct / 100.0)
        if f > limit and f - b >= min_abs:
            failures.append(
                f"{name}: {kind} regression: {key}: "
                f"{b:.3f} -> {f:.3f} ({f / b if b > 0 else float('inf'):.2f}x, "
                f"tolerance {tol_pct:.0f}%)"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        help="baseline file names to gate (default: every BENCH_*.json "
        "in --baseline-dir that also exists in --fresh-dir)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), ".."),
        help="directory holding committed BENCH_*.json (default: repo root)",
    )
    parser.add_argument("--fresh-dir", required=True,
                        help="directory holding the fresh bench JSON files")
    parser.add_argument("--tolerance", type=float, default=60.0,
                        help="allowed wall-clock regression, percent")
    parser.add_argument("--alloc-tolerance", type=float, default=25.0,
                        help="allowed allocation-counter regression, percent")
    parser.add_argument("--min-ms", type=float, default=1.0,
                        help="ignore wall-clock spans below this many ms")
    parser.add_argument("--rss-tolerance", type=float, default=30.0,
                        help="allowed peak-RSS gauge regression, percent")
    parser.add_argument("--min-rss-mb", type=float, default=32.0,
                        help="ignore peak-RSS gauges below this many MB")
    args = parser.parse_args()

    names = args.names or sorted(
        os.path.basename(p)
        for p in glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))
    )
    if not names:
        sys.exit(f"no BENCH_*.json baselines in {args.baseline_dir}")

    failures, notes, compared = [], [], 0
    for name in names:
        base_path = os.path.join(args.baseline_dir, name)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(base_path):
            sys.exit(f"missing baseline: {base_path}")
        if not os.path.exists(fresh_path):
            # bench_all.sh may cover a subset of the committed baselines
            # (suffixed variants come from dedicated A/B scripts).
            notes.append(f"{name}: no fresh run, skipped")
            continue
        base, fresh = load(base_path), load(fresh_path)
        compared += 1
        compare(name, "wall-clock", wall_clocks(base), wall_clocks(fresh),
                args.tolerance, args.min_ms, failures, notes)
        compare(name, "alloc", alloc_counters(base), alloc_counters(fresh),
                args.alloc_tolerance, 0.0, failures, notes)
        compare(name, "peak-rss", rss_gauges(base), rss_gauges(fresh),
                args.rss_tolerance, args.min_rss_mb, failures, notes)
        check_rss_budgets(name, fresh, failures)
        check_speedup_floors(name, fresh, failures)

    for line in notes:
        print(f"  note: {line}")
    if compared == 0:
        sys.exit("bench gate: nothing to compare (no fresh files matched)")
    if failures:
        print(f"bench gate FAILED ({len(failures)} regression(s)):",
              file=sys.stderr)
        for line in failures:
            print("  " + line, file=sys.stderr)
        return 1
    print(f"bench gate OK: {compared} file(s) within "
          f"{args.tolerance:.0f}% wall / {args.alloc_tolerance:.0f}% alloc")
    return 0


if __name__ == "__main__":
    sys.exit(main())
