#include "core/dynamic.hpp"

#include <algorithm>
#include <string>

#include "cliqueforest/forest.hpp"
#include "graph/cliques.hpp"
#include "graph/peo.hpp"

namespace chordal {

DynamicChordal::DynamicChordal(const Graph& g) : graph_(g) {
  EliminationOrder peo = peo_or_throw(g);  // rejects non-chordal input
  CliqueFamily family = maximal_cliques_chordal_family(g, peo);
  std::vector<WcigEdge> forest_edges =
      max_weight_spanning_forest(family, g.num_vertices());
  forest_.init(family, forest_edges, g.num_vertices());
  labels_.reset(graph_);
}

void DynamicChordal::mark_touched(int v) {
  if (touch_stamp_.size() < static_cast<std::size_t>(graph_.num_slots())) {
    touch_stamp_.resize(static_cast<std::size_t>(graph_.num_slots()), 0);
  }
  auto vi = static_cast<std::size_t>(v);
  if (touch_stamp_[vi] == touch_epoch_) return;
  touch_stamp_[vi] = touch_epoch_;
  touched_.push_back(v);
}

void DynamicChordal::drain_touched() {
  touched_.clear();
  revived_.clear();
  killed_.clear();
  ++touch_epoch_;
}

std::vector<int> DynamicChordal::sorted_common_neighbors(int u, int v) const {
  std::vector<int> out;
  auto nu = graph_.neighbors(u);
  auto nv = graph_.neighbors(v);
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nv[j] < nu[i]) {
      ++j;
    } else {
      out.push_back(static_cast<int>(nu[i]));
      ++i;
      ++j;
    }
  }
  return out;
}

bool DynamicChordal::edge_insert_fastpath(int u, int v,
                                          std::span<const int> common) {
  // Stamp S = N(u) cut N(v) on the vertex scratch.
  scratch_.ensure(graph_.num_slots());
  ++scratch_.epoch;
  for (int x : common) scratch_.blocked[static_cast<std::size_t>(x)] = scratch_.epoch;

  auto slots = static_cast<std::size_t>(forest_.num_clique_slots());
  if (fstamp_.size() < slots) {
    fstamp_.resize(slots, 0);
    ftarget_.resize(slots, 0);
    fparent_.resize(slots, -1);
  }
  ++fepoch_;
  for (std::int32_t c : forest_.cliques_of(v)) {
    ftarget_[static_cast<std::size_t>(c)] = fepoch_;
  }
  fqueue_.clear();
  for (std::int32_t c : forest_.cliques_of(u)) {
    fstamp_[static_cast<std::size_t>(c)] = fepoch_;
    fparent_[static_cast<std::size_t>(c)] = -1;
    fqueue_.push_back(c);
  }
  // Multi-source BFS from T(u) until the first T(v) clique: the connecting
  // tree path between the two subtrees.
  int hit = -1;
  for (std::size_t head = 0; head < fqueue_.size() && hit < 0; ++head) {
    std::int32_t x = fqueue_[head];
    ++stats_.path_steps;
    for (const auto& nb : forest_.forest_neighbors(x)) {
      auto ni = static_cast<std::size_t>(nb.clique);
      if (fstamp_[ni] == fepoch_) continue;
      fstamp_[ni] = fepoch_;
      fparent_[ni] = x;
      if (ftarget_[ni] == fepoch_) {
        hit = nb.clique;
        break;
      }
      fqueue_.push_back(nb.clique);
    }
  }
  if (hit < 0) return true;  // different trees: S trivially separates
  // Valid iff some path edge's bag intersection is contained in S: that
  // intersection is a u-v separator (clique-tree edge property), and a
  // superset of a separator separates.
  for (int p = hit; fparent_[static_cast<std::size_t>(p)] != -1;
       p = fparent_[static_cast<std::size_t>(p)]) {
    int q = fparent_[static_cast<std::size_t>(p)];
    CliqueWord a = forest_.word(p), b = forest_.word(q);
    bool inside = true;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        if (scratch_.blocked[static_cast<std::size_t>(a[i])] !=
            scratch_.epoch) {
          inside = false;
          break;
        }
        ++i;
        ++j;
      }
    }
    if (inside) return true;
  }
  return false;
}

void DynamicChordal::absorb(const ForestRepairStats& fs,
                            const LabelRepairStats& ls) {
  stats_.cliques_removed += fs.cliques_removed;
  stats_.cliques_added += fs.cliques_added;
  stats_.pool_edges += fs.pool_edges;
  stats_.path_steps += fs.path_steps;
  stats_.edge_swaps += fs.edge_swaps;
  stats_.labels_processed += ls.processed;
  stats_.color_changes += ls.color_changes;
  stats_.mis_flips += ls.mis_flips;
}

void DynamicChordal::insert_edge(int u, int v) {
  if (!graph_.alive(u) || !graph_.alive(v)) {
    throw std::invalid_argument("insert_edge: endpoint not alive");
  }
  if (u == v) {
    throw std::invalid_argument("insert_edge: self-loop at " +
                                std::to_string(u));
  }
  if (graph_.has_edge(u, v)) {
    throw std::invalid_argument("insert_edge: edge already present");
  }
  std::vector<int> common = sorted_common_neighbors(u, v);
  if (edge_insert_fastpath(u, v, common)) {
    ++stats_.fastpath_accepts;
  } else {
    ++stats_.oracle_calls;
    std::vector<int> cycle = certify_edge_insert(graph_, u, v, scratch_);
    if (!cycle.empty()) {
      ++stats_.rejected;
      throw ChordalityViolation(
          "insert_edge(" + std::to_string(u) + ", " + std::to_string(v) +
              "): common neighborhood does not separate the endpoints; a "
              "chordless cycle of length " +
              std::to_string(cycle.size()) + " would appear",
          std::move(cycle));
    }
  }
  graph_.add_edge(u, v);
  ForestRepairStats fs = forest_.apply_edge_insert(u, v, common);
  int seeds[2] = {u, v};
  LabelRepairStats ls = labels_.repair(graph_, seeds);
  ++stats_.edge_inserts;
  absorb(fs, ls);
  mark_touched(u);
  mark_touched(v);
}

void DynamicChordal::delete_edge(int u, int v) {
  if (!graph_.has_edge(u, v)) {
    throw std::invalid_argument("delete_edge: edge (" + std::to_string(u) +
                                ", " + std::to_string(v) + ") not present");
  }
  std::int32_t holders[2];
  int count = forest_.cliques_containing_edge(u, v, holders);
  if (count != 1) {
    ++stats_.oracle_calls;
    std::vector<int> cycle = certify_edge_delete(graph_, u, v);
    ++stats_.rejected;
    throw ChordalityViolation(
        "delete_edge(" + std::to_string(u) + ", " + std::to_string(v) +
            "): edge lies in " + std::to_string(count) +
            " maximal cliques; removing it leaves a chordless 4-cycle",
        std::move(cycle));
  }
  graph_.remove_edge(u, v);
  ForestRepairStats fs = forest_.apply_edge_delete(u, v);
  int seeds[2] = {u, v};
  LabelRepairStats ls = labels_.repair(graph_, seeds);
  ++stats_.edge_deletes;
  absorb(fs, ls);
  mark_touched(u);
  mark_touched(v);
}

int DynamicChordal::insert_vertex(std::span<const int> neighbors) {
  std::vector<int> x(neighbors.begin(), neighbors.end());
  std::sort(x.begin(), x.end());
  if (std::adjacent_find(x.begin(), x.end()) != x.end()) {
    throw std::invalid_argument("insert_vertex: duplicate neighbor");
  }
  for (int w : x) {
    if (!graph_.alive(w)) {
      throw std::invalid_argument("insert_vertex: neighbor " +
                                  std::to_string(w) + " is not alive");
    }
  }
  bool x_is_clique = true;
  for (std::size_t i = 0; i < x.size() && x_is_clique; ++i) {
    for (std::size_t j = i + 1; j < x.size(); ++j) {
      if (!graph_.has_edge(x[i], x[j])) {
        x_is_clique = false;
        break;
      }
    }
  }
  std::vector<std::vector<int>> gx;
  if (x_is_clique) {
    if (!x.empty()) gx.push_back(x);
  } else {
    ++stats_.oracle_calls;
    std::vector<int> cycle = certify_vertex_insert(graph_, x, scratch_);
    if (!cycle.empty()) {
      ++stats_.rejected;
      throw ChordalityViolation(
          "insert_vertex: neighborhood attaches to a component through a "
          "non-clique; a chordless cycle of length " +
              std::to_string(cycle.size()) + " would appear",
          std::move(cycle));
    }
    // Maximal cliques of G[X] via a local induced build (|X| is small by
    // the locality contract; G[X] is chordal as an induced subgraph).
    GraphBuilder builder(static_cast<int>(x.size()));
    for (std::size_t i = 0; i < x.size(); ++i) {
      for (std::size_t j = i + 1; j < x.size(); ++j) {
        if (graph_.has_edge(x[i], x[j])) {
          builder.add_edge(static_cast<int>(i), static_cast<int>(j));
        }
      }
    }
    gx = maximal_cliques_chordal(builder.build());
    for (auto& word : gx) {
      for (int& local : word) local = x[static_cast<std::size_t>(local)];
    }
  }
  int z = graph_.add_vertex(x);
  forest_.ensure_vertex_slots(graph_.num_slots());
  ForestRepairStats fs = forest_.apply_vertex_insert(z, gx);
  seed_buf_.assign(x.begin(), x.end());
  seed_buf_.push_back(z);
  LabelRepairStats ls = labels_.repair(graph_, seed_buf_);
  ++stats_.vertex_inserts;
  absorb(fs, ls);
  for (int w : x) mark_touched(w);
  mark_touched(z);
  revived_.push_back(z);
  return z;
}

void DynamicChordal::delete_vertex(int v) {
  if (!graph_.alive(v)) {
    throw std::invalid_argument("delete_vertex: vertex " + std::to_string(v) +
                                " is not alive");
  }
  auto nbrs = graph_.neighbors(v);
  seed_buf_.assign(nbrs.begin(), nbrs.end());
  seed_buf_.push_back(v);
  graph_.remove_vertex(v);
  ForestRepairStats fs = forest_.apply_vertex_delete(v);
  LabelRepairStats ls = labels_.repair(graph_, seed_buf_);
  ++stats_.vertex_deletes;
  absorb(fs, ls);
  for (int w : seed_buf_) mark_touched(w);
  killed_.push_back(v);
}

DynamicChordal::Signature DynamicChordal::signature() const {
  Signature sig;
  for (int v = 0; v < graph_.num_slots(); ++v) {
    if (!graph_.alive(v)) continue;
    sig.colors.emplace_back(v, labels_.color(v));
    if (labels_.in_mis(v)) sig.mis.push_back(v);
  }
  sig.family = forest_.canonical_family().to_nested();
  sig.forest = forest_.canonical_forest_edges();
  return sig;
}

DynamicChordal::Signature DynamicChordal::recompute_signature(
    const DynamicGraph& g) {
  Signature sig;
  std::vector<int> alive = g.alive_vertices();
  Graph full = g.materialize();
  std::vector<int> original_of;
  Graph sub = full.induced_subgraph(alive, &original_of);
  EliminationOrder peo = peo_or_throw(sub);
  CliqueFamily family = maximal_cliques_chordal_family(sub, peo);
  std::vector<WcigEdge> forest_edges =
      max_weight_spanning_forest(family, sub.num_vertices());

  // Canonical labels in compact id order == slot order (the alive list is
  // ascending, so the relabeling is monotone and mex/MIS rules commute).
  int n = sub.num_vertices();
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  std::vector<char> mis(static_cast<std::size_t>(n), 0);
  std::vector<char> seen;
  for (int v = 0; v < n; ++v) {
    auto nbrs = sub.neighbors(v);
    int deg = sub.degree(v);
    seen.assign(static_cast<std::size_t>(deg) + 1, 0);
    bool m = true;
    for (VertexId uv : nbrs) {
      int u = static_cast<int>(uv);
      if (u >= v) break;
      if (color[static_cast<std::size_t>(u)] <= deg) {
        seen[static_cast<std::size_t>(color[static_cast<std::size_t>(u)])] = 1;
      }
      if (mis[static_cast<std::size_t>(u)]) m = false;
    }
    int c = 0;
    while (c <= deg && seen[static_cast<std::size_t>(c)]) ++c;
    color[static_cast<std::size_t>(v)] = c;
    mis[static_cast<std::size_t>(v)] = m ? 1 : 0;
    sig.colors.emplace_back(original_of[static_cast<std::size_t>(v)], c);
    if (m) sig.mis.push_back(original_of[static_cast<std::size_t>(v)]);
  }

  // Words map monotonically back to slot ids, so sortedness and the
  // family's lexicographic order survive the relabeling.
  sig.family.reserve(family.size());
  for (CliqueWord w : family) {
    std::vector<int> word;
    word.reserve(w.size());
    for (VertexId lv : w) {
      word.push_back(original_of[static_cast<std::size_t>(lv)]);
    }
    sig.family.push_back(std::move(word));
  }
  for (const WcigEdge& e : forest_edges) {
    const auto& lo = sig.family[static_cast<std::size_t>(e.a)];
    const auto& hi = sig.family[static_cast<std::size_t>(e.b)];
    if (hi < lo) {
      sig.forest.emplace_back(hi, lo);
    } else {
      sig.forest.emplace_back(lo, hi);
    }
  }
  std::sort(sig.forest.begin(), sig.forest.end());
  return sig;
}

}  // namespace chordal
