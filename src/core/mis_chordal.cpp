#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/mis.hpp"
#include "core/peeling.hpp"
#include "interval/absorbing_mis.hpp"
#include "interval/mis_interval.hpp"
#include "interval/offline.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::core {

namespace {

using interval::PathIntervals;

/// Splits an interval model into connected components (local index lists).
std::vector<std::vector<std::size_t>> model_components(
    const PathIntervals& rep) {
  return interval::components(rep);
}

}  // namespace

MisResult mis_chordal(const Graph& g, const MisOptions& options) {
  if (options.eps <= 0 || options.eps >= 0.5) {
    throw std::invalid_argument("mis_chordal: eps must be in (0, 1/2)");
  }
  MisResult result;
  // The scale parameters are pure functions of eps; fill them before the
  // degenerate early return so the result contract holds for n = 0 too
  // (fuzz-found: d/iterations stayed 0 on the empty graph).
  result.d = options.d_override > 0
                 ? options.d_override
                 : static_cast<int>(std::ceil(64.0 / options.eps));
  result.iterations = static_cast<int>(std::ceil(std::log2(
                          static_cast<double>(result.d) / options.eps))) +
                      2;
  if (g.num_vertices() == 0) return result;

  obs::Span span("MIS Algorithm 6 (Theorems 7/8)");
  const bool telemetry = span.live();
  std::vector<std::int64_t> congestion;

  if (telemetry) {
    congestion.assign(static_cast<std::size_t>(g.num_vertices()), 0);
    span.note("n", g.num_vertices());
    span.note("d", result.d);
    span.note("eps", options.eps);
    span.note("iterations", result.iterations);
  }

  CliqueForest forest = CliqueForest::build(g);
  PeelConfig config;
  config.mode = PeelMode::kIndependentSet;
  config.d = result.d;
  config.max_iterations = result.iterations;
  // One metric cache across peeling and the layer solves: the peel
  // thresholds materialize exactly the interval models the per-layer solves
  // re-derive for the taken paths.
  PathMetricCache path_cache;
  std::vector<PathMetricCache::WorkerLog> metric_logs(
      static_cast<std::size_t>(support::num_threads()));
  PeelingResult peeling;
  {
    obs::Span peel_span("pruning: O(log(1/eps)) peel iterations (Lemma 14)");
    peeling = peel(g, forest, config, &path_cache);
    peel_span.note("layers", peeling.num_layers);
  }

  std::vector<char> in_set(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<char> blocked(static_cast<std::size_t>(g.num_vertices()), 0);

  // Ball radius per peel iteration: enough to see the 2d+3 diameter
  // decisions plus the absorbing sweeps.
  const std::int64_t ball_rounds = 4 * static_cast<std::int64_t>(result.d) +
                                   6;

  int layer_index = 0;
  for (const auto& layer : peeling.layers) {
    ++layer_index;
    obs::Span layer_span("peeling layer " + std::to_string(layer_index) +
                         " solve");
    if (telemetry) {
      // Ball collection heartbeat: every still-undecided node hears one
      // word per neighbor per round of this layer's Gamma^{4d+6} sweep.
      std::int64_t messages = 0;
      for (int v = 0; v < g.num_vertices(); ++v) {
        if (peeling.layer_of[v] != 0 && peeling.layer_of[v] < layer_index) {
          continue;
        }
        std::int64_t words =
            static_cast<std::int64_t>(g.degree(v)) * ball_rounds;
        congestion[v] += words;
        messages += words;
      }
      layer_span.add_messages(messages, messages);
    }
    std::int64_t layer_mis_rounds = 0;
    // Distinct paths of one layer are non-adjacent (Lemma 11): a pick in
    // one path never blocks a vertex of another path of the same layer, so
    // every path's component solves run in parallel against the pre-layer
    // blocked state. The in_set/blocked updates (and the conflict tripwire)
    // are applied sequentially afterwards, in the original path order.
    struct PathOutcome {
      std::vector<std::vector<int>> picked_by_comp;  // global ids, pick order
      int absorbing = 0;
      int approx = 0;
      std::int64_t mis_rounds = 0;
      std::int64_t msg_count = 0;
      std::int64_t msg_words = 0;
    };
    std::vector<PathOutcome> outcomes(layer.size());
    std::vector<PathScratch> scratch(
        static_cast<std::size_t>(support::num_threads()));
    support::parallel_for(layer.size(), [&](std::size_t pi,
                                            std::size_t worker) {
      const auto& lp = layer[pi];
      PathOutcome& out = outcomes[pi];
      PathScratch& ps = scratch[worker];
      const PathIntervals& full = *cached_path_intervals(
          forest, lp.path, ps, ps.rep, path_cache, metric_logs[worker]);
      // Eligible = owned vertices with no neighbor already chosen.
      std::vector<std::size_t> eligible;
      for (std::size_t i = 0; i < full.vertices.size(); ++i) {
        int v = full.vertices[i];
        if (!blocked[v] &&
            std::binary_search(lp.owned.begin(), lp.owned.end(), v)) {
          eligible.push_back(i);
        }
      }
      if (eligible.empty()) return;
      PathIntervals model = interval::restrict(full, eligible);

      for (const auto& comp : model_components(model)) {
        PathIntervals sub = interval::restrict(model, comp);
        if (telemetry) {
          // Each component member learns the component's interval model
          // (two words per interval) before the local solve.
          auto model_words = static_cast<std::int64_t>(2 * sub.vertices.size());
          for (std::size_t i = 0; i < sub.vertices.size(); ++i) {
            congestion[sub.vertices[i]] += model_words;
          }
          out.msg_count += static_cast<std::int64_t>(sub.vertices.size());
          out.msg_words +=
              static_cast<std::int64_t>(sub.vertices.size()) * model_words;
        }
        std::vector<std::size_t> picked_local;
        if (interval::alpha(sub) < result.d) {
          ++out.absorbing;
          // Attachment side: the component touches the left (right) end
          // clique of the path iff some member covers the first (last)
          // position; an attachment exists there iff the path has one.
          bool touch_left = false, touch_right = false;
          for (std::size_t i = 0; i < sub.vertices.size(); ++i) {
            touch_left = touch_left || sub.lo[i] == 0;
            touch_right = touch_right || sub.hi[i] == full.num_positions - 1;
          }
          interval::AttachSide side = interval::AttachSide::kNone;
          if (lp.path.attach_left != -1 && touch_left) {
            side = interval::AttachSide::kLeft;
          }
          if (lp.path.attach_right != -1 && touch_right) {
            side = interval::AttachSide::kRight;
          }
          picked_local = interval::absorbing_mis(sub, side);
          out.mis_rounds = std::max<std::int64_t>(out.mis_rounds,
                                                  2 * result.d + 3);
        } else {
          ++out.approx;
          auto res = interval::approx_mis_interval(sub, options.eps / 8.0);
          picked_local = std::move(res.chosen);
          out.mis_rounds = std::max(out.mis_rounds, res.rounds);
        }
        auto& picks = out.picked_by_comp.emplace_back();
        picks.reserve(picked_local.size());
        for (std::size_t i : picked_local) picks.push_back(sub.vertices[i]);
      }
    });
    path_cache.merge(metric_logs);
    std::int64_t layer_msg_count = 0, layer_msg_words = 0;
    for (const PathOutcome& out : outcomes) {
      result.absorbing_components += out.absorbing;
      result.approx_components += out.approx;
      layer_mis_rounds = std::max(layer_mis_rounds, out.mis_rounds);
      layer_msg_count += out.msg_count;
      layer_msg_words += out.msg_words;
      for (const auto& picks : out.picked_by_comp) {
        for (int v : picks) {
          if (blocked[v] || in_set[v]) {
            throw std::logic_error("mis_chordal: conflicting pick");
          }
          in_set[v] = 1;
          obs::trace_emit(nullptr, obs::TraceEventKind::kMisPick, v,
                          layer_index);
        }
        for (int v : picks) {
          for (int w : g.neighbors(v)) blocked[w] = 1;
        }
      }
    }
    if (telemetry && layer_msg_count > 0) {
      obs::Span::charge_messages(layer_msg_count, layer_msg_words);
    }
    result.rounds += ball_rounds + layer_mis_rounds;
    layer_span.set_rounds(ball_rounds + layer_mis_rounds);
  }

  for (int v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) result.chosen.push_back(v);
  }
  span.set_rounds(result.rounds);
  span.note("chosen", static_cast<double>(result.chosen.size()));
  span.note("absorbing_components", result.absorbing_components);
  span.note("approx_components", result.approx_components);
  if (telemetry) {
    if (obs::Registry* reg = obs::current()) {
      auto& hist = reg->histogram("mis.node_congestion_words");
      for (int v = 0; v < g.num_vertices(); ++v) {
        hist.add(static_cast<double>(congestion[v]));
      }
    }
  }
  return result;
}

}  // namespace chordal::core
