#include "core/checks.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace chordal::core {

bool is_proper_coloring(const Graph& g, std::span<const int> colors) {
  if (static_cast<int>(colors.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] < 0) return false;
    for (int w : g.neighbors(v)) {
      if (colors[v] == colors[w]) return false;
    }
  }
  return true;
}

void require_proper_coloring(const Graph& g, std::span<const int> colors) {
  if (static_cast<int>(colors.size()) != g.num_vertices()) {
    throw std::logic_error("coloring: size mismatch");
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] < 0) {
      throw std::logic_error("coloring: vertex " + std::to_string(v) +
                             " uncolored");
    }
    for (int w : g.neighbors(v)) {
      if (colors[v] == colors[w]) {
        throw std::logic_error("coloring: edge " + std::to_string(v) + "-" +
                               std::to_string(w) + " monochromatic");
      }
    }
  }
}

bool is_independent_set(const Graph& g, std::span<const int> vertices) {
  std::set<int> seen;
  for (int v : vertices) {
    if (v < 0 || v >= g.num_vertices() || !seen.insert(v).second) {
      return false;
    }
  }
  for (int v : vertices) {
    for (int w : g.neighbors(v)) {
      if (seen.count(w)) return false;
    }
  }
  return true;
}

void require_independent_set(const Graph& g,
                             std::span<const int> vertices) {
  std::set<int> seen;
  for (int v : vertices) {
    if (v < 0 || v >= g.num_vertices()) {
      throw std::logic_error("independent set: vertex out of range");
    }
    if (!seen.insert(v).second) {
      throw std::logic_error("independent set: duplicate vertex " +
                             std::to_string(v));
    }
  }
  for (int v : vertices) {
    for (int w : g.neighbors(v)) {
      if (seen.count(w)) {
        throw std::logic_error("independent set: adjacent pair " +
                               std::to_string(v) + "-" + std::to_string(w));
      }
    }
  }
}

int count_colors(std::span<const int> colors) {
  std::set<int> used;
  for (int c : colors) {
    if (c >= 0) used.insert(c);
  }
  return static_cast<int>(used.size());
}

}  // namespace chordal::core
