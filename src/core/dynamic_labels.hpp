// Canonical per-vertex labels (greedy coloring + lexicographically-first
// MIS) maintained under graph churn by ascending-id worklist repair.
//
// The batch pipeline's colorings depend on a perfect elimination order whose
// global tie-breaks make local repair impossible (one edge flip can relabel
// the whole order). The dynamic layer therefore maintains the two *confluent*
// canonical labelings over stable slot ids:
//
//   color(v) = mex { color(u) : u alive neighbor of v, u < v }
//   mis(v)   = true iff no alive neighbor u < v has mis(u)
//
// Both are pure functions of the current graph with a dependency DAG ordered
// by id, so they have a unique fixed point: an incremental repair that
// reaches the fixed point is *bit-identical* to full recomputation - the
// property the audit matrix asserts after every fuzzed update. Repair seeds
// the touched vertices into a min-heap worklist and processes ascending;
// a changed label pushes only larger-id neighbors, so each vertex is
// evaluated at most once per repair and the cost is O(dirty region * deg).
//
// The greedy coloring is a (Delta+1)-bound heuristic, not the paper's
// (1+eps)-approximation - the dynamic bench reports its color count next to
// omega so the quality gap stays visible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dynamic_graph.hpp"

namespace chordal {

struct LabelRepairStats {
  int processed = 0;      // vertices re-evaluated
  int color_changes = 0;  // evaluations that changed the color
  int mis_flips = 0;      // evaluations that flipped MIS membership
};

class DynamicLabels {
 public:
  /// Full recomputation over all slots (construction / reference path).
  void reset(const DynamicGraph& g);

  /// Repairs to the fixed point after a mutation. `seeds` must contain
  /// every vertex whose label inputs may have changed: both endpoints of an
  /// edge flip, a new vertex plus its neighbors, a deleted vertex (its
  /// labels are cleared) plus its former neighbors.
  LabelRepairStats repair(const DynamicGraph& g, std::span<const int> seeds);

  int color(int v) const { return color_[static_cast<std::size_t>(v)]; }
  bool in_mis(int v) const { return mis_[static_cast<std::size_t>(v)] != 0; }
  int mis_size() const { return mis_size_; }
  /// Number of distinct colors among alive vertices. Greedy mex colorings
  /// use a contiguous range, so this is max color + 1.
  int num_colors(const DynamicGraph& g) const;

 private:
  void ensure(int n);
  /// Evaluates the canonical rules for v against current smaller-id labels.
  void eval(const DynamicGraph& g, int v, int* color, bool* mis);

  std::vector<int> color_;  // -1 for dead slots
  std::vector<char> mis_;
  int mis_size_ = 0;

  std::vector<std::uint64_t> pending_;  // in-heap stamp
  std::uint64_t pending_epoch_ = 0;
  std::vector<int> heap_;               // min-heap worklist
  std::vector<std::uint64_t> mark_;     // mex scratch, stamped per eval
  std::uint64_t mark_epoch_ = 0;
};

}  // namespace chordal
