// The layer-peeling process shared by both headline algorithms.
//
// Iteration i takes the clique forest T_i of the still-unassigned graph
// G[U_i], collects the set L_i of maximal pendant paths plus the maximal
// internal paths passing a mode-dependent threshold, and peels off the
// vertices whose whole subtree lies inside one of those paths. Lemma 5
// shows T_{i+1} is simply T_i minus the removed paths (the surviving
// maximal cliques are unchanged), so one globally built forest with an
// activity mask reproduces the entire process. Lemma 6 bounds the number of
// iterations by ceil(log2 n).
#pragma once

#include <vector>

#include "cliqueforest/forest.hpp"
#include "cliqueforest/path_cache.hpp"
#include "cliqueforest/paths.hpp"
#include "graph/graph.hpp"

namespace chordal::core {

enum class PeelMode {
  /// Algorithm 1: internal paths need diameter >= 3k; run until exhausted.
  kColoring,
  /// Algorithm 6: internal paths need diameter >= 2d+3; exactly
  /// `max_iterations` rounds, the last switching to independence >= d.
  kIndependentSet,
};

struct PeelConfig {
  PeelMode mode = PeelMode::kColoring;
  int k = 2;              // coloring-mode scale (threshold 3k)
  int d = 4;              // MIS-mode scale (thresholds 2d+3 and alpha >= d)
  int max_iterations = 0; // MIS mode only; 0 = unbounded (coloring)
};

struct LayerPath {
  ForestPath path;
  std::vector<int> owned;  // W: the vertices peeled with this path, sorted
};

struct PeelingResult {
  /// layer_of[v]: 1-based peel iteration, or 0 if v was never peeled (only
  /// possible in MIS mode, which stops early).
  std::vector<int> layer_of;
  int num_layers = 0;
  /// layers[i-1]: the paths L_i with their owned vertex sets.
  std::vector<std::vector<LayerPath>> layers;
  /// active_at[i-1][c]: whether clique c was still active when iteration i
  /// started (needed by the correction phase and by parent computation).
  std::vector<std::vector<char>> active_at;
  /// Count of degree->=3 forest vertices per iteration start, recorded to
  /// let tests and benches check the Lemma 6 halving invariant.
  std::vector<int> high_degree_counts;
};

/// Runs the peeling process on a prebuilt clique forest of g. A surviving
/// path keeps its clique sequence across iterations (Lemma 5), so its
/// threshold metrics are served from `metrics` on every iteration after the
/// first; pass a caller-owned cache to extend the reuse across phases (the
/// MVC/MIS engines re-derive the same interval models when solving the
/// layers), or nullptr for a peel-local one.
PeelingResult peel(const Graph& g, const CliqueForest& forest,
                   const PeelConfig& config,
                   PathMetricCache* metrics = nullptr);

}  // namespace chordal::core
