#include "core/local_decision.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include <string>

#include "cliqueforest/local_view.hpp"
#include "graph/diameter.hpp"
#include "local/ball_cache.hpp"
#include "local/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::core {

namespace {

enum class EndKind { kBranch, kLeaf, kHorizon };

struct ChainEnd {
  EndKind kind = EndKind::kBranch;
};

/// What a node can certify about the maximal binary path around T(v) from
/// its ball: the two end kinds, and the visible chain's diameter and
/// independence number.
struct ChainAnalysis {
  bool family_binary = false;  // all cliques of T(v) have visible degree <=2
  EndKind ends[2] = {EndKind::kBranch, EndKind::kBranch};
  int diameter = 0;
  int independence = 0;
};

/// One worker's reusable state for the per-node decision loop: every
/// view-sized buffer analyze_chain needs (the ball workspace lives in the
/// worker's BallCache shard).
struct DecisionScratch {
  SubsetSweepScratch sweep;
  std::vector<int> adj_off, adj_cursor, adj_list;  // view-forest CSR
  std::vector<int> family;
  std::vector<char> in_family, in_chain;
  std::vector<int> chain;
  std::vector<int> chain_pos;
  std::vector<int> cadj0, cadj1;  // chain neighbors (paths have degree <= 2)
  std::vector<int> union_vertices;
  std::vector<std::pair<int, int>> ranges;
};

/// The analysis replay slot for one vertex: while the vertex's cached ball
/// is untouched (same entry revision), the whole chain analysis - a pure
/// function of the ball - replays with zero work.
struct AnalysisMemo {
  std::uint64_t revision = 0;
  bool valid = false;
  ChainAnalysis analysis;
};

ChainAnalysis analyze_view(const Graph& g, int v, int radius,
                           const LocalView& view,
                           local::BallCache::Shard& shard,
                           DecisionScratch& s) {
  ChainAnalysis analysis;
  const int m = static_cast<int>(view.cliques.size());
  // View-forest adjacency, flat CSR. Filling edge-by-edge with per-clique
  // cursors reproduces the push_back order of an adjacency-list build.
  s.adj_off.assign(static_cast<std::size_t>(m) + 1, 0);
  for (auto [a, b] : view.forest_edges) {
    ++s.adj_off[a + 1];
    ++s.adj_off[b + 1];
  }
  for (int c = 0; c < m; ++c) s.adj_off[c + 1] += s.adj_off[c];
  s.adj_cursor.assign(s.adj_off.begin(), s.adj_off.end() - 1);
  s.adj_list.resize(2 * view.forest_edges.size());
  for (auto [a, b] : view.forest_edges) {
    s.adj_list[s.adj_cursor[a]++] = b;
    s.adj_list[s.adj_cursor[b]++] = a;
  }
  auto adj = [&s](int c) {
    return std::span<const int>(s.adj_list.data() + s.adj_off[c],
                                static_cast<std::size_t>(s.adj_off[c + 1] -
                                                         s.adj_off[c]));
  };
  auto adj_size = [&s](int c) { return s.adj_off[c + 1] - s.adj_off[c]; };
  // Distances within the active subgraph (what the ball actually shows):
  // every view-clique vertex is a ball member, so the distances recorded
  // during the ball collection are exactly the restricted BFS distances.
  auto clique_maxdist = [&](int c) {
    int far = 0;
    for (VertexId u : view.cliques[c]) {
      far = std::max(far, shard.ball_dist(static_cast<int>(u)));
    }
    return far;
  };
  auto degree_trusted = [&](int c) { return clique_maxdist(c) <= radius - 2; };

  // phi(v) within the view.
  s.family.clear();
  for (int c = 0; c < m; ++c) {
    CliqueWord word = view.cliques[c];
    if (std::binary_search(word.begin(), word.end(),
                           static_cast<VertexId>(v))) {
      s.family.push_back(c);
    }
  }
  const auto& family = s.family;
  // Every clique of T(v) must be binary for v to be removable at all; all
  // of them sit within distance 1 of v, hence degree-trusted.
  for (int c : family) {
    if (adj_size(c) >= 3) return analysis;
  }
  analysis.family_binary = true;

  // Collect the maximal visible binary chain containing T(v). The family
  // is a subpath; each side walks outward from one family tip along its
  // unique non-family direction.
  s.in_family.assign(static_cast<std::size_t>(m), 0);
  for (int c : family) s.in_family[c] = 1;
  s.chain.assign(family.begin(), family.end());
  ChainEnd ends[2];
  // The family is a subtree of a binary chain, i.e. a subpath, but it is
  // stored in clique-index order: recover its true tips (members with at
  // most one family neighbor) before walking outward.
  int tips[2] = {family.front(), family.front()};
  int steps[2] = {-1, -1};
  if (family.size() == 1) {
    std::size_t slot = 0;
    for (int c : adj(tips[0])) {
      if (slot < 2) steps[slot++] = c;
    }
  } else {
    int found = 0;
    for (int c : family) {
      int family_neighbors = 0;
      for (int d : adj(c)) family_neighbors += s.in_family[d] ? 1 : 0;
      if (family_neighbors <= 1 && found < 2) tips[found++] = c;
    }
    for (int side = 0; side < 2; ++side) {
      for (int c : adj(tips[side])) {
        if (!s.in_family[c]) steps[side] = c;
      }
    }
  }
  for (int side = 0; side < 2; ++side) {
    // Family cliques sit within Gamma[v]: degree-trusted, so a missing
    // outward direction is a genuine leaf end of the maximal path.
    if (steps[side] == -1) {
      ends[side].kind = EndKind::kLeaf;
      continue;
    }
    int prev = tips[side];
    int cur = steps[side];
    for (;;) {
      if (adj_size(cur) >= 3) {
        // Visible degrees never overestimate: a real branch vertex, which
        // terminates the maximal binary path (and is not part of it).
        ends[side].kind = EndKind::kBranch;
        break;
      }
      s.chain.push_back(cur);
      if (!degree_trusted(cur)) {
        // The view may miss forest edges here; everything farther out is
        // beyond the certainty horizon.
        ends[side].kind = EndKind::kHorizon;
        break;
      }
      int next = -1;
      for (int c : adj(cur)) {
        if (c != prev) next = c;
      }
      if (next == -1) {
        ends[side].kind = EndKind::kLeaf;
        break;
      }
      prev = cur;
      cur = next;
    }
  }
  const auto& chain = s.chain;

  analysis.ends[0] = ends[0].kind;
  analysis.ends[1] = ends[1].kind;

  // Diameter and independence number of the visible chain (exact within
  // the active subgraph: the chain union's shortest paths never leave it,
  // cf. path_diameter; independence via the chain's interval model).
  auto& union_vertices = s.union_vertices;
  union_vertices.clear();
  for (int c : chain) {
    CliqueWord word = view.cliques[c];
    union_vertices.insert(union_vertices.end(), word.begin(), word.end());
  }
  std::sort(union_vertices.begin(), union_vertices.end());
  union_vertices.erase(
      std::unique(union_vertices.begin(), union_vertices.end()),
      union_vertices.end());
  analysis.diameter = diameter_double_sweep_subset(g, union_vertices, s.sweep);

  // Independence: order chain cliques along the path; vertex ranges are
  // their clipped clique positions; exact greedy on that interval model.
  {
    // chain = family ++ side walks; recover path order by walking the
    // chain's own adjacency from one true end (it is a path, so every
    // member has at most two chain neighbors).
    s.in_chain.assign(static_cast<std::size_t>(m), 0);
    for (int c : chain) s.in_chain[c] = 1;
    s.cadj0.resize(static_cast<std::size_t>(m));
    s.cadj1.resize(static_cast<std::size_t>(m));
    for (int c : chain) {
      int n0 = -1, n1 = -1;
      for (int d : adj(c)) {
        if (!s.in_chain[d]) continue;
        (n0 == -1 ? n0 : n1) = d;
      }
      s.cadj0[c] = n0;
      s.cadj1[c] = n1;
    }
    int start = chain.front();
    for (int c : chain) {
      int degree = (s.cadj0[c] != -1 ? 1 : 0) + (s.cadj1[c] != -1 ? 1 : 0);
      if (degree <= 1) start = c;
    }
    s.chain_pos.resize(static_cast<std::size_t>(m));
    int prev = -1, cur = start, pos = 0;
    while (cur != -1) {
      s.chain_pos[cur] = pos++;
      int next = -1;
      if (s.cadj0[cur] != -1 && s.cadj0[cur] != prev) next = s.cadj0[cur];
      if (s.cadj1[cur] != -1 && s.cadj1[cur] != prev) next = s.cadj1[cur];
      prev = cur;
      cur = next;
    }
  }
  {
    auto& ranges = s.ranges;  // (hi, lo) per union vertex
    ranges.clear();
    for (int u : union_vertices) {
      int lo = static_cast<int>(chain.size()), hi = -1;
      for (int c : chain) {
        CliqueWord word = view.cliques[c];
        if (std::binary_search(word.begin(), word.end(),
                               static_cast<VertexId>(u))) {
          lo = std::min(lo, s.chain_pos[c]);
          hi = std::max(hi, s.chain_pos[c]);
        }
      }
      ranges.emplace_back(hi, lo);
    }
    std::sort(ranges.begin(), ranges.end());
    int last_hi = -1, count = 0;
    for (auto [hi, lo] : ranges) {
      if (lo > last_hi) {
        ++count;
        last_hi = hi;
      }
    }
    analysis.independence = count;
  }
  return analysis;
}

/// Analysis through the ball cache: a full view hit with an up-to-date memo
/// replays the stored analysis; everything else recomputes from the (cached
/// or rebuilt) view and refreshes the memo.
ChainAnalysis analyze_chain(const Graph& g, int v, int radius,
                            local::BallCache::Shard& shard,
                            AnalysisMemo* memo, DecisionScratch& s) {
  local::BallCache::ViewRef ref = shard.local_view(v, radius);
  if (memo != nullptr && memo->valid && ref.hit &&
      memo->revision == ref.revision) {
    return memo->analysis;
  }
  if (ref.hit) shard.ensure_dists(v);  // analyze_view reads ball distances
  ChainAnalysis analysis = analyze_view(g, v, radius, *ref.view, shard, s);
  if (memo != nullptr) {
    memo->revision = ref.revision;
    memo->valid = true;
    memo->analysis = analysis;
  }
  return analysis;
}

/// One node's coloring-mode pruning decision (threshold: diam >= 3k).
bool decide_locally(const Graph& g, int v, int radius, int k,
                    bool* used_horizon, local::BallCache::Shard& shard,
                    AnalysisMemo* memo, DecisionScratch& scratch) {
  ChainAnalysis a = analyze_chain(g, v, radius, shard, memo, scratch);
  if (!a.family_binary) return false;
  if (a.ends[0] == EndKind::kLeaf || a.ends[1] == EndKind::kLeaf) return true;
  if (a.ends[0] == EndKind::kHorizon || a.ends[1] == EndKind::kHorizon) {
    if (used_horizon != nullptr) *used_horizon = true;
    // The horizon is radius-2 away, so the visible chain already certifies
    // diameter >= 3k; the maximal path is removable whatever lies beyond.
    return true;
  }
  return a.diameter >= 3 * k;
}

/// One node's MIS-mode pruning decision: pendant always; internal paths by
/// diam >= 2d+3 (early iterations) or alpha >= d (the final iteration).
bool decide_locally_mis(const Graph& g, int v, int radius, int d,
                        bool last_round, local::BallCache::Shard& shard,
                        AnalysisMemo* memo, DecisionScratch& scratch) {
  ChainAnalysis a = analyze_chain(g, v, radius, shard, memo, scratch);
  if (!a.family_binary) return false;
  if (a.ends[0] == EndKind::kLeaf || a.ends[1] == EndKind::kLeaf) return true;
  if (a.ends[0] == EndKind::kHorizon || a.ends[1] == EndKind::kHorizon) {
    // radius = 4d+10 puts the horizon >= 4d+7 away: diameter certainly
    // >= 2d+3, and alpha >= diameter/2 >= d, so the path is removable
    // under either threshold.
    return true;
  }
  return last_round ? a.independence >= d : a.diameter >= 2 * d + 3;
}

}  // namespace

PeelingResult peel_with_local_decisions(const Graph& g,
                                        const CliqueForest& forest, int k) {
  const int radius = 10 * k;
  const int m = forest.num_cliques();
  PeelingResult result;
  result.layer_of.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<char> active_clique(static_cast<std::size_t>(m), 1);
  int remaining = g.num_vertices();
  int iteration_cap = 4 * (32 - __builtin_clz(std::max(2, g.num_vertices())));
  // One reusable scratch per worker, warm across all iterations; balls and
  // views persist between iterations in the cache, and the per-vertex memo
  // replays whole decisions while a vertex's ball is untouched.
  std::vector<DecisionScratch> scratch(
      static_cast<std::size_t>(support::num_threads()));
  local::BallCache cache(g);
  const std::vector<char>& active_vertex = cache.active();
  std::vector<AnalysisMemo> memo(static_cast<std::size_t>(g.num_vertices()));
  std::vector<int> peeled;
  // Event tracing: each worker's cache/forest/decision events stage in its
  // Tracer::worker ring (wired through the shard workspace for library
  // sites) and merge in worker order after each region - bit-identical
  // streams at any thread count.
  obs::Tracer* tracer = obs::tracer();
  if (tracer != nullptr) {
    tracer->ensure_workers(static_cast<std::size_t>(support::num_threads()));
    for (std::size_t w = 0; w < cache.num_shards(); ++w) {
      cache.shard(w).workspace().trace = &tracer->worker(w);
    }
  }

  for (int iter = 1; remaining > 0; ++iter) {
    if (iter > iteration_cap) {
      throw std::logic_error("peel_with_local_decisions: no convergence");
    }
    int high_degree = 0;
    for (int c = 0; c < m; ++c) {
      if (!active_clique[c]) continue;
      int deg = 0;
      for (CliqueId nb : forest.forest_neighbors(c)) {
        deg += active_clique[nb] ? 1 : 0;
      }
      if (deg >= 3) ++high_degree;
    }
    result.high_degree_counts.push_back(high_degree);
    result.active_at.push_back(active_clique);

    // Every active node decides independently from its own ball: the
    // canonical embarrassingly-parallel LOCAL loop. Workers own disjoint
    // contiguous index ranges (see support/parallel.hpp), write disjoint
    // removed[] slots, and count views per worker; merging the counts in
    // worker order keeps telemetry identical at any thread count.
    obs::Span view_span("Lemma 2 local views, iter " + std::to_string(iter));
    std::vector<char> removed(static_cast<std::size_t>(g.num_vertices()), 0);
    std::vector<std::int64_t> worker_views(
        static_cast<std::size_t>(support::num_threads()), 0);
    support::parallel_for_ranges(
        static_cast<std::size_t>(g.num_vertices()),
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          DecisionScratch& s = scratch[worker];
          local::BallCache::Shard& shard = cache.shard(worker);
          obs::TraceBuf* tb =
              tracer != nullptr ? &tracer->worker(worker) : nullptr;
          for (std::size_t i = begin; i < end; ++i) {
            int v = static_cast<int>(i);
            if (!active_vertex[v]) continue;
            ++worker_views[worker];
            bool remove = decide_locally(g, v, radius, k, nullptr, shard,
                                         &memo[i], s);
            if (remove) removed[v] = 1;
            obs::trace_emit(tb, obs::TraceEventKind::kLocalDecision, v, iter,
                            remove ? 1 : 0);
          }
        });
    if (tracer != nullptr) tracer->merge_workers();
    std::int64_t views_computed = 0;
    for (std::int64_t count : worker_views) views_computed += count;
    if (view_span.live()) {
      // Each decision floods a Gamma^{10k} ball: radius rounds, one 1-word
      // heartbeat per neighbor per round (exact volumes are histogrammed by
      // collect_ball when the views go through it).
      view_span.set_rounds(radius);
      view_span.note("views_computed", static_cast<double>(views_computed));
      if (obs::Registry* reg = obs::current()) {
        reg->counter("local_view.decisions").add(views_computed);
      }
    }

    // Reconcile with the path structure: the removed set must be exactly
    // the union of owned sets of the selected paths.
    std::vector<LayerPath> taken;
    std::size_t removed_total = 0;
    for (int v = 0; v < g.num_vertices(); ++v) removed_total += removed[v];
    std::size_t accounted = 0;
    for (auto& path : maximal_binary_paths(forest, active_clique)) {
      auto owned = path_owned_vertices(forest, active_clique, path);
      if (owned.empty()) continue;
      bool all = true, none = true;
      for (int v : owned) {
        if (removed[v]) {
          none = false;
        } else {
          all = false;
        }
      }
      if (!all && !none) {
        throw std::logic_error(
            "peel_with_local_decisions: split decision within one path");
      }
      if (!all) continue;
      accounted += owned.size();
      LayerPath lp;
      lp.owned = std::move(owned);
      lp.path = std::move(path);
      taken.push_back(std::move(lp));
    }
    if (accounted != removed_total) {
      throw std::logic_error(
          "peel_with_local_decisions: removed set is not path-aligned");
    }
    if (taken.empty()) {
      throw std::logic_error("peel_with_local_decisions: no progress");
    }
    peeled.clear();
    for (const auto& lp : taken) {
      obs::trace_emit(nullptr, obs::TraceEventKind::kPeelDecision,
                      lp.path.cliques.empty() ? -1 : lp.path.cliques.front(),
                      iter, static_cast<std::int64_t>(lp.path.cliques.size()),
                      static_cast<std::int64_t>(lp.owned.size()));
      for (int v : lp.owned) {
        result.layer_of[v] = iter;
        peeled.push_back(v);
        --remaining;
        obs::trace_emit(nullptr, obs::TraceEventKind::kPeelCommit, v, iter);
      }
      for (int c : lp.path.cliques) active_clique[c] = 0;
    }
    cache.deactivate(peeled);
    result.layers.push_back(std::move(taken));
    result.num_layers = iter;
  }
  return result;
}

LocalDecisionAudit audit_local_pruning(const Graph& g,
                                       const CliqueForest& forest,
                                       const PeelingResult& peeling, int k,
                                       int stride) {
  (void)forest;
  LocalDecisionAudit audit;
  const int radius = 10 * k;
  const int n = g.num_vertices();
  const int step = std::max(1, stride);
  std::vector<DecisionScratch> scratch(
      static_cast<std::size_t>(support::num_threads()));
  // The audited masks are monotone (layer_of >= iter only shrinks with
  // iter, and every vertex has layer_of >= 1), so the cache starts
  // all-active and is fed the per-iteration deactivation delta. Work is
  // partitioned by vertex index - not candidate rank - so each vertex keeps
  // its shard for the whole audit regardless of how the mask shrinks.
  local::BallCache cache(g);
  std::vector<AnalysisMemo> memo(static_cast<std::size_t>(n));
  std::vector<char> local(static_cast<std::size_t>(n), 0);
  std::vector<char> horizon(static_cast<std::size_t>(n), 0);
  std::vector<int> expired;
  const std::vector<char>& active = cache.active();
  obs::Tracer* tracer = obs::tracer();
  if (tracer != nullptr) {
    tracer->ensure_workers(static_cast<std::size_t>(support::num_threads()));
    for (std::size_t w = 0; w < cache.num_shards(); ++w) {
      cache.shard(w).workspace().trace = &tracer->worker(w);
    }
  }
  for (int iter = 1; iter <= peeling.num_layers; ++iter) {
    if (iter > 1) {
      expired.clear();
      for (int u = 0; u < n; ++u) {
        if (peeling.layer_of[u] == iter - 1) expired.push_back(u);
      }
      cache.deactivate(expired);
    }
    support::parallel_for_ranges(
        static_cast<std::size_t>(n),
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          DecisionScratch& s = scratch[worker];
          local::BallCache::Shard& shard = cache.shard(worker);
          for (std::size_t i = begin; i < end; ++i) {
            int v = static_cast<int>(i);
            if (v % step != 0 || !active[v]) continue;
            bool hit = false;
            local[i] =
                decide_locally(g, v, radius, k, &hit, shard, &memo[i], s)
                    ? 1
                    : 0;
            horizon[i] = hit ? 1 : 0;
          }
        });
    if (tracer != nullptr) tracer->merge_workers();
    for (int v = 0; v < n; v += step) {
      if (!active[v]) continue;
      bool removed_locally = local[v] != 0;
      bool removed_globally = peeling.layer_of[v] == iter;
      obs::trace_emit(nullptr, obs::TraceEventKind::kAuditDecision, v, iter,
                      removed_locally ? 1 : 0, removed_globally ? 1 : 0);
      ++audit.decisions_checked;
      if (horizon[v]) ++audit.horizon_hits;
      if (removed_locally != removed_globally) {
        ++audit.mismatches;
#ifdef CHORDAL_AUDIT_TRACE
        std::fprintf(stderr, "audit mismatch: v=%d iter=%d local=%d global=%d\n",
                     v, iter, removed_locally ? 1 : 0,
                     removed_globally ? 1 : 0);
#endif
      }
    }
  }
  return audit;
}

LocalDecisionAudit audit_local_pruning_mis(const Graph& g,
                                           const CliqueForest& forest,
                                           const PeelingResult& peeling,
                                           int d, int stride) {
  (void)forest;
  LocalDecisionAudit audit;
  const int radius = 4 * d + 10;
  const int n = g.num_vertices();
  const int step = std::max(1, stride);
  std::vector<DecisionScratch> scratch(
      static_cast<std::size_t>(support::num_threads()));
  // MIS masks are monotone too: layer-0 vertices stay active forever, the
  // rest leave exactly once at their layer. The memoized chain analysis is
  // decision-independent, so it replays across the last_round flip - only
  // the threshold applied to it changes.
  local::BallCache cache(g);
  std::vector<AnalysisMemo> memo(static_cast<std::size_t>(n));
  std::vector<char> local(static_cast<std::size_t>(n), 0);
  std::vector<int> expired;
  const std::vector<char>& active = cache.active();
  obs::Tracer* tracer = obs::tracer();
  if (tracer != nullptr) {
    tracer->ensure_workers(static_cast<std::size_t>(support::num_threads()));
    for (std::size_t w = 0; w < cache.num_shards(); ++w) {
      cache.shard(w).workspace().trace = &tracer->worker(w);
    }
  }
  for (int iter = 1; iter <= peeling.num_layers; ++iter) {
    bool last_round = iter == peeling.num_layers;
    if (iter > 1) {
      expired.clear();
      for (int u = 0; u < n; ++u) {
        if (peeling.layer_of[u] == iter - 1) expired.push_back(u);
      }
      cache.deactivate(expired);
    }
    support::parallel_for_ranges(
        static_cast<std::size_t>(n),
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          DecisionScratch& s = scratch[worker];
          local::BallCache::Shard& shard = cache.shard(worker);
          for (std::size_t i = begin; i < end; ++i) {
            int v = static_cast<int>(i);
            if (v % step != 0 || !active[v]) continue;
            local[i] = decide_locally_mis(g, v, radius, d, last_round, shard,
                                          &memo[i], s)
                           ? 1
                           : 0;
          }
        });
    if (tracer != nullptr) tracer->merge_workers();
    for (int v = 0; v < n; v += step) {
      if (!active[v]) continue;
      bool removed_locally = local[v] != 0;
      bool removed_globally = peeling.layer_of[v] == iter;
      obs::trace_emit(nullptr, obs::TraceEventKind::kAuditDecision, v, iter,
                      removed_locally ? 1 : 0, removed_globally ? 1 : 0);
      ++audit.decisions_checked;
      if (removed_locally != removed_globally) ++audit.mismatches;
    }
  }
  return audit;
}

}  // namespace chordal::core
