#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/mvc.hpp"
#include "core/local_decision.hpp"
#include "core/peeling.hpp"
#include "graph/cliques.hpp"
#include "interval/col_int_graph.hpp"
#include "interval/offline.hpp"
#include "interval/window_recolor.hpp"
#include "local/ball.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::core {

namespace {

using interval::PathIntervals;

/// Multi-source distances in the interval model (span-growth BFS).
std::vector<int> interval_distances_from_set(
    const PathIntervals& rep, const std::vector<std::size_t>& sources,
    int max_level) {
  const std::size_t n = rep.vertices.size();
  std::vector<int> dist(n, -1);
  int span_lo = rep.num_positions, span_hi = -1;
  for (std::size_t s : sources) {
    dist[s] = 0;
    span_lo = std::min(span_lo, rep.lo[s]);
    span_hi = std::max(span_hi, rep.hi[s]);
  }
  if (sources.empty()) return dist;
  for (int level = 1; level <= max_level; ++level) {
    int new_lo = span_lo, new_hi = span_hi;
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] != -1) continue;
      if (rep.lo[v] <= span_hi && rep.hi[v] >= span_lo) {
        dist[v] = level;
        new_lo = std::min(new_lo, rep.lo[v]);
        new_hi = std::max(new_hi, rep.hi[v]);
        any = true;
      }
    }
    if (!any) break;
    span_lo = new_lo;
    span_hi = new_hi;
  }
  return dist;
}

struct Engine {
  const Graph& g;
  const MvcOptions& options;
  MvcResult result;
  CliqueForest forest;
  PeelingResult peeling;
  // Shared across all three phases: the peeling thresholds, the layer
  // coloring, and the correction windows all derive the same per-path
  // interval models (pure functions of the clique sequence), so one
  // content-keyed cache serves the whole run.
  PathMetricCache path_cache;
  std::vector<PathMetricCache::WorkerLog> metric_logs;
  // Per-vertex completion time of the current phase (LOCAL clocks).
  std::vector<std::int64_t> clock;
  // Telemetry (populated only when an obs::Registry is installed):
  // per-vertex payload words received under the documented bandwidth model
  // (see EXPERIMENTS.md "Telemetry"), the congestion hot-spot profile.
  bool telemetry = false;
  std::vector<std::int64_t> congestion;

  explicit Engine(const Graph& graph, const MvcOptions& opts)
      : g(graph),
        options(opts),
        forest(CliqueForest::build(graph)),
        metric_logs(static_cast<std::size_t>(support::num_threads())) {}

  void run() {
    obs::Span span("MVC Algorithm 2 (Theorem 4)");
    telemetry = span.live();
    result.k = std::max(2, static_cast<int>(std::ceil(2.0 / options.eps)));
    result.omega = 0;
    for (const auto& clique : forest.cliques()) {
      result.omega = std::max(result.omega, static_cast<int>(clique.size()));
    }
    result.colors.assign(static_cast<std::size_t>(g.num_vertices()), -1);
    clock.assign(static_cast<std::size_t>(g.num_vertices()), 0);
    if (telemetry) {
      congestion.assign(static_cast<std::size_t>(g.num_vertices()), 0);
      span.note("n", g.num_vertices());
      span.note("k", result.k);
      span.note("eps", options.eps);
    }

    {
      obs::Span prune_span("pruning: Gamma^{10k} collections (Alg 3, Lemma 6)");
      if (options.pruning == PruningMode::kPerNodeLocalViews) {
        peeling = peel_with_local_decisions(g, forest, result.k);
      } else {
        PeelConfig config;
        config.mode = PeelMode::kColoring;
        config.k = result.k;
        peeling = peel(g, forest, config, &path_cache);
      }
      result.num_layers = peeling.num_layers;

      // --- Pruning clocks: a node of layer i survived i iterations, each
      // one a Gamma^{10k} collection (Algorithm 3).
      for (int v = 0; v < g.num_vertices(); ++v) {
        clock[v] = static_cast<std::int64_t>(peeling.layer_of[v]) * 10 *
                   result.k;
      }
      result.pruning_rounds =
          *std::max_element(clock.begin(), clock.end());
      prune_span.set_rounds(result.pruning_rounds);
      prune_span.note("layers", result.num_layers);
      if (telemetry) {
        // Bandwidth model: while active, a node hears one word per neighbor
        // per round (the flooding heartbeat of its ball collection).
        std::int64_t messages = 0;
        for (int v = 0; v < g.num_vertices(); ++v) {
          std::int64_t words = static_cast<std::int64_t>(g.degree(v)) * 10 *
                               result.k * peeling.layer_of[v];
          congestion[v] += words;
          messages += words;
        }
        prune_span.add_messages(messages, messages);
      }
    }

    {
      obs::Span color_span(
          "layer coloring: ColIntGraph per path (Lemmas 7, 11)");
      color_layers();
      result.coloring_rounds =
          *std::max_element(clock.begin(), clock.end()) -
          result.pruning_rounds;
      color_span.set_rounds(result.coloring_rounds);
    }

    {
      obs::Span fix_span("color correction windows (Alg 4, Lemmas 8-10)");
      correct_layers();
      result.rounds = *std::max_element(clock.begin(), clock.end());
      result.correction_rounds =
          result.rounds - result.coloring_rounds - result.pruning_rounds;
      fix_span.set_rounds(result.correction_rounds);
      fix_span.note("recolored_vertices", result.recolored_vertices);
      fix_span.note("palette_violations", result.palette_violations);
    }

    finalize_counts();
    span.set_rounds(result.rounds);
    span.note("colors", result.num_colors);
    if (telemetry) publish_node_histograms();
  }

  /// Per-node round clocks and congestion maxima, histogrammed across the
  /// network ("where are the hot spots").
  void publish_node_histograms() const {
    obs::Registry* reg = obs::current();
    if (reg == nullptr) return;
    auto& rounds_hist = reg->histogram("mvc.node_rounds");
    auto& congestion_hist = reg->histogram("mvc.node_congestion_words");
    for (int v = 0; v < g.num_vertices(); ++v) {
      rounds_hist.add(static_cast<double>(clock[v]));
      congestion_hist.add(static_cast<double>(congestion[v]));
    }
  }

  /// Per-worker accumulators for the parallel phases. Owned vertex sets of
  /// distinct (layer, path) units are disjoint, so colors/clock/congestion
  /// writes race-free by construction; everything else accumulates here and
  /// merges in worker order after the region (all integer sums/maxima, so
  /// the merged totals are independent of the thread count).
  struct WorkerTally {
    PathScratch scratch;
    PathIntervals full;
    std::int64_t palette_violations = 0;
    std::int64_t recolored = 0;
    std::int64_t msg_count = 0;
    std::int64_t msg_words = 0;
  };

  /// Phase 2: every layer is an interval graph (one clique path per peeled
  /// path, Lemma 7); color each path's owned set independently - distinct
  /// paths of one layer are non-adjacent (Lemma 11), and owned sets across
  /// layers are disjoint, so every unit runs in parallel.
  void color_layers() {
    std::vector<std::pair<const LayerPath*, int>> units;  // (path, layer)
    int layer_index = 0;
    for (const auto& layer : peeling.layers) {
      ++layer_index;
      for (const auto& lp : layer) {
        if (!lp.owned.empty()) units.emplace_back(&lp, layer_index);
      }
    }
    std::vector<WorkerTally> tally(
        static_cast<std::size_t>(support::num_threads()));
    obs::Tracer* tracer = obs::tracer();
    if (tracer != nullptr) {
      tracer->ensure_workers(
          static_cast<std::size_t>(support::num_threads()));
    }
    support::parallel_for(
        units.size(), [&](std::size_t idx, std::size_t worker) {
          WorkerTally& t = tally[worker];
          const LayerPath& lp = *units[idx].first;
          const int unit_layer = units[idx].second;
          obs::TraceBuf* tb =
              tracer != nullptr ? &tracer->worker(worker) : nullptr;
          const PathIntervals& full = *cached_path_intervals(
              forest, lp.path, t.scratch, t.full, path_cache,
              metric_logs[worker]);
          std::vector<std::size_t> owned_idx;
          for (std::size_t i = 0; i < full.vertices.size(); ++i) {
            if (std::binary_search(lp.owned.begin(), lp.owned.end(),
                                   full.vertices[i])) {
              owned_idx.push_back(i);
            }
          }
          PathIntervals mine = interval::restrict(full, owned_idx);
          std::int64_t spent = 0;
          std::vector<int> colors;
          if (options.layer_coloring == LayerColoringMode::kColIntGraph) {
            auto res = interval::col_int_graph(mine, result.k);
            colors = std::move(res.colors);
            t.palette_violations += res.palette_violations;
            spent = res.rounds;
          } else {
            colors = interval::color_optimal(mine);
            spent = 1;
          }
          for (std::size_t i = 0; i < mine.vertices.size(); ++i) {
            result.colors[mine.vertices[i]] = colors[i];
            clock[mine.vertices[i]] += spent;
            obs::trace_emit(tb, obs::TraceEventKind::kColorCommit,
                            mine.vertices[i], unit_layer, colors[i]);
          }
          if (telemetry) {
            // Each owned vertex learns its path's full interval model (two
            // words per interval) to run the coloring subroutine.
            auto model_words =
                static_cast<std::int64_t>(2 * full.vertices.size());
            for (std::size_t i = 0; i < mine.vertices.size(); ++i) {
              congestion[mine.vertices[i]] += model_words;
            }
            t.msg_count += static_cast<std::int64_t>(mine.vertices.size());
            t.msg_words += static_cast<std::int64_t>(mine.vertices.size()) *
                           model_words;
          }
        });
    if (tracer != nullptr) tracer->merge_workers();
    path_cache.merge(metric_logs);
    merge_tallies(tally);
  }

  /// Phase 3: descending over layers, resolve conflicts between each path's
  /// owned set W and its already-final neighbors W' (Lemmas 8-10). Layers
  /// stay sequential (higher layers must be final first); paths within one
  /// layer correct in parallel - a window only reads same-layer state of its
  /// own path plus higher-layer colors, never another path's owned set.
  void correct_layers() {
    std::vector<WorkerTally> tally(
        static_cast<std::size_t>(support::num_threads()));
    obs::Tracer* tracer = obs::tracer();
    if (tracer != nullptr) {
      tracer->ensure_workers(
          static_cast<std::size_t>(support::num_threads()));
    }
    for (int layer = result.num_layers - 1; layer >= 1; --layer) {
      const auto& paths =
          peeling.layers[static_cast<std::size_t>(layer) - 1];
      support::parallel_for(
          paths.size(), [&](std::size_t i, std::size_t worker) {
            obs::TraceBuf* tb =
                tracer != nullptr ? &tracer->worker(worker) : nullptr;
            correct_path(paths[i], layer, tb, tally[worker],
                         metric_logs[worker]);
          });
      if (tracer != nullptr) tracer->merge_workers();
      path_cache.merge(metric_logs);
    }
    merge_tallies(tally);
  }

  void merge_tallies(const std::vector<WorkerTally>& tally) {
    std::int64_t msg_count = 0, msg_words = 0;
    for (const WorkerTally& t : tally) {
      result.palette_violations += static_cast<int>(t.palette_violations);
      result.recolored_vertices += static_cast<int>(t.recolored);
      msg_count += t.msg_count;
      msg_words += t.msg_words;
    }
    if (telemetry && msg_count > 0) {
      obs::Span::charge_messages(msg_count, msg_words);
    }
  }

  void correct_path(const LayerPath& lp, int layer, obs::TraceBuf* tb,
                    WorkerTally& t, PathMetricCache::WorkerLog& log) {
    const PathIntervals& full = *cached_path_intervals(
        forest, lp.path, t.scratch, t.full, path_cache, log);
    const std::size_t n = full.vertices.size();
    std::vector<char> is_owned(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      is_owned[i] = std::binary_search(lp.owned.begin(), lp.owned.end(),
                                       full.vertices[i])
                        ? 1
                        : 0;
    }
    // W' = non-owned union vertices adjacent to an owned one. By Lemma 8
    // they live in the end cliques of the path, so their clipped intervals
    // capture all relevant adjacencies. Overlap-with-owned is tested via a
    // prefix-max table over the owned intervals.
    std::vector<int> owned_reach(static_cast<std::size_t>(full.num_positions),
                                 -1);
    for (std::size_t j = 0; j < n; ++j) {
      if (is_owned[j]) {
        owned_reach[full.lo[j]] = std::max(owned_reach[full.lo[j]],
                                           full.hi[j]);
      }
    }
    for (int p = 1; p < full.num_positions; ++p) {
      owned_reach[p] = std::max(owned_reach[p], owned_reach[p - 1]);
    }
    std::vector<std::size_t> boundary;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_owned[i]) continue;
      if (owned_reach[full.hi[i]] >= full.lo[i]) boundary.push_back(i);
    }
    if (boundary.empty()) return;

    auto dist = interval_distances_from_set(full, boundary, result.k + 5);
    // Window: everything within k+4 of W'; free = owned within k+3.
    std::vector<std::size_t> window;
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i] != -1 && dist[i] <= result.k + 4) window.push_back(i);
    }
    interval::RecolorProblem problem;
    problem.rep = interval::restrict(full, window);
    problem.fixed.assign(window.size(), -1);
    int max_fixed = -1;
    std::vector<std::size_t> free_local;
    for (std::size_t w = 0; w < window.size(); ++w) {
      std::size_t i = window[w];
      bool free = is_owned[i] && dist[i] <= result.k + 3;
      if (free) {
        free_local.push_back(w);
      } else {
        problem.fixed[w] = result.colors[full.vertices[i]];
        max_fixed = std::max(max_fixed, problem.fixed[w]);
      }
    }
    if (free_local.empty()) return;
    int w_win = interval::omega(problem.rep);
    problem.palette =
        std::max(w_win + w_win / result.k + 1, max_fixed + 1);
    std::vector<int> solved;
    for (;;) {
      auto attempt = interval::extend_coloring(problem);
      if (attempt.has_value()) {
        solved = std::move(*attempt);
        break;
      }
      ++problem.palette;  // Lemma 10 says unreachable; tracked tripwire.
      ++t.palette_violations;
      if (problem.palette > 3 * result.omega + 3) {
        throw std::logic_error("mvc: correction window unsolvable");
      }
    }
    // Timing: the path's parents act once W' and the untouched interior are
    // final; recoloring is a local O(k) exchange (Algorithm 4).
    std::int64_t ready = 0;
    for (std::size_t w = 0; w < window.size(); ++w) {
      ready = std::max(ready, clock[full.vertices[window[w]]]);
    }
    std::int64_t done = ready + result.k + 7;
    for (std::size_t w : free_local) {
      int v = full.vertices[window[w]];
      if (result.colors[v] != solved[w]) {
        ++t.recolored;
        obs::trace_emit(tb, obs::TraceEventKind::kRecolor, v, layer,
                        solved[w]);
      }
      result.colors[v] = solved[w];
      clock[v] = std::max(clock[v], done);
    }
    if (telemetry) {
      // Every free vertex sees the whole recoloring window (interval + fixed
      // color per member) during the O(k) exchange.
      auto window_words = static_cast<std::int64_t>(3 * window.size());
      for (std::size_t w : free_local) {
        congestion[full.vertices[window[w]]] += window_words;
      }
      t.msg_count += static_cast<std::int64_t>(free_local.size());
      t.msg_words +=
          static_cast<std::int64_t>(free_local.size()) * window_words;
    }
  }

  void finalize_counts() {
    int max_color = -1;
    for (int c : result.colors) max_color = std::max(max_color, c);
    std::vector<char> used(static_cast<std::size_t>(max_color) + 1, 0);
    for (int c : result.colors) {
      if (c < 0) throw std::logic_error("mvc: uncolored vertex");
      used[c] = 1;
    }
    result.num_colors = static_cast<int>(
        std::count(used.begin(), used.end(), static_cast<char>(1)));
  }
};

}  // namespace

MvcResult mvc_chordal(const Graph& g, const MvcOptions& options) {
  if (options.eps <= 0) {
    throw std::invalid_argument("mvc_chordal: eps must be positive");
  }
  if (g.num_vertices() == 0) {
    // Degenerate input still honors the result contract: k is a pure
    // function of eps, not of the graph (fuzz-found: k stayed 0 here).
    MvcResult result;
    result.k = std::max(2, static_cast<int>(std::ceil(2.0 / options.eps)));
    return result;
  }
  Engine engine(g, options);
  engine.run();
  return engine.result;
}

}  // namespace chordal::core
