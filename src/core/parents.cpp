#include "core/parents.hpp"

#include <algorithm>

namespace chordal::core {

namespace {

/// Multi-source BFS from a clique's vertices, restricted to alive vertices
/// and capped at `limit` (distances beyond it are reported as -1).
std::vector<int> clique_distances(const Graph& g, CliqueWord clique,
                                  const std::vector<char>& alive, int limit) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<int> queue;
  for (VertexId sv : clique) {
    int s = static_cast<int>(sv);
    if (dist[s] == -1) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int u = queue[head];
    if (dist[u] >= limit) continue;
    for (int w : g.neighbors(u)) {
      if (alive[w] && dist[w] == -1) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace

ParentAssignment compute_parents(const Graph& g, const CliqueForest& forest,
                                 const PeelingResult& peeling, int k) {
  ParentAssignment out;
  out.parent.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  out.children.resize(static_cast<std::size_t>(g.num_vertices()));

  for (std::size_t layer_idx = 0; layer_idx < peeling.layers.size();
       ++layer_idx) {
    int iter = static_cast<int>(layer_idx) + 1;
    // U_i = nodes alive when this layer was peeled.
    std::vector<char> alive(static_cast<std::size_t>(g.num_vertices()), 0);
    for (int u = 0; u < g.num_vertices(); ++u) {
      alive[u] =
          (peeling.layer_of[u] == 0 || peeling.layer_of[u] >= iter) ? 1 : 0;
    }
    for (const auto& lp : peeling.layers[layer_idx]) {
      // Distances within G[U_i] from each attachment clique (if any),
      // capped at k+3 - nodes farther away keep their layer color and need
      // no parent (Definition 1).
      std::vector<int> dist_left, dist_right;
      int cand_left = -1, cand_right = -1;
      if (lp.path.attach_left != -1) {
        CliqueWord clique = forest.clique(lp.path.attach_left);
        dist_left = clique_distances(g, clique, alive, k + 3);
        cand_left =
            static_cast<int>(*std::max_element(clique.begin(), clique.end()));
      }
      if (lp.path.attach_right != -1) {
        CliqueWord clique = forest.clique(lp.path.attach_right);
        dist_right = clique_distances(g, clique, alive, k + 3);
        cand_right =
            static_cast<int>(*std::max_element(clique.begin(), clique.end()));
      }
      for (int v : lp.owned) {
        int best = -1, cand = -1;
        if (cand_left != -1 && dist_left[v] != -1 &&
            dist_left[v] <= k + 3) {
          best = dist_left[v];
          cand = cand_left;
        }
        if (cand_right != -1 && dist_right[v] != -1 &&
            dist_right[v] <= k + 3 && (best == -1 || dist_right[v] < best)) {
          cand = cand_right;
        }
        out.parent[v] = cand;
      }
    }
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (out.parent[v] != -1) out.children[out.parent[v]].push_back(v);
  }
  return out;
}

}  // namespace chordal::core
