// Minimum Vertex Coloring on chordal graphs - the paper's first headline
// result (Algorithm 1 centralized / Algorithms 2-4 distributed, Theorems 3
// and 4): a deterministic (1 + eps)-approximation in O((1/eps) log n)
// rounds of the LOCAL model.
//
// The distributed and centralized algorithms compute the same coloring
// (Lemma 12); one engine implements both. Distributed semantics are
// captured by per-node round clocks: pruning costs 10k rounds per
// iteration survived, layers are colored as soon as they leave pruning
// (ColIntGraph, O(k log* n) rounds), and color correction waits on the
// conflicting higher layers before spending its O(k) rounds, exactly the
// parent/child choreography of Algorithms 3 and 4.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::core {

enum class LayerColoringMode {
  /// Algorithm 1 as analyzed: layers colored by the distributed-feasible
  /// ColIntGraph with (1 + 1/k) chi + 1 colors.
  kColIntGraph,
  /// Ablation: layers colored optimally (centralized-only shortcut).
  kOptimal,
};

enum class PruningMode {
  /// Global peeling with the clique-forest activity mask (fast; identical
  /// output by Lemma 12).
  kGlobal,
  /// Every layer decision made by the owning node from its own
  /// distance-10k ball (Algorithm 3 verbatim; one local view per active
  /// node per iteration - use for validation, not scale).
  kPerNodeLocalViews,
};

struct MvcOptions {
  double eps = 0.5;
  LayerColoringMode layer_coloring = LayerColoringMode::kColIntGraph;
  PruningMode pruning = PruningMode::kGlobal;
};

struct MvcResult {
  std::vector<int> colors;          // proper coloring of the input graph
  int num_colors = 0;
  int omega = 0;                    // clique number == chi (chordal)
  int k = 0;                        // ceil(2 / eps), floored at 2
  int num_layers = 0;               // peel iterations used (<= ceil(log n))
  std::int64_t rounds = 0;          // max node clock
  std::int64_t pruning_rounds = 0;  // phase breakdown
  std::int64_t coloring_rounds = 0;
  std::int64_t correction_rounds = 0;
  int palette_violations = 0;       // Lemma 9/10 tripwire, expected 0
  int recolored_vertices = 0;       // conflict-zone size across all layers
};

/// The distributed algorithm (Algorithm 2). eps > 0; the (1+eps)
/// approximation guarantee requires eps >= 2 / chi(G) (Theorem 3).
MvcResult mvc_chordal(const Graph& g, const MvcOptions& options = {});

/// Algorithm 1 with the centralized shortcut (optimal layer colorings);
/// round fields describe the run as if executed distributively.
MvcResult mvc_chordal_centralized(const Graph& g, double eps);

}  // namespace chordal::core
