#include "core/peeling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::core {

PeelingResult peel(const Graph& g, const CliqueForest& forest,
                   const PeelConfig& config, PathMetricCache* metrics) {
  if (config.mode == PeelMode::kColoring && config.k < 2) {
    throw std::invalid_argument("peel: coloring mode requires k >= 2");
  }
  if (config.mode == PeelMode::kIndependentSet &&
      (config.d < 1 || config.max_iterations < 1)) {
    throw std::invalid_argument("peel: MIS mode requires d >= 1 and a bound");
  }

  const int m = forest.num_cliques();
  PeelingResult result;
  result.layer_of.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<char> active(static_cast<std::size_t>(m), 1);
  int active_count = m;

  // Lemma 6 allows at most ceil(log2 n)+1 iterations in coloring mode; use a
  // generous cap as a bug tripwire.
  int cap = config.mode == PeelMode::kColoring
                ? 2 * static_cast<int>(std::ceil(std::log2(
                          std::max(2, g.num_vertices())))) + 4
                : config.max_iterations;
  // One metric scratch per worker, warm across all iterations. Surviving
  // paths hit the metric cache (their clique sequences are unchanged, see
  // Lemma 5); workers buffer computed entries in per-worker logs that are
  // merged in worker order after each parallel region.
  std::vector<PathScratch> scratch(
      static_cast<std::size_t>(support::num_threads()));
  PathMetricCache own_metrics;
  PathMetricCache& cache = metrics != nullptr ? *metrics : own_metrics;
  std::vector<PathMetricCache::WorkerLog> logs(
      static_cast<std::size_t>(support::num_threads()));

  for (int iter = 1; active_count > 0 && iter <= cap; ++iter) {
    obs::Span layer_span("peel layer " + std::to_string(iter));
    int high_degree = 0;
    for (int c = 0; c < m; ++c) {
      if (!active[c]) continue;
      int deg = 0;
      for (CliqueId nb : forest.forest_neighbors(c)) deg += active[nb] ? 1 : 0;
      if (deg >= 3) ++high_degree;
    }
    result.high_degree_counts.push_back(high_degree);

    bool last_mis_round = config.mode == PeelMode::kIndependentSet &&
                          iter == config.max_iterations;
    // Paths of one iteration are independent: evaluate every threshold
    // metric in parallel (one PathScratch per worker), then assemble the
    // taken list sequentially in path order.
    auto paths = maximal_binary_paths(forest, active);
    std::vector<char> selected(paths.size(), 0);
    std::vector<std::vector<int>> owned(paths.size());
    support::parallel_for(
        paths.size(), [&](std::size_t i, std::size_t worker) {
          const ForestPath& path = paths[i];
          bool take;
          if (path.pendant) {
            take = true;
          } else if (config.mode == PeelMode::kColoring) {
            take = cached_path_diameter(g, forest, path, scratch[worker],
                                        cache, logs[worker]) >= 3 * config.k;
          } else if (last_mis_round) {
            take = cached_path_independence(forest, path, scratch[worker],
                                            cache, logs[worker]) >= config.d;
          } else {
            take = cached_path_diameter(g, forest, path, scratch[worker],
                                        cache, logs[worker]) >=
                   2 * config.d + 3;
          }
          if (!take) return;
          selected[i] = 1;
          path_owned_vertices(forest, active, path, scratch[worker],
                              owned[i]);
        });
    cache.merge(logs);
    std::vector<LayerPath> taken;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (!selected[i]) continue;
      LayerPath lp;
      lp.owned = std::move(owned[i]);
      lp.path = std::move(paths[i]);
      taken.push_back(std::move(lp));
    }

    if (taken.empty()) {
      if (config.mode == PeelMode::kColoring) {
        throw std::logic_error("peel: no progress despite active cliques");
      }
      // MIS mode may legitimately stall between thresholds; still count the
      // iteration (the distributed algorithm spends the rounds regardless).
      result.layers.emplace_back();
      result.active_at.push_back(active);
      result.num_layers = iter;
      continue;
    }

    result.active_at.push_back(active);
    if (layer_span.live()) {
      std::size_t owned_total = 0;
      for (const auto& lp : taken) owned_total += lp.owned.size();
      layer_span.note("paths", static_cast<double>(taken.size()));
      layer_span.note("owned_vertices", static_cast<double>(owned_total));
      layer_span.note("high_degree_cliques", high_degree);
    }
    for (const auto& lp : taken) {
      obs::trace_emit(nullptr, obs::TraceEventKind::kPeelDecision,
                      lp.path.cliques.empty() ? -1 : lp.path.cliques.front(),
                      iter, static_cast<std::int64_t>(lp.path.cliques.size()),
                      static_cast<std::int64_t>(lp.owned.size()));
      for (int v : lp.owned) {
        if (result.layer_of[v] != 0) {
          throw std::logic_error("peel: vertex peeled twice");
        }
        result.layer_of[v] = iter;
        obs::trace_emit(nullptr, obs::TraceEventKind::kPeelCommit, v, iter);
      }
      for (int c : lp.path.cliques) {
        if (!active[c]) throw std::logic_error("peel: clique peeled twice");
        active[c] = 0;
        --active_count;
      }
    }
    result.layers.push_back(std::move(taken));
    result.num_layers = iter;
  }

  if (config.mode == PeelMode::kColoring && active_count > 0) {
    throw std::logic_error("peel: iteration cap exceeded (Lemma 6 violated)");
  }
  return result;
}

}  // namespace chordal::core
