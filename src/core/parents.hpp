// Parents and children (Definition 1) - the coordination structure of the
// color-correction phase. A peeled node v's parent is the maximum-ID node
// of the attachment clique nearest to v (at most k+3 away), the node that
// later recolors v via SetColor messages (Algorithm 4). Corollary 2: the
// parent always sits in a strictly higher layer.
#pragma once

#include <vector>

#include "core/peeling.hpp"
#include "graph/graph.hpp"

namespace chordal::core {

struct ParentAssignment {
  /// parent[v]: the correcting node, or -1 (the paper's bottom) when v's
  /// path is a whole forest component or v is more than k+3 away from every
  /// attachment clique (its layer color is already final).
  std::vector<int> parent;
  /// children[c]: sorted list of nodes v with parent[v] == c.
  std::vector<std::vector<int>> children;
};

/// Computes Definition 1 over a coloring-mode peeling. Distances are taken
/// in G[U_i], the graph alive when v's layer was peeled.
ParentAssignment compute_parents(const Graph& g, const CliqueForest& forest,
                                 const PeelingResult& peeling, int k);

}  // namespace chordal::core
