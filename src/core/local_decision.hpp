// Distributed-fidelity audit for the pruning phase (Lemma 12).
//
// Algorithm 3 has each node decide "do I join layer i?" from nothing but
// its distance-10k ball. This module re-derives that decision for sampled
// nodes using only their local views (Section 3) and compares it with the
// global peeling - the executable form of Lemma 12's claim that the
// distributed algorithm computes exactly the centralized partition.
//
// The node-side rule mirrors the argument in the paper: walk the visible
// clique chain around T(v) while the view is provably complete there
// (every vertex of a chain clique within distance radius-2 sees all its
// forest neighbors); stop at a branch vertex (real, since visible degrees
// never overestimate), a trusted leaf, or the ball horizon. A visible leaf
// makes the maximal binary path pendant (remove); a horizon implies the
// visible chain already spans diameter >= 3k (remove); two branch ends
// resolve the internal-path threshold exactly.
#pragma once

#include "core/peeling.hpp"
#include "graph/graph.hpp"

namespace chordal::core {

struct LocalDecisionAudit {
  long long decisions_checked = 0;
  long long mismatches = 0;
  long long horizon_hits = 0;  // decisions that used the >= 3k horizon rule
};

/// Re-derives the layer decision of every `stride`-th vertex at every peel
/// iteration from its distance-(10k) ball and counts disagreements with the
/// global result (expected: zero). Coloring-mode peelings only.
LocalDecisionAudit audit_local_pruning(const Graph& g,
                                       const CliqueForest& forest,
                                       const PeelingResult& peeling, int k,
                                       int stride = 1);

/// The MIS-mode analog (Section 7.3): early iterations threshold internal
/// paths by diameter >= 2d+3, the final iteration by independence >= d;
/// the ball radius is 4d+10. Audits against an independent-set-mode
/// peeling (vertices with layer 0 were never peeled and stay active
/// throughout).
LocalDecisionAudit audit_local_pruning_mis(const Graph& g,
                                           const CliqueForest& forest,
                                           const PeelingResult& peeling,
                                           int d, int stride = 1);

/// Runs the whole pruning phase with EVERY layer decision made by the
/// owning node from its own ball (Algorithm 3 verbatim, simulated node by
/// node). Slow - one local-view computation per active vertex per
/// iteration - but byte-identical to peel() by Lemma 12; the MVC engine
/// exposes it as an execution mode and tests assert the equality. Throws
/// std::logic_error if the node decisions ever disagree with a coherent
/// path structure.
PeelingResult peel_with_local_decisions(const Graph& g,
                                        const CliqueForest& forest, int k);

}  // namespace chordal::core
