// DynamicChordal: the update layer over the whole pipeline.
//
// One object owns the mutable graph (graph/dynamic_graph.hpp), the
// incrementally repaired clique family + forest (cliqueforest/
// dynamic_forest.hpp), and the canonical labels (core/dynamic_labels.hpp).
// Every mutation is certified first - a chordality-breaking update throws
// ChordalityViolation carrying a witness chordless cycle and leaves all
// state untouched - and then *repaired* through, never rebuilt: the family
// delta, the local MWSF patch, and the worklist recoloring each touch work
// proportional to the affected region, which is what bench_dynamic (E17)
// measures against the full-rebuild baseline.
//
// Edge-insert certification takes a clique-forest fast path before falling
// back to the BFS oracle: G+uv is chordal iff S = N(u) cut N(v) separates u
// from v, and in a clique tree the minimal u-v separators are exactly the
// edge intersections on the tree path between T(u) and T(v). Finding one
// path edge whose intersection is inside S proves separation in
// O(path * omega) - no graph BFS; only would-be rejections (and the rare
// miss) pay the oracle, which then also extracts the witness cycle.
//
// Cache integration: the facade does not own a BallCache (snapshots are the
// serving layer's business) but reports the dirty region since the last
// drain - adjacency-touched slots, revived slots, killed slots - which is
// exactly what BallCache::invalidate_touched / reactivate / deactivate
// consume after a rebind to a fresh materialize() snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cliqueforest/dynamic_forest.hpp"
#include "core/dynamic_labels.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"

namespace chordal {

/// Cumulative telemetry for one DynamicChordal instance.
struct DynamicStats {
  std::int64_t edge_inserts = 0;
  std::int64_t edge_deletes = 0;
  std::int64_t vertex_inserts = 0;
  std::int64_t vertex_deletes = 0;
  std::int64_t rejected = 0;         // mutations refused with a witness
  std::int64_t fastpath_accepts = 0; // edge inserts certified via the forest
  std::int64_t oracle_calls = 0;     // BFS-oracle certifications
  std::int64_t cliques_removed = 0;
  std::int64_t cliques_added = 0;
  std::int64_t pool_edges = 0;
  std::int64_t path_steps = 0;
  std::int64_t edge_swaps = 0;
  std::int64_t labels_processed = 0;
  std::int64_t color_changes = 0;
  std::int64_t mis_flips = 0;
};

class DynamicChordal {
 public:
  /// Empty graph; grow it with insert_vertex.
  DynamicChordal() = default;

  /// Adopts a static chordal graph (throws std::invalid_argument when g is
  /// not chordal) and builds family, forest, and labels once.
  explicit DynamicChordal(const Graph& g);

  // Mutations. std::invalid_argument on malformed arguments (loops,
  // duplicate edges, dead endpoints); ChordalityViolation with a witness
  // cycle when the update would break chordality. Strong exception safety:
  // a throwing mutation changes nothing.
  void insert_edge(int u, int v);
  void delete_edge(int u, int v);
  /// Returns the new vertex's slot id (the lowest dead slot, else a fresh
  /// one).
  int insert_vertex(std::span<const int> neighbors);
  void delete_vertex(int v);

  const DynamicGraph& graph() const { return graph_; }
  const DynamicCliqueForest& forest() const { return forest_; }
  int color(int v) const { return labels_.color(v); }
  bool in_mis(int v) const { return labels_.in_mis(v); }
  int mis_size() const { return labels_.mis_size(); }
  int num_colors() const { return labels_.num_colors(graph_); }
  int max_clique_size() const { return forest_.max_clique_size(); }
  Graph materialize() const { return graph_.materialize(); }
  const DynamicStats& stats() const { return stats_; }

  // Dirty region since the last drain_touched(), deduplicated, unordered:
  // slots whose adjacency changed (endpoints / neighbors of vertex ops),
  // slots revived from the free list, slots killed. Consumed by cache
  // maintenance layers.
  std::span<const int> touched() const { return touched_; }
  std::span<const int> revived() const { return revived_; }
  std::span<const int> killed() const { return killed_; }
  void drain_touched();

  /// Canonical snapshot of every derived structure, in slot ids: the parity
  /// surface the audits compare against full recomputation.
  struct Signature {
    std::vector<std::pair<int, int>> colors;  // (slot, color), ascending
    std::vector<int> mis;                     // ascending alive MIS slots
    std::vector<std::vector<int>> family;     // canonical clique words
    std::vector<std::pair<std::vector<int>, std::vector<int>>> forest;
    bool operator==(const Signature&) const = default;
  };
  Signature signature() const;

  /// What a non-incremental system computes per update: chordality check,
  /// canonical family, MWSF, and labels from scratch on the alive-induced
  /// graph, mapped back to slot ids. The parity oracle (and the full-rebuild
  /// baseline timed by bench_dynamic).
  static Signature recompute_signature(const DynamicGraph& g);

 private:
  void mark_touched(int v);
  /// Forest-path separation certificate; true proves G+uv stays chordal.
  bool edge_insert_fastpath(int u, int v, std::span<const int> common);
  std::vector<int> sorted_common_neighbors(int u, int v) const;
  void absorb(const ForestRepairStats& fs, const LabelRepairStats& ls);

  DynamicGraph graph_;
  DynamicCliqueForest forest_;
  DynamicLabels labels_;
  DynamicStats stats_;
  DynamicScratch scratch_;

  // Forest-BFS scratch for the fast certificate (sized by clique slots).
  std::uint64_t fepoch_ = 0;
  std::vector<std::uint64_t> fstamp_;
  std::vector<std::uint64_t> ftarget_;
  std::vector<std::int32_t> fparent_;
  std::vector<std::int32_t> fqueue_;

  std::vector<int> touched_, revived_, killed_;
  std::vector<std::uint64_t> touch_stamp_;
  std::uint64_t touch_epoch_ = 1;
  std::vector<int> seed_buf_;
};

}  // namespace chordal
