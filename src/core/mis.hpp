// Maximum Independent Set on chordal graphs - the paper's second headline
// result (Algorithm 6, Theorems 7 and 8): a deterministic (1 + eps)-
// approximation in O((1/eps) log(1/eps) log* n) LOCAL rounds.
//
// Unlike coloring, only the first k = O(log(1/eps)) peel layers are
// processed: they already hold a (1 - eps/2) fraction of the optimum
// (Lemma 14). Each layer is an interval graph; small components get
// absorbing maximum independent sets, large ones the Algorithm 5
// (1 + eps/8)-approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::core {

struct MisOptions {
  double eps = 0.25;  // in (0, 1/2)
  /// Override for the paper's d = ceil(64/eps) scale constant (0 = paper
  /// value). The worst-case constant is loose; benches ablate it (E5).
  int d_override = 0;
};

struct MisResult {
  std::vector<int> chosen;  // sorted independent set
  int d = 0;                // scale parameter
  int iterations = 0;       // k = ceil(log2(d/eps)) + 2 peel iterations
  std::int64_t rounds = 0;
  /// How many component solves took each branch (diagnostics / ablation).
  int absorbing_components = 0;
  int approx_components = 0;
};

MisResult mis_chordal(const Graph& g, const MisOptions& options = {});

}  // namespace chordal::core
