#include "core/dynamic_labels.hpp"

#include <algorithm>
#include <functional>

namespace chordal {

void DynamicLabels::ensure(int n) {
  auto size = static_cast<std::size_t>(n);
  if (color_.size() < size) {
    color_.resize(size, -1);
    mis_.resize(size, 0);
    pending_.resize(size, 0);
  }
}

void DynamicLabels::eval(const DynamicGraph& g, int v, int* color, bool* mis) {
  int deg = g.degree(v);
  if (mark_.size() < static_cast<std::size_t>(deg) + 1) {
    mark_.resize(static_cast<std::size_t>(deg) + 1, 0);
  }
  ++mark_epoch_;
  bool m = true;
  for (VertexId uv : g.neighbors(v)) {  // sorted ascending
    int u = static_cast<int>(uv);
    if (u >= v) break;
    int cu = color_[static_cast<std::size_t>(u)];
    if (cu >= 0 && cu <= deg) mark_[static_cast<std::size_t>(cu)] = mark_epoch_;
    if (mis_[static_cast<std::size_t>(u)]) m = false;
  }
  int c = 0;
  while (c <= deg && mark_[static_cast<std::size_t>(c)] == mark_epoch_) ++c;
  *color = c;
  *mis = m;
}

void DynamicLabels::reset(const DynamicGraph& g) {
  int n = g.num_slots();
  color_.assign(static_cast<std::size_t>(n), -1);
  mis_.assign(static_cast<std::size_t>(n), 0);
  pending_.assign(static_cast<std::size_t>(n), 0);
  mis_size_ = 0;
  for (int v = 0; v < n; ++v) {
    if (!g.alive(v)) continue;
    int c;
    bool m;
    eval(g, v, &c, &m);
    color_[static_cast<std::size_t>(v)] = c;
    mis_[static_cast<std::size_t>(v)] = m ? 1 : 0;
    if (m) ++mis_size_;
  }
}

LabelRepairStats DynamicLabels::repair(const DynamicGraph& g,
                                       std::span<const int> seeds) {
  LabelRepairStats stats;
  ensure(g.num_slots());
  ++pending_epoch_;
  heap_.clear();
  auto push = [&](int v) {
    auto vi = static_cast<std::size_t>(v);
    if (pending_[vi] == pending_epoch_) return;
    pending_[vi] = pending_epoch_;
    heap_.push_back(v);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  };
  for (int v : seeds) {
    if (v >= 0 && v < g.num_slots()) push(v);
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    int v = heap_.back();
    heap_.pop_back();
    auto vi = static_cast<std::size_t>(v);
    if (!g.alive(v)) {
      // Cleared, not propagated: the caller seeds the former neighbors.
      if (mis_[vi]) {
        --mis_size_;
        ++stats.mis_flips;
      }
      if (color_[vi] != -1) ++stats.color_changes;
      color_[vi] = -1;
      mis_[vi] = 0;
      continue;
    }
    int c;
    bool m;
    eval(g, v, &c, &m);
    ++stats.processed;
    bool changed = false;
    if (c != color_[vi]) {
      color_[vi] = c;
      ++stats.color_changes;
      changed = true;
    }
    if ((m ? 1 : 0) != mis_[vi]) {
      mis_[vi] = m ? 1 : 0;
      mis_size_ += m ? 1 : -1;
      ++stats.mis_flips;
      changed = true;
    }
    if (changed) {
      auto nbrs = g.neighbors(v);
      auto it = std::upper_bound(nbrs.begin(), nbrs.end(),
                                 static_cast<VertexId>(v));
      for (; it != nbrs.end(); ++it) push(static_cast<int>(*it));
    }
  }
  return stats;
}

int DynamicLabels::num_colors(const DynamicGraph& g) const {
  int max_color = -1;
  for (int v = 0; v < g.num_slots(); ++v) {
    if (g.alive(v)) {
      max_color = std::max(max_color, color_[static_cast<std::size_t>(v)]);
    }
  }
  return max_color + 1;
}

}  // namespace chordal
