// Public output validators. The algorithms' results are plain vectors; these
// helpers let downstream users (and the examples/benches) assert correctness
// without reimplementing the checks, and throw with a pinpointed reason.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::core {

/// True iff every vertex has a color >= 0 and no edge is monochromatic.
bool is_proper_coloring(const Graph& g, std::span<const int> colors);

/// Throws std::logic_error naming the offending vertex/edge if not proper.
void require_proper_coloring(const Graph& g, std::span<const int> colors);

/// True iff `vertices` are pairwise non-adjacent (duplicates rejected).
bool is_independent_set(const Graph& g, std::span<const int> vertices);

/// Throws std::logic_error naming the offending pair if dependent.
void require_independent_set(const Graph& g, std::span<const int> vertices);

/// Number of distinct colors used (ignores negative entries).
int count_colors(std::span<const int> colors);

}  // namespace chordal::core
