#include "core/mvc.hpp"

namespace chordal::core {

MvcResult mvc_chordal_centralized(const Graph& g, double eps) {
  MvcOptions options;
  options.eps = eps;
  options.layer_coloring = LayerColoringMode::kOptimal;
  return mvc_chordal(g, options);
}

}  // namespace chordal::core
