// Perfect elimination orderings and chordality recognition.
//
// An ordering v_1, ..., v_n is a perfect elimination ordering (PEO) if for
// every i the neighbors of v_i that appear later in the order form a clique.
// A graph is chordal iff it admits a PEO, and the reverse of any Lex-BFS
// visit order of a chordal graph is one.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace chordal {

struct EliminationOrder {
  std::vector<int> order;     // order[i] = i-th eliminated vertex
  std::vector<int> position;  // position[v] = i with order[i] == v
};

/// Candidate PEO: reverse Lex-BFS order. A genuine PEO iff g is chordal.
EliminationOrder peo_candidate(const Graph& g);

/// Verifies the PEO property in O(n + m) amortized time (Rose-Tarjan-Lueker
/// style deferred adjacency checks).
bool is_perfect_elimination_order(const Graph& g, const EliminationOrder& peo);

/// Chordality test: Lex-BFS + PEO verification.
bool is_chordal(const Graph& g);

/// Computes a verified PEO; throws std::invalid_argument if g is not chordal.
EliminationOrder peo_or_throw(const Graph& g);

/// True if v is simplicial (its neighborhood is a clique) in the subgraph
/// induced by {u : active[u]}; v must be active.
bool is_simplicial(const Graph& g, int v, const std::vector<char>& active);

}  // namespace chordal
