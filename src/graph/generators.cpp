#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/ids.hpp"

namespace chordal {

namespace {

// Streaming generators take long long n (they target scales where the count
// itself is the interesting input); the Graph API computes in int, so both
// the configured id width and INT_MAX bound the accepted range.
void check_streaming_vertex_count(long long n, const char* what) {
  checked_vertex_id(n, what);
  if (n > static_cast<long long>(std::numeric_limits<int>::max())) {
    throw IdOverflowError(std::string(what) + ": vertex count " +
                          std::to_string(n) +
                          " exceeds the Graph API bound INT_MAX");
  }
}

}  // namespace

Graph path_graph(int n) {
  GraphBuilder b(n);
  for (int v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph complete_graph(int n) {
  GraphBuilder b(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph star_graph(int leaves) {
  GraphBuilder b(leaves + 1);
  for (int v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

Graph caterpillar(int spine, int legs) {
  GraphBuilder b(spine * (1 + legs));
  for (int s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  int next = spine;
  for (int s = 0; s < spine; ++s) {
    for (int l = 0; l < legs; ++l) b.add_edge(s, next++);
  }
  return b.build();
}

Graph broom(int handle, int bristles) {
  GraphBuilder b(handle + bristles);
  for (int v = 0; v + 1 < handle; ++v) b.add_edge(v, v + 1);
  for (int l = 0; l < bristles; ++l) b.add_edge(handle - 1, handle + l);
  return b.build();
}

Graph random_tree(int n, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<int>(rng.next_below(v)));
  }
  return b.build();
}

Graph random_chordal(const RandomChordalConfig& config) {
  if (config.n <= 0) throw std::invalid_argument("random_chordal: n <= 0");
  if (config.max_clique < 2) {
    throw std::invalid_argument("random_chordal: max_clique < 2");
  }
  Rng rng(config.seed);
  GraphBuilder b(config.n);
  // clique_at[v]: a clique containing v, recorded at v's insertion.
  std::vector<std::vector<int>> clique_at(
      static_cast<std::size_t>(config.n));
  clique_at[0] = {0};
  for (int v = 1; v < config.n; ++v) {
    int anchor = rng.chance(config.chain_bias)
                     ? v - 1
                     : static_cast<int>(rng.next_below(v));
    std::vector<int> base = clique_at[anchor];
    int max_take = std::min<int>(static_cast<int>(base.size()),
                                 config.max_clique - 1);
    int take = 1 + static_cast<int>(rng.next_below(max_take));
    rng.shuffle(base);
    base.resize(static_cast<std::size_t>(take));
    for (int u : base) b.add_edge(v, u);
    base.push_back(v);
    std::sort(base.begin(), base.end());
    clique_at[v] = std::move(base);
  }
  return b.build();
}

namespace {

/// Tree edges (parent, child) for `num_bags` bags under the given shape.
std::vector<std::pair<int, int>> tree_skeleton(int num_bags, TreeShape shape,
                                               Rng& rng) {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(num_bags) - 1);
  switch (shape) {
    case TreeShape::kPath:
      for (int i = 1; i < num_bags; ++i) edges.emplace_back(i - 1, i);
      break;
    case TreeShape::kCaterpillar: {
      // Two thirds spine, one third pendant bags spread along it.
      int spine = std::max(1, 2 * num_bags / 3);
      for (int i = 1; i < spine; ++i) edges.emplace_back(i - 1, i);
      for (int i = spine; i < num_bags; ++i) {
        edges.emplace_back(static_cast<int>(rng.next_below(spine)), i);
      }
      break;
    }
    case TreeShape::kRandom:
      for (int i = 1; i < num_bags; ++i) {
        edges.emplace_back(static_cast<int>(rng.next_below(i)), i);
      }
      break;
    case TreeShape::kBinary:
      for (int i = 1; i < num_bags; ++i) edges.emplace_back((i - 1) / 2, i);
      break;
    case TreeShape::kSpider: {
      // Hub bag 0 with ~sqrt(num_bags) legs of equal length.
      int legs = std::max(3, static_cast<int>(std::max(1.0,
                          std::sqrt(static_cast<double>(num_bags)))));
      int prev_on_leg = -1;
      int leg_len = std::max(1, (num_bags - 1) / legs);
      for (int i = 1; i < num_bags; ++i) {
        int idx_on_leg = (i - 1) % leg_len;
        if (idx_on_leg == 0) prev_on_leg = 0;
        edges.emplace_back(prev_on_leg, i);
        prev_on_leg = i;
      }
      break;
    }
  }
  return edges;
}

}  // namespace

GeneratedChordal random_chordal_from_clique_tree(const CliqueTreeConfig& c) {
  if (c.num_bags <= 0) {
    throw std::invalid_argument("clique_tree generator: num_bags <= 0");
  }
  if (c.min_bag_size < 1 || c.max_bag_size < c.min_bag_size) {
    throw std::invalid_argument("clique_tree generator: bad bag sizes");
  }
  Rng rng(c.seed);
  GeneratedChordal out;
  out.tree_edges = tree_skeleton(c.num_bags, c.shape, rng);
  out.bags.resize(static_cast<std::size_t>(c.num_bags));

  int next_vertex = 0;
  auto fresh = [&next_vertex]() { return next_vertex++; };

  int root_size = static_cast<int>(
      rng.uniform_int(c.min_bag_size, c.max_bag_size));
  for (int i = 0; i < root_size; ++i) out.bags[0].push_back(fresh());

  // tree_skeleton emits children in increasing index order with parents
  // already materialized, so one pass suffices.
  for (auto [parent, child] : out.tree_edges) {
    std::vector<int> inherit = out.bags[parent];
    int shared_cap = std::min<int>({static_cast<int>(inherit.size()),
                                    c.max_shared, c.max_bag_size - 1});
    int shared = 1 + static_cast<int>(rng.next_below(shared_cap));
    rng.shuffle(inherit);
    inherit.resize(static_cast<std::size_t>(shared));
    int size = static_cast<int>(rng.uniform_int(
        std::max(c.min_bag_size, shared + 1), std::max(c.max_bag_size,
                                                       shared + 1)));
    while (static_cast<int>(inherit.size()) < size) inherit.push_back(fresh());
    std::sort(inherit.begin(), inherit.end());
    out.bags[child] = std::move(inherit);
  }

  GraphBuilder b(next_vertex);
  for (const auto& bag : out.bags) {
    for (std::size_t i = 0; i < bag.size(); ++i) {
      for (std::size_t j = i + 1; j < bag.size(); ++j) {
        b.add_edge(bag[i], bag[j]);
      }
    }
  }
  out.graph = b.build();
  return out;
}

GeneratedInterval random_interval(const RandomIntervalConfig& config) {
  Rng rng(config.seed);
  GeneratedInterval out;
  out.left.resize(static_cast<std::size_t>(config.n));
  out.right.resize(static_cast<std::size_t>(config.n));
  for (int v = 0; v < config.n; ++v) {
    double len = config.min_len +
                 rng.uniform01() * (config.max_len - config.min_len);
    double start = rng.uniform01() * config.window;
    out.left[v] = start;
    out.right[v] = start + len;
  }
  GraphBuilder b(config.n);
  // Sweep by left endpoint; O(n^2) worst case but fine at bench scales.
  std::vector<int> order(static_cast<std::size_t>(config.n));
  for (int v = 0; v < config.n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](int a, int bb) {
    return out.left[a] < out.left[bb];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      int u = order[i], v = order[j];
      if (out.left[v] > out.right[u]) break;
      b.add_edge(u, v);
    }
  }
  out.graph = b.build();
  return out;
}

GeneratedInterval random_unit_interval(int n, double window,
                                       std::uint64_t seed) {
  RandomIntervalConfig config;
  config.n = n;
  config.window = window;
  config.min_len = 1.0;
  config.max_len = 1.0;
  config.seed = seed;
  return random_interval(config);
}

GeneratedInterval staircase_interval(int n, double step, double jitter,
                                     std::uint64_t seed) {
  Rng rng(seed);
  GeneratedInterval out;
  out.left.resize(static_cast<std::size_t>(n));
  out.right.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    double start = v * step + (rng.uniform01() * 2.0 - 1.0) * jitter;
    out.left[v] = start;
    out.right[v] = start + 1.0;
  }
  GraphBuilder b(n);
  // Interval v starts within [v*step - jitter, v*step + jitter], so overlap
  // is impossible once (v - u) * step exceeds 1 + 2*jitter.
  int span = step > 0 ? static_cast<int>((1.0 + 2.0 * jitter) / step) + 1
                      : n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < std::min(n, u + span + 1); ++v) {
      if (out.left[u] <= out.right[v] && out.left[v] <= out.right[u]) {
        b.add_edge(u, v);
      }
    }
  }
  out.graph = b.build();
  return out;
}

Graph random_k_tree(int n, int k, std::uint64_t seed) {
  if (k < 1 || n < k + 1) {
    throw std::invalid_argument("random_k_tree: need n >= k+1, k >= 1");
  }
  Rng rng(seed);
  GraphBuilder b(n);
  std::vector<std::vector<int>> k_cliques;
  std::vector<int> base;
  for (int u = 0; u <= k; ++u) {
    for (int v = u + 1; v <= k; ++v) b.add_edge(u, v);
  }
  for (int u = 0; u <= k; ++u) {
    std::vector<int> clique;
    for (int v = 0; v <= k; ++v) {
      if (v != u) clique.push_back(v);
    }
    k_cliques.push_back(std::move(clique));
  }
  for (int v = k + 1; v < n; ++v) {
    const auto& host =
        k_cliques[static_cast<std::size_t>(rng.next_below(k_cliques.size()))];
    std::vector<int> attach = host;  // copy before k_cliques reallocates
    for (int u : attach) b.add_edge(v, u);
    for (int skip = 0; skip < k; ++skip) {
      std::vector<int> next;
      for (int i = 0; i < k; ++i) {
        if (i != skip) next.push_back(attach[i]);
      }
      next.push_back(v);
      k_cliques.push_back(std::move(next));
    }
  }
  return b.build();
}

StreamingInterval streaming_interval_graph(const StreamingIntervalConfig& c) {
  if (c.n < 0) {
    throw std::invalid_argument("streaming_interval_graph: negative n");
  }
  if (c.gap_mean <= 0.0 || c.min_len < 0.0 || c.max_len < c.min_len) {
    throw std::invalid_argument("streaming_interval_graph: bad geometry");
  }
  check_streaming_vertex_count(c.n, "streaming_interval_graph");
  const long long n = c.n;
  Rng rng(c.seed);
  StreamingInterval out;
  out.left.resize(static_cast<std::size_t>(n));
  out.right.resize(static_cast<std::size_t>(n));
  double cursor = 0.0;
  for (long long v = 0; v < n; ++v) {
    // Exponential arrival gaps keep the left endpoints sorted as generated.
    cursor += -std::log1p(-rng.uniform01()) * c.gap_mean;
    const double len = c.min_len + rng.uniform01() * (c.max_len - c.min_len);
    out.left[v] = cursor;
    out.right[v] = cursor + len;
  }
  if (n == 0) {
    out.graph.adopt_csr(0, std::vector<EdgeIndex>(1, 0), {});
    return out;
  }
  // Pass 1: v's forward neighbors are the contiguous range (v, reach[v]]
  // (left endpoints sorted). Forward degrees come straight from the scan;
  // backward degrees via a difference array over those ranges. Total scan
  // cost is O(n + m).
  std::vector<VertexId> reach(static_cast<std::size_t>(n));
  std::vector<EdgeIndex> bwd_diff(static_cast<std::size_t>(n) + 1, 0);
  long long total = 0;
  for (long long v = 0; v < n; ++v) {
    long long j = v + 1;
    while (j < n && out.left[j] <= out.right[v]) ++j;
    reach[v] = static_cast<VertexId>(j - 1);
    const long long fwd = j - 1 - v;
    if (fwd > 0) {
      total += 2 * fwd;
      ++bwd_diff[static_cast<std::size_t>(v) + 1];
      --bwd_diff[static_cast<std::size_t>(j)];
    }
  }
  checked_edge_index(total, "streaming_interval_graph adjacency volume");
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  EdgeIndex running_bwd = 0;
  for (long long v = 0; v < n; ++v) {
    running_bwd += bwd_diff[static_cast<std::size_t>(v)];
    const EdgeIndex degree =
        static_cast<EdgeIndex>(reach[v] - v) + running_bwd;
    offsets[v + 1] = offsets[v] + degree;
  }
  bwd_diff.clear();
  bwd_diff.shrink_to_fit();
  // Pass 2: one write cursor per row. Processing v ascending writes each
  // row's backward part (from smaller v) before its forward part, and both
  // parts ascend - rows come out sorted with no post-pass.
  std::vector<VertexId> adj(static_cast<std::size_t>(total));
  std::vector<EdgeIndex> cur(offsets.begin(), offsets.end() - 1);
  for (long long v = 0; v < n; ++v) {
    for (long long u = v + 1; u <= reach[v]; ++u) {
      adj[static_cast<std::size_t>(cur[v]++)] = static_cast<VertexId>(u);
      adj[static_cast<std::size_t>(cur[u]++)] = static_cast<VertexId>(v);
    }
  }
  out.graph.adopt_csr(static_cast<int>(n), std::move(offsets),
                      std::move(adj));
  return out;
}

Graph streaming_k_tree(long long n, int k, std::uint64_t seed) {
  if (k < 1 || n < k + 1) {
    throw std::invalid_argument("random_k_tree: need n >= k+1, k >= 1");
  }
  check_streaming_vertex_count(n, "streaming_k_tree");
  Rng rng(seed);
  const long long added = n - (k + 1);
  // One flat attachment slab replaces random_k_tree's k_cliques list: the
  // k host vertices of each added vertex, stored in the legacy host-word
  // order. Cliques exist only implicitly - clique id c > k decodes to
  // (owner = k+1 + (c-k-1)/k, skip = (c-k-1)%k) with member word
  // [attach(owner) minus slot skip, then owner], which is exactly the word
  // the legacy generator materialized. Initial cliques c <= k are
  // {0..k} \ {c}. The RNG call sequence (one next_below per added vertex,
  // same modulus) matches random_k_tree, so the generated graph is
  // bit-identical (asserted by tests/substrate_test.cpp).
  std::vector<VertexId> attach(static_cast<std::size_t>(added) *
                               static_cast<std::size_t>(k));
  for (long long v = k + 1; v < n; ++v) {
    const long long num_cliques = (k + 1) + (v - (k + 1)) * k;
    const long long c =
        static_cast<long long>(rng.next_below(
            static_cast<std::uint64_t>(num_cliques)));
    VertexId* word =
        attach.data() + static_cast<std::size_t>(v - (k + 1)) * k;
    if (c <= k) {
      int w = 0;
      for (int u = 0; u <= k; ++u) {
        if (u != c) word[w++] = static_cast<VertexId>(u);
      }
    } else {
      const long long t = c - (k + 1);
      const long long owner = (k + 1) + t / k;
      const int skip = static_cast<int>(t % k);
      const VertexId* host =
          attach.data() + static_cast<std::size_t>(owner - (k + 1)) * k;
      int w = 0;
      for (int i = 0; i < k; ++i) {
        if (i != skip) word[w++] = host[i];
      }
      word[w] = static_cast<VertexId>(owner);
    }
  }
  // Degrees -> offsets: the initial K_{k+1} gives every vertex 0..k degree
  // k; each added vertex contributes k to itself and 1 to each host.
  const long long total =
      2 * (static_cast<long long>(k) * (k + 1) / 2 + added * k);
  checked_edge_index(total, "streaming_k_tree adjacency volume");
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int u = 0; u <= k; ++u) offsets[u + 1] = static_cast<EdgeIndex>(k);
  for (long long v = k + 1; v < n; ++v) {
    const VertexId* word =
        attach.data() + static_cast<std::size_t>(v - (k + 1)) * k;
    offsets[v + 1] += static_cast<EdgeIndex>(k);
    for (int i = 0; i < k; ++i) ++offsets[static_cast<std::size_t>(word[i]) + 1];
  }
  for (long long v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  // Fill: initial clique rows ascending; then each added vertex writes its
  // own (sorted) host word and appends itself to the hosts' rows. Appended
  // ids ascend with v and exceed everything already in those rows, so every
  // row is born sorted.
  std::vector<VertexId> adj(static_cast<std::size_t>(total));
  std::vector<EdgeIndex> cur(offsets.begin(), offsets.end() - 1);
  for (int u = 0; u <= k; ++u) {
    for (int w = 0; w <= k; ++w) {
      if (w != u) adj[static_cast<std::size_t>(cur[u]++)] =
          static_cast<VertexId>(w);
    }
  }
  std::vector<VertexId> word_sorted(static_cast<std::size_t>(k));
  for (long long v = k + 1; v < n; ++v) {
    const VertexId* word =
        attach.data() + static_cast<std::size_t>(v - (k + 1)) * k;
    std::copy(word, word + k, word_sorted.begin());
    std::sort(word_sorted.begin(), word_sorted.end());
    for (int i = 0; i < k; ++i) {
      adj[static_cast<std::size_t>(cur[v]++)] = word_sorted[i];
      adj[static_cast<std::size_t>(cur[word_sorted[i]]++)] =
          static_cast<VertexId>(v);
    }
  }
  Graph g;
  g.adopt_csr(static_cast<int>(n), std::move(offsets), std::move(adj));
  return g;
}

}  // namespace chordal
