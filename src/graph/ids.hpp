// Compact id typedefs for the memory substrate.
//
// Every slab in the pipeline (Graph CSR, clique families, forest adjacency,
// membership maps, workspace assembly buffers) stores vertex and clique ids
// in these storage types. They are 32-bit by default - the production scale
// target of n = 10^6..10^7 vertices and up to ~10^9 adjacency slots fits
// comfortably - and compile-time switchable to 64-bit with
// -DCHORDAL_WIDE_IDS=ON for slabs beyond the 32-bit range. All algorithmic
// code computes on plain int (the public API contract caps n at INT_MAX
// either way), so outputs are bit-identical across widths by construction;
// scripts/check.sh proves it by running the audit matrix and trace-parity
// suites in both builds.
//
// Ingest paths (read_graph, CsrAssembler, the streaming generators) narrow
// 64-bit counts into these types through the checked_* helpers below, which
// throw a typed IdOverflowError instead of silently truncating.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace chordal {

#if defined(CHORDAL_WIDE_IDS)
/// Storage type for graph vertex ids inside slabs.
using VertexId = std::int64_t;
/// Storage type for clique (bag) ids inside slabs.
using CliqueId = std::int64_t;
/// Storage type for CSR offsets (indices into adjacency slabs).
using EdgeIndex = std::int64_t;
#else
using VertexId = std::int32_t;
using CliqueId = std::int32_t;
using EdgeIndex = std::int32_t;
#endif

/// Bit width of the configured id storage (32 or 64).
constexpr int id_bits() {
  return std::numeric_limits<VertexId>::digits + 1;
}

/// Typed narrowing failure: a 64-bit count or id exceeds the configured
/// storage width. Derives from std::range_error (hence std::runtime_error),
/// so existing hostile-input handling that catches runtime_error still
/// applies while tests can assert on the precise type.
class IdOverflowError : public std::range_error {
 public:
  using std::range_error::range_error;
};

namespace detail {

[[noreturn]] inline void throw_id_overflow(const char* what, long long value,
                                           long long max) {
  throw IdOverflowError(std::string(what) + ": value " +
                        std::to_string(value) + " exceeds the " +
                        std::to_string(id_bits()) +
                        "-bit id range [0, " + std::to_string(max) +
                        "] (rebuild with CHORDAL_WIDE_IDS for wider slabs)");
}

}  // namespace detail

/// Narrows a vertex count or id into VertexId; throws IdOverflowError when
/// it does not fit (never silently truncates).
inline VertexId checked_vertex_id(long long value, const char* what) {
  constexpr long long kMax =
      static_cast<long long>(std::numeric_limits<VertexId>::max());
  if (value < 0 || value > kMax) detail::throw_id_overflow(what, value, kMax);
  return static_cast<VertexId>(value);
}

/// Narrows an adjacency-slot count (2m for a graph with m edges) into
/// EdgeIndex; throws IdOverflowError when it does not fit.
inline EdgeIndex checked_edge_index(long long value, const char* what) {
  constexpr long long kMax =
      static_cast<long long>(std::numeric_limits<EdgeIndex>::max());
  if (value < 0 || value > kMax) detail::throw_id_overflow(what, value, kMax);
  return static_cast<EdgeIndex>(value);
}

}  // namespace chordal
