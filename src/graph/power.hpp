// Graph powers. Algorithm 5 simulates MISUnitInterval on G^k (Section 6);
// powers of interval graphs are interval (Raychaudhuri [29]) and powers of
// unit interval graphs are unit interval, which is what makes that
// simulation sound. The explicit power construction lives here for tests,
// benches, and downstream users.
#pragma once

#include "graph/graph.hpp"

namespace chordal {

/// G^k: same vertices, edges between distinct vertices at distance <= k.
/// BFS per vertex: O(n * (n + m)).
Graph graph_power(const Graph& g, int k);

}  // namespace chordal
