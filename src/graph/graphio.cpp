#include "graph/graphio.hpp"

#include <sstream>
#include <stdexcept>

namespace chordal {

void write_graph(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (auto [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

Graph read_graph(std::istream& in) {
  int n = 0;
  std::size_t m = 0;
  if (!(in >> n >> m)) {
    throw std::runtime_error("read_graph: malformed header");
  }
  GraphBuilder b(n);
  for (std::size_t i = 0; i < m; ++i) {
    int u = 0, v = 0;
    if (!(in >> u >> v)) {
      throw std::runtime_error("read_graph: truncated edge list");
    }
    b.add_edge(u, v);
  }
  return b.build();
}

std::string graph_to_string(const Graph& g) {
  std::ostringstream out;
  write_graph(out, g);
  return out.str();
}

Graph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace chordal
