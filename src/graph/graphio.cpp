#include "graph/graphio.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace chordal {

void write_graph(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (auto [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

Graph read_graph(std::istream& in) {
  // Every field is validated before it reaches GraphBuilder, so a hostile
  // or truncated stream produces a runtime_error naming the offending line
  // (line 1 is the "n m" header; edge i lives on line i + 2 of the
  // canonical format) instead of a builder error with no input context.
  auto fail = [](long long line, const std::string& what) {
    throw std::runtime_error("read_graph: line " + std::to_string(line) +
                             ": " + what);
  };
  long long n = 0;
  long long m = 0;
  if (!(in >> n)) fail(1, "malformed header (expected vertex count)");
  if (n < 0) fail(1, "negative vertex count " + std::to_string(n));
  if (n > std::numeric_limits<int>::max()) {
    fail(1, "vertex count " + std::to_string(n) + " overflows int");
  }
  if (!(in >> m)) fail(1, "malformed header (expected edge count)");
  if (m < 0) fail(1, "negative edge count " + std::to_string(m));
  long long max_edges = n * (n - 1) / 2;
  if (m > max_edges) {
    fail(1, "edge count " + std::to_string(m) + " exceeds n*(n-1)/2 = " +
                std::to_string(max_edges) + " for n = " + std::to_string(n));
  }
  GraphBuilder b(static_cast<int>(n));
  for (long long i = 0; i < m; ++i) {
    long long line = i + 2;
    long long u = 0, v = 0;
    if (!(in >> u >> v)) fail(line, "truncated edge list");
    if (u < 0 || u >= n || v < 0 || v >= n) {
      fail(line, "endpoint out of range in edge (" + std::to_string(u) +
                     ", " + std::to_string(v) + "), valid vertices are [0, " +
                     std::to_string(n) + ")");
    }
    if (u == v) fail(line, "self-loop at vertex " + std::to_string(u));
    b.add_edge(static_cast<int>(u), static_cast<int>(v));
  }
  return b.build();
}

std::string graph_to_string(const Graph& g) {
  std::ostringstream out;
  write_graph(out, g);
  return out.str();
}

Graph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace chordal
