#include "graph/graphio.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/csr.hpp"
#include "graph/ids.hpp"
#include "obs/metrics.hpp"

namespace chordal {

void write_graph(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (auto [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

Graph read_graph(std::istream& in) {
  // Every field is validated before it reaches the assembler, so a hostile
  // or truncated stream produces a runtime_error naming the offending line
  // (line 1 is the "n m" header; edge i lives on line i + 2 of the
  // canonical format) instead of a builder error with no input context.
  // Edges stream straight into CsrAssembler's flat endpoint buffer - no
  // adjacency-list staging - and the telemetry below reports how many input
  // bytes became how many resident slab bytes.
  const std::streampos start_pos = in.tellg();
  auto consumed_bytes = [&in, start_pos]() -> long long {
    const std::streampos here = in.tellg();
    if (start_pos == std::streampos(-1) || here == std::streampos(-1)) {
      return -1;
    }
    return static_cast<long long>(here - start_pos);
  };
  auto fail = [](long long line, const std::string& what) {
    throw std::runtime_error("read_graph: line " + std::to_string(line) +
                             ": " + what);
  };
  long long n = 0;
  long long m = 0;
  if (!(in >> n)) fail(1, "malformed header (expected vertex count)");
  if (n < 0) fail(1, "negative vertex count " + std::to_string(n));
  // The id-width guard: a header beyond the configured VertexId (or the
  // Graph API bound INT_MAX) raises the typed overflow error instead of
  // truncating into the slab types.
  const long long vertex_bound =
      std::min(static_cast<long long>(std::numeric_limits<VertexId>::max()),
               static_cast<long long>(std::numeric_limits<int>::max()));
  if (n > vertex_bound) {
    throw IdOverflowError(
        "read_graph: line 1: vertex count " + std::to_string(n) +
        " overflows the " + std::to_string(id_bits()) +
        "-bit vertex id space [0, " + std::to_string(vertex_bound) +
        "] (rebuild with CHORDAL_WIDE_IDS for wider slabs)");
  }
  if (!(in >> m)) fail(1, "malformed header (expected edge count)");
  if (m < 0) fail(1, "negative edge count " + std::to_string(m));
  long long max_edges = n * (n - 1) / 2;
  if (m > max_edges) {
    fail(1, "edge count " + std::to_string(m) + " exceeds n*(n-1)/2 = " +
                std::to_string(max_edges) + " for n = " + std::to_string(n));
  }
  CsrAssembler assembler(n);
  for (long long i = 0; i < m; ++i) {
    long long line = i + 2;
    long long u = 0, v = 0;
    if (!(in >> u >> v)) {
      const long long bytes = consumed_bytes();
      fail(line, "truncated edge list (expected " + std::to_string(m) +
                     " edges, got " + std::to_string(i) +
                     (bytes >= 0 ? "; consumed " + std::to_string(bytes) +
                                       " input bytes, " +
                                       std::to_string(assembler.staged_bytes()) +
                                       " staged"
                                 : "") +
                     ")");
    }
    if (u < 0 || u >= n || v < 0 || v >= n) {
      fail(line, "endpoint out of range in edge (" + std::to_string(u) +
                     ", " + std::to_string(v) + "), valid vertices are [0, " +
                     std::to_string(n) + ")");
    }
    if (u == v) fail(line, "self-loop at vertex " + std::to_string(u));
    assembler.add_edge(u, v);
  }
  const long long staged = static_cast<long long>(assembler.staged_bytes());
  Graph g = assembler.finish();
  if (obs::Registry* reg = obs::current()) {
    const long long bytes = consumed_bytes();
    if (bytes >= 0) {
      reg->gauge("io.read_graph.input_bytes").set(static_cast<double>(bytes));
    }
    reg->gauge("io.read_graph.staged_peak_bytes")
        .set(static_cast<double>(staged));
    reg->gauge("io.read_graph.resident_bytes")
        .set(static_cast<double>(g.memory_bytes()));
  }
  return g;
}

std::string graph_to_string(const Graph& g) {
  std::ostringstream out;
  write_graph(out, g);
  return out.str();
}

Graph graph_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_graph(in);
}

}  // namespace chordal
