#include "graph/components.hpp"

#include <queue>

namespace chordal {

std::vector<std::vector<int>> Components::groups() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(count));
  for (std::size_t v = 0; v < component.size(); ++v) {
    if (component[v] >= 0) out[component[v]].push_back(static_cast<int>(v));
  }
  return out;
}

namespace {

Components components_impl(const Graph& g, const std::vector<char>* active) {
  Components result;
  result.component.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (int start = 0; start < g.num_vertices(); ++start) {
    if (result.component[start] != -1) continue;
    if (active != nullptr && !(*active)[start]) continue;
    int id = result.count++;
    std::queue<int> queue;
    queue.push(start);
    result.component[start] = id;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop();
      for (int w : g.neighbors(u)) {
        if (result.component[w] != -1) continue;
        if (active != nullptr && !(*active)[w]) continue;
        result.component[w] = id;
        queue.push(w);
      }
    }
  }
  return result;
}

}  // namespace

Components connected_components(const Graph& g) {
  return components_impl(g, nullptr);
}

Components connected_components_restricted(const Graph& g,
                                           const std::vector<char>& active) {
  return components_impl(g, &active);
}

}  // namespace chordal
