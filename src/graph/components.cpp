#include "graph/components.hpp"

namespace chordal {

std::vector<std::vector<int>> Components::groups() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(count));
  for (std::size_t v = 0; v < component.size(); ++v) {
    if (component[v] >= 0) out[component[v]].push_back(static_cast<int>(v));
  }
  return out;
}

namespace {

// Flat-frontier flood fill: the scratch's order vector replaces the deque
// (FIFO via a read cursor, so the visit order - and hence the component
// numbering - matches the former std::queue implementation exactly).
int components_impl(const Graph& g, const std::vector<char>* active,
                    BfsScratch& scratch, std::vector<int>& component) {
  component.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  auto& queue = scratch.order;
  int count = 0;
  for (int start = 0; start < g.num_vertices(); ++start) {
    if (component[start] != -1) continue;
    if (active != nullptr && !(*active)[start]) continue;
    int id = count++;
    queue.clear();
    queue.push_back(static_cast<VertexId>(start));
    component[start] = id;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      int u = static_cast<int>(queue[head]);
      for (VertexId w : g.neighbors(u)) {
        if (component[w] != -1) continue;
        if (active != nullptr && !(*active)[w]) continue;
        component[w] = id;
        queue.push_back(w);
      }
    }
  }
  return count;
}

}  // namespace

int connected_components(const Graph& g, BfsScratch& scratch,
                         std::vector<int>& component) {
  return components_impl(g, nullptr, scratch, component);
}

int connected_components_restricted(const Graph& g,
                                    const std::vector<char>& active,
                                    BfsScratch& scratch,
                                    std::vector<int>& component) {
  return components_impl(g, &active, scratch, component);
}

Components connected_components(const Graph& g) {
  Components result;
  BfsScratch scratch;
  result.count = components_impl(g, nullptr, scratch, result.component);
  return result;
}

Components connected_components_restricted(const Graph& g,
                                           const std::vector<char>& active) {
  Components result;
  BfsScratch scratch;
  result.count = components_impl(g, &active, scratch, result.component);
  return result;
}

}  // namespace chordal
