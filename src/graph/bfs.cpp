#include "graph/bfs.hpp"

#include <stdexcept>

namespace chordal {

namespace {

std::vector<int> bfs_impl(const Graph& g, std::span<const int> sources,
                          const std::vector<char>* active, int radius_limit,
                          std::vector<VertexId>* order) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  // Flat frontier: every vertex enters at most once, so a plain vector with
  // a read cursor replaces the deque (no per-block allocation, and the
  // visit sequence doubles as the BFS order).
  std::vector<VertexId> queue;
  queue.reserve(sources.size());
  for (int s : sources) {
    if (s < 0 || s >= g.num_vertices()) {
      throw std::out_of_range("bfs: source out of range");
    }
    if (active != nullptr && !(*active)[s]) {
      throw std::invalid_argument("bfs: inactive source");
    }
    if (dist[s] == -1) {
      dist[s] = 0;
      queue.push_back(static_cast<VertexId>(s));
      if (order != nullptr) order->push_back(static_cast<VertexId>(s));
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int u = static_cast<int>(queue[head]);
    if (radius_limit >= 0 && dist[u] >= radius_limit) continue;
    for (VertexId w : g.neighbors(u)) {
      if (dist[w] != -1) continue;
      if (active != nullptr && !(*active)[w]) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
      if (order != nullptr) order->push_back(w);
    }
  }
  return dist;
}

// Scratch core shared by the allocation-free forms: stamped visit marks and
// distances, flat frontier in scratch.order. Same visit order and distances
// as bfs_impl by construction.
std::span<const VertexId> bfs_scratch_impl(const Graph& g, int source,
                                           const std::vector<char>* active,
                                           int radius_limit,
                                           BfsScratch& s) {
  if (source < 0 || source >= g.num_vertices()) {
    throw std::out_of_range("bfs: source out of range");
  }
  if (active != nullptr && !(*active)[source]) {
    throw std::invalid_argument("bfs: inactive source");
  }
  s.ensure(g.num_vertices());
  const std::uint64_t visit = ++s.epoch;
  s.order.clear();
  s.stamp[source] = visit;
  s.dist[source] = 0;
  s.order.push_back(static_cast<VertexId>(source));
  for (std::size_t head = 0; head < s.order.size(); ++head) {
    int u = static_cast<int>(s.order[head]);
    if (radius_limit >= 0 && s.dist[u] >= radius_limit) continue;
    for (VertexId w : g.neighbors(u)) {
      if (s.stamp[w] == visit) continue;
      if (active != nullptr && !(*active)[w]) continue;
      s.stamp[w] = visit;
      s.dist[w] = s.dist[u] + 1;
      s.order.push_back(w);
    }
  }
  return s.order;
}

}  // namespace

std::vector<int> bfs_distances(const Graph& g, int source) {
  int s[] = {source};
  return bfs_impl(g, s, nullptr, -1, nullptr);
}

std::vector<int> bfs_distances_multi(const Graph& g,
                                     std::span<const int> sources) {
  return bfs_impl(g, sources, nullptr, -1, nullptr);
}

std::vector<int> bfs_distances_restricted(const Graph& g, int source,
                                          const std::vector<char>& active) {
  int s[] = {source};
  return bfs_impl(g, s, &active, -1, nullptr);
}

std::vector<VertexId> ball_vertices(const Graph& g, int center, int radius) {
  std::vector<VertexId> order;
  int s[] = {center};
  bfs_impl(g, s, nullptr, radius, &order);
  return order;
}

std::vector<VertexId> ball_vertices_restricted(
    const Graph& g, int center, int radius, const std::vector<char>& active) {
  std::vector<VertexId> order;
  int s[] = {center};
  bfs_impl(g, s, &active, radius, &order);
  return order;
}

std::span<const VertexId> ball_vertices(const Graph& g, int center, int radius,
                                        BfsScratch& scratch) {
  return bfs_scratch_impl(g, center, nullptr, radius, scratch);
}

std::span<const VertexId> ball_vertices_restricted(
    const Graph& g, int center, int radius, const std::vector<char>& active,
    BfsScratch& scratch) {
  return bfs_scratch_impl(g, center, &active, radius, scratch);
}

std::size_t bfs_scratch(const Graph& g, int source, BfsScratch& scratch) {
  return bfs_scratch_impl(g, source, nullptr, -1, scratch).size();
}

int distance_between(const Graph& g, int u, int v) {
  if (u == v) return 0;
  auto dist = bfs_distances(g, u);
  return dist[v];
}

}  // namespace chordal
