#include "graph/bfs.hpp"

#include <stdexcept>

namespace chordal {

namespace {

std::vector<int> bfs_impl(const Graph& g, std::span<const int> sources,
                          const std::vector<char>* active, int radius_limit,
                          std::vector<int>* order) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  // Flat frontier: every vertex enters at most once, so a plain vector with
  // a read cursor replaces the deque (no per-block allocation, and the
  // visit sequence doubles as the BFS order).
  std::vector<int> queue;
  queue.reserve(sources.size());
  for (int s : sources) {
    if (s < 0 || s >= g.num_vertices()) {
      throw std::out_of_range("bfs: source out of range");
    }
    if (active != nullptr && !(*active)[s]) {
      throw std::invalid_argument("bfs: inactive source");
    }
    if (dist[s] == -1) {
      dist[s] = 0;
      queue.push_back(s);
      if (order != nullptr) order->push_back(s);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int u = queue[head];
    if (radius_limit >= 0 && dist[u] >= radius_limit) continue;
    for (int w : g.neighbors(u)) {
      if (dist[w] != -1) continue;
      if (active != nullptr && !(*active)[w]) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
      if (order != nullptr) order->push_back(w);
    }
  }
  return dist;
}

}  // namespace

std::vector<int> bfs_distances(const Graph& g, int source) {
  int s[] = {source};
  return bfs_impl(g, s, nullptr, -1, nullptr);
}

std::vector<int> bfs_distances_multi(const Graph& g,
                                     std::span<const int> sources) {
  return bfs_impl(g, sources, nullptr, -1, nullptr);
}

std::vector<int> bfs_distances_restricted(const Graph& g, int source,
                                          const std::vector<char>& active) {
  int s[] = {source};
  return bfs_impl(g, s, &active, -1, nullptr);
}

std::vector<int> ball_vertices(const Graph& g, int center, int radius) {
  std::vector<int> order;
  int s[] = {center};
  bfs_impl(g, s, nullptr, radius, &order);
  return order;
}

std::vector<int> ball_vertices_restricted(const Graph& g, int center,
                                          int radius,
                                          const std::vector<char>& active) {
  std::vector<int> order;
  int s[] = {center};
  bfs_impl(g, s, &active, radius, &order);
  return order;
}

int distance_between(const Graph& g, int u, int v) {
  if (u == v) return 0;
  auto dist = bfs_distances(g, u);
  return dist[v];
}

}  // namespace chordal
