#include "graph/power.hpp"

#include <stdexcept>

#include "graph/bfs.hpp"

namespace chordal {

Graph graph_power(const Graph& g, int k) {
  if (k < 1) throw std::invalid_argument("graph_power: k < 1");
  GraphBuilder b(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int u : ball_vertices(g, v, k)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  return b.build();
}

}  // namespace chordal
