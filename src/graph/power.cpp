#include "graph/power.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace chordal {

Graph graph_power(const Graph& g, int k) {
  if (k < 1) throw std::invalid_argument("graph_power: k < 1");
  const int n = g.num_vertices();
  // Row v of G^k is exactly ball(v, k) minus v, and the relation is
  // symmetric, so two scratch-BFS passes fill the CSR slab directly: no
  // edge-pair staging, no per-vertex ball allocation.
  BfsScratch scratch;
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  long long total = 0;
  for (int v = 0; v < n; ++v) {
    total += static_cast<long long>(ball_vertices(g, v, k, scratch).size()) - 1;
    checked_edge_index(total, "graph_power adjacency volume");
    offsets[v + 1] = static_cast<EdgeIndex>(total);
  }
  std::vector<VertexId> adj(static_cast<std::size_t>(total));
  for (int v = 0; v < n; ++v) {
    auto row = adj.begin() + offsets[v];
    auto cursor = row;
    for (VertexId u : ball_vertices(g, v, k, scratch)) {
      if (u != v) *cursor++ = u;
    }
    std::sort(row, cursor);
  }
  Graph out;
  out.adopt_csr(n, std::move(offsets), std::move(adj));
  return out;
}

}  // namespace chordal
