// Connected components.
#pragma once

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace chordal {

struct Components {
  /// component[v] = index of v's component, in [0, count).
  std::vector<int> component;
  int count = 0;

  /// Vertex lists grouped by component, each sorted ascending.
  std::vector<std::vector<int>> groups() const;
};

Components connected_components(const Graph& g);

/// Components of the subgraph induced by {v : active[v]}; inactive vertices
/// get component -1.
Components connected_components_restricted(const Graph& g,
                                           const std::vector<char>& active);

/// Scratch form: fills `component` (one slot per vertex, -1 for inactive)
/// and returns the component count. Uses the scratch's flat frontier, so
/// steady-state calls allocate nothing beyond `component` growth; component
/// ids match the allocating forms (ascending in smallest member).
int connected_components(const Graph& g, BfsScratch& scratch,
                         std::vector<int>& component);
int connected_components_restricted(const Graph& g,
                                    const std::vector<char>& active,
                                    BfsScratch& scratch,
                                    std::vector<int>& component);

}  // namespace chordal
