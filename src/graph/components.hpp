// Connected components.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace chordal {

struct Components {
  /// component[v] = index of v's component, in [0, count).
  std::vector<int> component;
  int count = 0;

  /// Vertex lists grouped by component, each sorted ascending.
  std::vector<std::vector<int>> groups() const;
};

Components connected_components(const Graph& g);

/// Components of the subgraph induced by {v : active[v]}; inactive vertices
/// get component -1.
Components connected_components_restricted(const Graph& g,
                                           const std::vector<char>& active);

}  // namespace chordal
