// Lexicographic breadth-first search (Rose, Tarjan & Lueker).
//
// For a chordal graph the reverse of a Lex-BFS visit order is a perfect
// elimination ordering; this is the standard linear-time chordality
// recognition pipeline and also the source of our maximal-clique extraction.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace chordal {

/// Lex-BFS visit order (first visited vertex first). Deterministic: ties are
/// broken by smallest vertex id within the lexicographically largest label
/// class, starting from the smallest-id vertex of each component.
std::vector<int> lexbfs_order(const Graph& g);

}  // namespace chordal
