#include "graph/diameter.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace chordal {

namespace {

int max_finite_distance(const std::vector<int>& dist) {
  int best = 0;
  for (int d : dist) {
    if (d == -1) throw std::invalid_argument("diameter: graph not connected");
    best = std::max(best, d);
  }
  return best;
}

}  // namespace

int diameter_exact(const Graph& g) {
  if (g.num_vertices() <= 1) return 0;
  int best = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    best = std::max(best, max_finite_distance(bfs_distances(g, v)));
  }
  return best;
}

int diameter_double_sweep(const Graph& g, int seed) {
  if (g.num_vertices() <= 1) return 0;
  auto dist = bfs_distances(g, seed);
  int far = seed;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == -1) throw std::invalid_argument("diameter: not connected");
    if (dist[v] > dist[far]) far = v;
  }
  return max_finite_distance(bfs_distances(g, far));
}

int eccentricity(const Graph& g, int v) {
  if (g.num_vertices() <= 1) return 0;
  return max_finite_distance(bfs_distances(g, v));
}

void SubsetSweepScratch::ensure(int num_vertices) {
  auto n = static_cast<std::size_t>(num_vertices);
  if (member_stamp.size() < n) {
    member_stamp.resize(n, 0);
    visit_stamp.resize(n, 0);
    dist.resize(n, 0);
  }
}

int diameter_double_sweep_subset(const Graph& g, const std::vector<int>& verts,
                                 SubsetSweepScratch& s) {
  if (verts.size() <= 1) return 0;
  s.ensure(g.num_vertices());
  const std::uint64_t member = ++s.epoch;
  for (int v : verts) s.member_stamp[v] = member;
  auto sweep = [&](int source) {
    const std::uint64_t visit = ++s.epoch;
    s.frontier.clear();
    s.frontier.push_back(source);
    s.visit_stamp[source] = visit;
    s.dist[source] = 0;
    for (std::size_t head = 0; head < s.frontier.size(); ++head) {
      int u = s.frontier[head];
      for (int w : g.neighbors(u)) {
        if (s.member_stamp[w] != member || s.visit_stamp[w] == visit) continue;
        s.visit_stamp[w] = visit;
        s.dist[w] = s.dist[u] + 1;
        s.frontier.push_back(w);
      }
    }
    return visit;
  };
  // First sweep starts at verts.front() == induced-local vertex 0; ties for
  // the farthest vertex resolve to the smallest member, as in
  // diameter_double_sweep on the induced subgraph.
  std::uint64_t visit = sweep(verts.front());
  int far = verts.front();
  for (int v : verts) {
    if (s.visit_stamp[v] != visit) {
      throw std::invalid_argument("diameter: not connected");
    }
    if (s.dist[v] > s.dist[far]) far = v;
  }
  visit = sweep(far);
  int best = 0;
  for (int v : verts) {
    if (s.visit_stamp[v] != visit) {
      throw std::invalid_argument("diameter: not connected");
    }
    best = std::max(best, s.dist[v]);
  }
  return best;
}

}  // namespace chordal
