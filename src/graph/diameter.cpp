#include "graph/diameter.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace chordal {

namespace {

// BFS visits vertices in distance order, so after a full sweep the last
// frontier entry carries the eccentricity of the source.
int sweep_eccentricity(const Graph& g, int source, BfsScratch& s,
                       const char* message) {
  const std::size_t reached = bfs_scratch(g, source, s);
  if (reached != static_cast<std::size_t>(g.num_vertices())) {
    throw std::invalid_argument(message);
  }
  return s.dist[s.order.back()];
}

}  // namespace

int diameter_exact(const Graph& g, BfsScratch& scratch) {
  if (g.num_vertices() <= 1) return 0;
  int best = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    best = std::max(
        best, sweep_eccentricity(g, v, scratch, "diameter: graph not connected"));
  }
  return best;
}

int diameter_exact(const Graph& g) {
  BfsScratch scratch;
  return diameter_exact(g, scratch);
}

int diameter_double_sweep(const Graph& g, int seed, BfsScratch& scratch) {
  if (g.num_vertices() <= 1) return 0;
  const std::size_t reached = bfs_scratch(g, seed, scratch);
  if (reached != static_cast<std::size_t>(g.num_vertices())) {
    throw std::invalid_argument("diameter: not connected");
  }
  // Farthest vertex, ties to the smallest id - the ascending scan matches
  // the allocating form exactly (all distances are stamped: connected).
  int far = seed;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (scratch.dist[v] > scratch.dist[far]) far = v;
  }
  return sweep_eccentricity(g, far, scratch, "diameter: not connected");
}

int diameter_double_sweep(const Graph& g, int seed) {
  BfsScratch scratch;
  return diameter_double_sweep(g, seed, scratch);
}

int eccentricity(const Graph& g, int v, BfsScratch& scratch) {
  if (g.num_vertices() <= 1) return 0;
  return sweep_eccentricity(g, v, scratch, "diameter: graph not connected");
}

int eccentricity(const Graph& g, int v) {
  BfsScratch scratch;
  return eccentricity(g, v, scratch);
}

void SubsetSweepScratch::ensure(int num_vertices) {
  auto n = static_cast<std::size_t>(num_vertices);
  if (member_stamp.size() < n) {
    member_stamp.resize(n, 0);
    visit_stamp.resize(n, 0);
    dist.resize(n, 0);
  }
}

int diameter_double_sweep_subset(const Graph& g, const std::vector<int>& verts,
                                 SubsetSweepScratch& s) {
  if (verts.size() <= 1) return 0;
  s.ensure(g.num_vertices());
  const std::uint64_t member = ++s.epoch;
  for (int v : verts) s.member_stamp[v] = member;
  auto sweep = [&](int source) {
    const std::uint64_t visit = ++s.epoch;
    s.frontier.clear();
    s.frontier.push_back(source);
    s.visit_stamp[source] = visit;
    s.dist[source] = 0;
    for (std::size_t head = 0; head < s.frontier.size(); ++head) {
      int u = s.frontier[head];
      for (int w : g.neighbors(u)) {
        if (s.member_stamp[w] != member || s.visit_stamp[w] == visit) continue;
        s.visit_stamp[w] = visit;
        s.dist[w] = s.dist[u] + 1;
        s.frontier.push_back(w);
      }
    }
    return visit;
  };
  // First sweep starts at verts.front() == induced-local vertex 0; ties for
  // the farthest vertex resolve to the smallest member, as in
  // diameter_double_sweep on the induced subgraph.
  std::uint64_t visit = sweep(verts.front());
  int far = verts.front();
  for (int v : verts) {
    if (s.visit_stamp[v] != visit) {
      throw std::invalid_argument("diameter: not connected");
    }
    if (s.dist[v] > s.dist[far]) far = v;
  }
  visit = sweep(far);
  int best = 0;
  for (int v : verts) {
    if (s.visit_stamp[v] != visit) {
      throw std::invalid_argument("diameter: not connected");
    }
    best = std::max(best, s.dist[v]);
  }
  return best;
}

}  // namespace chordal
