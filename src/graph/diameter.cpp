#include "graph/diameter.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace chordal {

namespace {

int max_finite_distance(const std::vector<int>& dist) {
  int best = 0;
  for (int d : dist) {
    if (d == -1) throw std::invalid_argument("diameter: graph not connected");
    best = std::max(best, d);
  }
  return best;
}

}  // namespace

int diameter_exact(const Graph& g) {
  if (g.num_vertices() <= 1) return 0;
  int best = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    best = std::max(best, max_finite_distance(bfs_distances(g, v)));
  }
  return best;
}

int diameter_double_sweep(const Graph& g, int seed) {
  if (g.num_vertices() <= 1) return 0;
  auto dist = bfs_distances(g, seed);
  int far = seed;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == -1) throw std::invalid_argument("diameter: not connected");
    if (dist[v] > dist[far]) far = v;
  }
  return max_finite_distance(bfs_distances(g, far));
}

int eccentricity(const Graph& g, int v) {
  if (g.num_vertices() <= 1) return 0;
  return max_finite_distance(bfs_distances(g, v));
}

}  // namespace chordal
