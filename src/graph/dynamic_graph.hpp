// Mutable slot-based companion to the CSR Graph, plus the local chordality
// certificates that gate every mutation of the dynamic layer.
//
// The CSR slabs of graph/graph.hpp are deliberately immutable: inserting one
// edge in place would memmove O(m) adjacency slots. The dynamic layer
// therefore keeps the *current* graph in per-slot sorted neighbor vectors
// with an aliveness mask and a free list (deleted vertex slots are reused
// lowest-first by later insertions), and materializes a CSR snapshot only
// when a batch consumer (parity audit, BallCache rebind) asks for one. Slot
// ids are stable across a vertex's lifetime, so downstream per-vertex state
// (colors, clique membership, cache entries) never needs relabeling.
//
// Chordality certificates. Each mutation of a chordal graph G admits a
// *local* exactness test (no global recognition pass):
//
//   * insert edge uv (uv not in E):  G+uv is chordal  iff  S = N(u) cut N(v)
//     separates u from v in G. If some u-v path survives in G - S, the
//     shortest such path P is induced (a chord would shortcut it) and has
//     length >= 3 (a length-2 path's midpoint would be in S), so P + uv is a
//     chordless cycle of G+uv - the returned witness.
//   * delete edge uv:  G-uv is chordal  iff  S = N(u) cut N(v) is a clique
//     (equivalently uv lies in exactly one maximal clique). Nonadjacent
//     a, b in S yield the chordless 4-cycle u,a,v,b in G-uv.
//   * insert vertex z with neighborhood X:  G+z is chordal  iff  for every
//     connected component D of G-X, the attachment N(D) cut X is a clique.
//     Nonadjacent a, b attached to the same component D yield a witness: a
//     shortest a-b path routed through D is induced, and closing it through
//     z (adjacent to exactly X) gives a chordless cycle of G+z. The witness
//     uses kNewVertex as a placeholder for z, which has no id yet.
//   * delete vertex: always chordal (the class is hereditary).
//
// The functions below are the BFS oracles for these tests: exact, simple,
// and O(affected component) - they are the reference the fast forest-based
// certificates in core/dynamic.cpp fall back to (and are differentially
// tested against by the audit matrix).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace chordal {

/// A mutation was rejected because it would break chordality. Carries the
/// witness: a chordless cycle (length >= 4) of the graph-after-update, as a
/// vertex sequence in cycle order. For vertex insertion the new vertex has
/// no id yet and appears as ChordalityViolation::kNewVertex.
class ChordalityViolation : public std::invalid_argument {
 public:
  static constexpr int kNewVertex = -1;

  ChordalityViolation(const std::string& what, std::vector<int> cycle)
      : std::invalid_argument(what), cycle_(std::move(cycle)) {}

  const std::vector<int>& witness_cycle() const { return cycle_; }

 private:
  std::vector<int> cycle_;
};

/// Reusable epoch-stamped scratch for the certificate BFS passes; one per
/// owner, never shared between concurrent calls. Grows lazily, clears
/// nothing.
struct DynamicScratch {
  void ensure(int n) {
    auto size = static_cast<std::size_t>(n);
    if (visit.size() < size) {
      visit.resize(size, 0);
      blocked.resize(size, 0);
      parent.resize(size, -1);
    }
  }

  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> visit;    // BFS visited stamp
  std::vector<std::uint64_t> blocked;  // separator / X membership stamp
  std::vector<int> parent;             // BFS tree for witness extraction
  std::vector<int> queue;
  std::vector<int> touched;  // small id-set staging (attachments etc.)
};

/// Mutable simple graph over stable vertex slots. Slots are 0..num_slots()-1;
/// dead slots keep their id (and reject adjacency queries' membership — they
/// simply have empty neighbor lists) until a later insert_vertex revives the
/// lowest free one. Mutators enforce simple-graph shape (no loops, no
/// duplicate edges, endpoints alive) with std::invalid_argument; chordality
/// is the caller's contract (see DynamicChordal), not this class's.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Adopts a static graph: every CSR vertex becomes an alive slot.
  explicit DynamicGraph(const Graph& g);

  int num_slots() const { return static_cast<int>(adj_.size()); }
  int num_alive() const { return alive_count_; }
  std::size_t num_edges() const { return edge_count_; }

  bool alive(int v) const {
    return v >= 0 && v < num_slots() && alive_[static_cast<std::size_t>(v)];
  }
  int degree(int v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }
  /// Sorted alive neighbors of an alive slot.
  std::span<const VertexId> neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  /// O(log deg) membership; false unless both endpoints are alive.
  bool has_edge(int u, int v) const;

  void add_edge(int u, int v);
  void remove_edge(int u, int v);
  /// Revives the lowest dead slot (or appends a new one) with the given
  /// alive, duplicate-free neighbor set; returns the slot id.
  int add_vertex(std::span<const int> neighbors);
  /// Kills the slot and every incident edge; the id goes on the free list.
  void remove_vertex(int v);

  /// Ascending list of alive slot ids.
  std::vector<int> alive_vertices() const;

  /// CSR snapshot over all slots; dead slots are isolated rows, so slot ids
  /// and CSR ids coincide (what BallCache rebind and the audits want).
  Graph materialize() const;

  std::size_t memory_bytes() const;

 private:
  void require_alive(int v, const char* what) const;

  std::vector<std::vector<VertexId>> adj_;  // sorted alive neighbors per slot
  std::vector<char> alive_;
  std::vector<int> free_slots_;  // min-heap (std::greater) of dead slot ids
  int alive_count_ = 0;
  std::size_t edge_count_ = 0;
};

/// Certificate oracles. Each returns an empty vector when the mutation keeps
/// the graph chordal, else the witness chordless cycle described above.
/// Preconditions (enforced by the mutators' argument checks, asserted here):
/// endpoints alive; for insert, uv not an edge and u != v; for delete, uv an
/// edge; for vertex insert, `neighbors` alive, sorted, duplicate-free.
std::vector<int> certify_edge_insert(const DynamicGraph& g, int u, int v,
                                     DynamicScratch& scratch);
std::vector<int> certify_edge_delete(const DynamicGraph& g, int u, int v);
std::vector<int> certify_vertex_insert(const DynamicGraph& g,
                                       std::span<const int> neighbors,
                                       DynamicScratch& scratch);

}  // namespace chordal
