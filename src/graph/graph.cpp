#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace chordal {

bool Graph::has_edge(int u, int v) const {
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

int Graph::max_degree() const {
  int d = 0;
  for (int v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

std::vector<std::pair<int, int>> Graph::edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(edge_count_);
  for (int u = 0; u < n_; ++u) {
    for (int v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

Graph Graph::induced_subgraph(std::span<const int> vertices,
                              std::vector<int>* original_of) const {
  std::vector<int> local(static_cast<std::size_t>(n_), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    int v = vertices[i];
    if (v < 0 || v >= n_) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (local[v] != -1) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    local[v] = static_cast<int>(i);
  }
  GraphBuilder builder(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (int w : neighbors(vertices[i])) {
      if (local[w] > static_cast<int>(i)) {
        builder.add_edge(static_cast<int>(i), local[w]);
      }
    }
  }
  if (original_of != nullptr) {
    original_of->assign(vertices.begin(), vertices.end());
  }
  return builder.build();
}

void Graph::assign_csr(int n, std::span<const int> offsets,
                       std::span<const int> adj) {
  if (static_cast<int>(offsets.size()) != n + 1) {
    throw std::invalid_argument("assign_csr: offsets size mismatch");
  }
  n_ = n;
  edge_count_ = adj.size() / 2;
  offsets_.assign(offsets.begin(), offsets.end());
  adj_.assign(adj.begin(), adj.end());
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(n_) + ", m=" + std::to_string(edge_count_) +
         ")";
}

GraphBuilder::GraphBuilder(int n) : n_(n) {
  if (n < 0) throw std::invalid_argument("GraphBuilder: negative n");
}

void GraphBuilder::add_edge(int u, int v) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder: vertex out of range");
  }
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  std::vector<std::pair<int, int>> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Graph g;
  g.n_ = n_;
  g.edge_count_ = sorted.size();
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [u, v] : sorted) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (int v = 0; v < n_; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adj_.resize(2 * sorted.size());
  std::vector<int> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : sorted) {
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  // Neighbor lists are sorted because edges were processed in sorted order
  // for the first endpoint; for the second endpoint insertion order follows
  // the sorted pair order as well, but verify cheaply in debug terms by
  // sorting each list (no-op when already sorted).
  for (int v = 0; v < n_; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

}  // namespace chordal
