#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace chordal {

bool Graph::has_edge(int u, int v) const {
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), static_cast<VertexId>(v));
}

int Graph::max_degree() const {
  int d = 0;
  for (int v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

std::vector<std::pair<int, int>> Graph::edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(edge_count_);
  for (int u = 0; u < n_; ++u) {
    for (int v : neighbors(u)) {
      if (u < v) out.emplace_back(u, static_cast<int>(v));
    }
  }
  return out;
}

#ifdef CHORDAL_WIDE_IDS
Graph Graph::induced_subgraph(std::span<const int> vertices,
                              std::vector<int>* original_of) const {
  std::vector<VertexId> widened(vertices.begin(), vertices.end());
  return induced_subgraph(std::span<const VertexId>(widened), original_of);
}
#endif

Graph Graph::induced_subgraph(std::span<const VertexId> vertices,
                              std::vector<int>* original_of) const {
  std::vector<int> local(static_cast<std::size_t>(n_), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    auto v = vertices[i];
    if (v < 0 || v >= n_) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (local[v] != -1) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    local[v] = static_cast<int>(i);
  }
  GraphBuilder builder(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (auto w : neighbors(static_cast<int>(vertices[i]))) {
      if (local[w] > static_cast<int>(i)) {
        builder.add_edge(static_cast<int>(i), local[w]);
      }
    }
  }
  if (original_of != nullptr) {
    original_of->assign(vertices.begin(), vertices.end());
  }
  return builder.build();
}

void Graph::assign_csr(int n, std::span<const EdgeIndex> offsets,
                       std::span<const VertexId> adj) {
  if (static_cast<int>(offsets.size()) != n + 1) {
    throw std::invalid_argument("assign_csr: offsets size mismatch");
  }
  n_ = n;
  edge_count_ = adj.size() / 2;
  offsets_.assign(offsets.begin(), offsets.end());
  adj_.assign(adj.begin(), adj.end());
}

void Graph::adopt_csr(int n, std::vector<EdgeIndex>&& offsets,
                      std::vector<VertexId>&& adj) {
  if (n < 0) throw std::invalid_argument("adopt_csr: negative n");
  if (static_cast<long long>(offsets.size()) !=
      static_cast<long long>(n) + 1) {
    throw std::invalid_argument("adopt_csr: offsets size mismatch");
  }
  if (static_cast<std::size_t>(offsets[n]) != adj.size()) {
    throw std::invalid_argument("adopt_csr: offsets[n] != adjacency size");
  }
  n_ = n;
  edge_count_ = adj.size() / 2;
  offsets_ = std::move(offsets);
  adj_ = std::move(adj);
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(n_) + ", m=" + std::to_string(edge_count_) +
         ")";
}

GraphBuilder::GraphBuilder(int n) : n_(n) {
  if (n < 0) throw std::invalid_argument("GraphBuilder: negative n");
}

void GraphBuilder::add_edge(int u, int v) {
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder: vertex out of range");
  }
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() {
  // Sort + dedup in place: the staged pair list doubles as the sort buffer,
  // so finalizing stages no second copy of the edge list. The builder stays
  // valid - the deduplicated list represents the same edge set.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.n_ = n_;
  g.edge_count_ = edges_.size();
  const EdgeIndex slots = checked_edge_index(
      2 * static_cast<long long>(edges_.size()), "GraphBuilder::build");
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (int v = 0; v < n_; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adj_.resize(static_cast<std::size_t>(slots));
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : edges_) {
    g.adj_[cursor[u]++] = static_cast<VertexId>(v);
    g.adj_[cursor[v]++] = static_cast<VertexId>(u);
  }
  // Edges are processed ascending in (u, v), so both the forward lists and
  // the appended reverse entries come out ascending; keep the defensive
  // per-row sort as a no-op-cost invariant guard in debug terms.
  for (int v = 0; v < n_; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

}  // namespace chordal
