// Streaming CSR assembly: edge-by-edge ingest straight into the Graph slab.
//
// GraphBuilder stages every edge as an (int, int) pair and finalizes with a
// sort - fine at test scales, but at n = 10^6..10^7 the pair list rivals
// the final adjacency slab in size. CsrAssembler is the bulk-ingest path:
// edges stream in once (counted into a degree table and buffered as flat
// endpoint words), finish() prefix-sums the degrees into the offset slab,
// scatters the buffered endpoints directly into the final adjacency slab,
// sorts and deduplicates each row in place, and bulk-moves both slabs into
// the Graph with adopt_csr. Peak staging is one flat endpoint buffer (2
// VertexId words per edge) on top of the final slab - no pair sort, no
// second copy, no vector<vector<int>> anywhere.
//
// Generators that can enumerate each row's neighbors in sorted order (the
// streaming interval and k-tree generators in graph/generators.hpp) skip
// even the endpoint buffer by filling offsets/adjacency themselves and
// calling Graph::adopt_csr directly.
//
// All counts narrow through graph/ids.hpp's checked helpers: a stream whose
// vertex count or adjacency volume exceeds the configured id width raises
// IdOverflowError instead of truncating.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace chordal {

class CsrAssembler {
 public:
  /// Throws IdOverflowError when n exceeds the VertexId range (or INT_MAX,
  /// the Graph API bound).
  explicit CsrAssembler(long long n);

  long long num_vertices() const { return n_; }
  /// Edges staged so far (before deduplication).
  std::size_t staged_edges() const { return endpoints_.size() / 2; }

  /// Pre-sizes the endpoint buffer for `m` edges (optional).
  void reserve_edges(long long m);

  /// Stages one undirected edge. Rejects loops and out-of-range endpoints
  /// (std::invalid_argument / std::out_of_range, matching GraphBuilder);
  /// duplicates are allowed and removed by finish(). Throws IdOverflowError
  /// when the adjacency volume would exceed the EdgeIndex range.
  void add_edge(long long u, long long v);

  /// Assembles the staged edges into a Graph (rows sorted, deduplicated)
  /// and releases all staging storage. The assembler is empty afterwards
  /// and may be reused for another graph of the same n.
  Graph finish();

  /// Bytes currently resident in the staging buffers.
  std::size_t staged_bytes() const {
    return endpoints_.capacity() * sizeof(VertexId) +
           degree_.capacity() * sizeof(EdgeIndex);
  }

 private:
  long long n_ = 0;
  std::vector<EdgeIndex> degree_;     // per vertex; becomes the offset slab
  std::vector<VertexId> endpoints_;   // flat (u, v) words, one pair per edge
};

}  // namespace chordal
