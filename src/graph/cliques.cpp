#include "graph/cliques.hpp"

#include <algorithm>
#include <stdexcept>

namespace chordal {

std::vector<std::vector<int>> maximal_cliques_chordal(
    const Graph& g, const EliminationOrder& peo) {
  const int n = g.num_vertices();
  // later_count[v] = |N_later(v)|; follower[v] = later neighbor of v that is
  // closest to v in the order (the parent m(v) of the clique-tree
  // literature).
  std::vector<int> later_count(static_cast<std::size_t>(n), 0);
  std::vector<int> follower(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    for (int w : g.neighbors(v)) {
      if (peo.position[w] > peo.position[v]) {
        ++later_count[v];
        if (follower[v] == -1 ||
            peo.position[w] < peo.position[follower[v]]) {
          follower[v] = w;
        }
      }
    }
  }
  // C_v = {v} + N_later(v) fails to be maximal iff some u with follower
  // m(u) = v has |N_later(u)| = |N_later(v)| + 1 (then C_v is a subset of
  // C_u). Blair & Peyton, "An introduction to chordal graphs and clique
  // trees", Lemma 4.4.
  std::vector<int> reach(static_cast<std::size_t>(n), -1);
  for (int u = 0; u < n; ++u) {
    if (follower[u] != -1) {
      reach[follower[u]] = std::max(reach[follower[u]], later_count[u]);
    }
  }
  std::vector<std::vector<int>> cliques;
  for (int v = 0; v < n; ++v) {
    if (reach[v] >= later_count[v] + 1) continue;  // dominated, not maximal
    std::vector<int> clique;
    clique.reserve(static_cast<std::size_t>(later_count[v]) + 1);
    clique.push_back(v);
    for (int w : g.neighbors(v)) {
      if (peo.position[w] > peo.position[v]) clique.push_back(w);
    }
    std::sort(clique.begin(), clique.end());
    cliques.push_back(std::move(clique));
  }
  std::sort(cliques.begin(), cliques.end());
  return cliques;
}

std::vector<std::vector<int>> maximal_cliques_chordal(const Graph& g) {
  return maximal_cliques_chordal(g, peo_or_throw(g));
}

CliqueFamily maximal_cliques_chordal_family(const Graph& g,
                                            const EliminationOrder& peo) {
  const int n = g.num_vertices();
  // Same Fulkerson-Gross extraction as the nested form above, but the words
  // stream into one flat staging family, which is then emitted in canonical
  // lexicographic order through an index argsort. The words of distinct
  // maximal cliques are distinct, so the order (and hence the output) is
  // exactly the nested path's.
  std::vector<int> later_count(static_cast<std::size_t>(n), 0);
  std::vector<int> follower(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    for (int w : g.neighbors(v)) {
      if (peo.position[w] > peo.position[v]) {
        ++later_count[v];
        if (follower[v] == -1 ||
            peo.position[w] < peo.position[follower[v]]) {
          follower[v] = w;
        }
      }
    }
  }
  std::vector<int> reach(static_cast<std::size_t>(n), -1);
  for (int u = 0; u < n; ++u) {
    if (follower[u] != -1) {
      reach[follower[u]] = std::max(reach[follower[u]], later_count[u]);
    }
  }
  CliqueFamily stage;
  std::vector<VertexId> word;
  for (int v = 0; v < n; ++v) {
    if (reach[v] >= later_count[v] + 1) continue;  // dominated, not maximal
    word.clear();
    word.push_back(static_cast<VertexId>(v));
    for (VertexId w : g.neighbors(v)) {
      if (peo.position[w] > peo.position[v]) word.push_back(w);
    }
    std::sort(word.begin(), word.end());
    stage.push_word(word);
  }
  const std::size_t m = stage.size();
  std::vector<int> order(m);
  for (std::size_t c = 0; c < m; ++c) order[c] = static_cast<int>(c);
  std::sort(order.begin(), order.end(), [&stage](int a, int b) {
    return word_less(stage[static_cast<std::size_t>(a)],
                     stage[static_cast<std::size_t>(b)]);
  });
  CliqueFamily out;
  out.reserve(m, stage.total_vertices());
  for (int c : order) out.push_word(stage[static_cast<std::size_t>(c)]);
  return out;
}

CliqueFamily maximal_cliques_chordal_family(const Graph& g) {
  return maximal_cliques_chordal_family(g, peo_or_throw(g));
}

namespace {

void bron_kerbosch(const Graph& g, std::vector<int>& r, std::vector<int> p,
                   std::vector<int> x, std::vector<std::vector<int>>& out) {
  if (p.empty() && x.empty()) {
    std::vector<int> clique = r;
    std::sort(clique.begin(), clique.end());
    out.push_back(std::move(clique));
    return;
  }
  // Pivot: vertex of P union X with most neighbors in P.
  int pivot = -1, best = -1;
  for (const auto& side : {p, x}) {
    for (int u : side) {
      int cnt = 0;
      for (int w : p) cnt += g.has_edge(u, w) ? 1 : 0;
      if (cnt > best) {
        best = cnt;
        pivot = u;
      }
    }
  }
  std::vector<int> candidates;
  for (int v : p) {
    if (pivot == -1 || !g.has_edge(pivot, v)) candidates.push_back(v);
  }
  for (int v : candidates) {
    std::vector<int> p2, x2;
    for (int w : p) {
      if (g.has_edge(v, w)) p2.push_back(w);
    }
    for (int w : x) {
      if (g.has_edge(v, w)) x2.push_back(w);
    }
    r.push_back(v);
    bron_kerbosch(g, r, std::move(p2), std::move(x2), out);
    r.pop_back();
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

}  // namespace

std::vector<std::vector<int>> maximal_cliques_bruteforce(const Graph& g) {
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) all[v] = v;
  std::vector<std::vector<int>> out;
  std::vector<int> r;
  bron_kerbosch(g, r, all, {}, out);
  std::sort(out.begin(), out.end());
  return out;
}

bool cliques_lex_sorted(const std::vector<std::vector<int>>& cliques) {
  for (std::size_t c = 1; c < cliques.size(); ++c) {
    if (!(cliques[c - 1] < cliques[c])) return false;
  }
  return true;
}

bool cliques_lex_sorted(const CliqueFamily& cliques) {
  for (std::size_t c = 1; c < cliques.size(); ++c) {
    if (!word_less(cliques[c - 1], cliques[c])) return false;
  }
  return true;
}

std::vector<int> clique_lex_ranks(
    const std::vector<std::vector<int>>& cliques) {
  const int m = static_cast<int>(cliques.size());
  std::vector<int> order(static_cast<std::size_t>(m));
  for (int c = 0; c < m; ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(), [&cliques](int a, int b) {
    return cliques[a] < cliques[b];
  });
  std::vector<int> ranks(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) ranks[order[r]] = r;
  return ranks;
}

std::vector<int> clique_lex_ranks(const CliqueFamily& cliques) {
  const int m = static_cast<int>(cliques.size());
  std::vector<int> order(static_cast<std::size_t>(m));
  for (int c = 0; c < m; ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(), [&cliques](int a, int b) {
    return word_less(cliques[static_cast<std::size_t>(a)],
                     cliques[static_cast<std::size_t>(b)]);
  });
  std::vector<int> ranks(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) ranks[order[r]] = r;
  return ranks;
}

int max_clique_size_chordal(const Graph& g) {
  std::size_t best = 0;
  for (const auto& c : maximal_cliques_chordal(g)) {
    best = std::max(best, c.size());
  }
  return static_cast<int>(best);
}

}  // namespace chordal
