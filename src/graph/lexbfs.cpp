#include "graph/lexbfs.hpp"

#include <set>

namespace chordal {

// Partition-refinement Lex-BFS. Groups of vertices with equal labels are kept
// in a doubly linked list ordered by label (lexicographically largest label
// first). Each group stores its members in an ordered set so that tie-breaks
// are by vertex id, making the order fully deterministic.
std::vector<int> lexbfs_order(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  if (n == 0) return order;

  struct Group {
    std::set<int> members;
    int prev = -1;
    int next = -1;
  };
  std::vector<Group> groups;
  groups.reserve(static_cast<std::size_t>(n) + 1);
  groups.emplace_back();
  int head = 0;
  for (int v = 0; v < n; ++v) groups[0].members.insert(v);

  std::vector<int> group_of(static_cast<std::size_t>(n), 0);
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  // For the current pivot: split_target[g] = group created in front of g.
  std::vector<int> split_target(static_cast<std::size_t>(n) + 1, -1);
  std::vector<int> split_stamp(static_cast<std::size_t>(n) + 1, -1);

  for (int step = 0; step < n; ++step) {
    // Drop empty leading groups.
    while (head != -1 && groups[head].members.empty()) head = groups[head].next;
    int pivot = *groups[head].members.begin();
    groups[head].members.erase(groups[head].members.begin());
    visited[pivot] = 1;
    order.push_back(pivot);

    for (int w : g.neighbors(pivot)) {
      if (visited[w]) continue;
      int gw = group_of[w];
      if (split_stamp[gw] != step) {
        // Create a new group immediately in front of gw (larger label).
        split_stamp[gw] = step;
        groups.emplace_back();
        int ng = static_cast<int>(groups.size()) - 1;
        split_target[gw] = ng;
        groups[ng].prev = groups[gw].prev;
        groups[ng].next = gw;
        if (groups[gw].prev != -1) groups[groups[gw].prev].next = ng;
        groups[gw].prev = ng;
        if (head == gw) head = ng;
        if (split_stamp.size() < groups.size() + 1) {
          split_stamp.resize(groups.size() + 1, -1);
          split_target.resize(groups.size() + 1, -1);
        }
      }
      int ng = split_target[gw];
      groups[gw].members.erase(w);
      groups[ng].members.insert(w);
      group_of[w] = ng;
    }
  }
  return order;
}

}  // namespace chordal
