#include "graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace chordal {

CsrAssembler::CsrAssembler(long long n) : n_(n) {
  if (n < 0) throw std::invalid_argument("CsrAssembler: negative n");
  checked_vertex_id(n, "CsrAssembler vertex count");
  if (n > static_cast<long long>(std::numeric_limits<int>::max())) {
    throw IdOverflowError("CsrAssembler: vertex count " + std::to_string(n) +
                          " exceeds the Graph API bound INT_MAX");
  }
  degree_.assign(static_cast<std::size_t>(n), 0);
}

void CsrAssembler::reserve_edges(long long m) {
  if (m < 0) throw std::invalid_argument("CsrAssembler: negative edge count");
  endpoints_.reserve(static_cast<std::size_t>(2 * m));
}

void CsrAssembler::add_edge(long long u, long long v) {
  if (u == v) throw std::invalid_argument("CsrAssembler: self-loop");
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("CsrAssembler: vertex out of range");
  }
  // Each staged edge eventually occupies two adjacency slots; keep the
  // running total inside the EdgeIndex range so finish() cannot overflow.
  checked_edge_index(static_cast<long long>(endpoints_.size()) + 2,
                     "CsrAssembler adjacency volume");
  endpoints_.push_back(static_cast<VertexId>(u));
  endpoints_.push_back(static_cast<VertexId>(v));
  ++degree_[static_cast<std::size_t>(u)];
  ++degree_[static_cast<std::size_t>(v)];
}

Graph CsrAssembler::finish() {
  const auto n = static_cast<std::size_t>(n_);
  // Degrees -> offsets (exclusive prefix sum), then scatter both endpoint
  // directions straight into the final slab.
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree_[v];
  std::vector<VertexId> adj(static_cast<std::size_t>(offsets[n]));
  // degree_ doubles as the per-row write cursor (counts down to zero), so
  // the scatter needs no extra cursor allocation.
  std::vector<EdgeIndex>& cursor = degree_;
  for (std::size_t v = 0; v < n; ++v) cursor[v] = offsets[v];
  for (std::size_t i = 0; i < endpoints_.size(); i += 2) {
    const auto u = static_cast<std::size_t>(endpoints_[i]);
    const auto v = static_cast<std::size_t>(endpoints_[i + 1]);
    adj[static_cast<std::size_t>(cursor[u]++)] = endpoints_[i + 1];
    adj[static_cast<std::size_t>(cursor[v]++)] = endpoints_[i];
  }
  endpoints_.clear();
  endpoints_.shrink_to_fit();
  // Sort each row and drop duplicate slots in one forward compaction.
  std::size_t write = 0;
  EdgeIndex row_start = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const EdgeIndex row_end = offsets[v + 1];
    std::sort(adj.begin() + row_start, adj.begin() + row_end);
    EdgeIndex kept_start = static_cast<EdgeIndex>(write);
    for (EdgeIndex i = row_start; i < row_end; ++i) {
      if (static_cast<EdgeIndex>(write) == kept_start ||
          adj[write - 1] != adj[i]) {
        adj[write++] = adj[i];
      }
    }
    row_start = row_end;
    offsets[v + 1] = static_cast<EdgeIndex>(write);
  }
  adj.resize(write);
  Graph g;
  g.adopt_csr(static_cast<int>(n_), std::move(offsets), std::move(adj));
  degree_.assign(n, 0);
  return g;
}

}  // namespace chordal
