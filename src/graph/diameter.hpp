// Diameter and eccentricity computations.
//
// The peeling process (Algorithm 1, step 1a) thresholds clique-forest paths
// by the *exact* diameter of the interval subgraph they induce, so we provide
// both an exact all-pairs routine (for tests / small graphs) and a
// double-sweep BFS used in production and validated against the exact one by
// property tests (exact on the connected interval graphs we feed it).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace chordal {

/// Exact diameter via BFS from every vertex. O(n * m). Returns 0 for graphs
/// with <= 1 vertex; requires a connected graph otherwise (throws if not).
int diameter_exact(const Graph& g);

/// Double-sweep: BFS from `seed`, then BFS from the farthest vertex found.
/// Lower-bounds the diameter in general; exact on (connected) interval
/// graphs, which is the only place the algorithms rely on it.
int diameter_double_sweep(const Graph& g, int seed = 0);

/// Eccentricity of v (max distance to any vertex; requires connectivity).
int eccentricity(const Graph& g, int v);

}  // namespace chordal
