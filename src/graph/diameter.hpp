// Diameter and eccentricity computations.
//
// The peeling process (Algorithm 1, step 1a) thresholds clique-forest paths
// by the *exact* diameter of the interval subgraph they induce, so we provide
// both an exact all-pairs routine (for tests / small graphs) and a
// double-sweep BFS used in production and validated against the exact one by
// property tests (exact on the connected interval graphs we feed it).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace chordal {

/// Exact diameter via BFS from every vertex. O(n * m). Returns 0 for graphs
/// with <= 1 vertex; requires a connected graph otherwise (throws if not).
int diameter_exact(const Graph& g);

/// Double-sweep: BFS from `seed`, then BFS from the farthest vertex found.
/// Lower-bounds the diameter in general; exact on (connected) interval
/// graphs, which is the only place the algorithms rely on it.
int diameter_double_sweep(const Graph& g, int seed = 0);

/// Eccentricity of v (max distance to any vertex; requires connectivity).
int eccentricity(const Graph& g, int v);

/// Scratch forms: identical results, but every BFS runs through the
/// epoch-stamped BfsScratch - diameter_exact drops from n allocations to
/// zero once the scratch is warm. The allocating forms above delegate here.
int diameter_exact(const Graph& g, BfsScratch& scratch);
int diameter_double_sweep(const Graph& g, int seed, BfsScratch& scratch);
int eccentricity(const Graph& g, int v, BfsScratch& scratch);

/// Reusable scratch for diameter_double_sweep_subset. Epoch-stamped, so a
/// call touches only subset-sized state; one scratch per worker thread.
class SubsetSweepScratch {
 public:
  /// Grows the stamped tables to the host graph size (no-op once sized).
  void ensure(int num_vertices);

  // Internal state (used by diameter.cpp).
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> member_stamp;  // subset membership epoch
  std::vector<std::uint64_t> visit_stamp;   // BFS visit epoch
  std::vector<int> dist;                    // BFS distance, valid if stamped
  std::vector<int> frontier;                // flat BFS queue
};

/// diameter_double_sweep of G[verts] without materializing the induced
/// subgraph; `verts` must be sorted ascending, so the sweep's farthest-
/// vertex tie-breaks match the induced form exactly (local index order ==
/// ascending vertex order). Throws if G[verts] is not connected.
int diameter_double_sweep_subset(const Graph& g, const std::vector<int>& verts,
                                 SubsetSweepScratch& scratch);

}  // namespace chordal
