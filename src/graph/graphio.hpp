// Minimal text serialization: line 1 is "n m", followed by m lines "u v".
// Used by the examples so scenarios can be saved and re-run.
//
// read_graph validates every field before construction — negative or
// overflowing n, negative or absurd m (> n*(n-1)/2), out-of-range
// endpoints, and self-loops are rejected with a std::runtime_error naming
// the offending line. Duplicate edges are tolerated (the builder
// deduplicates), so read -> write canonicalizes.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace chordal {

void write_graph(std::ostream& out, const Graph& g);
Graph read_graph(std::istream& in);

std::string graph_to_string(const Graph& g);
Graph graph_from_string(const std::string& text);

}  // namespace chordal
