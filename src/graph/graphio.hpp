// Minimal text serialization: line 1 is "n m", followed by m lines "u v".
// Used by the examples so scenarios can be saved and re-run.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace chordal {

void write_graph(std::ostream& out, const Graph& g);
Graph read_graph(std::istream& in);

std::string graph_to_string(const Graph& g);
Graph graph_from_string(const std::string& text);

}  // namespace chordal
