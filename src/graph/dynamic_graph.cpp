#include "graph/dynamic_graph.hpp"

#include <algorithm>
#include <cassert>

namespace chordal {

namespace {

void insert_sorted(std::vector<VertexId>& row, VertexId v) {
  row.insert(std::lower_bound(row.begin(), row.end(), v), v);
}

void erase_sorted(std::vector<VertexId>& row, VertexId v) {
  auto it = std::lower_bound(row.begin(), row.end(), v);
  assert(it != row.end() && *it == v);
  row.erase(it);
}

}  // namespace

DynamicGraph::DynamicGraph(const Graph& g)
    : adj_(static_cast<std::size_t>(g.num_vertices())),
      alive_(static_cast<std::size_t>(g.num_vertices()), 1),
      alive_count_(g.num_vertices()),
      edge_count_(g.num_edges()) {
  for (int v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    adj_[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
  }
}

void DynamicGraph::require_alive(int v, const char* what) const {
  if (v < 0 || v >= num_slots() || !alive_[static_cast<std::size_t>(v)]) {
    throw std::invalid_argument(std::string(what) + ": vertex " +
                                std::to_string(v) + " is not an alive slot");
  }
}

bool DynamicGraph::has_edge(int u, int v) const {
  if (!alive(u) || !alive(v)) return false;
  const auto& row = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(row.begin(), row.end(), static_cast<VertexId>(v));
}

void DynamicGraph::add_edge(int u, int v) {
  require_alive(u, "add_edge");
  require_alive(v, "add_edge");
  if (u == v) {
    throw std::invalid_argument("add_edge: self-loop at vertex " +
                                std::to_string(u));
  }
  if (has_edge(u, v)) {
    throw std::invalid_argument("add_edge: edge (" + std::to_string(u) + ", " +
                                std::to_string(v) + ") already present");
  }
  insert_sorted(adj_[static_cast<std::size_t>(u)], static_cast<VertexId>(v));
  insert_sorted(adj_[static_cast<std::size_t>(v)], static_cast<VertexId>(u));
  ++edge_count_;
}

void DynamicGraph::remove_edge(int u, int v) {
  require_alive(u, "remove_edge");
  require_alive(v, "remove_edge");
  if (!has_edge(u, v)) {
    throw std::invalid_argument("remove_edge: edge (" + std::to_string(u) +
                                ", " + std::to_string(v) + ") not present");
  }
  erase_sorted(adj_[static_cast<std::size_t>(u)], static_cast<VertexId>(v));
  erase_sorted(adj_[static_cast<std::size_t>(v)], static_cast<VertexId>(u));
  --edge_count_;
}

int DynamicGraph::add_vertex(std::span<const int> neighbors) {
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    require_alive(neighbors[i], "add_vertex");
    for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
      if (neighbors[i] == neighbors[j]) {
        throw std::invalid_argument("add_vertex: duplicate neighbor " +
                                    std::to_string(neighbors[i]));
      }
    }
  }
  int z;
  if (!free_slots_.empty()) {
    std::pop_heap(free_slots_.begin(), free_slots_.end(), std::greater<>{});
    z = free_slots_.back();
    free_slots_.pop_back();
  } else {
    z = num_slots();
    adj_.emplace_back();
    alive_.push_back(0);
  }
  alive_[static_cast<std::size_t>(z)] = 1;
  ++alive_count_;
  auto& row = adj_[static_cast<std::size_t>(z)];
  row.assign(neighbors.begin(), neighbors.end());
  std::sort(row.begin(), row.end());
  for (int u : neighbors) {
    insert_sorted(adj_[static_cast<std::size_t>(u)], static_cast<VertexId>(z));
  }
  edge_count_ += neighbors.size();
  return z;
}

void DynamicGraph::remove_vertex(int v) {
  require_alive(v, "remove_vertex");
  auto& row = adj_[static_cast<std::size_t>(v)];
  for (VertexId u : row) {
    erase_sorted(adj_[static_cast<std::size_t>(u)], static_cast<VertexId>(v));
  }
  edge_count_ -= row.size();
  row.clear();
  row.shrink_to_fit();
  alive_[static_cast<std::size_t>(v)] = 0;
  --alive_count_;
  free_slots_.push_back(v);
  std::push_heap(free_slots_.begin(), free_slots_.end(), std::greater<>{});
}

std::vector<int> DynamicGraph::alive_vertices() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(alive_count_));
  for (int v = 0; v < num_slots(); ++v) {
    if (alive_[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

Graph DynamicGraph::materialize() const {
  int n = num_slots();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::size_t total = 0;
  for (int v = 0; v < n; ++v) {
    total += adj_[static_cast<std::size_t>(v)].size();
    offsets[static_cast<std::size_t>(v) + 1] =
        checked_edge_index(static_cast<long long>(total), "materialize");
  }
  std::vector<VertexId> adj;
  adj.reserve(total);
  for (int v = 0; v < n; ++v) {
    const auto& row = adj_[static_cast<std::size_t>(v)];
    adj.insert(adj.end(), row.begin(), row.end());
  }
  Graph g;
  g.adopt_csr(n, std::move(offsets), std::move(adj));
  return g;
}

std::size_t DynamicGraph::memory_bytes() const {
  std::size_t bytes = alive_.capacity() * sizeof(char) +
                      free_slots_.capacity() * sizeof(int) +
                      adj_.capacity() * sizeof(std::vector<VertexId>);
  for (const auto& row : adj_) bytes += row.capacity() * sizeof(VertexId);
  return bytes;
}

namespace {

/// Sorted common alive neighborhood N(u) cut N(v).
std::vector<int> common_neighbors(const DynamicGraph& g, int u, int v) {
  std::vector<int> out;
  auto nu = g.neighbors(u);
  auto nv = g.neighbors(v);
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nv[j] < nu[i]) {
      ++j;
    } else {
      out.push_back(static_cast<int>(nu[i]));
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

std::vector<int> certify_edge_insert(const DynamicGraph& g, int u, int v,
                                     DynamicScratch& s) {
  assert(g.alive(u) && g.alive(v) && u != v && !g.has_edge(u, v));
  s.ensure(g.num_slots());
  ++s.epoch;
  for (int w : common_neighbors(g, u, v)) {
    s.blocked[static_cast<std::size_t>(w)] = s.epoch;
  }
  // BFS from u in G - S; if v stays unreachable, S separates and the insert
  // is chordal-safe.
  s.queue.clear();
  s.queue.push_back(u);
  s.visit[static_cast<std::size_t>(u)] = s.epoch;
  s.parent[static_cast<std::size_t>(u)] = -1;
  for (std::size_t head = 0; head < s.queue.size(); ++head) {
    int x = s.queue[head];
    for (VertexId wv : g.neighbors(x)) {
      int w = static_cast<int>(wv);
      auto wi = static_cast<std::size_t>(w);
      if (s.visit[wi] == s.epoch || s.blocked[wi] == s.epoch) continue;
      s.visit[wi] = s.epoch;
      s.parent[wi] = x;
      if (w == v) {
        // Shortest u-v path in G - S, cycle-ordered; closing through the new
        // edge uv makes it a chordless cycle of G+uv (see header proof).
        std::vector<int> cycle;
        for (int p = v; p != -1; p = s.parent[static_cast<std::size_t>(p)]) {
          cycle.push_back(p);
        }
        std::reverse(cycle.begin(), cycle.end());  // u ... v
        assert(cycle.size() >= 4);
        return cycle;
      }
      s.queue.push_back(w);
    }
  }
  return {};
}

std::vector<int> certify_edge_delete(const DynamicGraph& g, int u, int v) {
  assert(g.has_edge(u, v));
  std::vector<int> s = common_neighbors(g, u, v);
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      if (!g.has_edge(s[i], s[j])) {
        // u,a,v,b is a chordless 4-cycle of G-uv: ab is a non-edge and the
        // only other chord candidate, uv, is the edge being deleted.
        return {u, s[i], v, s[j]};
      }
    }
  }
  return {};
}

std::vector<int> certify_vertex_insert(const DynamicGraph& g,
                                       std::span<const int> neighbors,
                                       DynamicScratch& s) {
  if (neighbors.size() <= 1) return {};
  s.ensure(g.num_slots());
  ++s.epoch;
  for (int x : neighbors) s.blocked[static_cast<std::size_t>(x)] = s.epoch;
  // Flood each component D of G - X that touches X; its attachment
  // N(D) cut X must be a clique.
  for (int x : neighbors) {
    for (VertexId seedv : g.neighbors(x)) {
      int seed = static_cast<int>(seedv);
      auto si = static_cast<std::size_t>(seed);
      if (s.visit[si] == s.epoch || s.blocked[si] == s.epoch) continue;
      s.queue.clear();
      s.touched.clear();  // attachment: X vertices adjacent to this D
      s.queue.push_back(seed);
      s.visit[si] = s.epoch;
      for (std::size_t head = 0; head < s.queue.size(); ++head) {
        int d = s.queue[head];
        for (VertexId wv : g.neighbors(d)) {
          int w = static_cast<int>(wv);
          auto wi = static_cast<std::size_t>(w);
          if (s.blocked[wi] == s.epoch) {
            if (s.visit[wi] != s.epoch) {
              s.visit[wi] = s.epoch;  // mark attachment once
              s.touched.push_back(w);
            }
            continue;
          }
          if (s.visit[wi] == s.epoch) continue;
          s.visit[wi] = s.epoch;
          s.queue.push_back(w);
        }
      }
      for (std::size_t i = 0; i < s.touched.size(); ++i) {
        for (std::size_t j = i + 1; j < s.touched.size(); ++j) {
          int a = s.touched[i], b = s.touched[j];
          if (g.has_edge(a, b)) continue;
          // Witness: z, a, <shortest a-b path through D>, b. The path is
          // induced (shortest in G[{a,b} union D]) and its interior avoids
          // X = N(z), so closing through z yields a chordless cycle of G+z.
          ++s.epoch;
          s.queue.clear();
          s.queue.push_back(a);
          s.visit[static_cast<std::size_t>(a)] = s.epoch;
          s.parent[static_cast<std::size_t>(a)] = -1;
          std::vector<int> cycle;
          for (std::size_t head = 0; head < s.queue.size() && cycle.empty();
               ++head) {
            int x2 = s.queue[head];
            for (VertexId wv : g.neighbors(x2)) {
              int w = static_cast<int>(wv);
              auto wi = static_cast<std::size_t>(w);
              if (s.visit[wi] == s.epoch) continue;
              // Interior must stay inside D; only a and b touch X.
              bool in_x =
                  std::binary_search(neighbors.begin(), neighbors.end(), w);
              if (in_x && w != b) continue;
              s.visit[wi] = s.epoch;
              s.parent[wi] = x2;
              if (w == b) {
                for (int p = b; p != -1;
                     p = s.parent[static_cast<std::size_t>(p)]) {
                  cycle.push_back(p);
                }
                std::reverse(cycle.begin(), cycle.end());  // a ... b
                break;
              }
              // Stay within this component: seeds outside D are blocked by
              // the in_x test (X) or unreachable (other components).
              s.queue.push_back(w);
            }
          }
          assert(cycle.size() >= 3);
          cycle.insert(cycle.begin(), ChordalityViolation::kNewVertex);
          return cycle;
        }
      }
      // Unmark the attachment: an X vertex can be attached to several
      // components and must land in each component's attachment list.
      for (int w : s.touched) s.visit[static_cast<std::size_t>(w)] = 0;
    }
  }
  return {};
}

}  // namespace chordal
