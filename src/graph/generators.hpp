// Synthetic workload generators.
//
// The paper evaluates nothing empirically, so these generators define the
// synthetic workloads for all experiments: random chordal graphs (two
// constructions), random (unit) interval graphs, trees, and structured
// families (paths, caterpillars, brooms, k-trees) chosen to stress the
// peeling process of Algorithm 1 in different ways.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace chordal {

// ---------------------------------------------------------------------------
// Deterministic families
// ---------------------------------------------------------------------------

Graph path_graph(int n);
Graph complete_graph(int n);
Graph star_graph(int leaves);
/// Spine of `spine` vertices, `legs` pendant vertices per spine vertex.
Graph caterpillar(int spine, int legs);
/// Path of `handle` vertices ending in a star with `bristles` leaves.
Graph broom(int handle, int bristles);

// ---------------------------------------------------------------------------
// Random families
// ---------------------------------------------------------------------------

/// Random tree: vertex i >= 1 attaches to a uniform random earlier vertex.
Graph random_tree(int n, std::uint64_t seed);

struct RandomChordalConfig {
  int n = 100;
  /// Upper bound on the clique formed at each vertex insertion (and thus on
  /// omega(G) = chi(G)).
  int max_clique = 4;
  /// Probability that a new vertex attaches to the most recently inserted
  /// vertex instead of a uniform one. Values near 1 yield long, path-like
  /// clique forests (the regime where peeling needs many iterations).
  double chain_bias = 0.5;
  std::uint64_t seed = 1;
};

/// Incremental random chordal graph: each new vertex is attached to a random
/// subset of a clique stored at an existing vertex, so the reverse insertion
/// order is a perfect elimination ordering by construction.
Graph random_chordal(const RandomChordalConfig& config);

/// Shapes for the prescribed-clique-tree generator below.
enum class TreeShape {
  kPath,        // clique tree is a path: graph is interval
  kCaterpillar, // long spine with pendant bags
  kRandom,      // uniform random attachment
  kBinary,      // balanced binary tree
  kSpider,      // several long legs meeting at a hub
};

struct CliqueTreeConfig {
  int num_bags = 50;
  int min_bag_size = 2;
  int max_bag_size = 5;
  /// Maximum number of vertices a child bag inherits from its parent
  /// (at least 1 so the tree stays connected as a graph).
  int max_shared = 3;
  TreeShape shape = TreeShape::kRandom;
  std::uint64_t seed = 1;
};

struct GeneratedChordal {
  Graph graph;
  /// Bags of the generating tree (supersets structure; the canonical clique
  /// forest computed by the library may merge non-maximal bags).
  std::vector<std::vector<int>> bags;
  std::vector<std::pair<int, int>> tree_edges;  // over bag indices
};

/// Builds a chordal graph from a prescribed clique-tree skeleton: bag 0 gets
/// fresh vertices; every other bag inherits a nonempty subset of its parent
/// bag plus at least one fresh vertex. The subtree property holds by
/// construction, so the union of bag cliques is chordal.
GeneratedChordal random_chordal_from_clique_tree(const CliqueTreeConfig& c);

struct RandomIntervalConfig {
  int n = 100;
  /// Interval endpoints are drawn over [0, window).
  double window = 100.0;
  /// Interval length is uniform in [min_len, max_len].
  double min_len = 1.0;
  double max_len = 10.0;
  std::uint64_t seed = 1;
};

struct GeneratedInterval {
  Graph graph;
  std::vector<double> left;
  std::vector<double> right;
};

/// Random interval graph from uniformly placed intervals.
GeneratedInterval random_interval(const RandomIntervalConfig& config);

/// Random unit interval graph (all lengths 1.0).
GeneratedInterval random_unit_interval(int n, double window,
                                       std::uint64_t seed);

/// Staircase of unit intervals: interval i starts near i*step (jittered by
/// +-jitter). For step in (0.5, 1) this is a long proper-interval chain
/// with no dominated vertices - the regime where the distributed interval
/// algorithms (ColIntGraph, Algorithm 5) genuinely need their anchor
/// machinery rather than collapsing to local exact solves.
GeneratedInterval staircase_interval(int n, double step, double jitter,
                                     std::uint64_t seed);

/// Random k-tree on n vertices (n >= k+1): start from K_{k+1}; each new
/// vertex attaches to a uniformly random existing k-clique.
Graph random_k_tree(int n, int k, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Streaming million-node generators
//
// The bulk generators above stage edges in a GraphBuilder pair list (and
// random_k_tree additionally materializes every k-clique as its own
// vector), which at n = 10^6..10^7 costs multiples of the final CSR slab in
// peak memory. The streaming forms below emit edges directly into the final
// offsets/adjacency slabs - two passes, no pair list, no per-clique
// vectors - so peak resident memory is the output graph plus O(n) flat
// scratch. Counts narrow through graph/ids.hpp and raise IdOverflowError
// rather than truncating.
// ---------------------------------------------------------------------------

struct StreamingIntervalConfig {
  long long n = 1'000'000;
  /// Mean gap between consecutive (sorted) left endpoints: arrivals form a
  /// Poisson process with this spacing, so intervals stream in left-endpoint
  /// order and each vertex's forward neighbors are a contiguous id range.
  double gap_mean = 1.0;
  /// Interval length uniform in [min_len, max_len]; the expected degree is
  /// about 2 * E[length] / gap_mean.
  double min_len = 4.0;
  double max_len = 8.0;
  std::uint64_t seed = 1;
};

struct StreamingInterval {
  Graph graph;
  std::vector<double> left;   // sorted ascending (arrival order == id order)
  std::vector<double> right;  // left[v] + length[v]
};

/// Random interval graph built edge-by-edge into CSR: one pass computes
/// per-vertex degrees (forward by overlap scan, backward by a difference
/// array), a prefix sum sizes the slab exactly, and a second pass scatters
/// both edge directions in sorted order. Peak memory = final slab + O(n).
StreamingInterval streaming_interval_graph(const StreamingIntervalConfig& c);

/// Random k-tree identical to random_k_tree(n, k, seed) - same RNG call
/// sequence, same edge set, bit-identical CSR - but built through a flat
/// attachment slab (k host ids per vertex) with cliques represented
/// implicitly as (owner vertex, skipped slot) pairs, and edges streamed
/// straight into the CSR slab. Peak memory drops from O(n*k) small vectors
/// plus an edge pair list to one k*n id slab plus the output graph.
Graph streaming_k_tree(long long n, int k, std::uint64_t seed);

}  // namespace chordal
