// Breadth-first search utilities: distances, balls, restricted searches.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace chordal {

/// Distances from `source`; unreachable vertices get -1.
std::vector<int> bfs_distances(const Graph& g, int source);

/// Distances from any vertex in `sources` (multi-source BFS).
std::vector<int> bfs_distances_multi(const Graph& g,
                                     std::span<const int> sources);

/// Distances from `source` within the subgraph induced by vertices where
/// active[v] is true. Requires active[source].
std::vector<int> bfs_distances_restricted(const Graph& g, int source,
                                          const std::vector<char>& active);

/// Vertices at distance <= radius from `center`, in BFS (distance, id) order.
/// This is the closed ball Gamma^radius[center] of the paper.
std::vector<int> ball_vertices(const Graph& g, int center, int radius);

/// Ball restricted to an active vertex subset.
std::vector<int> ball_vertices_restricted(const Graph& g, int center,
                                          int radius,
                                          const std::vector<char>& active);

/// Exact distance between two vertices (-1 if disconnected); early-exits.
int distance_between(const Graph& g, int u, int v);

}  // namespace chordal
