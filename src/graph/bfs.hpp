// Breadth-first search utilities: distances, balls, restricted searches.
//
// Two forms of each query: an allocating convenience form, and an
// epoch-stamped scratch form (BfsScratch) that touches only visited-size
// state and allocates nothing once warm - the substrate for per-vertex
// sweeps (diameter, graph powers, component scans) at million-node scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace chordal {

/// Reusable BFS scratch: stamped visit marks, distances, and a flat
/// frontier that doubles as the BFS order. One scratch per worker thread;
/// results referencing the scratch are invalidated by the next call.
struct BfsScratch {
  /// Grows the stamped tables to cover ids [0, n) (no-op once sized).
  void ensure(int n) {
    auto size = static_cast<std::size_t>(n);
    if (stamp.size() < size) {
      stamp.resize(size, 0);
      dist.resize(size, 0);
    }
  }

  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> stamp;  // per vertex: visit epoch
  std::vector<int> dist;             // valid where stamp[v] == epoch
  std::vector<VertexId> order;       // flat frontier == BFS visit order
};

/// Distances from `source`; unreachable vertices get -1.
std::vector<int> bfs_distances(const Graph& g, int source);

/// Distances from any vertex in `sources` (multi-source BFS).
std::vector<int> bfs_distances_multi(const Graph& g,
                                     std::span<const int> sources);

/// Distances from `source` within the subgraph induced by vertices where
/// active[v] is true. Requires active[source].
std::vector<int> bfs_distances_restricted(const Graph& g, int source,
                                          const std::vector<char>& active);

/// Vertices at distance <= radius from `center`, in BFS (distance, id) order.
/// This is the closed ball Gamma^radius[center] of the paper.
std::vector<VertexId> ball_vertices(const Graph& g, int center, int radius);

/// Ball restricted to an active vertex subset.
std::vector<VertexId> ball_vertices_restricted(const Graph& g, int center,
                                               int radius,
                                               const std::vector<char>& active);

/// Scratch form of ball_vertices: the same ball, as a span over
/// scratch.order. Valid until the next call on the scratch; allocates
/// nothing once the scratch is warm. Distances of visited vertices are
/// readable from scratch.dist (stamped with scratch.epoch).
std::span<const VertexId> ball_vertices(const Graph& g, int center, int radius,
                                        BfsScratch& scratch);

/// Scratch form of ball_vertices_restricted.
std::span<const VertexId> ball_vertices_restricted(
    const Graph& g, int center, int radius, const std::vector<char>& active,
    BfsScratch& scratch);

/// Full single-source BFS into the scratch (no radius limit): afterwards
/// scratch.order holds the reachable vertices in BFS order and scratch.dist
/// their distances. Returns the number of vertices reached.
std::size_t bfs_scratch(const Graph& g, int source, BfsScratch& scratch);

/// Exact distance between two vertices (-1 if disconnected); early-exits.
int distance_between(const Graph& g, int u, int v);

}  // namespace chordal
