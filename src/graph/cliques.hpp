// Maximal cliques.
//
// For chordal graphs the maximal cliques are exactly the maximal sets of the
// form {v} union N_later(v) over a perfect elimination ordering
// (Fulkerson-Gross); there are at most n of them and they are extracted in
// near-linear time. A Bron-Kerbosch enumerator is provided as the
// brute-force oracle for property tests.
#pragma once

#include <vector>

#include "cliqueforest/family.hpp"
#include "graph/graph.hpp"
#include "graph/peo.hpp"

namespace chordal {

/// Maximal cliques of a chordal graph, each sorted ascending, and the list
/// sorted lexicographically (so the output is canonical). Throws if g is not
/// chordal.
std::vector<std::vector<int>> maximal_cliques_chordal(const Graph& g);

/// As above, but reuses an already-verified PEO.
std::vector<std::vector<int>> maximal_cliques_chordal(
    const Graph& g, const EliminationOrder& peo);

/// Flat-substrate form: the same canonical family, emitted straight into a
/// CliqueFamily slab (no vector<vector<int>> staging). This is the path the
/// full-graph forest build takes at million-node scale.
CliqueFamily maximal_cliques_chordal_family(const Graph& g);
CliqueFamily maximal_cliques_chordal_family(const Graph& g,
                                            const EliminationOrder& peo);

/// Bron-Kerbosch with pivoting; works on any graph. Exponential in the worst
/// case - intended for tests on small instances. Output canonicalized the
/// same way as maximal_cliques_chordal.
std::vector<std::vector<int>> maximal_cliques_bruteforce(const Graph& g);

/// Size of the largest clique of a chordal graph == chromatic number chi(G).
int max_clique_size_chordal(const Graph& g);

/// True when the clique words are strictly increasing lexicographically -
/// the canonical order produced by maximal_cliques_chordal and required by
/// the fast forest engine's rank-free tie-breaks (rank == index).
bool cliques_lex_sorted(const std::vector<std::vector<int>>& cliques);
bool cliques_lex_sorted(const CliqueFamily& cliques);

/// Lexicographic rank of every clique word within the family: ranks[c] == r
/// means cliques[c] is the r-th smallest word. Computed once per family so
/// the paper's tie-break order on W_G edges becomes integer comparison on
/// (weight, min rank, max rank) instead of repeated O(omega) word
/// comparisons. Identity for canonical (sorted, distinct) families; ties
/// between equal words are broken by index.
std::vector<int> clique_lex_ranks(
    const std::vector<std::vector<int>>& cliques);
std::vector<int> clique_lex_ranks(const CliqueFamily& cliques);

}  // namespace chordal
