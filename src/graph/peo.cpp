#include "graph/peo.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/lexbfs.hpp"

namespace chordal {

EliminationOrder peo_candidate(const Graph& g) {
  EliminationOrder peo;
  peo.order = lexbfs_order(g);
  std::reverse(peo.order.begin(), peo.order.end());
  peo.position.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < peo.order.size(); ++i) {
    peo.position[peo.order[i]] = static_cast<int>(i);
  }
  return peo;
}

bool is_perfect_elimination_order(const Graph& g,
                                  const EliminationOrder& peo) {
  const int n = g.num_vertices();
  if (static_cast<int>(peo.order.size()) != n) return false;
  // Deferred check: for each v, let u = the later neighbor of v closest to v
  // in the order ("follower"). Then the PEO property holds iff
  // N_later(v) \ {u} is always a subset of N(u). Accumulate the required
  // adjacencies at u and verify them with one pass over u's neighborhood.
  std::vector<std::vector<int>> required(static_cast<std::size_t>(n));
  for (int v : peo.order) {
    int follower = -1;
    for (int w : g.neighbors(v)) {
      if (peo.position[w] <= peo.position[v]) continue;
      if (follower == -1 || peo.position[w] < peo.position[follower]) {
        follower = w;
      }
    }
    if (follower == -1) continue;
    for (int w : g.neighbors(v)) {
      if (peo.position[w] > peo.position[v] && w != follower) {
        required[follower].push_back(w);
      }
    }
  }
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (int u = 0; u < n; ++u) {
    if (required[u].empty()) continue;
    for (int w : g.neighbors(u)) mark[w] = 1;
    bool ok = true;
    for (int w : required[u]) ok = ok && mark[w];
    for (int w : g.neighbors(u)) mark[w] = 0;
    if (!ok) return false;
  }
  return true;
}

bool is_chordal(const Graph& g) {
  return is_perfect_elimination_order(g, peo_candidate(g));
}

EliminationOrder peo_or_throw(const Graph& g) {
  EliminationOrder peo = peo_candidate(g);
  if (!is_perfect_elimination_order(g, peo)) {
    throw std::invalid_argument("peo_or_throw: graph is not chordal");
  }
  return peo;
}

bool is_simplicial(const Graph& g, int v, const std::vector<char>& active) {
  if (!active[v]) {
    throw std::invalid_argument("is_simplicial: inactive vertex");
  }
  std::vector<int> nbrs;
  for (int w : g.neighbors(v)) {
    if (active[w]) nbrs.push_back(w);
  }
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (!g.has_edge(nbrs[i], nbrs[j])) return false;
    }
  }
  return true;
}

}  // namespace chordal
