// Undirected simple graph in compressed adjacency form.
//
// Vertices are 0..n-1. In the LOCAL-model terminology of the paper these are
// the network *nodes*; a node's unique ID is its index (generators can also
// attach a random relabeling where ID symmetry matters, e.g. the Theorem 9
// lower-bound experiment).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace chordal {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  int num_vertices() const { return n_; }
  std::size_t num_edges() const { return edge_count_; }

  /// Sorted neighbor list of v.
  std::span<const int> neighbors(int v) const {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  int degree(int v) const { return offsets_[v + 1] - offsets_[v]; }

  /// O(log deg) membership test.
  bool has_edge(int u, int v) const;

  /// Maximum degree Delta(G).
  int max_degree() const;

  /// All edges as (u, v) pairs with u < v.
  std::vector<std::pair<int, int>> edges() const;

  /// Subgraph induced by `vertices` (need not be sorted; duplicates are an
  /// error). Vertex i of the result corresponds to vertices[i]; the original
  /// index is returned in `original_of` when non-null.
  Graph induced_subgraph(std::span<const int> vertices,
                         std::vector<int>* original_of = nullptr) const;

  /// Rebuilds this graph in place from a compressed adjacency the caller
  /// assembled directly (offsets of size n+1; each neighbor list sorted
  /// ascending, symmetric, loop-free - unchecked). Reuses the existing
  /// storage, so hot paths can rebuild ball subgraphs without allocating.
  void assign_csr(int n, std::span<const int> offsets,
                  std::span<const int> adj);

  /// Human-readable one-line summary, e.g. "Graph(n=23, m=31)".
  std::string summary() const;

 private:
  friend class GraphBuilder;
  int n_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<int> offsets_;  // size n_+1
  std::vector<int> adj_;      // concatenated sorted neighbor lists
};

/// Incremental edge-list builder; deduplicates edges and rejects loops.
class GraphBuilder {
 public:
  explicit GraphBuilder(int n);

  int num_vertices() const { return n_; }
  void add_edge(int u, int v);

  /// Finalizes into a Graph. The builder can keep being used afterwards.
  Graph build() const;

 private:
  int n_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace chordal
