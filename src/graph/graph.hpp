// Undirected simple graph as one struct-of-arrays CSR slab.
//
// Vertices are 0..n-1. In the LOCAL-model terminology of the paper these are
// the network *nodes*; a node's unique ID is its index (generators can also
// attach a random relabeling where ID symmetry matters, e.g. the Theorem 9
// lower-bound experiment).
//
// Storage is exactly two flat allocations - `offsets_` (n+1 EdgeIndex
// entries) and `adj_` (2m VertexId entries, each neighbor list sorted
// ascending) - in the compact id types of graph/ids.hpp: 32-bit by default,
// 64-bit under CHORDAL_WIDE_IDS. Bulk ingest goes through adopt_csr (a
// move, no copy) or assign_csr (a copy into reused storage for hot-path
// ball rebuilds); both are fed by graph/csr.hpp's CsrAssembler and the
// streaming generators without any vector<vector<int>> staging.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/ids.hpp"

namespace chordal {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  int num_vertices() const { return n_; }
  std::size_t num_edges() const { return edge_count_; }

  /// Sorted neighbor list of v.
  std::span<const VertexId> neighbors(int v) const {
    return {adj_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  int degree(int v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }

  /// The raw offset slab (size n+1, monotone); for audits and memory
  /// accounting.
  std::span<const EdgeIndex> offsets_span() const { return offsets_; }

  /// O(log deg) membership test.
  bool has_edge(int u, int v) const;

  /// Maximum degree Delta(G).
  int max_degree() const;

  /// All edges as (u, v) pairs with u < v.
  std::vector<std::pair<int, int>> edges() const;

  /// Subgraph induced by `vertices` (need not be sorted; duplicates are an
  /// error). Vertex i of the result corresponds to vertices[i]; the original
  /// index is returned in `original_of` when non-null.
  Graph induced_subgraph(std::span<const VertexId> vertices,
                         std::vector<int>* original_of = nullptr) const;
#ifdef CHORDAL_WIDE_IDS
  /// Width-agnostic convenience: plain-int vertex lists (the public
  /// algorithm currency) widen to VertexId at this boundary. In the default
  /// 32-bit build VertexId is int and the primary overload already applies.
  Graph induced_subgraph(std::span<const int> vertices,
                         std::vector<int>* original_of = nullptr) const;
#endif

  /// Rebuilds this graph in place from a compressed adjacency the caller
  /// assembled directly (offsets of size n+1; each neighbor list sorted
  /// ascending, symmetric, loop-free - unchecked). Reuses the existing
  /// storage, so hot paths can rebuild ball subgraphs without allocating.
  void assign_csr(int n, std::span<const EdgeIndex> offsets,
                  std::span<const VertexId> adj);

  /// Takes ownership of fully assembled CSR slabs (offsets of size n+1 with
  /// offsets[n] == adj.size(); rows sorted ascending, symmetric, loop-free -
  /// only the sizes are checked). This is the bulk-move ingest used by the
  /// streaming generators and CsrAssembler: no element is copied.
  void adopt_csr(int n, std::vector<EdgeIndex>&& offsets,
                 std::vector<VertexId>&& adj);

  /// Bytes resident in the two CSR slabs (capacity, not size - what the
  /// process actually holds).
  std::size_t memory_bytes() const {
    return offsets_.capacity() * sizeof(EdgeIndex) +
           adj_.capacity() * sizeof(VertexId);
  }

  /// Human-readable one-line summary, e.g. "Graph(n=23, m=31)".
  std::string summary() const;

 private:
  friend class GraphBuilder;
  int n_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<EdgeIndex> offsets_;  // size n_+1
  std::vector<VertexId> adj_;       // concatenated sorted neighbor lists
};

/// Incremental edge-list builder; deduplicates edges and rejects loops.
/// Convenient for small and mid-size construction sites; bulk ingest paths
/// (file readers, million-node generators) should use graph/csr.hpp's
/// CsrAssembler or stream straight into adopt_csr instead, which stage one
/// copy less.
class GraphBuilder {
 public:
  explicit GraphBuilder(int n);

  int num_vertices() const { return n_; }
  void add_edge(int u, int v);

  /// Finalizes into a Graph. Sorts and deduplicates the staged edge list in
  /// place (no second staging copy); the builder remains usable afterwards.
  Graph build();

 private:
  int n_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace chordal
