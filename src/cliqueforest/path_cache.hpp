// Content-keyed memo for the per-path peeling metrics.
//
// The threshold metrics of Algorithms 1 and 6 - path diameter, path
// independence number, and the Lemma 7 interval model they are derived
// from - are pure functions of (G, forest, path.cliques): the activity mask
// never enters them. A maximal binary path that survives a peel iteration
// reappears with the same clique sequence, so the drivers used to recompute
// identical metrics for it every iteration (and the MVC engine recomputes
// the same interval models again in its coloring and correction phases).
// PathMetricCache memoizes the metrics under the clique sequence as key;
// entries can never go stale, so there is no invalidation at all. (A path
// that changes - loses cliques, or flips orientation when an attachment
// dies - has a different key and simply misses.)
//
// Only paths of at least kMinCliques cliques are cached. Short paths cost
// about as much to recompute as to hash, copy, and merge - and the peeling
// threshold guarantees the paths that *survive* to be re-queried are
// exactly the short ones (long paths exceed the threshold and get peeled) -
// so caching them is pure overhead. Long paths keep the win that matters:
// the MVC engine re-derives their interval models in its coloring and
// correction phases, and those hits skip the expensive derivations.
//
// Concurrency: the map is read-only inside parallel regions; workers record
// computed entries and hit/miss tallies into per-worker WorkerLogs, and the
// driver merges the logs in worker order between regions. Within one region
// the evaluated paths partition the active cliques, so keys are unique and
// the merged map plus all counters are bit-identical at any CHORDAL_THREADS
// value. One cache serves exactly one (graph, forest) pair.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cliqueforest/paths.hpp"
#include "support/cachectl.hpp"

namespace chordal {

class PathMetricCache {
 public:
  struct Record {
    int diameter = -1;      // -1 = not computed yet
    int independence = -1;  // -1 = not computed yet
    std::shared_ptr<const PathIntervals> intervals;  // null = not stored
  };

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
    std::int64_t resident_words = 0;
  };

  /// Per-worker buffer: entries computed and hit/miss tallies recorded
  /// during a parallel region, merged by the coordinator afterwards.
  class WorkerLog {
   public:
    void hit() { ++hits_; }
    void miss() { ++misses_; }
    void record(const std::vector<int>& key, Record&& record) {
      additions_.emplace_back(key, std::move(record));
    }

   private:
    friend class PathMetricCache;
    std::vector<std::pair<std::vector<int>, Record>> additions_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
  };

  PathMetricCache() : enabled_(support::cache_enabled()) {}
  explicit PathMetricCache(bool enabled) : enabled_(enabled) {}
  ~PathMetricCache();
  PathMetricCache(const PathMetricCache&) = delete;
  PathMetricCache& operator=(const PathMetricCache&) = delete;

  bool enabled() const { return enabled_; }

  /// Minimum clique-sequence length for a path to be cached (see header
  /// comment). The test depends only on the path itself, so hit/miss
  /// counters stay thread- and schedule-invariant.
  static constexpr std::size_t kMinCliques = 8;
  static bool cacheable(const ForestPath& path) {
    return path.cliques.size() >= kMinCliques;
  }

  /// Lookup by the path's clique sequence; nullptr when absent. Safe to
  /// call concurrently from workers (the map is immutable inside regions).
  const Record* find(const ForestPath& path) const;

  /// Folds the per-worker logs into the map, in worker order (fields of a
  /// key recorded twice are merged first-writer-wins per field). Clears the
  /// logs for reuse. Coordinator-side only.
  void merge(std::span<WorkerLog> logs);

  Stats stats() const;

  /// Adds cache.path.hits / cache.path.misses counters and the
  /// cache.path.resident_words sample to obs::current(). Called once by the
  /// destructor; explicit calls make the destructor a no-op. Publishes
  /// nothing when disabled.
  void publish_stats();

 private:
  struct KeyHash {
    std::size_t operator()(const std::vector<int>& key) const {
      std::size_t h = 0x9e3779b97f4a7c15ULL ^ key.size();
      for (int x : key) {
        h = (h ^ static_cast<std::size_t>(static_cast<std::uint32_t>(x))) *
            0x100000001b3ULL;
      }
      return h;
    }
  };

  bool enabled_;
  bool published_ = false;
  std::unordered_map<std::vector<int>, Record, KeyHash> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t resident_words_ = 0;
};

/// Cached forms of the path metrics: identical return values to the plain
/// workspace forms (asserted by tests), served from `cache` when possible.
/// Computed results (including the interval model, which every metric
/// materializes anyway) are recorded into `log` for the next merge. With a
/// disabled cache these are exactly the plain workspace calls.
int cached_path_diameter(const Graph& g, const CliqueForest& forest,
                         const ForestPath& path, PathScratch& scratch,
                         const PathMetricCache& cache,
                         PathMetricCache::WorkerLog& log);
int cached_path_independence(const CliqueForest& forest,
                             const ForestPath& path, PathScratch& scratch,
                             const PathMetricCache& cache,
                             PathMetricCache::WorkerLog& log);
/// Returns the interval model of the path: a pointer into the cache on a
/// hit (stable - records hold shared_ptrs and merge is first-writer-wins),
/// otherwise `storage` filled by path_intervals, which must outlive the use
/// of the result.
const PathIntervals* cached_path_intervals(const CliqueForest& forest,
                                           const ForestPath& path,
                                           PathScratch& scratch,
                                           PathIntervals& storage,
                                           const PathMetricCache& cache,
                                           PathMetricCache::WorkerLog& log);

}  // namespace chordal
