// Weighted clique intersection graph W_G (Section 3 of the paper).
//
// Vertices of W_G are the maximal cliques of a chordal graph G; two cliques
// with a nonempty intersection are joined by an edge weighted by the
// intersection size. The paper's linear order < on edges (weight, then the
// lexicographically smaller clique word, then the larger one) makes the
// maximum weight spanning forest unique, which is what lets independent
// local computations agree on one global clique forest.
#pragma once

#include <cstdint>
#include <vector>

#include "cliqueforest/family.hpp"

namespace chordal {

struct WcigEdge {
  int a = -1;      // clique index
  int b = -1;      // clique index, a < b
  int weight = 0;  // |C_a cut C_b|
};

/// Reusable scratch for the near-linear clique-forest engine (in the style
/// of local/workspace.hpp): epoch-stamped per-graph-vertex tables plus flat
/// counting-sort / union-find buffers, so W_G edge enumeration and the
/// Kruskal selection allocate nothing once the buffers are warm and never
/// clear an O(n) array. One scratch per worker thread; a scratch must not
/// be shared between concurrent calls.
struct ForestScratch {
  /// Grows the stamped vertex tables to cover ids [0, n) (no-op once
  /// sized). Called by every engine entry point.
  void ensure_vertices(int n) {
    auto size = static_cast<std::size_t>(n);
    if (vertex_stamp.size() < size) {
      vertex_stamp.resize(size, 0);
      vertex_head.resize(size, -1);
    }
  }

  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> vertex_stamp;  // per vertex id, touch epoch
  std::vector<int> vertex_head;  // last entry of the vertex's occ chain
  std::vector<std::pair<int, int>> occ;  // (clique, previous occ index)
  std::vector<int> pair_a, pair_b;       // co-occurrence pair buffers
  std::vector<int> tmp_a, tmp_b;         // radix scratch
  std::vector<int> counts;               // counting-sort histogram
  std::vector<int> weights;              // per-family dense weight matrix
  std::vector<WcigEdge> edges, edges_tmp;
  std::vector<int> ranks;                // non-canonical families only
  std::vector<int> uf_parent, uf_rank;   // scratch union-find
};

/// All edges of W_G for the given clique family over vertices 0..n-1.
/// Cliques must be sorted vertex lists. Output edges have a < b and are
/// sorted by (a, b).
std::vector<WcigEdge> wcig_edges(const std::vector<std::vector<int>>& cliques,
                                 int num_graph_vertices);

/// Counting-sort form of wcig_edges: identical output (edges with a < b,
/// sorted by (a, b), weight = |C_a cut C_b|), but edge weights are computed
/// as pair multiplicities while enumerating per-vertex membership pairs (no
/// per-pair sorted merges) and the pair list is ordered by a two-pass radix
/// sort over clique indices (no comparison sort). Runs in
/// O(sum_v |phi(v)|^2 + #cliques) and touches only scratch storage - no
/// O(n) membership table is built or cleared. Takes the flat CliqueFamily
/// substrate; the nested reference form above stays as the oracle.
void wcig_edges_counting(const CliqueFamily& cliques, int num_graph_vertices,
                         ForestScratch& scratch, std::vector<WcigEdge>& out);

/// The paper's strict total order e < f on W_G edges:
///   w_e < w_f, or (w_e == w_f and l_e < l_f lexicographically), or
///   (both equal and h_e < h_f), where l/h are the lexicographically
///   smaller/larger of the two incident cliques' sorted ID words.
/// Comparing words (not indices) keeps the order meaningful across different
/// local views that number cliques differently. The two overloads implement
/// the same order on the flat and nested clique representations.
bool wcig_edge_less(const WcigEdge& e, const WcigEdge& f,
                    const CliqueFamily& cliques);
bool wcig_edge_less(const WcigEdge& e, const WcigEdge& f,
                    const std::vector<std::vector<int>>& cliques);

/// Membership map: for every graph vertex v, the sorted list of clique
/// indices containing v (the family phi(v)).
std::vector<std::vector<int>> clique_membership(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices);

}  // namespace chordal
