// Weighted clique intersection graph W_G (Section 3 of the paper).
//
// Vertices of W_G are the maximal cliques of a chordal graph G; two cliques
// with a nonempty intersection are joined by an edge weighted by the
// intersection size. The paper's linear order < on edges (weight, then the
// lexicographically smaller clique word, then the larger one) makes the
// maximum weight spanning forest unique, which is what lets independent
// local computations agree on one global clique forest.
#pragma once

#include <vector>

namespace chordal {

struct WcigEdge {
  int a = -1;      // clique index
  int b = -1;      // clique index, a < b
  int weight = 0;  // |C_a cut C_b|
};

/// All edges of W_G for the given clique family over vertices 0..n-1.
/// Cliques must be sorted vertex lists. Output edges have a < b and are
/// sorted by (a, b).
std::vector<WcigEdge> wcig_edges(const std::vector<std::vector<int>>& cliques,
                                 int num_graph_vertices);

/// The paper's strict total order e < f on W_G edges:
///   w_e < w_f, or (w_e == w_f and l_e < l_f lexicographically), or
///   (both equal and h_e < h_f), where l/h are the lexicographically
///   smaller/larger of the two incident cliques' sorted ID words.
/// Comparing words (not indices) keeps the order meaningful across different
/// local views that number cliques differently.
bool wcig_edge_less(const WcigEdge& e, const WcigEdge& f,
                    const std::vector<std::vector<int>>& cliques);

/// Membership map: for every graph vertex v, the sorted list of clique
/// indices containing v (the family phi(v)).
std::vector<std::vector<int>> clique_membership(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices);

}  // namespace chordal
