// Maximal binary / pendant / internal paths of the (possibly partially
// peeled) clique forest, plus the per-path metrics used by the peeling
// thresholds: diameter (Algorithm 1) and independence number (Algorithm 6).
//
// The metric functions come in two forms: a simple allocating form, and a
// workspace form taking a PathScratch. The workspace form does zero O(n) /
// O(m) work per call (epoch-stamped relabel/position tables, reused
// frontier and interval buffers), which is what makes per-layer loops over
// thousands of paths allocation-lean and embarrassingly parallel (one
// scratch per worker). Both forms compute identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "cliqueforest/forest.hpp"
#include "graph/diameter.hpp"
#include "graph/graph.hpp"

namespace chordal {

struct ForestPath {
  /// Clique indices in path order. For a pendant path with one attachment
  /// the sequence is oriented so the attachment is on the right (the paper's
  /// C_1, ..., C_k with edge C_k C_e).
  std::vector<int> cliques;
  bool pendant = false;  // otherwise internal (or pendant if also isolated)
  /// Adjacent non-path cliques (the C_s / C_e of Lemmas 3 and 8); -1 if the
  /// corresponding end is free. Pendant paths have attach_left == -1;
  /// isolated components have both == -1 and count as pendant.
  int attach_left = -1;
  int attach_right = -1;
};

/// Decomposes the forest restricted to {c : active[c]} into its maximal
/// binary paths (chains of cliques with active forest-degree <= 2),
/// classifying each as pendant (an end has active degree <= 1) or internal
/// (every vertex has active degree exactly 2, both ends attached).
std::vector<ForestPath> maximal_binary_paths(const CliqueForest& forest,
                                             const std::vector<char>& active);

/// Vertices v whose whole active family phi_i(v) lies inside `path` - the
/// set W of the paper (these are the vertices peeled with the path).
std::vector<int> path_owned_vertices(const CliqueForest& forest,
                                     const std::vector<char>& active_clique,
                                     const ForestPath& path);

/// All vertices in the union of the path's cliques (the V_P of Lemma 7).
std::vector<int> path_union_vertices(const CliqueForest& forest,
                                     const ForestPath& path);

/// Interval model of G[V_P]: for each union vertex, the contiguous range of
/// path positions of its cliques (clipped to the path). Two union vertices
/// are adjacent iff their ranges intersect (see Lemma 7).
struct PathIntervals {
  std::vector<int> vertices;  // original vertex ids
  std::vector<int> lo, hi;    // position ranges, parallel to `vertices`
  int num_positions = 0;
};
PathIntervals path_intervals(const CliqueForest& forest,
                             const ForestPath& path);

/// diam(P): max distance in G between vertices of the path's clique union.
/// (Shortest paths between union vertices never profit from leaving the
/// union, so this equals the distance in the peeled graph G[U_i].)
int path_diameter(const Graph& g, const CliqueForest& forest,
                  const ForestPath& path);

/// alpha(P): independence number of G[V_P]; exact via the interval model.
int path_independence(const CliqueForest& forest, const ForestPath& path);

/// Reusable scratch for the per-path metric functions. All tables are
/// epoch-stamped: marking a path touches only path-sized state, never the
/// whole forest or graph. One scratch per worker thread; a scratch must not
/// be shared between concurrent calls.
class PathScratch {
 public:
  /// Grows the stamped tables to the forest's dimensions (no-op once
  /// sized); called by every metric function.
  void ensure(const CliqueForest& forest);

  // Internal state (used by the paths.cpp implementations).
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> clique_stamp;  // per clique, epoch of last mark
  std::vector<int> clique_pos;              // path position, valid if stamped
  SubsetSweepScratch sweep;                 // ball-free BFS double sweep
  std::vector<int> far;                     // interval far-table
  std::vector<std::size_t> order;           // sort permutation
  std::vector<int> verts;                   // union-vertex buffer
  PathIntervals rep;                        // reused interval model
};

/// Workspace forms of the metric functions; identical results, zero
/// per-call O(n)/O(m) work. Outputs are cleared and reused.
void path_union_vertices(const CliqueForest& forest, const ForestPath& path,
                         std::vector<int>& out);
void path_owned_vertices(const CliqueForest& forest,
                         const std::vector<char>& active_clique,
                         const ForestPath& path, PathScratch& scratch,
                         std::vector<int>& out);
void path_intervals(const CliqueForest& forest, const ForestPath& path,
                    PathScratch& scratch, PathIntervals& out);
int path_diameter(const Graph& g, const CliqueForest& forest,
                  const ForestPath& path, PathScratch& scratch);
int path_independence(const CliqueForest& forest, const ForestPath& path,
                      PathScratch& scratch);

/// Metric stages that start from an already built interval model (the
/// second half of path_diameter / path_independence). Exposed so
/// cliqueforest/path_cache can serve metrics from memoized intervals
/// without re-deriving the model; composing path_intervals with these is
/// exactly the one-shot metric functions.
int path_diameter_from_intervals(const Graph& g, const PathIntervals& rep,
                                 PathScratch& scratch);
int path_independence_from_intervals(const PathIntervals& rep,
                                     PathScratch& scratch);

}  // namespace chordal
