// Maximal binary / pendant / internal paths of the (possibly partially
// peeled) clique forest, plus the per-path metrics used by the peeling
// thresholds: diameter (Algorithm 1) and independence number (Algorithm 6).
#pragma once

#include <vector>

#include "cliqueforest/forest.hpp"
#include "graph/graph.hpp"

namespace chordal {

struct ForestPath {
  /// Clique indices in path order. For a pendant path with one attachment
  /// the sequence is oriented so the attachment is on the right (the paper's
  /// C_1, ..., C_k with edge C_k C_e).
  std::vector<int> cliques;
  bool pendant = false;  // otherwise internal (or pendant if also isolated)
  /// Adjacent non-path cliques (the C_s / C_e of Lemmas 3 and 8); -1 if the
  /// corresponding end is free. Pendant paths have attach_left == -1;
  /// isolated components have both == -1 and count as pendant.
  int attach_left = -1;
  int attach_right = -1;
};

/// Decomposes the forest restricted to {c : active[c]} into its maximal
/// binary paths (chains of cliques with active forest-degree <= 2),
/// classifying each as pendant (an end has active degree <= 1) or internal
/// (every vertex has active degree exactly 2, both ends attached).
std::vector<ForestPath> maximal_binary_paths(const CliqueForest& forest,
                                             const std::vector<char>& active);

/// Vertices v whose whole active family phi_i(v) lies inside `path` - the
/// set W of the paper (these are the vertices peeled with the path).
std::vector<int> path_owned_vertices(const CliqueForest& forest,
                                     const std::vector<char>& active_clique,
                                     const ForestPath& path);

/// All vertices in the union of the path's cliques (the V_P of Lemma 7).
std::vector<int> path_union_vertices(const CliqueForest& forest,
                                     const ForestPath& path);

/// Interval model of G[V_P]: for each union vertex, the contiguous range of
/// path positions of its cliques (clipped to the path). Two union vertices
/// are adjacent iff their ranges intersect (see Lemma 7).
struct PathIntervals {
  std::vector<int> vertices;  // original vertex ids
  std::vector<int> lo, hi;    // position ranges, parallel to `vertices`
  int num_positions = 0;
};
PathIntervals path_intervals(const CliqueForest& forest,
                             const ForestPath& path);

/// diam(P): max distance in G between vertices of the path's clique union.
/// (Shortest paths between union vertices never profit from leaving the
/// union, so this equals the distance in the peeled graph G[U_i].)
int path_diameter(const Graph& g, const CliqueForest& forest,
                  const ForestPath& path);

/// alpha(P): independence number of G[V_P]; exact via the interval model.
int path_independence(const CliqueForest& forest, const ForestPath& path);

}  // namespace chordal
