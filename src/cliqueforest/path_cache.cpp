#include "cliqueforest/path_cache.hpp"

#include "obs/metrics.hpp"

namespace chordal {

namespace {

std::int64_t intervals_words(const PathIntervals& rep) {
  return static_cast<std::int64_t>(rep.vertices.size() * 3 + 1);
}

}  // namespace

PathMetricCache::~PathMetricCache() { publish_stats(); }

const PathMetricCache::Record* PathMetricCache::find(
    const ForestPath& path) const {
  if (!enabled_) return nullptr;
  auto it = map_.find(path.cliques);
  return it == map_.end() ? nullptr : &it->second;
}

void PathMetricCache::merge(std::span<WorkerLog> logs) {
  for (WorkerLog& log : logs) {
    hits_ += log.hits_;
    misses_ += log.misses_;
    log.hits_ = 0;
    log.misses_ = 0;
    for (auto& [key, record] : log.additions_) {
      Record& dst = map_[key];
      if (dst.diameter < 0) dst.diameter = record.diameter;
      if (dst.independence < 0) dst.independence = record.independence;
      if (dst.intervals == nullptr && record.intervals != nullptr) {
        resident_words_ += intervals_words(*record.intervals);
        dst.intervals = std::move(record.intervals);
      }
    }
    log.additions_.clear();
  }
}

PathMetricCache::Stats PathMetricCache::stats() const {
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<std::int64_t>(map_.size());
  s.resident_words = resident_words_;
  return s;
}

void PathMetricCache::publish_stats() {
  if (published_ || !enabled_) return;
  published_ = true;
  obs::Registry* reg = obs::current();
  if (reg == nullptr) return;
  reg->counter("cache.path.hits").add(hits_);
  reg->counter("cache.path.misses").add(misses_);
  reg->histogram("cache.path.resident_words")
      .add(static_cast<double>(resident_words_));
}

int cached_path_diameter(const Graph& g, const CliqueForest& forest,
                         const ForestPath& path, PathScratch& scratch,
                         const PathMetricCache& cache,
                         PathMetricCache::WorkerLog& log) {
  if (!cache.enabled() || !PathMetricCache::cacheable(path)) {
    return path_diameter(g, forest, path, scratch);
  }
  const PathMetricCache::Record* rec = cache.find(path);
  if (rec != nullptr && rec->diameter >= 0) {
    log.hit();
    return rec->diameter;
  }
  PathMetricCache::Record add;
  int diameter;
  if (rec != nullptr && rec->intervals != nullptr) {
    log.hit();  // the expensive stage (interval model) came from cache
    diameter = path_diameter_from_intervals(g, *rec->intervals, scratch);
  } else {
    log.miss();
    path_intervals(forest, path, scratch, scratch.rep);
    diameter = path_diameter_from_intervals(g, scratch.rep, scratch);
    add.intervals = std::make_shared<PathIntervals>(scratch.rep);
  }
  add.diameter = diameter;
  log.record(path.cliques, std::move(add));
  return diameter;
}

int cached_path_independence(const CliqueForest& forest,
                             const ForestPath& path, PathScratch& scratch,
                             const PathMetricCache& cache,
                             PathMetricCache::WorkerLog& log) {
  if (!cache.enabled() || !PathMetricCache::cacheable(path)) {
    return path_independence(forest, path, scratch);
  }
  const PathMetricCache::Record* rec = cache.find(path);
  if (rec != nullptr && rec->independence >= 0) {
    log.hit();
    return rec->independence;
  }
  PathMetricCache::Record add;
  int independence;
  if (rec != nullptr && rec->intervals != nullptr) {
    log.hit();
    independence = path_independence_from_intervals(*rec->intervals, scratch);
  } else {
    log.miss();
    path_intervals(forest, path, scratch, scratch.rep);
    independence = path_independence_from_intervals(scratch.rep, scratch);
    add.intervals = std::make_shared<PathIntervals>(scratch.rep);
  }
  add.independence = independence;
  log.record(path.cliques, std::move(add));
  return independence;
}

const PathIntervals* cached_path_intervals(const CliqueForest& forest,
                                           const ForestPath& path,
                                           PathScratch& scratch,
                                           PathIntervals& storage,
                                           const PathMetricCache& cache,
                                           PathMetricCache::WorkerLog& log) {
  if (!cache.enabled() || !PathMetricCache::cacheable(path)) {
    path_intervals(forest, path, scratch, storage);
    return &storage;
  }
  const PathMetricCache::Record* rec = cache.find(path);
  if (rec != nullptr && rec->intervals != nullptr) {
    log.hit();
    return rec->intervals.get();
  }
  log.miss();
  path_intervals(forest, path, scratch, storage);
  PathMetricCache::Record add;
  add.intervals = std::make_shared<PathIntervals>(storage);
  log.record(path.cliques, std::move(add));
  return &storage;
}

}  // namespace chordal
