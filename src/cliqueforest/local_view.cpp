#include "cliqueforest/local_view.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cliqueforest/forest.hpp"
#include "graph/bfs.hpp"
#include "graph/cliques.hpp"

namespace chordal {

LocalView compute_local_view(const Graph& g, int observer, int radius,
                             const std::vector<char>* active) {
  if (radius < 1) throw std::invalid_argument("local view: radius < 1");
  std::vector<VertexId> ball =
      active == nullptr
          ? ball_vertices(g, observer, radius)
          : ball_vertices_restricted(g, observer, radius, *active);

  std::vector<int> original;
  Graph ball_graph = g.induced_subgraph(ball, &original);

  // Distances inside the ball (== distances in G[active] up to radius).
  std::vector<int> dist_in_ball = bfs_distances(ball_graph, 0);
  // ball[0] is the observer (BFS order).

  // Maximal cliques of the ball graph that contain a vertex at distance
  // <= radius-1 are maximal cliques of the full graph: such a clique fits in
  // the closed neighborhood of that vertex, which the ball fully contains,
  // so no outside vertex could extend it.
  auto local_cliques = maximal_cliques_chordal(ball_graph);
  LocalView view;
  std::vector<std::vector<int>> kept;
  for (auto& clique : local_cliques) {
    bool trusted = false;
    for (int lv : clique) trusted = trusted || dist_in_ball[lv] <= radius - 1;
    if (!trusted) continue;
    // Globalize in place: the nested word is scratch at this point.
    for (int& lv : clique) lv = original[lv];
    std::sort(clique.begin(), clique.end());
    kept.push_back(std::move(clique));
  }
  std::sort(kept.begin(), kept.end());
  for (const auto& clique : kept) view.cliques.push_word(clique);

  // phi(u) for every trusted vertex u (distance <= radius-1), as a flat
  // sorted (vertex, clique) list: cliques were emitted in sorted order, so
  // sorting the pairs reproduces the per-vertex ascending clique families.
  std::vector<std::pair<int, int>> phi_pairs;
  for (std::size_t c = 0; c < view.cliques.size(); ++c) {
    for (VertexId v : view.cliques[c]) {
      phi_pairs.emplace_back(static_cast<int>(v), static_cast<int>(c));
    }
  }
  std::sort(phi_pairs.begin(), phi_pairs.end());
  for (int lv = 0; lv < ball_graph.num_vertices(); ++lv) {
    if (dist_in_ball[lv] <= radius - 1) {
      view.trusted_vertices.push_back(original[lv]);
    }
  }
  std::sort(view.trusted_vertices.begin(), view.trusted_vertices.end());

  // For each trusted u: the unique MWSF of W restricted to phi(u) equals
  // T(u) (Lemma 2). Union all such edges. The family indexes directly into
  // view.cliques through the scratch engine - no per-vertex deep copies.
  std::vector<std::pair<int, int>> edges;
  ForestScratch scratch;
  std::size_t cursor = 0;
  std::vector<CliqueId> family;
  for (int u : view.trusted_vertices) {
    // trusted_vertices ascends, so one forward walk covers all families.
    while (cursor < phi_pairs.size() && phi_pairs[cursor].first < u) ++cursor;
    family.clear();
    while (cursor < phi_pairs.size() && phi_pairs[cursor].first == u) {
      family.push_back(static_cast<CliqueId>(phi_pairs[cursor].second));
      ++cursor;
    }
    family_forest_edges(view.cliques, family, scratch, edges);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  view.forest_edges = std::move(edges);
  return view;
}

}  // namespace chordal
