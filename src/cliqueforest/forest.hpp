// The clique forest of a chordal graph: the unique maximum weight spanning
// forest of the weighted clique intersection graph W_G under the paper's
// deterministic edge order (Theorem 2 + the Section 3 tie-breaking rule).
#pragma once

#include <vector>

#include "cliqueforest/wcig.hpp"
#include "graph/graph.hpp"

namespace chordal {

class CliqueForest {
 public:
  /// Full pipeline: verify chordality, extract maximal cliques, build W_G,
  /// and select the unique MWSF via Kruskal over the deterministic order.
  static CliqueForest build(const Graph& g);

  /// Builds the forest over an explicitly given (canonical, sorted) family
  /// of maximal cliques. `num_graph_vertices` is n of the underlying graph.
  static CliqueForest from_cliques(std::vector<std::vector<int>> cliques,
                                   int num_graph_vertices);

  int num_cliques() const { return static_cast<int>(cliques_.size()); }
  int num_graph_vertices() const { return num_graph_vertices_; }

  const std::vector<std::vector<int>>& cliques() const { return cliques_; }
  const std::vector<int>& clique(int c) const { return cliques_[c]; }

  /// Forest adjacency (sorted) over clique indices.
  const std::vector<int>& forest_neighbors(int c) const { return adj_[c]; }
  int forest_degree(int c) const { return static_cast<int>(adj_[c].size()); }
  std::vector<std::pair<int, int>> forest_edges() const;

  /// phi(v): sorted clique indices containing vertex v. The induced
  /// sub-forest is the subtree T(v) of the paper.
  const std::vector<int>& cliques_of(int v) const { return membership_[v]; }

  /// Checks the tree-decomposition axioms plus acyclicity against g.
  /// Intended for tests; throws std::logic_error with a description of the
  /// first violated property.
  void verify(const Graph& g) const;

 private:
  std::vector<std::vector<int>> cliques_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<int>> membership_;
  int num_graph_vertices_ = 0;
};

/// Kruskal selection shared with local-view computation: returns the edges
/// of the unique MWSF of the W_G induced by `cliques`, processing edges in
/// decreasing deterministic order.
std::vector<WcigEdge> max_weight_spanning_forest(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices);

}  // namespace chordal
