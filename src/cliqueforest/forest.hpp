// The clique forest of a chordal graph: the unique maximum weight spanning
// forest of the weighted clique intersection graph W_G under the paper's
// deterministic edge order (Theorem 2 + the Section 3 tie-breaking rule).
//
// Storage is flat struct-of-arrays throughout: the clique family is a
// CliqueFamily (two slabs), and both the forest adjacency and the
// vertex->clique membership map phi are CSR slabs in the compact id types
// of graph/ids.hpp. Query paths hand out spans; nothing on this class
// allocates per call.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cliqueforest/family.hpp"
#include "cliqueforest/wcig.hpp"
#include "graph/graph.hpp"

namespace chordal {

class CliqueForest {
 public:
  /// Full pipeline: verify chordality, extract maximal cliques, build W_G,
  /// and select the unique MWSF via Kruskal over the deterministic order.
  static CliqueForest build(const Graph& g);

  /// Builds the forest over an explicitly given (canonical, sorted) family
  /// of maximal cliques. `num_graph_vertices` is n of the underlying graph.
  static CliqueForest from_family(CliqueFamily cliques,
                                  int num_graph_vertices);

  /// Nested-vector convenience form of from_family (tests, oracles).
  static CliqueForest from_cliques(std::vector<std::vector<int>> cliques,
                                   int num_graph_vertices);

  int num_cliques() const { return static_cast<int>(cliques_.size()); }
  int num_graph_vertices() const { return num_graph_vertices_; }

  const CliqueFamily& cliques() const { return cliques_; }
  CliqueWord clique(int c) const { return cliques_[static_cast<std::size_t>(c)]; }

  /// Forest adjacency (sorted) over clique indices.
  std::span<const CliqueId> forest_neighbors(int c) const {
    return {adj_.data() + adj_offsets_[c],
            static_cast<std::size_t>(adj_offsets_[c + 1] - adj_offsets_[c])};
  }
  int forest_degree(int c) const {
    return static_cast<int>(adj_offsets_[c + 1] - adj_offsets_[c]);
  }
  std::vector<std::pair<int, int>> forest_edges() const;

  /// phi(v): sorted clique indices containing vertex v. The induced
  /// sub-forest is the subtree T(v) of the paper.
  std::span<const CliqueId> cliques_of(int v) const {
    return {member_.data() + member_offsets_[v],
            static_cast<std::size_t>(member_offsets_[v + 1] -
                                     member_offsets_[v])};
  }

  /// Checks the tree-decomposition axioms plus acyclicity against g.
  /// Intended for tests; throws std::logic_error with a description of the
  /// first violated property.
  void verify(const Graph& g) const;

  /// Bytes resident across all slabs (capacities).
  std::size_t memory_bytes() const {
    return cliques_.memory_bytes() +
           adj_offsets_.capacity() * sizeof(EdgeIndex) +
           adj_.capacity() * sizeof(CliqueId) +
           member_offsets_.capacity() * sizeof(EdgeIndex) +
           member_.capacity() * sizeof(CliqueId);
  }

 private:
  CliqueFamily cliques_;
  std::vector<EdgeIndex> adj_offsets_;     // num_cliques+1; forest adjacency
  std::vector<CliqueId> adj_;              // concatenated sorted rows
  std::vector<EdgeIndex> member_offsets_;  // n+1; phi as a CSR slab
  std::vector<CliqueId> member_;           // ascending clique ids per vertex
  int num_graph_vertices_ = 0;
};

/// Kruskal selection shared with local-view computation: returns the edges
/// of the unique MWSF of the W_G induced by `cliques`, processing edges in
/// decreasing deterministic order. Routed through the near-linear
/// ForestScratch engine (see the overload below) unless
/// support::forest_reference_enabled() forces the reference path; outputs
/// are bit-identical either way.
std::vector<WcigEdge> max_weight_spanning_forest(const CliqueFamily& cliques,
                                                 int num_graph_vertices);

/// Allocation-free engine form: counting-sort W_G edge enumeration
/// (wcig_edges_counting), a weight-bucketed counting sort in place of the
/// comparison sort (weights are at most omega), and integer
/// (weight, min rank, max rank) tie-breaks via a one-time lexicographic
/// ranking of the clique words (the identity for canonical sorted
/// families). `out` receives the chosen edges in decreasing deterministic
/// order, exactly as max_weight_spanning_forest_reference emits them.
void max_weight_spanning_forest(const CliqueFamily& cliques,
                                int num_graph_vertices,
                                ForestScratch& scratch,
                                std::vector<WcigEdge>& out);

/// The original allocating construction (wcig_edges + O(omega) comparator
/// sort + fresh UnionFind), kept verbatim as the differential-test oracle
/// for the engine and as the CHORDAL_FOREST_REFERENCE fallback. The
/// CliqueFamily form expands to the nested representation first - it is a
/// cold path by definition.
std::vector<WcigEdge> max_weight_spanning_forest_reference(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices);
std::vector<WcigEdge> max_weight_spanning_forest_reference(
    const CliqueFamily& cliques, int num_graph_vertices);

/// Per-family MWSF for local views (Lemma 2): selects the spanning forest
/// of W restricted to the family {cliques[c] : c in family} and appends the
/// chosen edges to `out` as (min, max) pairs of clique indices. Requires
/// `cliques` strictly lexicographically sorted (so rank == index and the
/// paper's word tie-breaks are integer comparisons), `family` ascending,
/// and every pair of family cliques intersecting (they share the defining
/// vertex u, making W[phi(u)] complete) - exactly the shape
/// compute_local_view produces. Touches only family-sized scratch: no O(n)
/// membership array, no allocations once the scratch is warm.
void family_forest_edges(const CliqueFamily& cliques,
                         std::span<const CliqueId> family,
                         ForestScratch& scratch,
                         std::vector<std::pair<int, int>>& out);

}  // namespace chordal
