#include "cliqueforest/forest.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "graph/cliques.hpp"
#include "obs/trace.hpp"
#include "support/cachectl.hpp"
#include "support/union_find.hpp"

namespace chordal {

namespace {

// Scratch union-find over ForestScratch arrays: reset is O(universe), find
// uses path halving, unite by rank. The chosen Kruskal edge set depends
// only on the edge processing order, never on the union-find internals, so
// this is interchangeable with support/union_find.
void uf_reset(ForestScratch& s, int n) {
  auto size = static_cast<std::size_t>(n);
  if (s.uf_parent.size() < size) {
    s.uf_parent.resize(size);
    s.uf_rank.resize(size);
  }
  for (int i = 0; i < n; ++i) {
    s.uf_parent[i] = i;
    s.uf_rank[i] = 0;
  }
}

int uf_find(ForestScratch& s, int x) {
  while (s.uf_parent[x] != x) {
    s.uf_parent[x] = s.uf_parent[s.uf_parent[x]];
    x = s.uf_parent[x];
  }
  return x;
}

bool uf_unite(ForestScratch& s, int a, int b) {
  a = uf_find(s, a);
  b = uf_find(s, b);
  if (a == b) return false;
  if (s.uf_rank[a] < s.uf_rank[b]) std::swap(a, b);
  s.uf_parent[b] = a;
  if (s.uf_rank[a] == s.uf_rank[b]) ++s.uf_rank[a];
  return true;
}

}  // namespace

std::vector<WcigEdge> max_weight_spanning_forest_reference(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices) {
  auto edges = wcig_edges(cliques, num_graph_vertices);
  std::sort(edges.begin(), edges.end(),
            [&cliques](const WcigEdge& e, const WcigEdge& f) {
              return wcig_edge_less(f, e, cliques);  // decreasing order
            });
  UnionFind uf(static_cast<int>(cliques.size()));
  std::vector<WcigEdge> chosen;
  for (const auto& e : edges) {
    if (uf.unite(e.a, e.b)) chosen.push_back(e);
  }
  return chosen;
}

std::vector<WcigEdge> max_weight_spanning_forest_reference(
    const CliqueFamily& cliques, int num_graph_vertices) {
  return max_weight_spanning_forest_reference(cliques.to_nested(),
                                              num_graph_vertices);
}

void max_weight_spanning_forest(const CliqueFamily& cliques,
                                int num_graph_vertices,
                                ForestScratch& scratch,
                                std::vector<WcigEdge>& out) {
  out.clear();
  if (support::forest_reference_enabled()) {
    out = max_weight_spanning_forest_reference(cliques, num_graph_vertices);
    return;
  }
  const int m = static_cast<int>(cliques.size());
  wcig_edges_counting(cliques, num_graph_vertices, scratch, scratch.edges);
  auto& edges = scratch.edges;
  if (edges.empty()) return;
  // The paper's tie-break compares the incident cliques' sorted ID words;
  // after ranking the words once, that is integer comparison on
  // (min rank, max rank). Canonical families are already strictly sorted,
  // making rank == index - and wcig_edges_counting emits edges ascending in
  // (a, b), so they are already in ascending tie-break order. Non-canonical
  // families get an explicit ranking plus a two-pass radix reorder.
  if (!cliques_lex_sorted(cliques)) {
    scratch.ranks = clique_lex_ranks(cliques);
    const auto& rank = scratch.ranks;
    const std::size_t ecount = edges.size();
    scratch.edges_tmp.resize(ecount);
    auto counting_pass = [&](const std::vector<WcigEdge>& in,
                             std::vector<WcigEdge>& sorted, bool high_key) {
      scratch.counts.assign(static_cast<std::size_t>(m) + 1, 0);
      auto key = [&](const WcigEdge& e) {
        return high_key ? std::max(rank[e.a], rank[e.b])
                        : std::min(rank[e.a], rank[e.b]);
      };
      for (const auto& e : in) ++scratch.counts[key(e) + 1];
      for (int c = 0; c < m; ++c) scratch.counts[c + 1] += scratch.counts[c];
      for (const auto& e : in) sorted[scratch.counts[key(e)]++] = e;
    };
    counting_pass(edges, scratch.edges_tmp, /*high_key=*/true);
    counting_pass(scratch.edges_tmp, edges, /*high_key=*/false);
  }
  // Weight-bucketed counting sort (weights are at most omega <= n). Kruskal
  // wants decreasing order - weight descending, then tie-break rank pair
  // descending - so buckets are laid out high weight first and filled by a
  // reverse sweep of the ascending-tie-break edge list.
  int max_weight = 0;
  for (const auto& e : edges) max_weight = std::max(max_weight, e.weight);
  scratch.counts.assign(static_cast<std::size_t>(max_weight) + 1, 0);
  for (const auto& e : edges) ++scratch.counts[e.weight];
  int offset = 0;
  for (int w = max_weight; w >= 1; --w) {
    int count = scratch.counts[w];
    scratch.counts[w] = offset;
    offset += count;
  }
  scratch.edges_tmp.resize(edges.size());
  for (std::size_t i = edges.size(); i-- > 0;) {
    scratch.edges_tmp[scratch.counts[edges[i].weight]++] = edges[i];
  }
  uf_reset(scratch, m);
  const std::size_t want = static_cast<std::size_t>(m) - 1;
  for (const auto& e : scratch.edges_tmp) {
    if (uf_unite(scratch, e.a, e.b)) {
      out.push_back(e);
      if (out.size() == want) break;
    }
  }
}

std::vector<WcigEdge> max_weight_spanning_forest(const CliqueFamily& cliques,
                                                 int num_graph_vertices) {
  if (support::forest_reference_enabled()) {
    return max_weight_spanning_forest_reference(cliques, num_graph_vertices);
  }
  ForestScratch scratch;
  std::vector<WcigEdge> out;
  max_weight_spanning_forest(cliques, num_graph_vertices, scratch, out);
  return out;
}

void family_forest_edges(const CliqueFamily& cliques,
                         std::span<const CliqueId> family,
                         ForestScratch& scratch,
                         std::vector<std::pair<int, int>>& out) {
  const int f = static_cast<int>(family.size());
  if (f < 2) return;
  if (support::forest_reference_enabled()) {
    // The pre-engine per-family path: deep-copy the family cliques and run
    // the allocating reference Kruskal over them. family is ascending and
    // the cliques are sorted words, so e.a < e.b maps to an ordered pair.
    std::vector<std::vector<int>> family_cliques;
    family_cliques.reserve(family.size());
    int bound = 0;
    for (CliqueId c : family) {
      const CliqueWord word = cliques[static_cast<std::size_t>(c)];
      family_cliques.emplace_back(word.begin(), word.end());
      bound = std::max(bound, family_cliques.back().back() + 1);
    }
    for (const auto& e :
         max_weight_spanning_forest_reference(family_cliques, bound)) {
      out.emplace_back(static_cast<int>(family[e.a]),
                       static_cast<int>(family[e.b]));
    }
    return;
  }
  // Pairwise intersection weights of the (complete) family graph, as pair
  // multiplicities over the members' vertices: walking each vertex's
  // occurrence chain costs one increment per shared (clique, clique, vertex)
  // triple - no sorted merges, no O(n) membership table.
  int bound = 0;
  for (CliqueId c : family) {
    bound = std::max(
        bound, static_cast<int>(cliques[static_cast<std::size_t>(c)].back()) +
                   1);
  }
  scratch.ensure_vertices(bound);
  const std::uint64_t epoch = ++scratch.epoch;
  scratch.occ.clear();
  scratch.weights.assign(static_cast<std::size_t>(f) * f, 0);
  int max_weight = 0;
  for (int i = 0; i < f; ++i) {
    for (int v : cliques[static_cast<std::size_t>(family[i])]) {
      int prev = scratch.vertex_stamp[v] == epoch ? scratch.vertex_head[v] : -1;
      for (int p = prev; p != -1; p = scratch.occ[p].second) {
        int w = ++scratch.weights[static_cast<std::size_t>(
                                      scratch.occ[p].first) * f + i];
        max_weight = std::max(max_weight, w);
      }
      scratch.vertex_stamp[v] = epoch;
      scratch.vertex_head[v] = static_cast<int>(scratch.occ.size());
      scratch.occ.emplace_back(i, prev);
    }
  }
  // Weight-bucketed counting sort. Family indices ascend with the words of
  // strictly sorted cliques, so the paper's decreasing tie-break order
  // within a weight is simply decreasing (i, j): enumerate pairs in that
  // order and the stable bucket fill preserves it.
  scratch.counts.assign(static_cast<std::size_t>(max_weight) + 1, 0);
  for (int i = f - 2; i >= 0; --i) {
    for (int j = f - 1; j > i; --j) {
      int w = scratch.weights[static_cast<std::size_t>(i) * f + j];
      if (w > 0) ++scratch.counts[w];
    }
  }
  int offset = 0;
  for (int w = max_weight; w >= 1; --w) {
    int count = scratch.counts[w];
    scratch.counts[w] = offset;
    offset += count;
  }
  const int total = offset;
  scratch.pair_a.resize(static_cast<std::size_t>(total));
  scratch.pair_b.resize(static_cast<std::size_t>(total));
  for (int i = f - 2; i >= 0; --i) {
    for (int j = f - 1; j > i; --j) {
      int w = scratch.weights[static_cast<std::size_t>(i) * f + j];
      if (w == 0) continue;
      int pos = scratch.counts[w]++;
      scratch.pair_a[pos] = i;
      scratch.pair_b[pos] = j;
    }
  }
  uf_reset(scratch, f);
  int chosen = 0;
  for (int pos = 0; pos < total && chosen < f - 1; ++pos) {
    if (uf_unite(scratch, scratch.pair_a[pos], scratch.pair_b[pos])) {
      out.emplace_back(static_cast<int>(family[scratch.pair_a[pos]]),
                       static_cast<int>(family[scratch.pair_b[pos]]));
      ++chosen;
    }
  }
}

CliqueForest CliqueForest::build(const Graph& g) {
  return from_family(maximal_cliques_chordal_family(g), g.num_vertices());
}

CliqueForest CliqueForest::from_cliques(
    std::vector<std::vector<int>> cliques, int num_graph_vertices) {
  return from_family(CliqueFamily(cliques), num_graph_vertices);
}

CliqueForest CliqueForest::from_family(CliqueFamily cliques,
                                       int num_graph_vertices) {
  CliqueForest forest;
  forest.num_graph_vertices_ = num_graph_vertices;
  forest.cliques_ = std::move(cliques);
  const std::size_t m = forest.cliques_.size();

  // phi as a CSR slab: count memberships, prefix-sum, fill ascending in
  // clique index so each vertex's row comes out sorted.
  auto& moff = forest.member_offsets_;
  moff.assign(static_cast<std::size_t>(num_graph_vertices) + 1, 0);
  for (CliqueWord word : forest.cliques_) {
    for (auto v : word) {
      if (v < 0 || v >= num_graph_vertices) {
        throw std::out_of_range("clique_membership: vertex out of range");
      }
      ++moff[static_cast<std::size_t>(v) + 1];
    }
  }
  for (int v = 0; v < num_graph_vertices; ++v) moff[v + 1] += moff[v];
  forest.member_.resize(
      static_cast<std::size_t>(moff[num_graph_vertices]));
  {
    std::vector<EdgeIndex> cursor(moff.begin(), moff.end() - 1);
    for (std::size_t c = 0; c < m; ++c) {
      for (auto v : forest.cliques_[c]) {
        forest.member_[static_cast<std::size_t>(cursor[v]++)] =
            static_cast<CliqueId>(c);
      }
    }
  }

  // Forest adjacency as a CSR slab over the MWSF edges.
  std::int64_t chosen = 0;
  auto edges =
      max_weight_spanning_forest(forest.cliques_, num_graph_vertices);
  forest.adj_offsets_.assign(m + 1, 0);
  for (const auto& e : edges) {
    ++forest.adj_offsets_[static_cast<std::size_t>(e.a) + 1];
    ++forest.adj_offsets_[static_cast<std::size_t>(e.b) + 1];
  }
  for (std::size_t c = 0; c < m; ++c) {
    forest.adj_offsets_[c + 1] += forest.adj_offsets_[c];
  }
  forest.adj_.resize(static_cast<std::size_t>(forest.adj_offsets_[m]));
  {
    std::vector<EdgeIndex> cursor(forest.adj_offsets_.begin(),
                                  forest.adj_offsets_.end() - 1);
    for (const auto& e : edges) {
      forest.adj_[static_cast<std::size_t>(cursor[e.a]++)] =
          static_cast<CliqueId>(e.b);
      forest.adj_[static_cast<std::size_t>(cursor[e.b]++)] =
          static_cast<CliqueId>(e.a);
      ++chosen;
    }
  }
  for (std::size_t c = 0; c < m; ++c) {
    std::sort(forest.adj_.begin() + forest.adj_offsets_[c],
              forest.adj_.begin() + forest.adj_offsets_[c + 1]);
  }
  // The whole-graph MWSF build (node -1 marks coordinator work on the
  // event timeline).
  obs::trace_emit(nullptr, obs::TraceEventKind::kForestBuild, -1, /*round=*/0,
                  static_cast<std::int64_t>(m), chosen);
  return forest;
}

std::vector<std::pair<int, int>> CliqueForest::forest_edges() const {
  std::vector<std::pair<int, int>> out;
  for (int c = 0; c < num_cliques(); ++c) {
    for (CliqueId d : forest_neighbors(c)) {
      if (c < d) out.emplace_back(c, static_cast<int>(d));
    }
  }
  return out;
}

void CliqueForest::verify(const Graph& g) const {
  // (1) Every vertex lies in at least one clique.
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (cliques_of(v).empty()) {
      throw std::logic_error("clique forest: vertex in no clique");
    }
  }
  // (2) Every edge is inside some clique.
  for (auto [u, v] : g.edges()) {
    bool covered = false;
    for (CliqueId c : cliques_of(u)) {
      const CliqueWord word = clique(static_cast<int>(c));
      covered = covered || std::binary_search(word.begin(), word.end(),
                                              static_cast<VertexId>(v));
    }
    if (!covered) throw std::logic_error("clique forest: edge uncovered");
  }
  // (3) Forest is acyclic: edges <= cliques - components.
  UnionFind uf(num_cliques());
  for (auto [a, b] : forest_edges()) {
    if (!uf.unite(a, b)) {
      throw std::logic_error("clique forest: cycle in forest");
    }
  }
  // (4) phi(v) induces a connected subgraph (the subtree T(v)). One pair of
  // epoch-stamped tables plus a flat queue is reused across all vertices,
  // so the sweep costs O(sum_v work inside T(v)) instead of one O(#cliques)
  // allocation and clear per graph vertex.
  std::vector<std::uint64_t> family_stamp(
      static_cast<std::size_t>(num_cliques()), 0);
  std::vector<std::uint64_t> seen_stamp(
      static_cast<std::size_t>(num_cliques()), 0);
  std::vector<int> queue;
  std::uint64_t epoch = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto family = cliques_of(v);
    ++epoch;
    for (CliqueId c : family) family_stamp[c] = epoch;
    queue.clear();
    queue.push_back(static_cast<int>(family.front()));
    seen_stamp[family.front()] = epoch;
    std::size_t reached = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (CliqueId d : forest_neighbors(queue[head])) {
        if (family_stamp[d] == epoch && seen_stamp[d] != epoch) {
          seen_stamp[d] = epoch;
          ++reached;
          queue.push_back(static_cast<int>(d));
        }
      }
    }
    if (reached != family.size()) {
      throw std::logic_error("clique forest: T(v) disconnected");
    }
  }
  // (5) Each pair of cliques joined by a forest edge intersects.
  for (auto [a, b] : forest_edges()) {
    const CliqueWord ca = clique(a);
    const CliqueWord cb = clique(b);
    bool intersects = false;
    for (std::size_t i = 0, j = 0; i < ca.size() && j < cb.size();) {
      if (ca[i] < cb[j]) {
        ++i;
      } else if (ca[i] > cb[j]) {
        ++j;
      } else {
        intersects = true;
        break;
      }
    }
    if (!intersects) {
      throw std::logic_error("clique forest: empty-intersection edge");
    }
  }
}

}  // namespace chordal
