#include "cliqueforest/forest.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "graph/cliques.hpp"
#include "support/union_find.hpp"

namespace chordal {

std::vector<WcigEdge> max_weight_spanning_forest(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices) {
  auto edges = wcig_edges(cliques, num_graph_vertices);
  std::sort(edges.begin(), edges.end(),
            [&cliques](const WcigEdge& e, const WcigEdge& f) {
              return wcig_edge_less(f, e, cliques);  // decreasing order
            });
  UnionFind uf(static_cast<int>(cliques.size()));
  std::vector<WcigEdge> chosen;
  for (const auto& e : edges) {
    if (uf.unite(e.a, e.b)) chosen.push_back(e);
  }
  return chosen;
}

CliqueForest CliqueForest::build(const Graph& g) {
  return from_cliques(maximal_cliques_chordal(g), g.num_vertices());
}

CliqueForest CliqueForest::from_cliques(
    std::vector<std::vector<int>> cliques, int num_graph_vertices) {
  CliqueForest forest;
  forest.num_graph_vertices_ = num_graph_vertices;
  forest.cliques_ = std::move(cliques);
  forest.membership_ =
      clique_membership(forest.cliques_, num_graph_vertices);
  forest.adj_.assign(forest.cliques_.size(), {});
  for (const auto& e :
       max_weight_spanning_forest(forest.cliques_, num_graph_vertices)) {
    forest.adj_[e.a].push_back(e.b);
    forest.adj_[e.b].push_back(e.a);
  }
  for (auto& list : forest.adj_) std::sort(list.begin(), list.end());
  return forest;
}

std::vector<std::pair<int, int>> CliqueForest::forest_edges() const {
  std::vector<std::pair<int, int>> out;
  for (int c = 0; c < num_cliques(); ++c) {
    for (int d : adj_[c]) {
      if (c < d) out.emplace_back(c, d);
    }
  }
  return out;
}

void CliqueForest::verify(const Graph& g) const {
  // (1) Every vertex lies in at least one clique.
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (membership_[v].empty()) {
      throw std::logic_error("clique forest: vertex in no clique");
    }
  }
  // (2) Every edge is inside some clique.
  for (auto [u, v] : g.edges()) {
    bool covered = false;
    for (int c : membership_[u]) {
      covered = covered ||
                std::binary_search(cliques_[c].begin(), cliques_[c].end(), v);
    }
    if (!covered) throw std::logic_error("clique forest: edge uncovered");
  }
  // (3) Forest is acyclic: edges <= cliques - components.
  UnionFind uf(num_cliques());
  for (auto [a, b] : forest_edges()) {
    if (!uf.unite(a, b)) {
      throw std::logic_error("clique forest: cycle in forest");
    }
  }
  // (4) phi(v) induces a connected subgraph (the subtree T(v)).
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& family = membership_[v];
    std::vector<char> in_family(static_cast<std::size_t>(num_cliques()), 0);
    for (int c : family) in_family[c] = 1;
    std::queue<int> queue;
    std::vector<char> seen(static_cast<std::size_t>(num_cliques()), 0);
    queue.push(family.front());
    seen[family.front()] = 1;
    std::size_t reached = 1;
    while (!queue.empty()) {
      int c = queue.front();
      queue.pop();
      for (int d : adj_[c]) {
        if (in_family[d] && !seen[d]) {
          seen[d] = 1;
          ++reached;
          queue.push(d);
        }
      }
    }
    if (reached != family.size()) {
      throw std::logic_error("clique forest: T(v) disconnected");
    }
  }
  // (5) Each pair of cliques joined by a forest edge intersects.
  for (auto [a, b] : forest_edges()) {
    std::vector<int> common;
    std::set_intersection(cliques_[a].begin(), cliques_[a].end(),
                          cliques_[b].begin(), cliques_[b].end(),
                          std::back_inserter(common));
    if (common.empty()) {
      throw std::logic_error("clique forest: empty-intersection edge");
    }
  }
}

}  // namespace chordal
