#include "cliqueforest/family.hpp"

#include <algorithm>

namespace chordal {

bool word_less(CliqueWord a, CliqueWord b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool word_eq(CliqueWord a, CliqueWord b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::vector<int> word_vec(CliqueWord w) {
  return std::vector<int>(w.begin(), w.end());
}

CliqueFamily::CliqueFamily(const std::vector<std::vector<int>>& nested) {
  std::size_t total = 0;
  for (const auto& word : nested) total += word.size();
  reserve(nested.size(), total);
  for (const auto& word : nested) push_word(word);
}

std::vector<std::vector<int>> CliqueFamily::to_nested() const {
  std::vector<std::vector<int>> out(size());
  for (std::size_t c = 0; c < size(); ++c) {
    const CliqueWord word = (*this)[c];
    out[c].assign(word.begin(), word.end());
  }
  return out;
}

}  // namespace chordal
