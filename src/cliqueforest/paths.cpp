#include "cliqueforest/paths.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/diameter.hpp"

namespace chordal {

namespace {

/// Active forest-degree of clique c.
int active_degree(const CliqueForest& forest, const std::vector<char>& active,
                  int c) {
  int deg = 0;
  for (CliqueId d : forest.forest_neighbors(c)) deg += active[d] ? 1 : 0;
  return deg;
}

}  // namespace

std::vector<ForestPath> maximal_binary_paths(const CliqueForest& forest,
                                             const std::vector<char>& active) {
  const int m = forest.num_cliques();
  if (static_cast<int>(active.size()) != m) {
    throw std::invalid_argument("maximal_binary_paths: active size mismatch");
  }
  std::vector<int> deg(static_cast<std::size_t>(m), 0);
  std::vector<char> binary(static_cast<std::size_t>(m), 0);
  for (int c = 0; c < m; ++c) {
    if (!active[c]) continue;
    deg[c] = active_degree(forest, active, c);
    binary[c] = deg[c] <= 2;
  }
  // Chains = connected components of the binary cliques; each is a path
  // because forest-degree is at most 2. Walk each chain from an endpoint.
  auto binary_neighbors = [&](int c) {
    std::vector<int> out;
    for (CliqueId d : forest.forest_neighbors(c)) {
      if (active[d] && binary[d]) out.push_back(static_cast<int>(d));
    }
    return out;
  };
  std::vector<char> used(static_cast<std::size_t>(m), 0);
  std::vector<ForestPath> paths;
  for (int c = 0; c < m; ++c) {
    if (!active[c] || !binary[c] || used[c]) continue;
    if (binary_neighbors(c).size() > 1) continue;  // interior; reach later
    ForestPath path;
    int prev = -1, cur = c;
    while (cur != -1) {
      used[cur] = 1;
      path.cliques.push_back(cur);
      int next = -1;
      for (int d : binary_neighbors(cur)) {
        if (d != prev) next = d;
      }
      prev = cur;
      cur = next;
    }
    // Attachments: active non-binary neighbors of the chain endpoints. A
    // single-clique chain can carry up to two distinct attachments; a longer
    // chain's endpoint has at most one (its other slot is the chain itself).
    auto attachments = [&](int end) {
      std::vector<int> out;
      for (CliqueId d : forest.forest_neighbors(end)) {
        if (active[d] && !binary[d]) out.push_back(static_cast<int>(d));
      }
      return out;
    };
    if (path.cliques.size() == 1) {
      auto att = attachments(path.cliques.front());
      if (!att.empty()) path.attach_right = att[0];
      if (att.size() > 1) path.attach_left = att[1];
    } else {
      auto left = attachments(path.cliques.front());
      auto right = attachments(path.cliques.back());
      if (!left.empty()) path.attach_left = left[0];
      if (!right.empty()) path.attach_right = right[0];
    }
    path.pendant = path.attach_left == -1 || path.attach_right == -1;
    if (path.pendant && path.attach_left != -1) {
      std::reverse(path.cliques.begin(), path.cliques.end());
      std::swap(path.attach_left, path.attach_right);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

void PathScratch::ensure(const CliqueForest& forest) {
  auto m = static_cast<std::size_t>(forest.num_cliques());
  if (clique_stamp.size() < m) {
    clique_stamp.resize(m, 0);
    clique_pos.resize(m, 0);
  }
}

void path_union_vertices(const CliqueForest& forest, const ForestPath& path,
                         std::vector<int>& out) {
  out.clear();
  for (int c : path.cliques) {
    CliqueWord word = forest.clique(c);
    out.insert(out.end(), word.begin(), word.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<int> path_union_vertices(const CliqueForest& forest,
                                     const ForestPath& path) {
  std::vector<int> out;
  path_union_vertices(forest, path, out);
  return out;
}

void path_owned_vertices(const CliqueForest& forest,
                         const std::vector<char>& active_clique,
                         const ForestPath& path, PathScratch& scratch,
                         std::vector<int>& out) {
  scratch.ensure(forest);
  const std::uint64_t mark = ++scratch.epoch;
  for (int c : path.cliques) scratch.clique_stamp[c] = mark;
  path_union_vertices(forest, path, scratch.verts);
  out.clear();
  for (int v : scratch.verts) {
    bool all_inside = true;
    for (CliqueId c : forest.cliques_of(v)) {
      if (active_clique[c] && scratch.clique_stamp[c] != mark) {
        all_inside = false;
        break;
      }
    }
    if (all_inside) out.push_back(v);
  }
}

std::vector<int> path_owned_vertices(const CliqueForest& forest,
                                     const std::vector<char>& active_clique,
                                     const ForestPath& path) {
  thread_local PathScratch scratch;
  std::vector<int> owned;
  path_owned_vertices(forest, active_clique, path, scratch, owned);
  return owned;
}

void path_intervals(const CliqueForest& forest, const ForestPath& path,
                    PathScratch& scratch, PathIntervals& out) {
  scratch.ensure(forest);
  const std::uint64_t mark = ++scratch.epoch;
  for (std::size_t i = 0; i < path.cliques.size(); ++i) {
    scratch.clique_stamp[path.cliques[i]] = mark;
    scratch.clique_pos[path.cliques[i]] = static_cast<int>(i);
  }
  out.num_positions = static_cast<int>(path.cliques.size());
  path_union_vertices(forest, path, out.vertices);
  out.lo.clear();
  out.hi.clear();
  out.lo.reserve(out.vertices.size());
  out.hi.reserve(out.vertices.size());
  for (int v : out.vertices) {
    int lo = out.num_positions, hi = -1;
    for (CliqueId c : forest.cliques_of(v)) {
      if (scratch.clique_stamp[c] == mark) {
        lo = std::min(lo, scratch.clique_pos[c]);
        hi = std::max(hi, scratch.clique_pos[c]);
      }
    }
    out.lo.push_back(lo);
    out.hi.push_back(hi);
  }
}

PathIntervals path_intervals(const CliqueForest& forest,
                             const ForestPath& path) {
  thread_local PathScratch scratch;
  PathIntervals rep;
  path_intervals(forest, path, scratch, rep);
  return rep;
}

namespace {

/// far[p] = furthest position reachable by one interval that starts at or
/// before p; the standard greedy-hop structure for interval-graph distances.
void far_table(const PathIntervals& rep, std::vector<int>& far) {
  far.assign(static_cast<std::size_t>(rep.num_positions), -1);
  for (std::size_t i = 0; i < rep.vertices.size(); ++i) {
    far[rep.lo[i]] = std::max(far[rep.lo[i]], rep.hi[i]);
  }
  int best = -1;
  for (int p = 0; p < rep.num_positions; ++p) {
    best = std::max(best, far[p]);
    far[p] = best;
  }
}

/// Exact interval-graph distance via greedy hops (-1 if unreachable).
int interval_distance(const PathIntervals& rep, const std::vector<int>& far,
                      std::size_t u, std::size_t v) {
  if (u == v) return 0;
  if (rep.lo[v] < rep.lo[u] || (rep.lo[v] == rep.lo[u] && rep.hi[v] < rep.hi[u])) {
    std::swap(u, v);
  }
  if (rep.hi[u] >= rep.lo[v]) return 1;
  int reach = rep.hi[u];
  int dist = 1;
  while (reach < rep.lo[v]) {
    int next = far[reach];
    if (next <= reach) return -1;
    reach = next;
    ++dist;
  }
  return dist;
}

}  // namespace

int path_diameter_from_intervals(const Graph& g, const PathIntervals& rep,
                                 PathScratch& scratch) {
  if (rep.vertices.size() <= 1) return 0;
  // Diametral pair of a connected interval graph: the interval ending first
  // vs. the interval starting last (verified against all-pairs BFS by the
  // property tests). We additionally take a BFS double sweep on the induced
  // subgraph as a safety net; both are exact on these graphs.
  far_table(rep, scratch.far);
  std::size_t a = 0, b = 0;
  for (std::size_t i = 1; i < rep.vertices.size(); ++i) {
    if (rep.hi[i] < rep.hi[a] || (rep.hi[i] == rep.hi[a] && rep.lo[i] < rep.lo[a])) {
      a = i;
    }
    if (rep.lo[i] > rep.lo[b] || (rep.lo[i] == rep.lo[b] && rep.hi[i] > rep.hi[b])) {
      b = i;
    }
  }
  int by_intervals = interval_distance(rep, scratch.far, a, b);
  int by_sweep = diameter_double_sweep_subset(g, rep.vertices, scratch.sweep);
  return std::max(by_intervals, by_sweep);
}

int path_diameter(const Graph& g, const CliqueForest& forest,
                  const ForestPath& path, PathScratch& scratch) {
  path_intervals(forest, path, scratch, scratch.rep);
  return path_diameter_from_intervals(g, scratch.rep, scratch);
}

int path_diameter(const Graph& g, const CliqueForest& forest,
                  const ForestPath& path) {
  thread_local PathScratch scratch;
  return path_diameter(g, forest, path, scratch);
}

int path_independence_from_intervals(const PathIntervals& rep,
                                     PathScratch& scratch) {
  scratch.order.resize(rep.vertices.size());
  for (std::size_t i = 0; i < scratch.order.size(); ++i) scratch.order[i] = i;
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&rep](std::size_t x, std::size_t y) {
              return rep.hi[x] < rep.hi[y];
            });
  int count = 0;
  int last_hi = -1;
  for (std::size_t i : scratch.order) {
    if (rep.lo[i] > last_hi) {
      ++count;
      last_hi = rep.hi[i];
    }
  }
  return count;
}

int path_independence(const CliqueForest& forest, const ForestPath& path,
                      PathScratch& scratch) {
  path_intervals(forest, path, scratch, scratch.rep);
  return path_independence_from_intervals(scratch.rep, scratch);
}

int path_independence(const CliqueForest& forest, const ForestPath& path) {
  thread_local PathScratch scratch;
  return path_independence(forest, path, scratch);
}

}  // namespace chordal
