// Flat struct-of-arrays storage for families of clique words.
//
// The substrate under the whole clique-forest layer used to be
// vector<vector<int>>: one heap allocation per clique, pointer-chasing on
// every word comparison, and 3x-plus memory overhead at million-node scale
// (inner-vector headers plus allocator slack per bag). CliqueFamily packs a
// family into exactly two slabs - `offsets_` (EdgeIndex, one per word plus
// a sentinel) and `vertices_` (VertexId, the concatenated sorted words) -
// and hands out non-owning CliqueWord spans on query paths. Identity of the
// represented family is slab equality, so differential tests compare
// families with ==, exactly as they compared nested vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/ids.hpp"

namespace chordal {

/// One clique word: the sorted vertex ids of a clique, viewed in place.
using CliqueWord = std::span<const VertexId>;

/// Lexicographic word order - the paper's order on clique ID words. Matches
/// std::vector<int> operator< on the same sequences.
bool word_less(CliqueWord a, CliqueWord b);
bool word_eq(CliqueWord a, CliqueWord b);

/// Copies a word into a plain int vector - for tests, oracles, and other
/// cold paths that want container semantics (set keys, EXPECT_EQ).
std::vector<int> word_vec(CliqueWord w);

class CliqueFamily {
 public:
  CliqueFamily() = default;
  /// Flattens a nested family (words copied in order).
  explicit CliqueFamily(const std::vector<std::vector<int>>& nested);

  std::size_t size() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  bool empty() const { return size() == 0; }

  CliqueWord operator[](std::size_t c) const {
    return {vertices_.data() + offsets_[c],
            static_cast<std::size_t>(offsets_[c + 1] - offsets_[c])};
  }

  /// Total vertex slots across all words (sum of word lengths).
  std::size_t total_vertices() const { return vertices_.size(); }

  /// Drops all words but keeps slab capacity (hot-path reuse).
  void clear() {
    offsets_.clear();
    vertices_.clear();
  }

  void reserve(std::size_t words, std::size_t total_vertices) {
    offsets_.reserve(words + 1);
    vertices_.reserve(total_vertices);
  }

  /// Appends one word (any integer range; ids narrow into VertexId storage).
  template <typename Range>
  void push_word(const Range& word) {
    if (offsets_.empty()) offsets_.push_back(0);
    for (auto v : word) vertices_.push_back(static_cast<VertexId>(v));
    offsets_.push_back(static_cast<EdgeIndex>(vertices_.size()));
  }

  /// Two families are equal iff they hold the same words in the same order.
  bool operator==(const CliqueFamily&) const = default;

  /// Raw slabs, for audits and memory accounting.
  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& vertices() const { return vertices_; }

  std::size_t memory_bytes() const {
    return offsets_.capacity() * sizeof(EdgeIndex) +
           vertices_.capacity() * sizeof(VertexId);
  }

  /// Expands back to the nested representation (tests and cold oracle
  /// paths only).
  std::vector<std::vector<int>> to_nested() const;

  /// Iteration yields CliqueWord views, so range-for over a family works
  /// like range-for over the old nested vector.
  class const_iterator {
   public:
    const_iterator(const CliqueFamily* f, std::size_t i) : f_(f), i_(i) {}
    CliqueWord operator*() const { return (*f_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const CliqueFamily* f_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  std::vector<EdgeIndex> offsets_;  // size() + 1 entries once non-empty
  std::vector<VertexId> vertices_;  // concatenated sorted words
};

}  // namespace chordal
