// Local views of the clique forest (Section 3).
//
// A node v that knows its distance-d ball can reconstruct, for every vertex
// u within distance d-1, the family phi(u) of maximal cliques containing u
// (such cliques fit inside Gamma[u], hence inside the ball) and the unique
// maximum weight spanning forest of W restricted to phi(u), which by
// Lemma 2 equals the subtree T(u) of the *global* clique forest. The union
// of these subtrees is v's coherent local view.
#pragma once

#include <vector>

#include "cliqueforest/family.hpp"
#include "graph/graph.hpp"

namespace chordal {

struct LocalView {
  /// Maximal cliques of G visible to the observer, in canonical (sorted)
  /// order, as global vertex ids. Stored as a flat CliqueFamily; index it
  /// for a CliqueWord span, or word_vec a word where container semantics
  /// are needed.
  CliqueFamily cliques;
  /// Clique-forest edges derived from the per-vertex spanning forests,
  /// as index pairs (a < b) into `cliques`.
  std::vector<std::pair<int, int>> forest_edges;
  /// Vertices u for which the whole subtree T(u) is guaranteed correct
  /// (those within distance radius-1 of the observer).
  std::vector<int> trusted_vertices;
};

/// Computes the local view of `observer` from its distance-`radius` ball in
/// the subgraph induced by {u : active == nullptr || (*active)[u]}.
/// The observer must be active. Requires radius >= 1.
LocalView compute_local_view(const Graph& g, int observer, int radius,
                             const std::vector<char>* active = nullptr);

}  // namespace chordal
