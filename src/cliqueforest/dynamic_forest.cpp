#include "cliqueforest/dynamic_forest.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace chordal {

namespace {

/// Two-pointer subset test on sorted words.
bool word_subset(std::span<const VertexId> small,
                 std::span<const VertexId> big) {
  std::size_t j = 0;
  for (VertexId v : small) {
    while (j < big.size() && big[j] < v) ++j;
    if (j == big.size() || big[j] != v) return false;
    ++j;
  }
  return true;
}

int word_intersection_size(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  std::size_t i = 0, j = 0;
  int out = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++out;
      ++i;
      ++j;
    }
  }
  return out;
}

void insert_sorted(std::vector<std::int32_t>& row, std::int32_t v) {
  row.insert(std::lower_bound(row.begin(), row.end(), v), v);
}

void erase_sorted(std::vector<std::int32_t>& row, std::int32_t v) {
  auto it = std::lower_bound(row.begin(), row.end(), v);
  assert(it != row.end() && *it == v);
  row.erase(it);
}

}  // namespace

void DynamicCliqueForest::init(const CliqueFamily& family,
                               std::span<const WcigEdge> forest,
                               int vertex_slots) {
  words_.clear();
  cl_alive_.clear();
  free_cliques_.clear();
  phi_.clear();
  forest_.clear();
  alive_cliques_ = 0;
  ensure_vertex_slots(vertex_slots);
  words_.reserve(family.size());
  for (std::size_t c = 0; c < family.size(); ++c) {
    CliqueWord w = family[c];
    new_clique(std::vector<VertexId>(w.begin(), w.end()));
  }
  for (const WcigEdge& e : forest) add_forest_edge(e.a, e.b, e.weight);
}

void DynamicCliqueForest::ensure_vertex_slots(int n) {
  if (static_cast<std::size_t>(n) > phi_.size()) {
    phi_.resize(static_cast<std::size_t>(n));
    vstamp_.resize(phi_.size(), 0);
  }
}

int DynamicCliqueForest::max_clique_size() const {
  std::size_t best = 0;
  for (int c = 0; c < num_clique_slots(); ++c) {
    if (cl_alive_[static_cast<std::size_t>(c)]) {
      best = std::max(best, words_[static_cast<std::size_t>(c)].size());
    }
  }
  return static_cast<int>(best);
}

int DynamicCliqueForest::cliques_containing_edge(int u, int v,
                                                 std::int32_t out[2]) const {
  const auto& pu = phi_[static_cast<std::size_t>(u)];
  const auto& pv = phi_[static_cast<std::size_t>(v)];
  std::size_t i = 0, j = 0;
  int count = 0;
  while (i < pu.size() && j < pv.size()) {
    if (pu[i] < pv[j]) {
      ++i;
    } else if (pv[j] < pu[i]) {
      ++j;
    } else {
      if (count < 2) out[count] = pu[i];
      if (++count == 2) return count;
      ++i;
      ++j;
    }
  }
  return count;
}

int DynamicCliqueForest::new_clique(std::vector<VertexId> word) {
  assert(std::is_sorted(word.begin(), word.end()));
  int c;
  if (!free_cliques_.empty()) {
    c = free_cliques_.back();
    free_cliques_.pop_back();
  } else {
    c = num_clique_slots();
    words_.emplace_back();
    cl_alive_.push_back(0);
    forest_.emplace_back();
  }
  auto ci = static_cast<std::size_t>(c);
  words_[ci] = std::move(word);
  cl_alive_[ci] = 1;
  assert(forest_[ci].empty());
  for (VertexId v : words_[ci]) {
    insert_sorted(phi_[static_cast<std::size_t>(v)],
                  static_cast<std::int32_t>(c));
  }
  ++alive_cliques_;
  return c;
}

void DynamicCliqueForest::kill_clique(int c) {
  auto ci = static_cast<std::size_t>(c);
  assert(cl_alive_[ci]);
  // Batch capture for the repair: which slot died and who its forest
  // neighbors were at the moment of death. A dead-dead adjacency is always
  // captured by the earlier kill (the later one no longer sees the edge).
  ensure_clique_scratch();
  kstamp_[ci] = kepoch_;
  kidx_[ci] = static_cast<std::int32_t>(kill_log_.size());
  kill_log_.push_back(static_cast<std::int32_t>(c));
  kill_nbrs_.emplace_back();
  for (const ForestNeighbor& nb : forest_[ci]) {
    kill_nbrs_.back().push_back(nb.clique);
  }
  for (VertexId v : words_[ci]) {
    erase_sorted(phi_[static_cast<std::size_t>(v)],
                 static_cast<std::int32_t>(c));
  }
  for (const ForestNeighbor& nb : forest_[ci]) {
    auto& row = forest_[static_cast<std::size_t>(nb.clique)];
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (row[k].clique == c) {
        row[k] = row.back();
        row.pop_back();
        break;
      }
    }
  }
  forest_[ci].clear();
  words_[ci].clear();
  cl_alive_[ci] = 0;
  free_cliques_.push_back(static_cast<std::int32_t>(c));
  --alive_cliques_;
}

void DynamicCliqueForest::add_forest_edge(int a, int b, int weight) {
  forest_[static_cast<std::size_t>(a)].push_back(
      {static_cast<std::int32_t>(b), static_cast<std::int32_t>(weight)});
  forest_[static_cast<std::size_t>(b)].push_back(
      {static_cast<std::int32_t>(a), static_cast<std::int32_t>(weight)});
}

void DynamicCliqueForest::remove_forest_edge(int a, int b) {
  for (int pass = 0; pass < 2; ++pass) {
    auto& row = forest_[static_cast<std::size_t>(pass == 0 ? a : b)];
    std::int32_t other = static_cast<std::int32_t>(pass == 0 ? b : a);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (row[k].clique == other) {
        row[k] = row.back();
        row.pop_back();
        break;
      }
    }
  }
}

bool DynamicCliqueForest::has_forest_edge(int a, int b) const {
  const auto& row = forest_[static_cast<std::size_t>(a)];
  for (const ForestNeighbor& nb : row) {
    if (nb.clique == b) return true;
  }
  return false;
}

int DynamicCliqueForest::intersection_weight(int a, int b) const {
  return word_intersection_size(word(a), word(b));
}

bool DynamicCliqueForest::edge_order_less(int a1, int b1, int w1, int a2,
                                          int b2, int w2) const {
  if (w1 != w2) return w1 < w2;
  CliqueWord l1 = word(a1), h1 = word(b1);
  if (word_less(h1, l1)) std::swap(l1, h1);
  CliqueWord l2 = word(a2), h2 = word(b2);
  if (word_less(h2, l2)) std::swap(l2, h2);
  if (!word_eq(l1, l2)) return word_less(l1, l2);
  return word_less(h1, h2);
}

void DynamicCliqueForest::ensure_clique_scratch() {
  auto size = static_cast<std::size_t>(num_clique_slots());
  if (cstamp_.size() < size) {
    cstamp_.resize(size, 0);
    cparent_.resize(size, -1);
    cparent_w_.resize(size, 0);
    bparent_.resize(size, -1);
    bparent_w_.resize(size, 0);
    kstamp_.resize(size, 0);
    kidx_.resize(size, -1);
    lstamp_.resize(size, 0);
    label_.resize(size, -1);
    pw_a_.resize(size, -1);
    pw_b_.resize(size, -1);
    pw_w_.resize(size, 0);
  }
}

void DynamicCliqueForest::begin_batch() {
  removed_words_.clear();
  added_slots_.clear();
  kill_log_.clear();
  kill_nbrs_.clear();
  ++kepoch_;
}

int DynamicCliqueForest::find_label(int id) {
  while (ldsu_[static_cast<std::size_t>(id)] != id) {
    ldsu_[static_cast<std::size_t>(id)] =
        ldsu_[static_cast<std::size_t>(ldsu_[static_cast<std::size_t>(id)])];
    id = ldsu_[static_cast<std::size_t>(id)];
  }
  return id;
}

int DynamicCliqueForest::fresh_label(int cluster, bool safe) {
  int id = static_cast<int>(ldsu_.size());
  ldsu_.push_back(static_cast<std::int32_t>(id));
  lcluster_.push_back(static_cast<std::int32_t>(cluster));
  lsafe_.push_back(safe ? 1 : 0);
  return id;
}

void DynamicCliqueForest::union_labels(int ra, int rb) {
  // Metadata merge is conservative: a root spanning two dead clusters can
  // no longer vouch for "distinct root implies distinct fragment" against
  // either cluster, so it degrades to -2 (always verify).
  int ca = lcluster_[static_cast<std::size_t>(ra)];
  int cb = lcluster_[static_cast<std::size_t>(rb)];
  int merged = ca == cb ? ca : (ca == -1 ? cb : (cb == -1 ? ca : -2));
  char safe = static_cast<char>(lsafe_[static_cast<std::size_t>(ra)] &&
                                lsafe_[static_cast<std::size_t>(rb)]);
  ldsu_[static_cast<std::size_t>(ra)] = static_cast<std::int32_t>(rb);
  lcluster_[static_cast<std::size_t>(rb)] = static_cast<std::int32_t>(merged);
  lsafe_[static_cast<std::size_t>(rb)] = safe;
}

bool DynamicCliqueForest::insert_candidate(int a, int b,
                                           ForestRepairStats& stats) {
  int w = intersection_weight(a, b);
  assert(w >= 1);
  ensure_clique_scratch();
  // Phase A - restricted walk. In a coherent clique forest the a-b path
  // lies inside the cliques containing I = word(a) cut word(b) (induced-
  // subtree property), a region bounded by the smallest phi among the
  // shared vertices, typically a handful of cliques.
  ivec_.clear();
  {
    CliqueWord wa = word(a), wb = word(b);
    std::size_t i = 0, j = 0;
    while (i < wa.size() && j < wb.size()) {
      if (wa[i] < wb[j]) {
        ++i;
      } else if (wb[j] < wa[i]) {
        ++j;
      } else {
        ivec_.push_back(wa[i]);
        ++i;
        ++j;
      }
    }
  }
  ++cepoch_;
  cqueue_.clear();
  cqueue_.push_back(static_cast<std::int32_t>(a));
  cstamp_[static_cast<std::size_t>(a)] = cepoch_;
  cparent_[static_cast<std::size_t>(a)] = -1;
  bool found = false;
  for (std::size_t head = 0; head < cqueue_.size() && !found; ++head) {
    int x = cqueue_[head];
    ++stats.path_steps;
    for (const ForestNeighbor& nb : forest_[static_cast<std::size_t>(x)]) {
      auto ni = static_cast<std::size_t>(nb.clique);
      if (cstamp_[ni] == cepoch_) continue;
      if (!word_subset(ivec_, word(nb.clique))) continue;
      cstamp_[ni] = cepoch_;
      cparent_[ni] = static_cast<std::int32_t>(x);
      cparent_w_[ni] = nb.weight;
      if (nb.clique == b) {
        found = true;
        break;
      }
      cqueue_.push_back(nb.clique);
    }
  }
  if (!found) {
    // Phase B - unrestricted bidirectional search. Expands one node per
    // side per turn, so a genuine cross-fragment join costs the SMALLER
    // component (typically the new clique's budding tree), not the giant
    // one. Mid-repair incoherence (the restricted region being split while
    // fragments are still reattaching) lands here too and stays exact.
    std::uint64_t ea = ++cepoch_;
    std::uint64_t eb = ++cepoch_;
    cqueue_.clear();
    bqueue_.clear();
    cqueue_.push_back(static_cast<std::int32_t>(a));
    bqueue_.push_back(static_cast<std::int32_t>(b));
    cstamp_[static_cast<std::size_t>(a)] = ea;
    cparent_[static_cast<std::size_t>(a)] = -1;
    cstamp_[static_cast<std::size_t>(b)] = eb;
    bparent_[static_cast<std::size_t>(b)] = -1;
    std::size_t ha = 0, hb = 0;
    int meet_a = -1, meet_b = -1, meet_w = 0;
    while (meet_a < 0 && ha < cqueue_.size() && hb < bqueue_.size()) {
      for (int side = 0; side < 2 && meet_a < 0; ++side) {
        auto& queue = side == 0 ? cqueue_ : bqueue_;
        auto& head = side == 0 ? ha : hb;
        if (head >= queue.size()) continue;
        int x = queue[head++];
        ++stats.path_steps;
        for (const ForestNeighbor& nb :
             forest_[static_cast<std::size_t>(x)]) {
          auto ni = static_cast<std::size_t>(nb.clique);
          std::uint64_t mine = side == 0 ? ea : eb;
          std::uint64_t theirs = side == 0 ? eb : ea;
          if (cstamp_[ni] == mine) continue;
          if (cstamp_[ni] == theirs) {
            meet_a = side == 0 ? x : nb.clique;
            meet_b = side == 0 ? nb.clique : x;
            meet_w = nb.weight;
            break;
          }
          cstamp_[ni] = mine;
          if (side == 0) {
            cparent_[ni] = static_cast<std::int32_t>(x);
            cparent_w_[ni] = nb.weight;
          } else {
            bparent_[ni] = static_cast<std::int32_t>(x);
            bparent_w_[ni] = nb.weight;
          }
          queue.push_back(nb.clique);
        }
      }
    }
    if (meet_a < 0) {
      add_forest_edge(a, b, w);
      return false;
    }
    // Stitch: reverse the b-rooted parent chain so cparent_ walks b -> a
    // through the meeting edge, as the swap loop below expects.
    int prev = meet_a, prev_w = meet_w, cur = meet_b;
    while (cur != -1) {
      int nxt = bparent_[static_cast<std::size_t>(cur)];
      int nxt_w = bparent_w_[static_cast<std::size_t>(cur)];
      cparent_[static_cast<std::size_t>(cur)] =
          static_cast<std::int32_t>(prev);
      cparent_w_[static_cast<std::size_t>(cur)] =
          static_cast<std::int32_t>(prev_w);
      prev = cur;
      prev_w = nxt_w;
      cur = nxt;
    }
  }
  int worst_a = -1, worst_b = -1, worst_w = 0;
  for (int p = b; p != a; p = cparent_[static_cast<std::size_t>(p)]) {
    int q = cparent_[static_cast<std::size_t>(p)];
    int pw = cparent_w_[static_cast<std::size_t>(p)];
    if (worst_a < 0 || edge_order_less(q, p, pw, worst_a, worst_b, worst_w)) {
      worst_a = q;
      worst_b = p;
      worst_w = pw;
    }
  }
  if (edge_order_less(worst_a, worst_b, worst_w, a, b, w)) {
    remove_forest_edge(worst_a, worst_b);
    add_forest_edge(a, b, w);
    ++stats.edge_swaps;
  }
  return true;
}

void DynamicCliqueForest::repair(ForestRepairStats& stats) {
  stats.cliques_removed += static_cast<int>(removed_words_.size());
  stats.cliques_added += static_cast<int>(added_slots_.size());
  ensure_clique_scratch();

  // ---- Removal phase: reconnect the fragments around the killed set. ----
  if (!kill_log_.empty()) {
    // Cluster the killed cliques by old-forest adjacency (captured at kill
    // time). A connected killed set - always the case for edge and vertex
    // deletion - makes distinct fragment labels provably distinct.
    kdsu_.resize(kill_log_.size());
    for (std::size_t i = 0; i < kill_log_.size(); ++i) {
      kdsu_[i] = static_cast<std::int32_t>(i);
    }
    auto kfind = [&](int i) {
      while (kdsu_[static_cast<std::size_t>(i)] != i) {
        kdsu_[static_cast<std::size_t>(i)] =
            kdsu_[static_cast<std::size_t>(
                kdsu_[static_cast<std::size_t>(i)])];
        i = kdsu_[static_cast<std::size_t>(i)];
      }
      return i;
    };
    for (std::size_t i = 0; i < kill_log_.size(); ++i) {
      for (std::int32_t nb : kill_nbrs_[i]) {
        auto ni = static_cast<std::size_t>(nb);
        if (kstamp_[ni] != kepoch_) continue;  // survivor (or reused later)
        int ra = kfind(static_cast<int>(i));
        int rb = kfind(kidx_[ni]);
        if (ra != rb) kdsu_[static_cast<std::size_t>(ra)] = rb;
      }
    }

    // Candidate region: vertices of the killed words. Every survivor
    // candidate endpoint contains one (its old rejection path entered the
    // killed set through a clique sharing its intersection).
    ++vepoch_;
    vmarks_.clear();
    for (const auto& rw : removed_words_) {
      for (VertexId v : rw) {
        auto vi = static_cast<std::size_t>(v);
        if (vstamp_[vi] != vepoch_) {
          vstamp_[vi] = vepoch_;
          vmarks_.push_back(v);
        }
      }
    }

    // Fragment labels: walk from each alive former neighbor of a killed
    // clique, restricted to cliques whose word meets the region. By the
    // induced-subtree property this covers every candidate endpoint while
    // never touching the rest of the component.
    ++lepoch_;
    ldsu_.clear();
    lcluster_.clear();
    lsafe_.clear();
    for (std::size_t i = 0; i < kill_log_.size(); ++i) {
      int cluster = kfind(static_cast<int>(i));
      for (std::int32_t anchor : kill_nbrs_[i]) {
        auto ai = static_cast<std::size_t>(anchor);
        if (kstamp_[ai] == kepoch_) continue;  // killed later in the batch
        if (lstamp_[ai] == lepoch_) continue;  // same fragment, seen already
        int lab = fresh_label(cluster, /*safe=*/true);
        lstamp_[ai] = lepoch_;
        label_[ai] = static_cast<std::int32_t>(lab);
        cqueue_.clear();
        cqueue_.push_back(anchor);
        for (std::size_t head = 0; head < cqueue_.size(); ++head) {
          int x = cqueue_[head];
          ++stats.path_steps;
          for (const ForestNeighbor& nb :
               forest_[static_cast<std::size_t>(x)]) {
            auto ni = static_cast<std::size_t>(nb.clique);
            if (lstamp_[ni] == lepoch_) continue;
            bool eligible = false;
            for (VertexId v : word(nb.clique)) {
              if (vstamp_[static_cast<std::size_t>(v)] == vepoch_) {
                eligible = true;
                break;
              }
            }
            if (!eligible) continue;
            lstamp_[ni] = lepoch_;
            label_[ni] = static_cast<std::int32_t>(lab);
            cqueue_.push_back(nb.clique);
          }
        }
      }
    }
    // New cliques are isolated singleton fragments until attached.
    for (std::int32_t c : added_slots_) {
      auto ci = static_cast<std::size_t>(c);
      if (lstamp_[ci] == lepoch_) continue;
      lstamp_[ci] = lepoch_;
      label_[ci] = static_cast<std::int32_t>(
          fresh_label(/*cluster=*/-1, /*safe=*/true));
    }

    // Crossing pairs only: a survivor-survivor candidate whose endpoints
    // share a fragment was rejected against a path that still exists, so
    // it can never enter the MWSF.
    auto label_of = [&](std::int32_t x) {
      auto xi = static_cast<std::size_t>(x);
      if (lstamp_[xi] != lepoch_) {
        // Unreached endpoint (should not happen for survivors; defensive):
        // own fragment, but never trusted without a real path search.
        lstamp_[xi] = lepoch_;
        label_[xi] = static_cast<std::int32_t>(
            fresh_label(/*cluster=*/-2, /*safe=*/false));
      }
      return find_label(label_[xi]);
    };
    pool_.clear();
    for (VertexId v : vmarks_) {
      const auto& ph = phi_[static_cast<std::size_t>(v)];
      if (ph.size() < 2) continue;
      // One root per member first: when the fragment did not split at v
      // (the killed clique was a leaf of T(v)), this skips the quadratic
      // scan entirely.
      roots_.clear();
      bool split = false;
      for (std::size_t i = 0; i < ph.size(); ++i) {
        roots_.push_back(static_cast<std::int32_t>(label_of(ph[i])));
        split = split || roots_[i] != roots_[0];
      }
      if (!split) continue;
      for (std::size_t i = 0; i < ph.size(); ++i) {
        for (std::size_t j = i + 1; j < ph.size(); ++j) {
          if (roots_[i] != roots_[j]) pool_.emplace_back(ph[i], ph[j]);
        }
      }
    }
    std::sort(pool_.begin(), pool_.end());
    pool_.erase(std::unique(pool_.begin(), pool_.end()), pool_.end());
    stats.pool_edges += static_cast<int>(pool_.size());

    // Canonical-order Kruskal over the crossing pool. Trusted distinct
    // labels add their edge with no path search; ambiguous ones (different
    // dead clusters, defensive labels) verify with the full online rule.
    cand_.clear();
    cand_.reserve(pool_.size());
    for (const auto& [a, b] : pool_) {
      cand_.push_back({static_cast<std::int32_t>(intersection_weight(a, b)),
                       a, b});
    }
    std::sort(cand_.begin(), cand_.end(),
              [this](const Cand& x, const Cand& y) {
                return edge_order_less(y.a, y.b, y.w, x.a, x.b, x.w);
              });
    for (const Cand& cd : cand_) {
      int ra = label_of(cd.a);
      int rb = label_of(cd.b);
      if (ra == rb) continue;
      int ca = lcluster_[static_cast<std::size_t>(ra)];
      int cb = lcluster_[static_cast<std::size_t>(rb)];
      bool trusted = lsafe_[static_cast<std::size_t>(ra)] &&
                     lsafe_[static_cast<std::size_t>(rb)] &&
                     ((ca == cb && ca >= 0) || ca == -1 || cb == -1);
      if (trusted) {
        add_forest_edge(cd.a, cd.b, cd.w);
      } else if (!has_forest_edge(cd.a, cd.b)) {
        insert_candidate(cd.a, cd.b, stats);
      }
      union_labels(ra, rb);
    }
  }

  // ---- Added phase: fold in the rows of the new cliques. ----
  // Every row is folded with the exact online swap rule (this is also what
  // evicts surviving old-forest edges that the new cliques make obsolete -
  // only added-incident cycles can do that, because a survivor-only cycle
  // would already have existed in the old W-graph). The per-row path search
  // is amortized: one worst-edge-on-path flood from the new clique answers
  // every row against the unique tree path in O(1), and is redone only when
  // a fold actually modifies the forest.
  for (std::int32_t c : added_slots_) {
    rows_.clear();
    for (VertexId v : word(c)) {
      for (std::int32_t d : phi_[static_cast<std::size_t>(v)]) {
        if (d != c) rows_.push_back(d);
      }
    }
    std::sort(rows_.begin(), rows_.end());
    rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
    stats.pool_edges += static_cast<int>(rows_.size());
    std::uint64_t flood = 0;  // 0 = stale (forest changed since last flood)
    for (std::int32_t d : rows_) {
      if (has_forest_edge(c, d)) continue;
      if (flood == 0) flood = flood_worst_paths(c, stats);
      if (cstamp_[static_cast<std::size_t>(d)] == flood) {
        // d reached: pw_* hold the canonical-worst edge on the unique tree
        // path c -> d. Swap iff the candidate beats it, as insert_candidate
        // would conclude.
        int w = intersection_weight(c, d);
        auto di = static_cast<std::size_t>(d);
        if (pw_a_[di] >= 0 &&
            edge_order_less(pw_a_[di], pw_b_[di], pw_w_[di], c, d, w)) {
          remove_forest_edge(pw_a_[di], pw_b_[di]);
          add_forest_edge(c, d, w);
          ++stats.edge_swaps;
          flood = 0;
        }
      } else {
        // Unreached: different component, or a path escaping the flood
        // region (transient incoherence). The full search settles it.
        int swaps_before = stats.edge_swaps;
        bool connected = insert_candidate(c, d, stats);
        if (!connected || stats.edge_swaps != swaps_before) flood = 0;
      }
    }
  }
  removed_words_.clear();
  added_slots_.clear();
}

std::uint64_t DynamicCliqueForest::flood_worst_paths(int c,
                                                     ForestRepairStats& stats) {
  // BFS from c restricted to cliques sharing a vertex with word(c); by the
  // induced-subtree property the whole tree path of every row lies there
  // when the forest is coherent. A forest has one path per node pair, so a
  // reached node's flood path IS its tree path and the worst-edge DP over
  // it is exact; unreached nodes simply fall back to the full search.
  ensure_clique_scratch();
  ++cepoch_;
  cqueue_.clear();
  cqueue_.push_back(static_cast<std::int32_t>(c));
  auto ci = static_cast<std::size_t>(c);
  cstamp_[ci] = cepoch_;
  pw_a_[ci] = -1;  // empty path
  for (std::size_t head = 0; head < cqueue_.size(); ++head) {
    int x = cqueue_[head];
    auto xi = static_cast<std::size_t>(x);
    ++stats.path_steps;
    for (const ForestNeighbor& nb : forest_[xi]) {
      auto ni = static_cast<std::size_t>(nb.clique);
      if (cstamp_[ni] == cepoch_) continue;
      if (word_intersection_size(word(c), word(nb.clique)) == 0) continue;
      cstamp_[ni] = cepoch_;
      if (pw_a_[xi] < 0 ||
          edge_order_less(x, nb.clique, nb.weight, pw_a_[xi], pw_b_[xi],
                          pw_w_[xi])) {
        pw_a_[ni] = static_cast<std::int32_t>(x);
        pw_b_[ni] = nb.clique;
        pw_w_[ni] = nb.weight;
      } else {
        pw_a_[ni] = pw_a_[xi];
        pw_b_[ni] = pw_b_[xi];
        pw_w_[ni] = pw_w_[xi];
      }
      cqueue_.push_back(nb.clique);
    }
  }
  return cepoch_;
}

ForestRepairStats DynamicCliqueForest::apply_edge_insert(
    int u, int v, std::span<const int> common) {
  ForestRepairStats stats;
  begin_batch();
  std::vector<VertexId> new_word;
  new_word.reserve(common.size() + 2);
  for (int x : common) new_word.push_back(static_cast<VertexId>(x));
  new_word.push_back(static_cast<VertexId>(u));
  new_word.push_back(static_cast<VertexId>(v));
  std::sort(new_word.begin(), new_word.end());
  // Dying cliques are contained in the new one and contain u or v (no old
  // clique holds both - uv was a non-edge).
  for (int endpoint : {u, v}) {
    const auto& ph = phi_[static_cast<std::size_t>(endpoint)];
    for (std::size_t i = 0; i < ph.size();) {
      int c = ph[i];
      if (word_subset(word(c), new_word)) {
        removed_words_.push_back(
            std::vector<VertexId>(word(c).begin(), word(c).end()));
        kill_clique(c);  // erases ph[i]; do not advance
      } else {
        ++i;
      }
    }
  }
  added_slots_.push_back(
      static_cast<std::int32_t>(new_clique(std::move(new_word))));
  repair(stats);
  return stats;
}

ForestRepairStats DynamicCliqueForest::apply_edge_delete(int u, int v) {
  ForestRepairStats stats;
  begin_batch();
  std::int32_t holders[2];
  int count = cliques_containing_edge(u, v, holders);
  if (count != 1) {
    throw std::logic_error(
        "apply_edge_delete: edge not in exactly one maximal clique "
        "(uncertified update)");
  }
  int k = holders[0];
  std::vector<VertexId> kw(word(k).begin(), word(k).end());
  kill_clique(k);
  for (int drop : {v, u}) {  // candidates K - v (keeps u) and K - u (keeps v)
    std::vector<VertexId> cand;
    cand.reserve(kw.size() - 1);
    for (VertexId x : kw) {
      if (x != static_cast<VertexId>(drop)) cand.push_back(x);
    }
    assert(!cand.empty());
    bool contained = false;
    for (std::int32_t c : phi_[static_cast<std::size_t>(cand.front())]) {
      if (word_subset(cand, word(c))) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      added_slots_.push_back(
          static_cast<std::int32_t>(new_clique(std::move(cand))));
    }
  }
  removed_words_.push_back(std::move(kw));
  repair(stats);
  return stats;
}

ForestRepairStats DynamicCliqueForest::apply_vertex_insert(
    int z, std::span<const std::vector<int>> gx_cliques) {
  ForestRepairStats stats;
  begin_batch();
  ensure_vertex_slots(z + 1);
  assert(phi_[static_cast<std::size_t>(z)].empty());
  if (gx_cliques.empty()) {
    added_slots_.push_back(static_cast<std::int32_t>(
        new_clique({static_cast<VertexId>(z)})));
  }
  for (const auto& m : gx_cliques) {
    // An old maximal clique dies iff it equals a maximal clique of G[X]
    // (it then gains z and stops being maximal on its own).
    assert(!m.empty());
    for (std::int32_t c : phi_[static_cast<std::size_t>(m.front())]) {
      if (word(c).size() == m.size() &&
          std::equal(m.begin(), m.end(), word(c).begin())) {
        removed_words_.push_back(
            std::vector<VertexId>(word(c).begin(), word(c).end()));
        kill_clique(c);
        break;
      }
    }
    std::vector<VertexId> nw;
    nw.reserve(m.size() + 1);
    for (int x : m) nw.push_back(static_cast<VertexId>(x));
    nw.push_back(static_cast<VertexId>(z));
    std::sort(nw.begin(), nw.end());
    added_slots_.push_back(static_cast<std::int32_t>(new_clique(std::move(nw))));
  }
  repair(stats);
  return stats;
}

ForestRepairStats DynamicCliqueForest::apply_vertex_delete(int z) {
  ForestRepairStats stats;
  begin_batch();
  std::vector<std::int32_t> dying(phi_[static_cast<std::size_t>(z)].begin(),
                                  phi_[static_cast<std::size_t>(z)].end());
  std::vector<std::vector<VertexId>> cands;
  for (std::int32_t c : dying) {
    removed_words_.push_back(
        std::vector<VertexId>(word(c).begin(), word(c).end()));
    std::vector<VertexId> cand;
    cand.reserve(word(c).size() - 1);
    for (VertexId x : word(c)) {
      if (x != static_cast<VertexId>(z)) cand.push_back(x);
    }
    if (!cand.empty()) cands.push_back(std::move(cand));
    kill_clique(c);
  }
  // Larger candidates first: a candidate contained in a bigger sibling must
  // see that sibling already in phi when its containment test runs.
  std::sort(cands.begin(), cands.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  for (auto& cand : cands) {
    bool contained = false;
    for (std::int32_t c : phi_[static_cast<std::size_t>(cand.front())]) {
      if (word_subset(cand, word(c))) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      added_slots_.push_back(
          static_cast<std::int32_t>(new_clique(std::move(cand))));
    }
  }
  repair(stats);
  return stats;
}

CliqueFamily DynamicCliqueForest::canonical_family() const {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(alive_cliques_));
  for (int c = 0; c < num_clique_slots(); ++c) {
    if (cl_alive_[static_cast<std::size_t>(c)]) order.push_back(c);
  }
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return word_less(word(a), word(b)); });
  CliqueFamily out;
  std::size_t total = 0;
  for (int c : order) total += word(c).size();
  out.reserve(order.size(), total);
  for (int c : order) out.push_word(word(c));
  return out;
}

std::vector<std::pair<std::vector<int>, std::vector<int>>>
DynamicCliqueForest::canonical_forest_edges() const {
  std::vector<std::pair<std::vector<int>, std::vector<int>>> out;
  for (int c = 0; c < num_clique_slots(); ++c) {
    if (!cl_alive_[static_cast<std::size_t>(c)]) continue;
    for (const ForestNeighbor& nb : forest_[static_cast<std::size_t>(c)]) {
      if (nb.clique <= c) continue;
      CliqueWord lo = word(c), hi = word(nb.clique);
      if (word_less(hi, lo)) std::swap(lo, hi);
      out.emplace_back(word_vec(lo), word_vec(hi));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DynamicCliqueForest::memory_bytes() const {
  std::size_t bytes =
      cl_alive_.capacity() + free_cliques_.capacity() * sizeof(std::int32_t) +
      words_.capacity() * sizeof(std::vector<VertexId>) +
      phi_.capacity() * sizeof(std::vector<std::int32_t>) +
      forest_.capacity() * sizeof(std::vector<ForestNeighbor>);
  for (const auto& w : words_) bytes += w.capacity() * sizeof(VertexId);
  for (const auto& p : phi_) bytes += p.capacity() * sizeof(std::int32_t);
  for (const auto& f : forest_) bytes += f.capacity() * sizeof(ForestNeighbor);
  return bytes;
}

}  // namespace chordal
