// Incrementally maintained clique family + clique forest of a dynamic
// chordal graph.
//
// The static CliqueForest packs the canonical family and the unique MWSF
// into CSR slabs - unbeatable for batch queries, uneditable under churn.
// This class keeps the same mathematical objects in slot form: one sorted
// word per clique slot (stable id, free-listed), a per-vertex membership
// list phi, and the forest as small adjacency vectors with cached
// intersection weights. Updates arrive as *certified* mutations (the caller
// has already proved the graph stays chordal) and are applied as a
// remove/add delta on the family followed by a local repair of the forest:
//
//   family delta (all O(|phi(touched)| * omega)):
//     insert uv:  the one new maximal clique is C = {u,v} + (N(u) cut N(v));
//                 the cliques that die are exactly the old maximal cliques
//                 contained in C (each contains u or v, so phi finds them).
//     delete uv:  the unique clique K containing uv dies; K-u and K-v are
//                 reinstated iff no surviving clique contains them.
//     insert z/X: the new cliques are {z}+M for the maximal cliques M of
//                 G[X]; old cliques die iff they are one of those M.
//     delete z:   every K in phi(z) dies; K-z is reinstated iff maximal.
//
//   forest repair: removed cliques take their forest edges with them; the
//   unique MWSF of the new weighted clique intersection graph is then a
//   subset of (surviving forest edges) + (candidate pool), where the pool is
//   every W-edge between two cliques sharing a vertex with a removed clique
//   plus every W-edge incident to an added clique. (Cycle rule: a W-edge
//   outside the old forest was rejected against a forest path; if that path
//   survives it is still rejected, and if it died it passed through a
//   removed clique K, which by the clique-tree separator property contains
//   the edge's intersection - putting the edge in the pool.)
//
//   The pool is consumed in two phases. Removal phase: a survivor-survivor
//   candidate can only enter the MWSF when its old rejection path died, i.e.
//   when its endpoints sit in different fragments of (old forest - killed
//   cliques) - so the repair labels those fragments first (a walk from each
//   alive former neighbor of a killed clique, restricted to cliques meeting
//   a killed word; by the induced-subtree property that region covers every
//   candidate endpoint) and runs canonical-order Kruskal over the CROSSING
//   pairs only, with a DSU over fragment labels in place of per-candidate
//   path searches. When the killed set is connected (always, for edge and
//   vertex deletion) distinct labels provably mean distinct fragments and
//   the selected edges are added with no search at all; the rare ambiguous
//   labels (disconnected killed sets from insertions, under-explored
//   regions) fall back to a real path search before any edge is added, so
//   the forest can never acquire a cycle. Added phase: each W-edge incident
//   to a new clique is folded in with the classic online-MST swap - find the
//   tree path between its endpoints, evict the path edge that Kruskal would
//   have processed last (paper order: weight, then lex word pair) if the
//   candidate beats it. The path search itself walks the restricted region
//   first (path cliques all contain the endpoints' intersection, again by
//   the induced-subtree property) and falls back to an unrestricted
//   bidirectional search that settles genuine cross-fragment joins at the
//   cost of the smaller side. Every intermediate forest is the exact unique
//   MWSF of the edges seen so far, so the result is bit-identical (as a set
//   of word pairs) to a from-scratch build - which is precisely what the
//   audit matrix checks after every fuzzed update.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cliqueforest/family.hpp"
#include "cliqueforest/wcig.hpp"
#include "graph/ids.hpp"

namespace chordal {

/// Locality accounting for one certified update.
struct ForestRepairStats {
  int cliques_removed = 0;
  int cliques_added = 0;
  int pool_edges = 0;  // candidate W-edges considered by the repair
  int path_steps = 0;  // forest-BFS nodes popped while locating swap paths
  int edge_swaps = 0;  // surviving forest edges evicted by better candidates
};

class DynamicCliqueForest {
 public:
  struct ForestNeighbor {
    std::int32_t clique;
    std::int32_t weight;  // |word(a) cut word(b)|, cached
  };

  DynamicCliqueForest() = default;

  /// Adopts the canonical family and MWSF edges of the initial graph
  /// (exactly what maximal_cliques_chordal_family +
  /// max_weight_spanning_forest produce). `vertex_slots` sizes phi.
  void init(const CliqueFamily& family, std::span<const WcigEdge> forest,
            int vertex_slots);

  int num_cliques() const { return alive_cliques_; }
  int num_clique_slots() const { return static_cast<int>(words_.size()); }
  bool clique_alive(int c) const {
    return c >= 0 && c < num_clique_slots() &&
           cl_alive_[static_cast<std::size_t>(c)];
  }
  CliqueWord word(int c) const { return words_[static_cast<std::size_t>(c)]; }
  /// Sorted clique-slot ids containing vertex slot v.
  std::span<const std::int32_t> cliques_of(int v) const {
    return phi_[static_cast<std::size_t>(v)];
  }
  std::span<const ForestNeighbor> forest_neighbors(int c) const {
    return forest_[static_cast<std::size_t>(c)];
  }

  /// omega(G): size of the largest alive word. O(#slots) scan (bench/cold).
  int max_clique_size() const;

  /// Grows phi to cover vertex slots [0, n).
  void ensure_vertex_slots(int n);

  /// Alive cliques containing both endpoints of edge uv, capped at 2; the
  /// slots land in out[0..count). count == 1 certifies uv deletable.
  int cliques_containing_edge(int u, int v, std::int32_t out[2]) const;

  // Certified-update appliers (the caller guarantees the *graph* mutation
  // keeps it chordal; `common` is the sorted N(u) cut N(v) before insertion,
  // `gx_cliques` the maximal cliques of G[X] as sorted words, one empty
  // outer list meaning X = {}).
  ForestRepairStats apply_edge_insert(int u, int v,
                                      std::span<const int> common);
  ForestRepairStats apply_edge_delete(int u, int v);
  ForestRepairStats apply_vertex_insert(
      int z, std::span<const std::vector<int>> gx_cliques);
  ForestRepairStats apply_vertex_delete(int z);

  /// Canonical (lex-sorted) family of the alive words - the object the
  /// static pipeline would compute. Cold path: audits, snapshots.
  CliqueFamily canonical_family() const;
  /// Forest edges as sorted (smaller word, larger word) pairs - the
  /// numbering-independent identity of the MWSF.
  std::vector<std::pair<std::vector<int>, std::vector<int>>>
  canonical_forest_edges() const;

  std::size_t memory_bytes() const;

 private:
  int new_clique(std::vector<VertexId> word);
  void kill_clique(int c);
  void add_forest_edge(int a, int b, int weight);
  void remove_forest_edge(int a, int b);
  bool has_forest_edge(int a, int b) const;
  int intersection_weight(int a, int b) const;
  /// Paper order on W-edges, by slot pair: weight, then lex word pair.
  bool edge_order_less(int a1, int b1, int w1, int a2, int b2, int w2) const;
  /// Online-MST insertion of candidate (a, b): restricted path search, then
  /// unrestricted bidirectional fallback; joins trees or applies the swap
  /// rule. Returns true when the endpoints were already connected.
  bool insert_candidate(int a, int b, ForestRepairStats& stats);
  /// One worst-edge-on-path BFS from added clique `c` (restricted to
  /// cliques meeting word(c)); returns the stamp epoch of the flood so row
  /// folds can answer path queries in O(1) until the forest changes.
  std::uint64_t flood_worst_paths(int c, ForestRepairStats& stats);
  void repair(ForestRepairStats& stats);
  void begin_batch();
  void ensure_clique_scratch();
  int find_label(int id);
  int fresh_label(int cluster, bool safe);
  void union_labels(int ra, int rb);

  std::vector<std::vector<VertexId>> words_;  // sorted; empty when dead
  std::vector<char> cl_alive_;
  std::vector<std::int32_t> free_cliques_;
  std::vector<std::vector<std::int32_t>> phi_;  // per vertex slot, sorted
  std::vector<std::vector<ForestNeighbor>> forest_;
  int alive_cliques_ = 0;

  // Repair scratch (epoch-stamped over clique slots; no per-update clears).
  std::uint64_t cepoch_ = 0;
  std::vector<std::uint64_t> cstamp_;
  std::vector<std::int32_t> cparent_;
  std::vector<std::int32_t> cparent_w_;
  std::vector<std::int32_t> cqueue_;
  // Bidirectional fallback: the b-rooted side of the search.
  std::vector<std::int32_t> bparent_;
  std::vector<std::int32_t> bparent_w_;
  std::vector<std::int32_t> bqueue_;
  std::vector<VertexId> ivec_;  // word(a) cut word(b) scratch
  std::vector<std::pair<std::int32_t, std::int32_t>> pool_;
  std::vector<std::vector<VertexId>> removed_words_;
  std::vector<std::int32_t> added_slots_;

  // Batch capture: killed slots, their forest neighbors at kill time, and a
  // per-batch membership stamp (slot ids can be reused by new_clique within
  // the same batch; the stamp still identifies "was killed this batch").
  std::vector<std::int32_t> kill_log_;
  std::vector<std::vector<std::int32_t>> kill_nbrs_;
  std::uint64_t kepoch_ = 0;
  std::vector<std::uint64_t> kstamp_;
  std::vector<std::int32_t> kidx_;  // slot -> kill_log_ index (under kstamp_)
  std::vector<std::int32_t> kdsu_;  // clusters of the killed set

  // Fragment labels for the removal-phase Kruskal (epoch-stamped per
  // repair). label_[slot] indexes ldsu_; lcluster_ is the originating dead
  // cluster (-1 isolated new clique, -2 mixed/untrusted), lsafe_ whether
  // distinct roots provably mean distinct fragments.
  std::uint64_t lepoch_ = 0;
  std::vector<std::uint64_t> lstamp_;
  std::vector<std::int32_t> label_;
  std::vector<std::int32_t> ldsu_;
  std::vector<std::int32_t> lcluster_;
  std::vector<char> lsafe_;

  // Vertex marks: the union of killed words (the candidate region).
  std::uint64_t vepoch_ = 0;
  std::vector<std::uint64_t> vstamp_;
  std::vector<VertexId> vmarks_;

  struct Cand {
    std::int32_t w, a, b;
  };
  std::vector<Cand> cand_;
  std::vector<std::int32_t> roots_;  // per-phi cached DSU roots
  std::vector<std::int32_t> rows_;   // per-added-clique row targets
  // Worst-edge-on-path DP written by flood_worst_paths (cepoch_-stamped).
  std::vector<std::int32_t> pw_a_;
  std::vector<std::int32_t> pw_b_;
  std::vector<std::int32_t> pw_w_;
};

}  // namespace chordal
