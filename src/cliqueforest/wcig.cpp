#include "cliqueforest/wcig.hpp"

#include <algorithm>
#include <stdexcept>

namespace chordal {

std::vector<std::vector<int>> clique_membership(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices) {
  std::vector<std::vector<int>> member(
      static_cast<std::size_t>(num_graph_vertices));
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    for (int v : cliques[c]) {
      if (v < 0 || v >= num_graph_vertices) {
        throw std::out_of_range("clique_membership: vertex out of range");
      }
      member[v].push_back(static_cast<int>(c));
    }
  }
  return member;
}

std::vector<WcigEdge> wcig_edges(const std::vector<std::vector<int>>& cliques,
                                 int num_graph_vertices) {
  auto member = clique_membership(cliques, num_graph_vertices);
  // Two cliques intersect iff some vertex lists both; collect pairs.
  std::vector<std::pair<int, int>> pairs;
  for (const auto& list : member) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        pairs.emplace_back(list[i], list[j]);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<WcigEdge> edges;
  edges.reserve(pairs.size());
  for (auto [a, b] : pairs) {
    const auto& ca = cliques[a];
    const auto& cb = cliques[b];
    int weight = 0;
    std::size_t i = 0, j = 0;
    while (i < ca.size() && j < cb.size()) {
      if (ca[i] < cb[j]) {
        ++i;
      } else if (ca[i] > cb[j]) {
        ++j;
      } else {
        ++weight;
        ++i;
        ++j;
      }
    }
    edges.push_back({a, b, weight});
  }
  return edges;
}

bool wcig_edge_less(const WcigEdge& e, const WcigEdge& f,
                    const std::vector<std::vector<int>>& cliques) {
  if (e.weight != f.weight) return e.weight < f.weight;
  const auto& ea = cliques[e.a];
  const auto& eb = cliques[e.b];
  const auto& fa = cliques[f.a];
  const auto& fb = cliques[f.b];
  const auto& el = std::min(ea, eb);  // lexicographic vector comparison
  const auto& eh = std::max(ea, eb);
  const auto& fl = std::min(fa, fb);
  const auto& fh = std::max(fa, fb);
  if (el != fl) return el < fl;
  return eh < fh;
}

}  // namespace chordal
