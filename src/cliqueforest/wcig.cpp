#include "cliqueforest/wcig.hpp"

#include <algorithm>
#include <stdexcept>

namespace chordal {

std::vector<std::vector<int>> clique_membership(
    const std::vector<std::vector<int>>& cliques, int num_graph_vertices) {
  std::vector<std::vector<int>> member(
      static_cast<std::size_t>(num_graph_vertices));
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    for (int v : cliques[c]) {
      if (v < 0 || v >= num_graph_vertices) {
        throw std::out_of_range("clique_membership: vertex out of range");
      }
      member[v].push_back(static_cast<int>(c));
    }
  }
  return member;
}

std::vector<WcigEdge> wcig_edges(const std::vector<std::vector<int>>& cliques,
                                 int num_graph_vertices) {
  auto member = clique_membership(cliques, num_graph_vertices);
  // Two cliques intersect iff some vertex lists both; collect pairs.
  std::vector<std::pair<int, int>> pairs;
  for (const auto& list : member) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        pairs.emplace_back(list[i], list[j]);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<WcigEdge> edges;
  edges.reserve(pairs.size());
  for (auto [a, b] : pairs) {
    const auto& ca = cliques[a];
    const auto& cb = cliques[b];
    int weight = 0;
    std::size_t i = 0, j = 0;
    while (i < ca.size() && j < cb.size()) {
      if (ca[i] < cb[j]) {
        ++i;
      } else if (ca[i] > cb[j]) {
        ++j;
      } else {
        ++weight;
        ++i;
        ++j;
      }
    }
    edges.push_back({a, b, weight});
  }
  return edges;
}

void wcig_edges_counting(const CliqueFamily& cliques, int num_graph_vertices,
                         ForestScratch& scratch, std::vector<WcigEdge>& out) {
  out.clear();
  const int m = static_cast<int>(cliques.size());
  if (m < 2) {
    // Still validate vertex ids, matching the reference path's contract.
    for (CliqueWord clique : cliques) {
      for (int v : clique) {
        if (v < 0 || v >= num_graph_vertices) {
          throw std::out_of_range("clique_membership: vertex out of range");
        }
      }
    }
    return;
  }
  scratch.ensure_vertices(num_graph_vertices);
  const std::uint64_t epoch = ++scratch.epoch;
  scratch.occ.clear();
  scratch.pair_a.clear();
  scratch.pair_b.clear();
  // Every vertex shared by cliques p < c contributes one (p, c) occurrence;
  // the multiplicity of a pair is exactly the intersection size. The
  // per-vertex occurrence chains replace the O(n) membership table.
  for (int c = 0; c < m; ++c) {
    for (int v : cliques[c]) {
      if (v < 0 || v >= num_graph_vertices) {
        throw std::out_of_range("clique_membership: vertex out of range");
      }
      int prev = scratch.vertex_stamp[v] == epoch ? scratch.vertex_head[v] : -1;
      for (int p = prev; p != -1; p = scratch.occ[p].second) {
        scratch.pair_a.push_back(scratch.occ[p].first);
        scratch.pair_b.push_back(c);
      }
      scratch.vertex_stamp[v] = epoch;
      scratch.vertex_head[v] = static_cast<int>(scratch.occ.size());
      scratch.occ.emplace_back(c, prev);
    }
  }
  const std::size_t pairs = scratch.pair_a.size();
  if (pairs == 0) return;
  // LSD radix over clique indices: stable counting sort by b, then by a,
  // leaves the pair list ascending in (a, b) with duplicates adjacent.
  scratch.tmp_a.resize(pairs);
  scratch.tmp_b.resize(pairs);
  auto counting_pass = [&](const std::vector<int>& key_in,
                           const std::vector<int>& other_in,
                           std::vector<int>& key_out,
                           std::vector<int>& other_out) {
    scratch.counts.assign(static_cast<std::size_t>(m) + 1, 0);
    for (std::size_t i = 0; i < pairs; ++i) ++scratch.counts[key_in[i] + 1];
    for (int c = 0; c < m; ++c) scratch.counts[c + 1] += scratch.counts[c];
    for (std::size_t i = 0; i < pairs; ++i) {
      int pos = scratch.counts[key_in[i]]++;
      key_out[pos] = key_in[i];
      other_out[pos] = other_in[i];
    }
  };
  counting_pass(scratch.pair_b, scratch.pair_a, scratch.tmp_b, scratch.tmp_a);
  counting_pass(scratch.tmp_a, scratch.tmp_b, scratch.pair_a, scratch.pair_b);
  // Run-length encode: the multiplicity of each distinct pair is its weight.
  for (std::size_t i = 0; i < pairs;) {
    std::size_t j = i + 1;
    while (j < pairs && scratch.pair_a[j] == scratch.pair_a[i] &&
           scratch.pair_b[j] == scratch.pair_b[i]) {
      ++j;
    }
    out.push_back({scratch.pair_a[i], scratch.pair_b[i],
                   static_cast<int>(j - i)});
    i = j;
  }
}

bool wcig_edge_less(const WcigEdge& e, const WcigEdge& f,
                    const CliqueFamily& cliques) {
  if (e.weight != f.weight) return e.weight < f.weight;
  CliqueWord el = cliques[e.a];
  CliqueWord eh = cliques[e.b];
  if (word_less(eh, el)) std::swap(el, eh);
  CliqueWord fl = cliques[f.a];
  CliqueWord fh = cliques[f.b];
  if (word_less(fh, fl)) std::swap(fl, fh);
  if (!word_eq(el, fl)) return word_less(el, fl);
  return word_less(eh, fh);
}

bool wcig_edge_less(const WcigEdge& e, const WcigEdge& f,
                    const std::vector<std::vector<int>>& cliques) {
  if (e.weight != f.weight) return e.weight < f.weight;
  const auto& ea = cliques[e.a];
  const auto& eb = cliques[e.b];
  const auto& fa = cliques[f.a];
  const auto& fb = cliques[f.b];
  const auto& el = std::min(ea, eb);  // lexicographic vector comparison
  const auto& eh = std::max(ea, eb);
  const auto& fl = std::min(fa, fb);
  const auto& fh = std::max(fa, fb);
  if (el != fl) return el < fl;
  return eh < fh;
}

}  // namespace chordal
