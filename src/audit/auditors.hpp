// Invariant auditors: one executable checker per paper claim, callable from
// tests, the fuzz runner, and ad-hoc driver harnesses.
//
// Style follows Polishchuk & Suomela (arXiv:0810.2175): every claim the
// system relies on is restated as a concrete predicate over a concrete run,
// and violations throw AuditFailure with the claim and the witness spelled
// out. The auditors are deliberately independent re-derivations - they use
// the exact centralized baselines as ground truth rather than trusting any
// driver-side bookkeeping.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cliqueforest/forest.hpp"
#include "core/dynamic.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace chordal::audit {

/// Thrown by every auditor on an invariant violation. The message names the
/// claim and the offending witness (vertex, edge, counter, ...).
class AuditFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// ---------------------------------------------------------------------------
// Per-claim auditors
// ---------------------------------------------------------------------------

/// Theorem 3 / Lemma 9-10: the MVC result is a proper coloring of g using
/// at most omega + omega/k + 1 colors, its self-reported counters are
/// consistent, and omega matches the exact chromatic number (chordal: chi
/// == omega).
void audit_coloring(const Graph& g, const core::MvcResult& r);

/// Theorem 7/8: the MIS result is an independent set with
/// (1 + eps) * |I| >= alpha(G), sorted and duplicate-free.
void audit_mis(const Graph& g, const core::MisResult& r, double eps);

/// True iff `set` is independent and no vertex outside it can be added.
bool is_maximal_independent_set(const Graph& g, std::span<const int> set);

/// Memory-substrate contract: the Graph's CSR slabs are well-formed -
/// offsets span [0, 2m] monotonically with offsets[n] == adj size, every
/// neighbor row is strictly ascending (sorted, duplicate-free), loop-free,
/// in-range, and symmetric (each (u, v) slot has its (v, u) mirror), and
/// the reported edge count equals half the adjacency volume.
void audit_graph_csr(const Graph& g);

/// Theorem 2: the clique forest is a valid clique tree of g - the
/// tree-decomposition axioms (via CliqueForest::verify), every stored bag
/// is a maximal clique of g, membership lists match bag contents, and the
/// forest has exactly (#cliques - #components of the clique intersection
/// graph) edges, i.e. it spans every component.
void audit_clique_forest(const Graph& g, const CliqueForest& forest);

/// Theorem 2 uniqueness, differentially: the counting-sort engine and the
/// reference sorted-merge Kruskal select the identical spanning forest.
void audit_forest_engine_parity(const CliqueFamily& cliques,
                                int num_graph_vertices);

/// Ledger/telemetry conservation over a finished run's registry: the
/// published totals must equal the sum of their per-round charges -
/// counter net.messages == sum(net.round_messages samples), counter
/// net.payload_words == sum(net.round_payload_words samples), and counter
/// net.rounds == the number of recorded round samples. Catches both lost
/// deliveries and double-published totals.
void audit_network_conservation(const obs::Registry& reg);

/// Drivers must reject non-chordal input with std::invalid_argument (from
/// peo_or_throw), never crash, hang, or return garbage.
void audit_rejects_non_chordal(const Graph& g);

// ---------------------------------------------------------------------------
// Differential driver harness
// ---------------------------------------------------------------------------

struct DriverAuditConfig {
  int threads = 1;
  bool cache = true;
  bool forest_reference = false;
  double eps_color = 0.5;
  double eps_mis = 0.25;
  /// Run the per-node-local-views pruning mode and assert it matches the
  /// global mode (Lemma 12). One local view per node per iteration - only
  /// enabled for small inputs by the callers.
  bool check_per_node_pruning = false;
  std::uint64_t dplus1_seed = 0x5eed;

  std::string label() const;
};

/// Everything a config's run produced that must be identical across
/// (threads, cache, engine) - the cross-config differential signature.
struct DriverAuditResult {
  std::vector<int> colors;
  int num_colors = 0;
  std::vector<int> mis;
  std::int64_t mvc_rounds = 0;
  std::int64_t mis_rounds = 0;
  int num_layers = 0;
  /// Registry signature: counters/gauges/histograms (cache.* and engine.*
  /// effectiveness metrics excluded) plus the span tree without wall times.
  std::string telemetry;
};

bool operator==(const DriverAuditResult& a, const DriverAuditResult& b);

/// Runs every driver (MVC both modes when requested, MIS, Delta+1 over the
/// Network engine, clique forest + engine parity, exact baselines) on g
/// under the given execution config with all per-claim auditors enabled,
/// and returns the differential signature. Thread count, cache, and forest
/// engine settings are restored on exit.
DriverAuditResult run_driver_audit(const Graph& g,
                                   const DriverAuditConfig& config);

/// The full execution matrix of one graph: threads {1, 8} x cache {on,
/// off} x engine {fast, ref}, each audited, with all eight signatures
/// asserted identical. Returns the number of configurations run.
int run_driver_audit_matrix(const Graph& g, double eps_color, double eps_mis,
                            bool check_per_node_pruning);

// ---------------------------------------------------------------------------
// Dynamic update-schedule harness
// ---------------------------------------------------------------------------

/// Incremental-vs-recompute parity for the dynamic layer: the repaired
/// signature (colors, MIS, clique family, forest edges, all in slot ids)
/// must be bit-identical to a full recomputation on the alive-induced
/// graph. Throws AuditFailure naming the diverging component.
void audit_dynamic_parity(const DynamicChordal& dc);

struct UpdateScheduleStats {
  int steps = 0;     // update attempts drawn
  int applied = 0;   // mutations that went through
  int rejected = 0;  // certified violations (witness cycle validated)
  int skipped = 0;   // rolls with no applicable move (empty graph etc.)
};

/// Replays one seeded update schedule on `base` under the given execution
/// config: random edge/vertex inserts and deletes (the certifier decides
/// validity; every rejection's witness is checked to be a genuine chordless
/// cycle of the would-be graph) plus injected guaranteed-violating updates
/// that MUST be rejected. audit_dynamic_parity runs after every step. When
/// config.cache is set, a BallCache rides along: periodically rebound to a
/// fresh materialize() snapshot, reconciled through invalidate_touched /
/// reactivate / deactivate from the facade's dirty region, and probed
/// against fresh ball collection. The final signature lands in *final.
UpdateScheduleStats run_update_schedule_audit(
    const Graph& base, std::uint64_t seed, int steps,
    const DriverAuditConfig& config, DynamicChordal::Signature* final_sig);

/// The schedule under the full execution matrix (threads {1, 8} x cache
/// {on, off} x engine {fast, ref}), asserting every config lands on the
/// identical final signature. Returns the number of configurations run.
int run_update_schedule_matrix(const Graph& base, std::uint64_t seed,
                               int steps);

}  // namespace chordal::audit
