// Update-schedule differential harness for the dynamic layer (PR 8).
//
// A schedule is replayed as a pure function of (base graph, seed, steps):
// every op is drawn from the schedule Rng against the *current* graph
// state, so two replays under different execution configs (threads, cache,
// forest engine) draw the identical op sequence and must land on the
// identical final signature. Three op classes:
//
//   * organic churn - random edge inserts/deletes, simplicial-biased vertex
//     inserts, vertex deletes. The certifier decides validity; both
//     outcomes are audited (applied ops via signature parity, rejected ops
//     via witness validation).
//   * guaranteed-valid moves - re-inserting a just-deleted edge into the
//     unchanged graph, inserting a vertex whose neighborhood is a greedily
//     extracted clique: keeps schedules from starving on dense bases.
//   * injected violations - a vertex insert whose neighborhood is a
//     non-adjacent pair {a, b} sharing a common neighbor w: the component
//     of G - {a, b} containing w attaches to both, so the certifier MUST
//     reject, and the witness must be a genuine chordless cycle.
//
// After every step, audit_dynamic_parity asserts the incrementally
// repaired state (colors, MIS, clique family, forest) is bit-identical to
// full recomputation on the alive-induced graph. Under config.cache a
// BallCache rides along and is periodically rebound to a fresh snapshot,
// reconciled purely from the facade's dirty region, and probed against
// fresh ball collection - the dynamic contract of invalidate_touched /
// reactivate / deactivate under real churn.
#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/auditors.hpp"
#include "local/ball.hpp"
#include "local/ball_cache.hpp"
#include "support/cachectl.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace chordal::audit {

namespace {

[[noreturn]] void fail(const std::string& claim, const std::string& witness) {
  throw AuditFailure("audit: " + claim + ": " + witness);
}

std::string cycle_str(const std::vector<int>& cycle) {
  std::string out = "[";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(cycle[i]);
  }
  return out + "]";
}

/// Asserts `cycle` is a chordless cycle of length >= 4 under `adj` (the
/// adjacency of the graph the rejected update would have produced).
template <typename Adj>
void check_witness_cycle(const std::vector<int>& cycle, Adj&& adj,
                         const char* op) {
  const std::string what = std::string("rejection witness of ") + op +
                           " is a chordless cycle";
  if (cycle.size() < 4) fail(what, "length " + std::to_string(cycle.size()));
  std::vector<int> sorted = cycle;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    fail(what, "repeated vertex in " + cycle_str(cycle));
  }
  const int k = static_cast<int>(cycle.size());
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      bool consecutive = (j == i + 1) || (i == 0 && j == k - 1);
      bool edge = adj(cycle[static_cast<std::size_t>(i)],
                      cycle[static_cast<std::size_t>(j)]);
      if (edge != consecutive) {
        fail(what, (consecutive ? "missing cycle edge (" : "chord (") +
                       std::to_string(cycle[static_cast<std::size_t>(i)]) +
                       ", " +
                       std::to_string(cycle[static_cast<std::size_t>(j)]) +
                       ") in " + cycle_str(cycle));
      }
    }
  }
}

int pick(const std::vector<int>& pool, Rng& rng) {
  return pool[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(pool.size())))];
}

/// Greedy clique inside u's closed neighborhood, randomized by start
/// offset: always a valid insert_vertex neighborhood.
std::vector<int> greedy_clique_around(const DynamicGraph& g, int u, Rng& rng) {
  std::vector<int> pool;
  pool.push_back(u);
  for (VertexId w : g.neighbors(u)) pool.push_back(static_cast<int>(w));
  std::vector<int> clique;
  std::size_t offset = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(pool.size())));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    int cand = pool[(i + offset) % pool.size()];
    bool ok = true;
    for (int have : clique) {
      if (!g.has_edge(cand, have)) ok = false;
    }
    if (ok) clique.push_back(cand);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

/// Keeps a riding BallCache coherent with the facade using only the dirty
/// region, then probes cached balls against fresh collection.
void sync_and_probe_cache(DynamicChordal& dc, Graph& snap,
                          std::unique_ptr<local::BallCache>& cache, Rng& rng) {
  snap = dc.materialize();
  cache->rebind(snap);
  cache->invalidate_touched(dc.touched());
  std::vector<int> on, off;
  for (int v = 0; v < dc.graph().num_slots(); ++v) {
    bool want = dc.graph().alive(v);
    bool have = cache->active()[static_cast<std::size_t>(v)] != 0;
    if (want && !have) on.push_back(v);
    if (!want && have) off.push_back(v);
  }
  cache->reactivate(on);
  cache->deactivate(off);
  dc.drain_touched();
  std::vector<int> alive = dc.graph().alive_vertices();
  if (alive.empty()) return;
  for (int probe = 0; probe < 4; ++probe) {
    int v = pick(alive, rng);
    int radius = 1 + static_cast<int>(rng.next_below(3));
    local::Ball fresh =
        local::collect_ball(snap, v, radius, &cache->active(), nullptr);
    const local::Ball& got = cache->shard(0).collect_ball(v, radius);
    if (fresh.vertices != got.vertices || fresh.dist != got.dist) {
      fail("riding BallCache serves fresh-identical balls under churn",
           "center " + std::to_string(v) + " radius " +
               std::to_string(radius) + " after " +
               std::to_string(dc.stats().edge_inserts +
                              dc.stats().edge_deletes +
                              dc.stats().vertex_inserts +
                              dc.stats().vertex_deletes) +
               " updates");
    }
  }
}

std::string dyn_summary(const DynamicChordal& dc) {
  const DynamicStats& s = dc.stats();
  return "alive " + std::to_string(dc.graph().num_alive()) + ", edges " +
         std::to_string(dc.graph().num_edges()) + ", after " +
         std::to_string(s.edge_inserts + s.edge_deletes + s.vertex_inserts +
                        s.vertex_deletes) +
         " applied updates";
}

struct KnobGuard {
  ~KnobGuard() {
    support::set_num_threads(0);
    support::set_cache_enabled(-1);
    support::set_forest_reference(-1);
  }
};

}  // namespace

void audit_dynamic_parity(const DynamicChordal& dc) {
  DynamicChordal::Signature inc = dc.signature();
  DynamicChordal::Signature ref =
      DynamicChordal::recompute_signature(dc.graph());
  if (inc.colors != ref.colors) {
    fail("incremental colors == recomputed colors", dyn_summary(dc));
  }
  if (inc.mis != ref.mis) {
    fail("incremental MIS == recomputed MIS", dyn_summary(dc));
  }
  if (inc.family != ref.family) {
    fail("incremental clique family == recomputed family", dyn_summary(dc));
  }
  if (inc.forest != ref.forest) {
    fail("incremental clique forest == recomputed MWSF", dyn_summary(dc));
  }
}

UpdateScheduleStats run_update_schedule_audit(
    const Graph& base, std::uint64_t seed, int steps,
    const DriverAuditConfig& config, DynamicChordal::Signature* final_sig) {
  KnobGuard restore;
  support::set_num_threads(config.threads);
  support::set_cache_enabled(config.cache ? 1 : 0);
  support::set_forest_reference(config.forest_reference ? 1 : 0);

  DynamicChordal dc(base);
  audit_dynamic_parity(dc);
  Graph snap = dc.materialize();
  auto cache = std::make_unique<local::BallCache>(snap, config.cache);
  dc.drain_touched();

  Rng rng(seed ^ 0xdf11a1c5u);
  // The op stream must be identical across every execution config, so the
  // cache probes (which only run when config.cache is set) draw from their
  // own generator.
  Rng probe_rng(seed ^ 0xba11cac4eULL);
  UpdateScheduleStats stats;
  // Recently deleted edges, re-insertable as guaranteed-interesting moves.
  std::deque<std::pair<int, int>> deleted_edges;

  for (int step = 0; step < steps; ++step) {
    ++stats.steps;
    std::vector<int> alive = dc.graph().alive_vertices();
    std::uint64_t roll = rng.next_below(100);

    if (roll < 20) {
      // Random edge insert: the certifier decides.
      if (alive.size() < 2) {
        ++stats.skipped;
      } else {
        int u = pick(alive, rng);
        int v = pick(alive, rng);
        if (u == v || dc.graph().has_edge(u, v)) {
          ++stats.skipped;
        } else {
          try {
            dc.insert_edge(u, v);
            ++stats.applied;
          } catch (const ChordalityViolation& e) {
            ++stats.rejected;
            check_witness_cycle(
                e.witness_cycle(),
                [&](int a, int b) {
                  if ((a == u && b == v) || (a == v && b == u)) return true;
                  return dc.graph().has_edge(a, b);
                },
                "edge insert");
          }
        }
      }
    } else if (roll < 32 && !deleted_edges.empty()) {
      // Re-insert a previously deleted edge (often valid, never trivial).
      auto [u, v] = deleted_edges.front();
      deleted_edges.pop_front();
      if (!dc.graph().alive(u) || !dc.graph().alive(v) ||
          dc.graph().has_edge(u, v)) {
        ++stats.skipped;
      } else {
        try {
          dc.insert_edge(u, v);
          ++stats.applied;
        } catch (const ChordalityViolation& e) {
          ++stats.rejected;
          check_witness_cycle(
              e.witness_cycle(),
              [&](int a, int b) {
                if ((a == u && b == v) || (a == v && b == u)) return true;
                return dc.graph().has_edge(a, b);
              },
              "edge re-insert");
        }
      }
    } else if (roll < 52) {
      // Random edge delete.
      int u = -1, v = -1;
      for (int attempt = 0; attempt < 4 && u < 0 && !alive.empty();
           ++attempt) {
        int cand = pick(alive, rng);
        int deg = dc.graph().degree(cand);
        if (deg == 0) continue;
        u = cand;
        v = static_cast<int>(dc.graph().neighbors(cand)[static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(deg)))]);
      }
      if (u < 0) {
        ++stats.skipped;
      } else {
        try {
          dc.delete_edge(u, v);
          ++stats.applied;
          deleted_edges.emplace_back(u, v);
          if (deleted_edges.size() > 8) deleted_edges.pop_front();
        } catch (const ChordalityViolation& e) {
          ++stats.rejected;
          check_witness_cycle(
              e.witness_cycle(),
              [&](int a, int b) {
                if ((a == u && b == v) || (a == v && b == u)) return false;
                return dc.graph().has_edge(a, b);
              },
              "edge delete");
        }
      }
    } else if (roll < 70) {
      // Vertex insert: clique neighborhood (valid) or a raw random subset
      // of a closed neighborhood (certifier decides).
      std::vector<int> x;
      if (!alive.empty()) {
        int u = pick(alive, rng);
        x = greedy_clique_around(dc.graph(), u, rng);
        if (rng.chance(0.35)) {
          // Raw slice of N[u]: may span a non-clique attachment.
          x.clear();
          x.push_back(u);
          for (VertexId w : dc.graph().neighbors(u)) {
            if (rng.chance(0.6)) x.push_back(static_cast<int>(w));
          }
          std::sort(x.begin(), x.end());
        }
      }
      try {
        dc.insert_vertex(x);
        ++stats.applied;
      } catch (const ChordalityViolation& e) {
        ++stats.rejected;
        check_witness_cycle(
            e.witness_cycle(),
            [&](int a, int b) {
              if (a == ChordalityViolation::kNewVertex) std::swap(a, b);
              if (b == ChordalityViolation::kNewVertex) {
                return std::binary_search(x.begin(), x.end(), a);
              }
              return dc.graph().has_edge(a, b);
            },
            "vertex insert");
      }
    } else if (roll < 88) {
      // Vertex delete: always chordal (hereditary), must never throw.
      if (alive.empty()) {
        ++stats.skipped;
      } else {
        dc.delete_vertex(pick(alive, rng));
        ++stats.applied;
      }
    } else {
      // Injected violation: a vertex insert over a non-adjacent pair
      // {a, b} with a common neighbor w. The component of G - {a, b}
      // containing w attaches to both, so acceptance would be a certifier
      // bug.
      int a = -1, b = -1;
      for (int attempt = 0; attempt < 6 && a < 0 && !alive.empty();
           ++attempt) {
        int w = pick(alive, rng);
        auto nbrs = dc.graph().neighbors(w);
        if (nbrs.size() < 2) continue;
        for (std::size_t i = 0; i + 1 < nbrs.size() && a < 0; ++i) {
          for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
            int p = static_cast<int>(nbrs[i]);
            int q = static_cast<int>(nbrs[j]);
            if (!dc.graph().has_edge(p, q)) {
              a = p;
              b = q;
              break;
            }
          }
        }
      }
      if (a < 0) {
        ++stats.skipped;  // every neighborhood is a clique right now
      } else {
        std::vector<int> x = {std::min(a, b), std::max(a, b)};
        try {
          dc.insert_vertex(x);
          fail("injected violating vertex insert is rejected",
               "accepted X = {" + std::to_string(x[0]) + ", " +
                   std::to_string(x[1]) + "}");
        } catch (const ChordalityViolation& e) {
          ++stats.rejected;
          check_witness_cycle(
              e.witness_cycle(),
              [&](int p, int q) {
                if (p == ChordalityViolation::kNewVertex) std::swap(p, q);
                if (q == ChordalityViolation::kNewVertex) {
                  return p == x[0] || p == x[1];
                }
                return dc.graph().has_edge(p, q);
              },
              "injected vertex insert");
        }
      }
    }

    audit_dynamic_parity(dc);
    if (config.cache && (step % 5 == 4 || step + 1 == steps)) {
      sync_and_probe_cache(dc, snap, cache, probe_rng);
    }
  }

  if (final_sig != nullptr) *final_sig = dc.signature();
  return stats;
}

int run_update_schedule_matrix(const Graph& base, std::uint64_t seed,
                               int steps) {
  std::vector<DynamicChordal::Signature> sigs;
  std::vector<std::string> labels;
  int configs = 0;
  for (int threads : {1, 8}) {
    for (bool cache : {true, false}) {
      for (bool reference : {false, true}) {
        DriverAuditConfig config;
        config.threads = threads;
        config.cache = cache;
        config.forest_reference = reference;
        DynamicChordal::Signature sig;
        run_update_schedule_audit(base, seed, steps, config, &sig);
        sigs.push_back(std::move(sig));
        labels.push_back(config.label());
        ++configs;
      }
    }
  }
  for (std::size_t i = 1; i < sigs.size(); ++i) {
    if (!(sigs[i] == sigs[0])) {
      fail("update schedule lands on one signature across the matrix",
           labels[i] + " diverges from " + labels[0]);
    }
  }
  return configs;
}

}  // namespace chordal::audit
