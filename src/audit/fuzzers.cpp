#include "audit/fuzzers.hpp"

#include <algorithm>
#include <utility>

#include "graph/generators.hpp"
#include "graph/graphio.hpp"
#include "support/rng.hpp"

namespace chordal::audit {

namespace {

/// Disjoint union over an explicit builder (the library has no union op;
/// the fuzzers deliberately build it by hand to exercise GraphBuilder).
Graph disjoint_union(const std::vector<Graph>& parts, int extra_isolated) {
  int total = extra_isolated;
  for (const Graph& p : parts) total += p.num_vertices();
  GraphBuilder b(total);
  int base = 0;
  for (const Graph& p : parts) {
    for (auto [u, v] : p.edges()) b.add_edge(base + u, base + v);
    base += p.num_vertices();
  }
  return b.build();
}

Graph windmill(int core, int blades, int blade_size) {
  int n = core + blades * blade_size;
  GraphBuilder b(n);
  for (int i = 0; i < core; ++i) {
    for (int j = i + 1; j < core; ++j) b.add_edge(i, j);
  }
  for (int blade = 0; blade < blades; ++blade) {
    int lo = core + blade * blade_size;
    for (int i = 0; i < blade_size; ++i) {
      for (int j = 0; j < core; ++j) b.add_edge(lo + i, j);
      for (int j = i + 1; j < blade_size; ++j) b.add_edge(lo + i, lo + j);
    }
  }
  return b.build();
}

/// Path power P_n^{w}: edge iff |i - j| <= w. Every consecutive-bag
/// intersection has the same size, so the forest tie-breaks decide all.
Graph band_graph(int n, int w) {
  GraphBuilder b(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n && j <= i + w; ++j) b.add_edge(i, j);
  }
  return b.build();
}

Graph small_component(Rng& rng, int max_n) {
  int pick = static_cast<int>(rng.next_below(6));
  int n = 2 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(std::max(2, max_n - 2))));
  switch (pick) {
    case 0: {
      RandomChordalConfig c;
      c.n = n;
      c.max_clique = 2 + static_cast<int>(rng.next_below(5));
      c.chain_bias = rng.uniform01();
      c.seed = rng.next();
      return random_chordal(c);
    }
    case 1: {
      // Clamp n to k+1, not a constant: (n=3, k=3) used to slip through and
      // trip random_k_tree's precondition on rare seeds.
      int k = 1 + static_cast<int>(rng.next_below(3));
      return random_k_tree(std::max(n, k + 1), k, rng.next());
    }
    case 2:
      return path_graph(n);
    case 3:
      return star_graph(n - 1);
    case 4:
      return complete_graph(std::min(n, 8));
    default:
      return random_tree(n, rng.next());
  }
}

}  // namespace

int num_degenerate_graphs() { return 14; }

Graph degenerate_graph(int which) {
  switch (which) {
    case 0: return GraphBuilder(0).build();
    case 1: return GraphBuilder(1).build();
    case 2: return GraphBuilder(2).build();
    case 3: {
      GraphBuilder b(2);
      b.add_edge(0, 1);
      return b.build();
    }
    case 4: return complete_graph(3);
    case 5: return path_graph(5);
    case 6: return star_graph(1);
    case 7: return star_graph(6);
    case 8: return complete_graph(6);
    case 9: return GraphBuilder(10).build();
    case 10: return caterpillar(3, 2);
    case 11: return broom(4, 3);
    case 12: {
      GraphBuilder b(3);  // one edge plus an isolated vertex
      b.add_edge(0, 1);
      return b.build();
    }
    default:
      return disjoint_union({complete_graph(3), complete_graph(3)}, 0);
  }
}

Graph random_chordal_mix(std::uint64_t seed) {
  Rng rng(seed ^ 0x6d697865645f6731ULL);
  switch (rng.next_below(4)) {
    case 0: {
      RandomChordalConfig c;
      c.n = 20 + static_cast<int>(rng.next_below(180));
      c.max_clique = 2 + static_cast<int>(rng.next_below(7));
      c.chain_bias = rng.uniform01();
      c.seed = rng.next();
      return random_chordal(c);
    }
    case 1: {
      CliqueTreeConfig c;
      c.num_bags = 5 + static_cast<int>(rng.next_below(70));
      c.min_bag_size = 1 + static_cast<int>(rng.next_below(2));
      c.max_bag_size = c.min_bag_size + 1 + static_cast<int>(rng.next_below(4));
      c.max_shared = 1 + static_cast<int>(rng.next_below(3));
      c.shape = static_cast<TreeShape>(rng.next_below(5));
      c.seed = rng.next();
      return random_chordal_from_clique_tree(c).graph;
    }
    case 2:
      return random_k_tree(10 + static_cast<int>(rng.next_below(120)),
                           1 + static_cast<int>(rng.next_below(4)),
                           rng.next());
    default:
      return random_unit_interval(10 + static_cast<int>(rng.next_below(120)),
                                  20.0 + rng.uniform01() * 60.0, rng.next())
          .graph;
  }
}

Graph disconnected_union(std::uint64_t seed) {
  Rng rng(seed ^ 0x756e696f6e5f6732ULL);
  int parts = 2 + static_cast<int>(rng.next_below(4));
  std::vector<Graph> components;
  components.reserve(static_cast<std::size_t>(parts));
  for (int i = 0; i < parts; ++i) components.push_back(small_component(rng, 50));
  int isolated = static_cast<int>(rng.next_below(6));
  return disjoint_union(components, isolated);
}

Graph tie_storm(std::uint64_t seed) {
  Rng rng(seed ^ 0x7469655f73746f72ULL);
  if (rng.next_below(2) == 0) {
    int core = 1 + static_cast<int>(rng.next_below(4));
    int blades = 3 + static_cast<int>(rng.next_below(18));
    int blade_size = 1 + static_cast<int>(rng.next_below(3));
    return windmill(core, blades, blade_size);
  }
  int w = 1 + static_cast<int>(rng.next_below(5));
  int n = (w + 2) + static_cast<int>(rng.next_below(120));
  return band_graph(n, w);
}

Graph near_chordal(std::uint64_t seed) {
  Rng rng(seed ^ 0x63796b6c655f6733ULL);
  Graph base = random_chordal_mix(rng.next());
  int nb = base.num_vertices();
  int cycle = 4 + static_cast<int>(rng.next_below(22));
  GraphBuilder b(nb + cycle);
  for (auto [u, v] : base.edges()) b.add_edge(u, v);
  for (int i = 0; i < cycle; ++i) {
    b.add_edge(nb + i, nb + (i + 1) % cycle);
  }
  // A single bridge to the chordal part adds no chord of the cycle.
  if (nb > 0 && rng.chance(0.5)) {
    b.add_edge(static_cast<int>(rng.next_below(
                   static_cast<std::uint64_t>(nb))),
               nb + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(cycle))));
  }
  return b.build();
}

StreamCase corrupt_stream(std::uint64_t seed) {
  Rng rng(seed ^ 0x73747265616d5f67ULL);
  Graph base = rng.chance(0.2)
                   ? degenerate_graph(static_cast<int>(
                         rng.next_below(static_cast<std::uint64_t>(
                             num_degenerate_graphs()))))
                   : random_chordal_mix(rng.next());
  std::string text = graph_to_string(base);
  long long n = base.num_vertices();
  long long m = static_cast<long long>(base.num_edges());
  std::size_t header_end = text.find('\n');

  StreamCase out;
  out.seed = seed;
  int kind = static_cast<int>(rng.next_below(13));
  switch (kind) {
    case 0:
      out.family = "pristine";
      out.expect = StreamExpect::kMustParse;
      break;
    case 1: {
      // Duplicate one edge line and bump m: the builder deduplicates, so
      // the stream must still parse to the same graph.
      if (m < 1 || m + 1 > n * (n - 1) / 2) {
        out.family = "pristine";
        out.expect = StreamExpect::kMustParse;
        break;
      }
      out.family = "duplicate_edge";
      out.expect = StreamExpect::kMustParse;
      auto edges = base.edges();
      auto [u, v] =
          edges[rng.next_below(static_cast<std::uint64_t>(edges.size()))];
      text = std::to_string(n) + " " + std::to_string(m + 1) +
             text.substr(header_end) + std::to_string(u) + " " +
             std::to_string(v) + "\n";
      break;
    }
    case 2:
      out.family = "negative_n";
      out.expect = StreamExpect::kMustReject;
      text = "-" + std::to_string(1 + rng.next_below(1000)) + " " +
             std::to_string(m) + text.substr(header_end);
      break;
    case 3:
      out.family = "negative_m";
      out.expect = StreamExpect::kMustReject;
      text = std::to_string(n) + " -" + std::to_string(1 + rng.next_below(1000)) +
             text.substr(header_end);
      break;
    case 4:
      out.family = "absurd_m";
      out.expect = StreamExpect::kMustReject;
      text = std::to_string(n) + " " +
             std::to_string(n * (n - 1) / 2 + 1 +
                            static_cast<long long>(rng.next_below(1 << 20))) +
             text.substr(header_end);
      break;
    case 5:
      out.family = "overflow_n";
      out.expect = StreamExpect::kMustReject;
      text = std::to_string(3000000000LL + static_cast<long long>(
                                               rng.next_below(1ULL << 40))) +
             " 0\n";
      break;
    case 6: {
      if (m < 1) {
        out.family = "pristine";
        out.expect = StreamExpect::kMustParse;
        break;
      }
      out.family = "oob_endpoint";
      out.expect = StreamExpect::kMustReject;
      auto edges = base.edges();
      auto [u, v] =
          edges[rng.next_below(static_cast<std::uint64_t>(edges.size()))];
      std::string needle =
          std::to_string(u) + " " + std::to_string(v) + "\n";
      std::string repl = std::to_string(u) + " " +
                         std::to_string(n + static_cast<long long>(
                                                rng.next_below(100))) +
                         "\n";
      text.replace(text.find(needle, header_end), needle.size(), repl);
      break;
    }
    case 7: {
      if (m < 1) {
        out.family = "pristine";
        out.expect = StreamExpect::kMustParse;
        break;
      }
      out.family = "negative_endpoint";
      out.expect = StreamExpect::kMustReject;
      auto edges = base.edges();
      auto [u, v] =
          edges[rng.next_below(static_cast<std::uint64_t>(edges.size()))];
      std::string needle =
          std::to_string(u) + " " + std::to_string(v) + "\n";
      std::string repl =
          "-" + std::to_string(1 + rng.next_below(50)) + " " +
          std::to_string(v) + "\n";
      text.replace(text.find(needle, header_end), needle.size(), repl);
      break;
    }
    case 8: {
      if (n < 1 || m + 1 > n * (n - 1) / 2) {
        out.family = "pristine";
        out.expect = StreamExpect::kMustParse;
        break;
      }
      out.family = "self_loop";
      out.expect = StreamExpect::kMustReject;
      long long v = static_cast<long long>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      text = std::to_string(n) + " " + std::to_string(m + 1) +
             text.substr(header_end) + std::to_string(v) + " " +
             std::to_string(v) + "\n";
      break;
    }
    case 9: {
      out.family = "truncated";
      out.expect = StreamExpect::kNoCrash;
      std::size_t cut = rng.next_below(
          static_cast<std::uint64_t>(text.size()) + 1);
      text.resize(cut);
      break;
    }
    case 10: {
      out.family = "garbage_token";
      out.expect = StreamExpect::kNoCrash;
      static const char* kJunk[] = {"x&", "NaN", "0.5", "1e99", "--", "0x1f"};
      std::size_t pos = rng.next_below(
          static_cast<std::uint64_t>(text.size()) + 1);
      text.insert(pos, kJunk[rng.next_below(6)]);
      break;
    }
    case 11: {
      out.family = "binary_noise";
      out.expect = StreamExpect::kNoCrash;
      int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int i = 0; i < flips && !text.empty(); ++i) {
        text[rng.next_below(static_cast<std::uint64_t>(text.size()))] =
            static_cast<char>(rng.next_below(256));
      }
      break;
    }
    default: {
      // Token streams ignore line structure: flattening every newline to a
      // space must parse to the identical graph.
      out.family = "whitespace_shuffle";
      out.expect = StreamExpect::kMustParse;
      for (char& c : text) {
        if (c == '\n' && rng.chance(0.7)) c = ' ';
      }
      break;
    }
  }
  out.name = out.family + "#" + std::to_string(seed);
  out.text = std::move(text);
  return out;
}

Corpus build_corpus(const CorpusConfig& config) {
  Corpus corpus;
  std::uint64_t state = config.seed;

  for (int i = 0; i < num_degenerate_graphs(); ++i) {
    GraphCase gc;
    gc.family = "degenerate";
    gc.seed = static_cast<std::uint64_t>(i);
    gc.name = "degenerate#" + std::to_string(i);
    gc.graph = degenerate_graph(i);
    corpus.graphs.push_back(std::move(gc));
  }

  struct Family {
    const char* name;
    Graph (*make)(std::uint64_t);
    bool chordal;
  };
  const Family families[] = {
      {"chordal_mix", &random_chordal_mix, true},
      {"union", &disconnected_union, true},
      {"tie_storm", &tie_storm, true},
      {"near_chordal", &near_chordal, false},
  };
  for (const Family& family : families) {
    for (int i = 0; i < config.per_graph_family; ++i) {
      std::uint64_t seed = splitmix64(state);
      GraphCase gc;
      gc.family = family.name;
      gc.seed = seed;
      gc.name = std::string(family.name) + "#" + std::to_string(seed);
      gc.graph = family.make(seed);
      gc.chordal = family.chordal;
      corpus.graphs.push_back(std::move(gc));
    }
  }

  corpus.streams.reserve(static_cast<std::size_t>(config.num_streams));
  for (int i = 0; i < config.num_streams; ++i) {
    corpus.streams.push_back(corrupt_stream(splitmix64(state)));
  }

  corpus.schedules = build_update_schedules(splitmix64(state),
                                            config.num_schedules);
  return corpus;
}

std::vector<ScheduleCase> build_update_schedules(std::uint64_t seed,
                                                 int count) {
  std::vector<ScheduleCase> schedules;
  schedules.reserve(static_cast<std::size_t>(std::max(count, 0)));
  std::uint64_t state = seed ^ 0x7363686564756c65ULL;  // "schedule"
  for (int i = 0; i < count; ++i) {
    std::uint64_t case_seed = splitmix64(state);
    Rng rng(case_seed);
    ScheduleCase sc;
    sc.seed = case_seed;
    sc.name = "schedule#" + std::to_string(case_seed);
    // Small bases: the audit recomputes every derived structure after every
    // step across the whole execution matrix, so per-case cost must stay
    // bounded. Shapes rotate through the generator families plus the empty
    // and near-empty degenerate corners.
    switch (rng.next_below(5)) {
      case 0: {
        RandomChordalConfig c;
        c.n = 8 + static_cast<int>(rng.next_below(40));
        c.max_clique = 2 + static_cast<int>(rng.next_below(5));
        c.chain_bias = rng.uniform01();
        c.seed = rng.next();
        sc.base = random_chordal(c);
        break;
      }
      case 1:
        sc.base = random_k_tree(6 + static_cast<int>(rng.next_below(36)),
                                1 + static_cast<int>(rng.next_below(3)),
                                rng.next());
        break;
      case 2:
        sc.base = random_unit_interval(6 + static_cast<int>(rng.next_below(36)),
                                       6.0 + rng.uniform01() * 14.0,
                                       rng.next())
                      .graph;
        break;
      case 3:
        sc.base = degenerate_graph(static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(num_degenerate_graphs()))));
        break;
      default:
        sc.base = disconnected_union(rng.next());
        break;
    }
    sc.steps = 10 + static_cast<int>(rng.next_below(15));
    schedules.push_back(std::move(sc));
  }
  return schedules;
}

}  // namespace chordal::audit
