// Structured, seeded input fuzzers for the adversarial-hardening harness.
//
// Each family produces inputs the rest of the library historically trusted
// but was never tested against: degenerate graphs (n = 0/1, isolated
// vertices), disconnected unions of heterogeneous chordal components,
// adversarial tie storms (many clique-intersection weights equal, so every
// spanning-forest tie-break fires), near-chordal graphs with one long
// induced cycle (drivers must reject them cleanly, not crash), and
// corrupted read_graph byte streams. All families are pure functions of a
// 64-bit seed, so every corpus entry replays exactly from its printed
// (family, seed) pair.
//
// Motivated by Hebert-Johnson et al. (arXiv:2308.09703): random chordal
// inputs are a principled workload, not an afterthought - the graph
// families here layer mutation structure on the existing generators rather
// than inventing a parallel generator stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::audit {

// ---------------------------------------------------------------------------
// Graph-shaped fuzz cases
// ---------------------------------------------------------------------------

/// One graph workload plus the provenance needed to replay it.
struct GraphCase {
  std::string family;  // "degenerate", "chordal_mix", "union", ...
  std::string name;    // unique corpus label, embeds the seed
  std::uint64_t seed = 0;
  Graph graph;
  /// Whether the drivers must accept the input (true) or reject it with a
  /// typed exception (false: the graph is intentionally non-chordal).
  bool chordal = true;
};

/// Fixed catalogue of degenerate shapes: empty graph, single vertex,
/// isolated vertices, single edge, tiny cliques/stars/paths. `which` in
/// [0, num_degenerate_graphs()).
Graph degenerate_graph(int which);
int num_degenerate_graphs();

/// Random draw from the existing chordal generator families (incremental
/// chordal, prescribed clique trees of every shape, k-trees, interval-like
/// chains) with randomized parameters - the "plain" corpus backbone.
Graph random_chordal_mix(std::uint64_t seed);

/// Disconnected union: 2-5 heterogeneous chordal components plus a sprinkle
/// of isolated vertices, exercising every per-component code path.
Graph disconnected_union(std::uint64_t seed);

/// Adversarial tie storm: a generalized windmill (many equal-size cliques
/// sharing one common core) optionally chained, so *every* intersection
/// weight in W_G ties and the deterministic (weight, word, word) order does
/// all the work.
Graph tie_storm(std::uint64_t seed);

/// Near-chordal adversary: a random chordal graph plus one long induced
/// (chordless) cycle, optionally bridged to the chordal part by a single
/// edge (which creates no chord). Drivers must throw, never crash or hang.
Graph near_chordal(std::uint64_t seed);

// ---------------------------------------------------------------------------
// Dynamic update schedules
// ---------------------------------------------------------------------------

/// One seeded update schedule for the dynamic layer: a small chordal base
/// plus a step budget. The ops themselves are drawn inside
/// run_update_schedule_audit from the schedule's seed (they depend on the
/// evolving graph state, so they cannot be materialized up front), making
/// the whole schedule a pure function of (base, seed, steps) - replayable
/// across every execution config.
struct ScheduleCase {
  std::string name;
  std::uint64_t seed = 0;
  Graph base;
  int steps = 0;
};

/// Deterministic batch of update-schedule cases over small mixed chordal
/// bases (incremental chordal, clique trees, k-trees, interval chains, and
/// the degenerate catalogue's empty/tiny shapes).
std::vector<ScheduleCase> build_update_schedules(std::uint64_t seed,
                                                 int count);

// ---------------------------------------------------------------------------
// Corrupted byte streams for read_graph
// ---------------------------------------------------------------------------

enum class StreamExpect {
  kMustParse,   // well-formed: must parse and canonically round-trip
  kMustReject,  // malformed: must throw a typed std::exception
  kNoCrash,     // ambiguous mutation: either outcome, but never a crash
};

struct StreamCase {
  std::string family;  // mutation kind, e.g. "negative_m", "truncated"
  std::string name;
  std::uint64_t seed = 0;
  std::string text;
  StreamExpect expect = StreamExpect::kNoCrash;
};

/// One corrupted (or pristine) serialized-graph byte stream. Mutations
/// include: negative/overflowing n, negative or absurd m, out-of-range and
/// negative endpoints, self-loops, duplicated edge lines (legal:
/// deduplicated), truncation at a random byte, token garbage, and header
/// swaps.
StreamCase corrupt_stream(std::uint64_t seed);

// ---------------------------------------------------------------------------
// Pinned-seed corpus
// ---------------------------------------------------------------------------

struct Corpus {
  std::vector<GraphCase> graphs;
  std::vector<StreamCase> streams;
  std::vector<ScheduleCase> schedules;
};

struct CorpusConfig {
  std::uint64_t seed = 0xC0FFEE;
  /// Seeded cases per random graph family (the degenerate catalogue is
  /// always fully included on top).
  int per_graph_family = 25;
  int num_streams = 400;
  int num_schedules = 500;
};

/// Deterministic corpus: every case's name embeds its family and seed for
/// single-case replay. Size >= 4 * per_graph_family + catalogue +
/// num_streams.
Corpus build_corpus(const CorpusConfig& config);

}  // namespace chordal::audit
