#include "audit/auditors.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "baselines/baselines.hpp"
#include "core/checks.hpp"
#include "core/local_decision.hpp"
#include "support/cachectl.hpp"
#include "support/parallel.hpp"
#include "support/union_find.hpp"

namespace chordal::audit {

namespace {

[[noreturn]] void fail(const std::string& claim, const std::string& witness) {
  throw AuditFailure("audit: " + claim + ": " + witness);
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Runs a core::require_* style check, rewrapping its std::logic_error as
/// AuditFailure so every violation surfaces under the one documented type.
template <typename Fn>
void check_as_audit(const std::string& claim, Fn&& fn) {
  try {
    fn();
  } catch (const std::logic_error& e) {
    throw AuditFailure("audit: " + claim + ": " + e.what());
  }
}

}  // namespace

void audit_coloring(const Graph& g, const core::MvcResult& r) {
  int n = g.num_vertices();
  if (static_cast<int>(r.colors.size()) != n) {
    fail("coloring covers every vertex",
         "colors.size() = " + std::to_string(r.colors.size()) + ", n = " +
             std::to_string(n));
  }
  check_as_audit("proper coloring",
                 [&] { core::require_proper_coloring(g, r.colors); });
  if (core::count_colors(r.colors) != r.num_colors) {
    fail("num_colors matches distinct colors used",
         "reported " + std::to_string(r.num_colors) + ", counted " +
             std::to_string(core::count_colors(r.colors)));
  }
  int chi = baselines::chromatic_number_chordal(g);
  if (r.omega != chi) {
    fail("omega equals the exact chromatic number (chordal: chi == omega)",
         "reported omega " + std::to_string(r.omega) + ", exact chi " +
             std::to_string(chi));
  }
  if (n > 0 && r.num_colors < chi) {
    fail("coloring uses at least chi colors",
         std::to_string(r.num_colors) + " < " + std::to_string(chi));
  }
  if (r.k < 2) {
    fail("k = max(2, ceil(2/eps))", "k = " + std::to_string(r.k));
  }
  // Theorem 3 as implemented: (1 + 1/k)-approximation plus one color.
  int budget = chi + chi / r.k + 1;
  if (r.num_colors > budget) {
    fail("Theorem 3 color bound omega + omega/k + 1",
         std::to_string(r.num_colors) + " > " + std::to_string(budget) +
             " (omega " + std::to_string(chi) + ", k " + std::to_string(r.k) +
             ")");
  }
  if (r.palette_violations != 0) {
    fail("Lemma 9/10 palette tripwire",
         std::to_string(r.palette_violations) + " violations");
  }
  if (r.rounds < 0 || r.pruning_rounds < 0 || r.coloring_rounds < 0 ||
      r.correction_rounds < 0) {
    fail("round ledger is non-negative", "negative phase total");
  }
}

void audit_mis(const Graph& g, const core::MisResult& r, double eps) {
  check_as_audit("independent set",
                 [&] { core::require_independent_set(g, r.chosen); });
  if (!std::is_sorted(r.chosen.begin(), r.chosen.end())) {
    fail("MIS output is sorted", "unsorted chosen list");
  }
  for (int v : r.chosen) {
    if (v < 0 || v >= g.num_vertices()) {
      fail("MIS vertices are in range", "vertex " + std::to_string(v));
    }
  }
  int alpha = baselines::independence_number_chordal(g);
  double scaled = (1.0 + eps) * static_cast<double>(r.chosen.size());
  if (scaled < static_cast<double>(alpha)) {
    fail("Theorem 7 size bound (1 + eps) * |I| >= alpha",
         "|I| = " + std::to_string(r.chosen.size()) + ", alpha = " +
             std::to_string(alpha) + ", eps = " + fmt_double(eps));
  }
}

bool is_maximal_independent_set(const Graph& g, std::span<const int> set) {
  if (!core::is_independent_set(g, set)) return false;
  std::vector<char> in_set(static_cast<std::size_t>(g.num_vertices()), 0);
  for (int v : set) in_set[v] = 1;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) continue;
    bool blocked = false;
    for (int u : g.neighbors(v)) blocked = blocked || in_set[u];
    if (!blocked) return false;  // v could be added
  }
  return true;
}

void audit_graph_csr(const Graph& g) {
  const int n = g.num_vertices();
  auto offsets = g.offsets_span();
  if (offsets.size() != static_cast<std::size_t>(n) + 1 || offsets[0] != 0) {
    fail("CSR offsets span [0..n] with offsets[0] == 0",
         "size " + std::to_string(offsets.size()));
  }
  long long slots = 0;
  for (int v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      fail("CSR offsets are monotone", "vertex " + std::to_string(v));
    }
    auto row = g.neighbors(v);
    slots += static_cast<long long>(row.size());
    VertexId prev = -1;
    for (VertexId u : row) {
      if (u < 0 || u >= static_cast<VertexId>(n)) {
        fail("CSR neighbors are in [0, n)", "vertex " + std::to_string(v) +
                                                " slot " + std::to_string(u));
      }
      if (u <= prev) {
        fail("CSR rows are strictly ascending",
             "vertex " + std::to_string(v));
      }
      if (static_cast<int>(u) == v) {
        fail("CSR rows are loop-free", "vertex " + std::to_string(v));
      }
      if (!g.has_edge(static_cast<int>(u), v)) {
        fail("CSR adjacency is symmetric", std::to_string(v) + " -> " +
                                               std::to_string(u) +
                                               " has no mirror");
      }
      prev = u;
    }
  }
  if (slots != 2 * static_cast<long long>(g.num_edges())) {
    fail("edge count equals half the adjacency volume",
         std::to_string(slots) + " slots vs m = " +
             std::to_string(g.num_edges()));
  }
}

void audit_clique_forest(const Graph& g, const CliqueForest& forest) {
  forest.verify(g);  // tree-decomposition axioms + acyclicity
  int nc = forest.num_cliques();
  // Every stored bag is a clique of g... (verify checks edge coverage, the
  // converse direction - no bag may contain a non-adjacent pair).
  for (int c = 0; c < nc; ++c) {
    const auto& bag = forest.clique(c);
    if (!std::is_sorted(bag.begin(), bag.end()) ||
        std::adjacent_find(bag.begin(), bag.end()) != bag.end()) {
      fail("bags are sorted duplicate-free vertex lists",
           "bag " + std::to_string(c));
    }
    for (std::size_t i = 0; i < bag.size(); ++i) {
      for (std::size_t j = i + 1; j < bag.size(); ++j) {
        if (!g.has_edge(bag[i], bag[j])) {
          fail("every bag is a clique of g",
               "bag " + std::to_string(c) + " holds non-adjacent pair (" +
                   std::to_string(bag[i]) + ", " + std::to_string(bag[j]) +
                   ")");
        }
      }
    }
    // ... and maximal: no outside vertex is adjacent to the whole bag.
    if (!bag.empty()) {
      for (int w : g.neighbors(bag[0])) {
        if (std::binary_search(bag.begin(), bag.end(), w)) continue;
        bool dominates = true;
        for (int u : bag) {
          if (u != w && !g.has_edge(u, w)) {
            dominates = false;
            break;
          }
        }
        if (dominates) {
          fail("every bag is a MAXIMAL clique",
               "vertex " + std::to_string(w) + " extends bag " +
                   std::to_string(c));
        }
      }
    }
  }
  // Membership lists are exactly the inverted bag contents.
  std::vector<std::vector<int>> inverted(
      static_cast<std::size_t>(g.num_vertices()));
  for (int c = 0; c < nc; ++c) {
    for (VertexId v : forest.clique(c)) {
      inverted[static_cast<std::size_t>(v)].push_back(c);
    }
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    auto phi = forest.cliques_of(v);
    if (inverted[v].size() != phi.size() ||
        !std::equal(phi.begin(), phi.end(), inverted[v].begin(),
                    [](CliqueId a, int b) { return static_cast<int>(a) == b; })) {
      fail("phi(v) matches bag contents", "vertex " + std::to_string(v));
    }
  }
  // The forest spans every component of the clique intersection graph:
  // cliques sharing a vertex are WCIG-adjacent, so per-vertex membership
  // chains generate exactly the WCIG connectivity.
  UnionFind uf(nc);
  int components = nc;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto family = forest.cliques_of(v);
    for (std::size_t i = 1; i < family.size(); ++i) {
      if (uf.unite(static_cast<int>(family[0]), static_cast<int>(family[i]))) {
        --components;
      }
    }
  }
  auto edges = forest.forest_edges();
  if (static_cast<int>(edges.size()) != nc - components) {
    fail("forest spans the clique intersection graph",
         std::to_string(edges.size()) + " edges for " + std::to_string(nc) +
             " cliques in " + std::to_string(components) + " components");
  }
}

void audit_forest_engine_parity(const CliqueFamily& cliques,
                                int num_graph_vertices) {
  ForestScratch scratch;
  std::vector<WcigEdge> fast;
  max_weight_spanning_forest(cliques, num_graph_vertices, scratch, fast);
  std::vector<WcigEdge> ref =
      max_weight_spanning_forest_reference(cliques, num_graph_vertices);
  auto describe = [](const std::vector<WcigEdge>& edges) {
    std::ostringstream out;
    for (const auto& e : edges) {
      out << '(' << e.a << ',' << e.b << ',' << e.weight << ')';
    }
    return out.str();
  };
  if (fast.size() != ref.size() ||
      !std::equal(fast.begin(), fast.end(), ref.begin(),
                  [](const WcigEdge& x, const WcigEdge& y) {
                    return x.a == y.a && x.b == y.b && x.weight == y.weight;
                  })) {
    fail("Theorem 2 unique forest: engine == reference",
         "fast {" + describe(fast) + "} vs ref {" + describe(ref) + "}");
  }
}

void audit_network_conservation(const obs::Registry& reg) {
  auto counter_value = [&reg](const char* name) -> std::int64_t {
    const obs::Counter* c = reg.find_counter(name);
    return c == nullptr ? 0 : c->value();
  };
  const obs::Histogram* round_messages =
      reg.find_histogram("net.round_messages");
  const obs::Histogram* round_words =
      reg.find_histogram("net.round_payload_words");
  std::int64_t messages = counter_value("net.messages");
  std::int64_t words = counter_value("net.payload_words");
  std::int64_t rounds = counter_value("net.rounds");
  auto hist_sum = [](const obs::Histogram* h) -> std::int64_t {
    return h == nullptr ? 0 : static_cast<std::int64_t>(h->sum());
  };
  auto hist_count = [](const obs::Histogram* h) -> std::int64_t {
    return h == nullptr ? 0 : static_cast<std::int64_t>(h->count());
  };
  if (messages != hist_sum(round_messages)) {
    fail("conservation: sum of per-round message charges == net.messages",
         "counter " + std::to_string(messages) + ", round sum " +
             std::to_string(hist_sum(round_messages)));
  }
  if (words != hist_sum(round_words)) {
    fail("conservation: sum of per-round payload charges == "
         "net.payload_words",
         "counter " + std::to_string(words) + ", round sum " +
             std::to_string(hist_sum(round_words)));
  }
  if (rounds != hist_count(round_messages)) {
    fail("conservation: one round sample per deliver()",
         "counter " + std::to_string(rounds) + ", samples " +
             std::to_string(hist_count(round_messages)));
  }
}

void audit_rejects_non_chordal(const Graph& g) {
  auto expect_invalid = [](const char* what, auto&& fn) {
    try {
      fn();
    } catch (const std::invalid_argument&) {
      return;  // the contract: typed rejection
    } catch (const std::exception& e) {
      fail("non-chordal input rejected with std::invalid_argument",
           std::string(what) + " threw a different exception: " + e.what());
    }
    fail("non-chordal input rejected with std::invalid_argument",
         std::string(what) + " accepted the input");
  };
  expect_invalid("mvc_chordal", [&g] { core::mvc_chordal(g); });
  expect_invalid("mis_chordal", [&g] { core::mis_chordal(g); });
  expect_invalid("CliqueForest::build", [&g] { CliqueForest::build(g); });
  expect_invalid("chromatic_number_chordal",
                 [&g] { baselines::chromatic_number_chordal(g); });
  expect_invalid("maximum_independent_set_chordal",
                 [&g] { baselines::maximum_independent_set_chordal(g); });
}

std::string DriverAuditConfig::label() const {
  return "threads=" + std::to_string(threads) +
         " cache=" + (cache ? "on" : "off") +
         " engine=" + (forest_reference ? "ref" : "fast");
}

bool operator==(const DriverAuditResult& a, const DriverAuditResult& b) {
  return a.colors == b.colors && a.num_colors == b.num_colors &&
         a.mis == b.mis && a.mvc_rounds == b.mvc_rounds &&
         a.mis_rounds == b.mis_rounds && a.num_layers == b.num_layers &&
         a.telemetry == b.telemetry;
}

namespace {

bool is_effectiveness_metric(const std::string& name) {
  return name.rfind("cache.", 0) == 0 || name.rfind("engine.", 0) == 0;
}

void signature_spans(const obs::SpanNode& node, std::ostringstream& out,
                     int depth) {
  out << depth << '|' << node.name << "|r" << node.rounds << "|m"
      << node.messages << "|w" << node.payload_words;
  for (const auto& [key, value] : node.notes) {
    out << '|' << key << '=' << fmt_double(value);
  }
  out << '\n';
  for (const auto& child : node.children) {
    signature_spans(*child, out, depth + 1);
  }
}

/// Everything deterministic in the registry: counters, gauges, histogram
/// sample moments, and the span tree with LOCAL-model charges - excluding
/// wall times and cache.*/engine.* effectiveness metrics, exactly the
/// scrub rule of scripts/bench_diff.py --parity.
std::string telemetry_signature(const obs::Registry& reg) {
  std::ostringstream out;
  for (const auto& [name, counter] : reg.counters()) {
    if (is_effectiveness_metric(name)) continue;
    out << "c|" << name << '|' << counter.value() << '\n';
  }
  for (const auto& [name, gauge] : reg.gauges()) {
    if (is_effectiveness_metric(name)) continue;
    out << "g|" << name << '|' << fmt_double(gauge.value()) << '\n';
  }
  for (const auto& [name, hist] : reg.histograms()) {
    if (is_effectiveness_metric(name)) continue;
    out << "h|" << name << '|' << hist.count();
    if (hist.count() > 0) {
      out << '|' << fmt_double(hist.sum()) << '|' << fmt_double(hist.min())
          << '|' << fmt_double(hist.max()) << '|' << fmt_double(hist.p50())
          << '|' << fmt_double(hist.p95());
    }
    out << '\n';
  }
  signature_spans(reg.span_root(), out, 0);
  return out.str();
}

/// Restores the global execution knobs on scope exit (environment-default
/// semantics, mirroring how the parity tests and benches toggle them).
struct KnobGuard {
  ~KnobGuard() {
    support::set_num_threads(0);
    support::set_cache_enabled(-1);
    support::set_forest_reference(-1);
  }
};

}  // namespace

DriverAuditResult run_driver_audit(const Graph& g,
                                   const DriverAuditConfig& config) {
  KnobGuard restore;
  support::set_num_threads(config.threads);
  support::set_cache_enabled(config.cache ? 1 : 0);
  support::set_forest_reference(config.forest_reference ? 1 : 0);

  audit_graph_csr(g);

  DriverAuditResult out;
  obs::Registry reg;
  {
    obs::ScopedRegistry scope(reg);

    core::MvcResult mvc = core::mvc_chordal(g, {.eps = config.eps_color});
    audit_coloring(g, mvc);

    if (config.check_per_node_pruning) {
      // Lemma 12: every layer decision derived from the owning node's own
      // ball must reproduce the global peeling, hence the exact coloring.
      core::MvcResult per_node = core::mvc_chordal(
          g, {.eps = config.eps_color,
              .pruning = core::PruningMode::kPerNodeLocalViews});
      if (per_node.colors != mvc.colors ||
          per_node.num_layers != mvc.num_layers) {
        fail("Lemma 12: per-node local decisions == global peeling",
             "colorings diverge on " + g.summary());
      }
    }

    core::MisResult mis = core::mis_chordal(g, {.eps = config.eps_mis});
    audit_mis(g, mis, config.eps_mis);

    baselines::DPlusOneResult dp =
        baselines::dplus1_coloring(g, config.dplus1_seed);
    check_as_audit("(Delta+1) greedy is proper",
                   [&] { core::require_proper_coloring(g, dp.colors); });
    if (dp.num_colors > g.max_degree() + 1) {
      fail("(Delta+1) greedy stays within Delta + 1 colors",
           std::to_string(dp.num_colors) + " > " +
               std::to_string(g.max_degree() + 1));
    }

    CliqueForest forest = CliqueForest::build(g);
    audit_clique_forest(g, forest);
    audit_forest_engine_parity(forest.cliques(), g.num_vertices());

    std::vector<int> exact_coloring = baselines::optimal_coloring_chordal(g);
    check_as_audit("exact baseline coloring is proper", [&] {
      core::require_proper_coloring(g, exact_coloring);
    });
    if (core::count_colors(exact_coloring) != mvc.omega) {
      fail("exact baseline uses exactly omega colors",
           std::to_string(core::count_colors(exact_coloring)) + " != " +
               std::to_string(mvc.omega));
    }
    std::vector<int> exact_mis = baselines::maximum_independent_set_chordal(g);
    if (!is_maximal_independent_set(g, exact_mis)) {
      fail("exact MIS baseline is a maximal independent set", g.summary());
    }
    if (exact_mis.size() < mis.chosen.size()) {
      fail("approximate MIS never beats the exact optimum",
           std::to_string(mis.chosen.size()) + " > " +
               std::to_string(exact_mis.size()));
    }

    out.colors = std::move(mvc.colors);
    out.num_colors = mvc.num_colors;
    out.mis = std::move(mis.chosen);
    out.mvc_rounds = mvc.rounds;
    out.mis_rounds = mis.rounds;
    out.num_layers = mvc.num_layers;
  }
  audit_network_conservation(reg);
  out.telemetry = telemetry_signature(reg);
  return out;
}

int run_driver_audit_matrix(const Graph& g, double eps_color, double eps_mis,
                            bool check_per_node_pruning) {
  DriverAuditResult baseline;
  std::string baseline_label;
  int configs = 0;
  for (int threads : {1, 8}) {
    for (bool cache : {true, false}) {
      for (bool reference : {false, true}) {
        DriverAuditConfig config;
        config.threads = threads;
        config.cache = cache;
        config.forest_reference = reference;
        config.eps_color = eps_color;
        config.eps_mis = eps_mis;
        config.check_per_node_pruning = check_per_node_pruning;
        DriverAuditResult result = run_driver_audit(g, config);
        if (configs == 0) {
          baseline = std::move(result);
          baseline_label = config.label();
        } else if (!(result == baseline)) {
          fail("differential parity across the execution matrix",
               config.label() + " diverges from " + baseline_label + " on " +
                   g.summary());
        }
        ++configs;
      }
    }
  }
  return configs;
}

}  // namespace chordal::audit
