#include <algorithm>

#include "baselines/baselines.hpp"
#include "graph/peo.hpp"

namespace chordal::baselines {

std::vector<int> optimal_coloring_chordal(const Graph& g) {
  EliminationOrder peo = peo_or_throw(g);
  std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
  // Reverse elimination order: when v is colored, its already-colored
  // neighbors form a clique (they are v's later neighbors), so the smallest
  // free color is < omega.
  for (auto it = peo.order.rbegin(); it != peo.order.rend(); ++it) {
    int v = *it;
    std::vector<char> used;
    for (int w : g.neighbors(v)) {
      if (colors[w] >= 0) {
        if (colors[w] >= static_cast<int>(used.size())) {
          used.resize(static_cast<std::size_t>(colors[w]) + 1, 0);
        }
        used[colors[w]] = 1;
      }
    }
    int c = 0;
    while (c < static_cast<int>(used.size()) && used[c]) ++c;
    colors[v] = c;
  }
  return colors;
}

int chromatic_number_chordal(const Graph& g) {
  auto colors = optimal_coloring_chordal(g);
  int max_color = -1;
  for (int c : colors) max_color = std::max(max_color, c);
  return max_color + 1;
}

}  // namespace chordal::baselines
