#include <algorithm>

#include "baselines/baselines.hpp"
#include "graph/peo.hpp"

namespace chordal::baselines {

std::vector<int> maximum_independent_set_chordal(const Graph& g) {
  EliminationOrder peo = peo_or_throw(g);
  std::vector<char> blocked(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<int> chosen;
  // Processing the elimination order front-to-back always meets a vertex
  // that is simplicial in the remaining graph; taking every unblocked one
  // is exact on chordal graphs (Gavril).
  for (int v : peo.order) {
    if (blocked[v]) continue;
    chosen.push_back(v);
    for (int w : g.neighbors(v)) blocked[w] = 1;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

int independence_number_chordal(const Graph& g) {
  return static_cast<int>(maximum_independent_set_chordal(g).size());
}

}  // namespace chordal::baselines
