// Centralized exact baselines (cheap on chordal graphs) and the classic
// distributed (Delta+1) greedy - the comparison points for experiment E9
// and the ground truth for every approximation-ratio measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::baselines {

/// Optimal coloring of a chordal graph: greedy along the reverse perfect
/// elimination ordering uses exactly chi(G) = omega(G) colors.
std::vector<int> optimal_coloring_chordal(const Graph& g);

/// chi(G) of a chordal graph (== omega).
int chromatic_number_chordal(const Graph& g);

/// Exact maximum independent set of a chordal graph: greedy along the
/// perfect elimination ordering (take every unblocked simplicial vertex).
std::vector<int> maximum_independent_set_chordal(const Graph& g);

/// alpha(G) of a chordal graph.
int independence_number_chordal(const Graph& g);

struct DPlusOneResult {
  std::vector<int> colors;
  int num_colors = 0;
  int rounds = 0;  // genuine message-passing rounds
};

/// Distributed (Delta+1) coloring with random priorities over the Network
/// engine; terminates in O(log n) phases with high probability.
DPlusOneResult dplus1_coloring(const Graph& g, std::uint64_t seed);

}  // namespace chordal::baselines
