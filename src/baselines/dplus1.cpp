#include <algorithm>

#include "baselines/baselines.hpp"
#include "local/network.hpp"
#include "obs/span.hpp"
#include "support/rng.hpp"

namespace chordal::baselines {

DPlusOneResult dplus1_coloring(const Graph& g, std::uint64_t seed) {
  const int n = g.num_vertices();
  obs::Span span("(Delta+1) greedy coloring");
  local::Network net(g);
  Rng rng(seed);
  std::vector<int> colors(static_cast<std::size_t>(n), -1);
  std::vector<std::uint64_t> priority(static_cast<std::size_t>(n), 0);

  auto uncolored_remain = [&] {
    return std::any_of(colors.begin(), colors.end(),
                       [](int c) { return c < 0; });
  };

  while (uncolored_remain()) {
    // Round A: uncolored nodes draw and broadcast (priority, id).
    for (int v = 0; v < n; ++v) {
      if (colors[v] >= 0) continue;
      priority[v] = rng.next();
      net.broadcast(v, {static_cast<std::int64_t>(priority[v] >> 1), v});
    }
    net.deliver();
    // Round B: local priority winners pick the smallest free color and
    // announce it.
    std::vector<int> newly(static_cast<std::size_t>(n), -1);
    for (int v = 0; v < n; ++v) {
      if (colors[v] >= 0) continue;
      bool winner = true;
      for (const auto& msg : net.inbox(v)) {
        auto their = static_cast<std::uint64_t>(msg.data[0]);
        auto mine = priority[v] >> 1;
        if (their > mine || (their == mine && msg.data[1] > v)) {
          winner = false;
        }
      }
      if (!winner) continue;
      std::vector<char> used(g.neighbors(v).size() + 1, 0);
      for (int w : g.neighbors(v)) {
        if (colors[w] >= 0 && colors[w] < static_cast<int>(used.size())) {
          used[colors[w]] = 1;
        }
      }
      int c = 0;
      while (used[c]) ++c;
      newly[v] = c;
      net.broadcast(v, {c});
    }
    net.deliver();
    // Colors become visible to neighbors next phase via the `colors` array;
    // the announcement round above carried them as messages.
    for (int v = 0; v < n; ++v) {
      if (newly[v] >= 0) colors[v] = newly[v];
    }
  }
  DPlusOneResult result;
  result.colors = std::move(colors);
  result.rounds = net.rounds();
  int max_color = -1;
  for (int c : result.colors) max_color = std::max(max_color, c);
  result.num_colors = max_color + 1;
  span.note("colors", result.num_colors);
  return result;
}

}  // namespace chordal::baselines
