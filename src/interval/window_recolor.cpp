#include "interval/window_recolor.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace chordal::interval {

namespace {

struct Solver {
  const PathIntervals& rep;
  const std::vector<int>& fixed;
  int palette;
  std::int64_t budget;
  RecolorStats* stats;
  int rotation;  // restart index: rotates value-ordering tie-breaks

  std::vector<std::vector<int>> neighbors;  // local indices
  std::vector<int> assignment;              // -1 = unassigned
  // Free vertices, most-constrained-first: ascending position gap to the
  // nearest fixed vertex (boundary regions first, the freer middle last),
  // then by lo.
  std::vector<std::size_t> free_order;
  // Per color: lo positions of fixed vertices using it (sorted), for the
  // "stays free longest" value-ordering heuristic.
  std::vector<std::vector<int>> fixed_use;

  bool exhausted = false;

  explicit Solver(const RecolorProblem& p, RecolorStats* s,
                  std::int64_t node_budget, int restart)
      : rep(p.rep), fixed(p.fixed), palette(p.palette),
        budget(node_budget), stats(s), rotation(restart) {
    const std::size_t n = rep.vertices.size();
    if (fixed.size() != n) {
      throw std::invalid_argument("extend_coloring: fixed size mismatch");
    }
    neighbors.assign(n, {});
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [this](std::size_t x, std::size_t y) {
                return rep.lo[x] < rep.lo[y];
              });
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rep.lo[order[j]] > rep.hi[order[i]]) break;
        neighbors[order[i]].push_back(static_cast<int>(order[j]));
        neighbors[order[j]].push_back(static_cast<int>(order[i]));
      }
    }
    assignment.assign(n, -1);
    fixed_use.assign(static_cast<std::size_t>(palette), {});
    for (std::size_t v = 0; v < n; ++v) {
      if (fixed[v] >= 0) {
        if (fixed[v] >= palette) {
          throw std::invalid_argument(
              "extend_coloring: fixed color outside palette");
        }
        assignment[v] = fixed[v];
        fixed_use[fixed[v]].push_back(rep.lo[v]);
      } else {
        free_order.push_back(v);
      }
    }
    for (auto& uses : fixed_use) std::sort(uses.begin(), uses.end());
    if (rotation == 0) {
      // Fast path: plain left-to-right order; solves the vast majority of
      // windows greedily.
      std::sort(free_order.begin(), free_order.end(),
                [this](std::size_t x, std::size_t y) {
                  if (rep.lo[x] != rep.lo[y]) return rep.lo[x] < rep.lo[y];
                  return rep.hi[x] < rep.hi[y];
                });
    } else {
      // Restart path: most-constrained-first - ascending position gap to
      // the nearest fixed vertex, so both boundary regions are pinned down
      // before the free middle absorbs the slack.
      std::vector<int> gap(n, 1 << 28);
      std::vector<std::size_t> fixed_list;
      for (std::size_t v = 0; v < n; ++v) {
        if (fixed[v] >= 0) fixed_list.push_back(v);
      }
      for (std::size_t v : free_order) {
        for (std::size_t w : fixed_list) {
          int d = std::max({0, rep.lo[v] - rep.hi[w],
                            rep.lo[w] - rep.hi[v]});
          gap[v] = std::min(gap[v], d);
        }
      }
      std::sort(free_order.begin(), free_order.end(),
                [this, &gap](std::size_t x, std::size_t y) {
                  if (gap[x] != gap[y]) return gap[x] < gap[y];
                  if (rep.lo[x] != rep.lo[y]) return rep.lo[x] < rep.lo[y];
                  return rep.hi[x] < rep.hi[y];
                });
    }
  }

  /// Position of the first fixed use of color c strictly right of hi; large
  /// sentinel when none (the color is "safe forever").
  int next_fixed_use_after(int c, int hi) const {
    const auto& uses = fixed_use[c];
    auto it = std::upper_bound(uses.begin(), uses.end(), hi);
    return it == uses.end() ? rep.num_positions + 1 : *it;
  }

  bool solve(std::size_t idx) {
    if (idx == free_order.size()) return true;
    if (exhausted) return false;
    std::size_t v = free_order[idx];
    // Colors blocked by already-assigned overlapping vertices.
    std::vector<char> blocked(static_cast<std::size_t>(palette), 0);
    for (int u : neighbors[v]) {
      if (assignment[u] >= 0) blocked[assignment[u]] = 1;
    }
    // (-next_use, rotated tie-break, color). Restarts rotate the tie-break
    // so repeated attempts explore different regions deterministically.
    std::vector<std::tuple<int, int, int>> candidates;
    for (int c = 0; c < palette; ++c) {
      if (!blocked[c]) {
        candidates.emplace_back(-next_fixed_use_after(c, rep.hi[v]),
                                (c + rotation * 7) % palette, c);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (auto [key, tie, c] : candidates) {
      (void)key;
      (void)tie;
      if (--budget <= 0) {
        exhausted = true;
        return false;
      }
      if (stats != nullptr) {
        ++stats->backtrack_nodes;
      }
      assignment[v] = c;
      if (solve(idx + 1)) return true;
      assignment[v] = -1;
      if (stats != nullptr) stats->used_backtracking = true;
      if (exhausted) return false;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<int>> extend_coloring(const RecolorProblem& problem,
                                                RecolorStats* stats,
                                                std::int64_t node_budget) {
  if (problem.palette <= 0) {
    throw std::invalid_argument("extend_coloring: empty palette");
  }
  // Deterministic restarts: each attempt rotates the value-ordering
  // tie-break, which is usually enough to escape a thrashing region. The
  // first attempt gets half the budget, the rest share the remainder.
  constexpr int kRestarts = 6;
  for (int attempt = 0; attempt < kRestarts; ++attempt) {
    std::int64_t slice =
        attempt == 0 ? node_budget / 2
                     : node_budget / (2 * (kRestarts - 1));
    Solver solver(problem, stats, std::max<std::int64_t>(slice, 1000),
                  attempt);
    if (attempt == 0) {
      // Validate the precoloring itself before searching.
      const std::size_t n = problem.rep.vertices.size();
      for (std::size_t v = 0; v < n; ++v) {
        if (problem.fixed[v] < 0) continue;
        for (int u : solver.neighbors[v]) {
          if (problem.fixed[u] >= 0 &&
              problem.fixed[u] == problem.fixed[v]) {
            throw std::invalid_argument(
                "extend_coloring: precoloring is not proper");
          }
        }
      }
    }
    if (solver.solve(0)) return solver.assignment;
    if (!solver.exhausted) return std::nullopt;  // proven infeasible
    if (stats != nullptr) stats->used_backtracking = true;
  }
  return std::nullopt;
}

}  // namespace chordal::interval
