// ColIntGraph - deterministic distributed (1 + 1/k)-approximate coloring of
// interval graphs in O(k log* n) rounds, the subroutine the paper adopts
// from Halldorsson & Konrad [21] for the coloring phase of Algorithm 2.
//
// Structure of the stand-in implementation (DESIGN.md substitution #2):
//   1. components of diameter <= 10k are colored optimally from one ball;
//   2. otherwise a distance-(k+6) maximal independent set of anchors is
//      computed (Cole-Vishkin symmetry breaking: the log* n term);
//   3. each anchor's "column" (the clique of intervals crossing the
//      anchor's right endpoint) is colored canonically by vertex id;
//   4. the gaps between consecutive columns are completed by the Lemma 9
//      window solver with palette floor((1 + 1/k) * omega_window) + 1,
//      feasible because columns are >= k+3 apart.
// Output guarantee: at most floor((1 + 1/k) * chi(G)) + 1 colors.
#pragma once

#include <cstdint>
#include <vector>

#include "interval/rep.hpp"

namespace chordal::interval {

struct DistColoringResult {
  std::vector<int> colors;       // per local index of the input model
  int num_colors = 0;            // distinct colors used
  std::int64_t rounds = 0;       // LOCAL rounds (max over components)
  int omega = 0;                 // measured clique number
  int color_bound = 0;           // floor((1+1/k) * omega) + 1
  /// Number of windows where the solver needed a wider palette than the
  /// Lemma 9 bound (should stay 0; tracked as a soundness tripwire).
  int palette_violations = 0;
};

/// Colors the interval model with at most floor((1+1/k) * chi) + 1 colors.
/// Requires k >= 2.
DistColoringResult col_int_graph(const PathIntervals& rep, int k);

}  // namespace chordal::interval
