#include "interval/proper.hpp"

#include <algorithm>

namespace chordal::interval {

std::vector<std::size_t> proper_reduction(const PathIntervals& rep) {
  Graph g = to_graph(rep);
  const int n = g.num_vertices();
  // Closed neighborhoods as sorted lists.
  std::vector<std::vector<int>> closed(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    auto nb = g.neighbors(v);
    closed[v].assign(nb.begin(), nb.end());
    closed[v].insert(
        std::lower_bound(closed[v].begin(), closed[v].end(), v), v);
  }
  std::vector<std::size_t> kept;
  for (int v = 0; v < n; ++v) {
    bool dominated = false;
    for (int u : g.neighbors(v)) {
      if (closed[u].size() >= closed[v].size()) continue;
      if (std::includes(closed[v].begin(), closed[v].end(),
                        closed[u].begin(), closed[u].end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(static_cast<std::size_t>(v));
  }
  return kept;
}

}  // namespace chordal::interval
