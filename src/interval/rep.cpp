#include "interval/rep.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

#include "local/ruling_set.hpp"

namespace chordal::interval {

PathIntervals from_geometry(const std::vector<double>& left,
                            const std::vector<double>& right) {
  if (left.size() != right.size()) {
    throw std::invalid_argument("from_geometry: size mismatch");
  }
  const std::size_t n = left.size();
  // Rank all endpoints; ranks preserve overlap because both maps are
  // monotone. Coordinate ties sort left endpoints first, so closed
  // intervals that merely touch still overlap after ranking.
  std::vector<std::pair<double, std::size_t>> events;
  events.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (right[i] < left[i]) {
      throw std::invalid_argument("from_geometry: inverted interval");
    }
    events.emplace_back(left[i], i);
    events.emplace_back(right[i], i + n);
  }
  std::sort(events.begin(), events.end());
  PathIntervals rep;
  rep.vertices.resize(n);
  std::iota(rep.vertices.begin(), rep.vertices.end(), 0);
  rep.lo.assign(n, 0);
  rep.hi.assign(n, 0);
  for (std::size_t r = 0; r < events.size(); ++r) {
    std::size_t tag = events[r].second;
    if (tag < n) {
      rep.lo[tag] = static_cast<int>(r);
    } else {
      rep.hi[tag - n] = static_cast<int>(r);
    }
  }
  rep.num_positions = static_cast<int>(events.size());
  return rep;
}

CliquePath clique_path_from_geometry(const std::vector<double>& left,
                                     const std::vector<double>& right) {
  if (left.size() != right.size()) {
    throw std::invalid_argument("clique_path_from_geometry: size mismatch");
  }
  const std::size_t n = left.size();
  struct Event {
    double coord;
    bool is_left;
    int vertex;
  };
  std::vector<Event> events;
  events.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (right[i] < left[i]) {
      throw std::invalid_argument("clique_path_from_geometry: inverted");
    }
    events.push_back({left[i], true, static_cast<int>(i)});
    events.push_back({right[i], false, static_cast<int>(i)});
  }
  // Coordinate ties: left endpoints first (closed intervals that touch
  // intersect), consistent with from_geometry.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.coord != b.coord) return a.coord < b.coord;
    if (a.is_left != b.is_left) return a.is_left;
    return a.vertex < b.vertex;
  });

  CliquePath out;
  out.rep.vertices.resize(n);
  std::iota(out.rep.vertices.begin(), out.rep.vertices.end(), 0);
  out.rep.lo.assign(n, -1);
  out.rep.hi.assign(n, -1);

  std::set<int> active;
  bool inserted_since_emit = false;
  auto emit = [&] {
    int index = static_cast<int>(out.cliques.size());
    std::vector<int> clique(active.begin(), active.end());
    for (int v : clique) {
      if (out.rep.lo[v] == -1) out.rep.lo[v] = index;
      out.rep.hi[v] = index;
    }
    out.cliques.push_back(std::move(clique));
    inserted_since_emit = false;
  };
  for (const auto& event : events) {
    if (event.is_left) {
      active.insert(event.vertex);
      inserted_since_emit = true;
    } else {
      // The active set just before the first removal after insertions is a
      // maximal clique (nothing can extend it: anything later starts after
      // this interval ends).
      if (inserted_since_emit) emit();
      active.erase(event.vertex);
    }
  }
  out.rep.num_positions = static_cast<int>(out.cliques.size());
  return out;
}

Graph to_graph(const PathIntervals& rep) {
  const std::size_t n = rep.vertices.size();
  GraphBuilder b(static_cast<int>(n));
  // Sweep by lo; overlap test against later-starting intervals.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    return rep.lo[x] < rep.lo[y];
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rep.lo[order[j]] > rep.hi[order[i]]) break;
      b.add_edge(static_cast<int>(order[i]), static_cast<int>(order[j]));
    }
  }
  return b.build();
}

PathIntervals restrict(const PathIntervals& rep,
                       const std::vector<std::size_t>& keep) {
  PathIntervals out;
  out.num_positions = rep.num_positions;
  for (std::size_t i : keep) {
    out.vertices.push_back(rep.vertices[i]);
    out.lo.push_back(rep.lo[i]);
    out.hi.push_back(rep.hi[i]);
  }
  return out;
}

std::vector<std::vector<std::size_t>> components(const PathIntervals& rep) {
  const std::size_t n = rep.vertices.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    return rep.lo[x] < rep.lo[y];
  });
  std::vector<std::vector<std::size_t>> comps;
  int reach = -1;
  for (std::size_t i : order) {
    if (comps.empty() || rep.lo[i] > reach) {
      comps.emplace_back();
    }
    comps.back().push_back(i);
    reach = std::max(reach, rep.hi[i]);
  }
  for (auto& comp : comps) std::sort(comp.begin(), comp.end());
  return comps;
}

int omega(const PathIntervals& rep) {
  // Sweep counting active intervals; +1 events at lo, -1 after hi.
  std::vector<std::pair<int, int>> events;
  events.reserve(2 * rep.vertices.size());
  for (std::size_t i = 0; i < rep.vertices.size(); ++i) {
    events.emplace_back(rep.lo[i], +1);
    events.emplace_back(rep.hi[i] + 1, -1);
  }
  std::sort(events.begin(), events.end());
  int active = 0, best = 0;
  for (auto [pos, delta] : events) {
    active += delta;
    best = std::max(best, active);
  }
  return best;
}

int diameter(const PathIntervals& rep) {
  const std::size_t n = rep.vertices.size();
  if (n <= 1) return 0;
  std::size_t a = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (rep.hi[i] < rep.hi[a] ||
        (rep.hi[i] == rep.hi[a] && rep.lo[i] < rep.lo[a])) {
      a = i;
    }
  }
  auto dist = chordal::local::interval_distances_from(rep, a);
  std::size_t far = a;
  for (std::size_t i = 0; i < n; ++i) {
    if (dist[i] == -1) {
      throw std::invalid_argument("interval diameter: disconnected model");
    }
    if (dist[i] > dist[far]) far = i;
  }
  auto dist2 = chordal::local::interval_distances_from(rep, far);
  int best = 0;
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, dist2[i]);
  return best;
}

}  // namespace chordal::interval
