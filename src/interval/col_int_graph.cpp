#include "interval/col_int_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "interval/offline.hpp"
#include "interval/window_recolor.hpp"
#include "local/ruling_set.hpp"

namespace chordal::interval {

namespace {

/// Colors one connected component; returns rounds spent and updates
/// `colors` (indexed by the component's local indices within `rep`).
std::int64_t color_component(const PathIntervals& rep,
                             const std::vector<std::size_t>& comp, int k,
                             std::vector<int>& colors, int* violations) {
  PathIntervals sub = restrict(rep, comp);
  const std::size_t n = comp.size();
  int w = omega(sub);

  int diam = diameter(sub);
  if (diam <= 10 * k) {
    // The whole component fits in one O(k) ball: color optimally.
    auto local = color_optimal(sub);
    for (std::size_t i = 0; i < n; ++i) colors[comp[i]] = local[i];
    return diam + 1;
  }

  const int spacing = k + 6;
  auto ruling = chordal::local::distance_k_mis_interval(sub, spacing);
  // Anchors in left-to-right order; their columns are the cliques crossing
  // the anchors' right endpoints.
  std::vector<int> cuts;
  cuts.reserve(ruling.anchors.size());
  for (std::size_t a : ruling.anchors) cuts.push_back(sub.hi[a]);
  std::sort(cuts.begin(), cuts.end());

  // Column assignment: vertex -> index of the cut it crosses (-1 if none).
  // Anchors are pairwise > k+6 apart, so no vertex crosses two cuts.
  std::vector<int> column(n, -1);
  std::vector<std::vector<std::size_t>> column_members(cuts.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto it = std::lower_bound(cuts.begin(), cuts.end(), sub.lo[i]);
    if (it != cuts.end() && *it <= sub.hi[i]) {
      column[i] = static_cast<int>(it - cuts.begin());
      column_members[column[i]].push_back(i);
    }
  }
  std::vector<int> local_colors(n, -1);
  for (auto& members : column_members) {
    // Canonical clique coloring: sort by global vertex id.
    std::sort(members.begin(), members.end(),
              [&sub](std::size_t x, std::size_t y) {
                return sub.vertices[x] < sub.vertices[y];
              });
    int c = 0;
    for (std::size_t i : members) local_colors[i] = c++;
  }

  // Gap g holds non-column vertices strictly between cut g-1 and cut g
  // (g = 0: before the first cut; g = cuts.size(): after the last).
  std::vector<std::vector<std::size_t>> gap_members(cuts.size() + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (column[i] != -1) continue;
    auto it = std::lower_bound(cuts.begin(), cuts.end(), sub.lo[i]);
    gap_members[it - cuts.begin()].push_back(i);
  }

  for (std::size_t g = 0; g < gap_members.size(); ++g) {
    if (gap_members[g].empty()) continue;
    // Window = free gap vertices + the fixed boundary columns.
    std::vector<std::size_t> window = gap_members[g];
    if (g > 0) {
      window.insert(window.end(), column_members[g - 1].begin(),
                    column_members[g - 1].end());
    }
    if (g < cuts.size()) {
      window.insert(window.end(), column_members[g].begin(),
                    column_members[g].end());
    }
    std::sort(window.begin(), window.end());
    RecolorProblem problem;
    problem.rep = restrict(sub, window);
    problem.fixed.assign(window.size(), -1);
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (column[window[i]] != -1) problem.fixed[i] = local_colors[window[i]];
    }
    int w_window = omega(problem.rep);
    problem.palette = w_window + w_window / k + 1;
    for (;;) {
      auto solved = extend_coloring(problem);
      if (solved.has_value()) {
        for (std::size_t i = 0; i < window.size(); ++i) {
          local_colors[window[i]] = (*solved)[i];
        }
        break;
      }
      // Lemma 9 says this cannot happen; widen and record if it does.
      ++problem.palette;
      ++*violations;
      if (problem.palette > 2 * w + 2) {
        throw std::logic_error("col_int_graph: window unsolvable");
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) colors[comp[i]] = local_colors[i];
  // Column formation and window solving touch O(k)-balls only.
  return ruling.rounds + 4 * static_cast<std::int64_t>(k) + 2;
}

}  // namespace

DistColoringResult col_int_graph(const PathIntervals& rep, int k) {
  if (k < 2) throw std::invalid_argument("col_int_graph: k < 2");
  DistColoringResult result;
  result.colors.assign(rep.vertices.size(), -1);
  result.omega = omega(rep);
  result.color_bound = result.omega + result.omega / k + 1;
  for (const auto& comp : components(rep)) {
    std::int64_t rounds = color_component(rep, comp, k, result.colors,
                                          &result.palette_violations);
    result.rounds = std::max(result.rounds, rounds);
  }
  int max_color = -1;
  for (int c : result.colors) max_color = std::max(max_color, c);
  std::vector<char> used(static_cast<std::size_t>(max_color) + 1, 0);
  for (int c : result.colors) {
    if (c >= 0) used[c] = 1;
  }
  result.num_colors = static_cast<int>(
      std::count(used.begin(), used.end(), static_cast<char>(1)));
  return result;
}

}  // namespace chordal::interval
