// Offline (centralized) exact algorithms on interval models: the optimal
// baselines every experiment compares against. On interval graphs greedy
// left-to-right coloring is chi-optimal and greedy earliest-deadline MIS is
// alpha-optimal.
#pragma once

#include <vector>

#include "interval/rep.hpp"

namespace chordal::interval {

/// Optimal coloring: colors 0..omega-1, indexed like rep.vertices.
/// Left-to-right greedy with smallest-free-color; uses exactly omega colors
/// on a nonempty model.
std::vector<int> color_optimal(const PathIntervals& rep);

/// Exact maximum independent set: local indices into rep.vertices, chosen by
/// the earliest-right-endpoint greedy sweep.
std::vector<std::size_t> mis_exact(const PathIntervals& rep);

/// alpha of the model (size of mis_exact).
int alpha(const PathIntervals& rep);

/// True iff `colors` (local-indexed) is a proper coloring of the model.
bool is_proper(const PathIntervals& rep, const std::vector<int>& colors);

}  // namespace chordal::interval
