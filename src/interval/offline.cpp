#include "interval/offline.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace chordal::interval {

std::vector<int> color_optimal(const PathIntervals& rep) {
  const std::size_t n = rep.vertices.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    if (rep.lo[x] != rep.lo[y]) return rep.lo[x] < rep.lo[y];
    return rep.hi[x] < rep.hi[y];
  });
  std::vector<int> colors(n, -1);
  // Min-heap of (hi, color) for active intervals; free colors in a heap.
  std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                      std::greater<>>
      active;
  std::priority_queue<int, std::vector<int>, std::greater<>> free_colors;
  int next_fresh = 0;
  for (std::size_t i : order) {
    while (!active.empty() && active.top().first < rep.lo[i]) {
      free_colors.push(active.top().second);
      active.pop();
    }
    int c;
    if (!free_colors.empty()) {
      c = free_colors.top();
      free_colors.pop();
    } else {
      c = next_fresh++;
    }
    colors[i] = c;
    active.emplace(rep.hi[i], c);
  }
  return colors;
}

std::vector<std::size_t> mis_exact(const PathIntervals& rep) {
  const std::size_t n = rep.vertices.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    if (rep.hi[x] != rep.hi[y]) return rep.hi[x] < rep.hi[y];
    return rep.lo[x] < rep.lo[y];
  });
  std::vector<std::size_t> chosen;
  int last_hi = -1;
  for (std::size_t i : order) {
    if (rep.lo[i] > last_hi) {
      chosen.push_back(i);
      last_hi = rep.hi[i];
    }
  }
  return chosen;
}

int alpha(const PathIntervals& rep) {
  return static_cast<int>(mis_exact(rep).size());
}

bool is_proper(const PathIntervals& rep, const std::vector<int>& colors) {
  const std::size_t n = rep.vertices.size();
  if (colors.size() != n) return false;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    return rep.lo[x] < rep.lo[y];
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (colors[order[i]] < 0) return false;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rep.lo[order[j]] > rep.hi[order[i]]) break;
      if (colors[order[i]] == colors[order[j]]) return false;
    }
  }
  return true;
}

}  // namespace chordal::interval
