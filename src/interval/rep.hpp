// Interval-model utilities.
//
// PathIntervals (from cliqueforest/paths.hpp) is the canonical interval
// representation used across the library: vertices carry integer position
// ranges and adjacency is range overlap. Layers of the peeling process get
// theirs from clique-path positions (Lemma 7); standalone interval graphs
// (benches E4/E7) get theirs from generator geometry via the helpers here.
#pragma once

#include <vector>

#include "cliqueforest/paths.hpp"
#include "graph/graph.hpp"

namespace chordal::interval {

using PathIntervals = chordal::PathIntervals;

/// Converts geometric intervals (distinct endpoints almost surely) to the
/// integer model by endpoint rank. Vertex ids are 0..n-1.
PathIntervals from_geometry(const std::vector<double>& left,
                            const std::vector<double>& right);

/// The maximal cliques of a geometric interval family in line order (the
/// clique path of Theorem 1), plus the matching interval model whose
/// positions are clique-path indices. A sweep emits the active set as a
/// clique exactly when an insertion phase flips to a removal. Serves as an
/// independent cross-check of the Lex-BFS clique extraction and yields the
/// most compact PathIntervals for a given geometry.
struct CliquePath {
  std::vector<std::vector<int>> cliques;  // sorted vertex lists, path order
  PathIntervals rep;                      // positions = clique-path indices
};
CliquePath clique_path_from_geometry(const std::vector<double>& left,
                                     const std::vector<double>& right);

/// Intersection graph of the integer model (for tests and baselines).
/// Vertex i of the result is rep.vertices[i]... the graph is built over
/// local indices 0..rep.vertices.size()-1.
Graph to_graph(const PathIntervals& rep);

/// Restriction of `rep` to a subset of local indices (e.g. one connected
/// component); preserves global vertex ids and positions.
PathIntervals restrict(const PathIntervals& rep,
                       const std::vector<std::size_t>& keep);

/// Connected components of the interval model, each a sorted list of local
/// indices. Linear sweep over positions.
std::vector<std::vector<std::size_t>> components(const PathIntervals& rep);

/// Maximum number of pairwise overlapping intervals == omega == chi.
int omega(const PathIntervals& rep);

/// Exact diameter of a *connected* interval model.
int diameter(const PathIntervals& rep);

}  // namespace chordal::interval
