// Absorbing maximum independent sets (Section 7.1).
//
// For a small component H hanging off the remaining graph through at most
// one clique C, Algorithm 6 needs a maximum independent set I_H with the
// absorption property |I_H| = alpha(Gamma[I_H]): picking simplicial
// vertices in order of remoteness from C (farthest first) achieves it. On
// an interval model this is the greedy sweep that starts at the end of the
// line opposite to the attachment.
#pragma once

#include <vector>

#include "interval/rep.hpp"

namespace chordal::interval {

enum class AttachSide { kNone, kLeft, kRight };

/// Maximum independent set of the (connected or not) interval model chosen
/// greedily from the side opposite to `side`. Always alpha-optimal; with an
/// attachment side it additionally absorbs its closed neighborhood.
std::vector<std::size_t> absorbing_mis(const PathIntervals& rep,
                                       AttachSide side);

}  // namespace chordal::interval
