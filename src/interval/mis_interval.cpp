#include "interval/mis_interval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "interval/offline.hpp"
#include "interval/proper.hpp"
#include "local/ruling_set.hpp"

namespace chordal::interval {

namespace {

/// Greedy exact MIS over a subset of local indices of `rep`.
std::vector<std::size_t> exact_mis_subset(const PathIntervals& rep,
                                          std::vector<std::size_t> subset) {
  std::sort(subset.begin(), subset.end(),
            [&rep](std::size_t x, std::size_t y) {
              if (rep.hi[x] != rep.hi[y]) return rep.hi[x] < rep.hi[y];
              return rep.lo[x] < rep.lo[y];
            });
  std::vector<std::size_t> chosen;
  int last_hi = -1;
  for (std::size_t i : subset) {
    if (rep.lo[i] > last_hi) {
      chosen.push_back(i);
      last_hi = rep.hi[i];
    }
  }
  return chosen;
}

/// Processes one connected component of the domination-reduced model.
/// `comp` holds local indices into `reduced`; results are indices into
/// `reduced` as well.
std::int64_t mis_component(const PathIntervals& reduced,
                           const std::vector<std::size_t>& comp, int k,
                           std::vector<std::size_t>& out) {
  PathIntervals sub = restrict(reduced, comp);
  const std::size_t n = comp.size();

  int diam = diameter(sub);
  if (diam <= 10 * k) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i : exact_mis_subset(sub, all)) out.push_back(comp[i]);
    return diam + 1;
  }

  // Step 1: distance-k maximal independent set I_1 (the anchors).
  auto ruling = chordal::local::distance_k_mis_interval(sub, k);
  std::vector<std::size_t> anchors(ruling.anchors.begin(),
                                   ruling.anchors.end());
  std::sort(anchors.begin(), anchors.end(),
            [&sub](std::size_t x, std::size_t y) {
              return sub.hi[x] < sub.hi[y];
            });
  for (std::size_t a : anchors) out.push_back(comp[a]);

  // Steps 2-5: between every pair of consecutive anchors (u, v), collect
  // V_{u,v} - intervals strictly between them, outside Gamma[u] and
  // Gamma[v] - and take an exact maximum independent set there; the
  // stretches left of the leftmost and right of the rightmost anchor are
  // handled the same way. One lo-sorted sweep serves all segments.
  std::vector<std::size_t> by_lo(n);
  for (std::size_t i = 0; i < n; ++i) by_lo[i] = i;
  std::sort(by_lo.begin(), by_lo.end(),
            [&sub](std::size_t x, std::size_t y) {
              return sub.lo[x] < sub.lo[y];
            });
  // Segment boundaries: (-inf, first anchor), (a_p, a_{p+1})..., (last, inf).
  for (std::size_t p = 0; p + 1 <= anchors.size(); ++p) {
    // Segment p sits between anchor p-1 and anchor p (0 = before first,
    // anchors.size() = after last).
    bool has_left = p > 0;
    bool has_right = p < anchors.size();
    int left_cut = has_left ? sub.hi[anchors[p - 1]] : -1;
    int right_cut = has_right ? sub.lo[anchors[p]]
                              : sub.num_positions + 1;
    std::vector<std::size_t> segment;
    auto first = std::lower_bound(
        by_lo.begin(), by_lo.end(), left_cut + 1,
        [&sub](std::size_t w, int key) { return sub.lo[w] < key; });
    for (auto it = first; it != by_lo.end() && sub.lo[*it] < right_cut;
         ++it) {
      if (sub.hi[*it] < right_cut) segment.push_back(*it);
    }
    for (std::size_t i : exact_mis_subset(sub, segment)) {
      out.push_back(comp[i]);
    }
  }
  // The stretch after the last anchor.
  {
    std::vector<std::size_t> right_side;
    int cut = sub.hi[anchors.back()];
    auto first = std::lower_bound(
        by_lo.begin(), by_lo.end(), cut + 1,
        [&sub](std::size_t w, int key) { return sub.lo[w] < key; });
    for (auto it = first; it != by_lo.end(); ++it) right_side.push_back(*it);
    for (std::size_t i : exact_mis_subset(sub, right_side)) {
      out.push_back(comp[i]);
    }
  }

  return ruling.rounds + 3 * static_cast<std::int64_t>(k);
}

}  // namespace

IntervalMisResult approx_mis_interval(const PathIntervals& rep, double eps) {
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("approx_mis_interval: eps outside (0,1)");
  }
  IntervalMisResult result;
  result.k = static_cast<int>(std::ceil(2.5 / eps + 0.5));

  // Domination reduction; checking Gamma[v] strictly-contains Gamma[u] is a
  // 2-round local test.
  auto kept = proper_reduction(rep);
  PathIntervals reduced = restrict(rep, kept);

  std::vector<std::size_t> chosen_reduced;
  std::int64_t rounds = 2;
  for (const auto& comp : components(reduced)) {
    rounds = std::max(
        rounds, 2 + mis_component(reduced, comp, result.k, chosen_reduced));
  }
  result.rounds = rounds;
  for (std::size_t i : chosen_reduced) result.chosen.push_back(kept[i]);
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace chordal::interval
