// Domination reduction (first step of Algorithm 5): removing every vertex v
// for which some u satisfies Gamma[v] strictly-contains Gamma[u] leaves a
// proper interval graph, and never shrinks the maximum independent set
// (a dominated vertex can always be swapped for a dominated-by one).
#pragma once

#include <vector>

#include "interval/rep.hpp"

namespace chordal::interval {

/// Local indices of the vertices that survive the domination reduction,
/// sorted. A vertex is removed iff it has a neighbor with a strictly smaller
/// closed neighborhood (dominating pairs are always adjacent, so scanning
/// edges suffices).
std::vector<std::size_t> proper_reduction(const PathIntervals& rep);

}  // namespace chordal::interval
