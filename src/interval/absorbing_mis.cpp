#include "interval/absorbing_mis.hpp"

#include <algorithm>
#include <numeric>

namespace chordal::interval {

std::vector<std::size_t> absorbing_mis(const PathIntervals& rep,
                                       AttachSide side) {
  const std::size_t n = rep.vertices.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (side == AttachSide::kLeft) {
    // Attachment on the left: sweep right-to-left (latest start first).
    std::sort(order.begin(), order.end(),
              [&rep](std::size_t x, std::size_t y) {
                if (rep.lo[x] != rep.lo[y]) return rep.lo[x] > rep.lo[y];
                return rep.hi[x] > rep.hi[y];
              });
    std::vector<std::size_t> chosen;
    int last_lo = rep.num_positions + 1;
    for (std::size_t i : order) {
      if (rep.hi[i] < last_lo) {
        chosen.push_back(i);
        last_lo = rep.lo[i];
      }
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
  }
  // No attachment or attachment on the right: classic left-to-right sweep.
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    if (rep.hi[x] != rep.hi[y]) return rep.hi[x] < rep.hi[y];
    return rep.lo[x] < rep.lo[y];
  });
  std::vector<std::size_t> chosen;
  int last_hi = -1;
  for (std::size_t i : order) {
    if (rep.lo[i] > last_hi) {
      chosen.push_back(i);
      last_hi = rep.hi[i];
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace chordal::interval
