// Algorithm 5: deterministic distributed (1 + eps)-approximation for
// Maximum Independent Set on interval graphs, O((1/eps) log* n) rounds
// (Theorems 5 and 6).
#pragma once

#include <cstdint>
#include <vector>

#include "interval/rep.hpp"

namespace chordal::interval {

struct IntervalMisResult {
  std::vector<std::size_t> chosen;  // local indices into the input model
  std::int64_t rounds = 0;
  int k = 0;                        // ceil(2.5/eps + 0.5)
};

/// Runs Algorithm 5 on the interval model. eps in (0, 1).
IntervalMisResult approx_mis_interval(const PathIntervals& rep, double eps);

}  // namespace chordal::interval
