// The Lemma 9 recoloring engine.
//
// Lemma 9 (Halldorsson & Konrad [21]): on an interval graph whose clique
// forest is a path with end cliques C_1, C_k legally precolored from at most
// c colors and dist(C_1, C_k) >= r >= 5, the precoloring extends to the
// whole graph with max{floor((1 + 1/(r-3)) chi) + 1, c} colors.
//
// Substitution note (DESIGN.md #3): [21]'s constructive proof is not
// reproduced verbatim. Because LOCAL permits unbounded local computation, a
// node may find the guaranteed-to-exist extension by exact search over its
// O(k)-sized window; we run greedy-with-reservations first and fall back to
// exact backtracking. The solver is generic precoloring extension on an
// interval model: any subset of vertices may arrive with fixed colors.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "interval/rep.hpp"

namespace chordal::interval {

struct RecolorProblem {
  PathIntervals rep;
  /// Per local index: fixed color >= 0, or -1 for "solver assigns".
  std::vector<int> fixed;
  /// Palette size: allowed colors are 0..palette-1.
  int palette = 0;
};

struct RecolorStats {
  std::int64_t backtrack_nodes = 0;
  bool used_backtracking = false;
};

/// Completes the precoloring within the palette, or nullopt if no completion
/// was found within `node_budget` search nodes (callers treat that as
/// palette-too-small and retry wider; Lemma 9 guarantees it cannot happen
/// for the windows the coloring algorithms construct).
std::optional<std::vector<int>> extend_coloring(
    const RecolorProblem& problem, RecolorStats* stats = nullptr,
    std::int64_t node_budget = 4'000'000);

}  // namespace chordal::interval
