#include "obs/span.hpp"

#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::obs {

Span::Span(std::string_view name) {
  // Phase boundaries also land on the event timeline when a Tracer is
  // installed (with or without a registry); same parallel-region
  // suppression as the span tree below, for the same determinism reason.
  if (!support::in_parallel_region()) {
    if (Tracer* t = tracer()) {
      phase_id_ = t->intern(name);
      t->emit(TraceEventKind::kPhaseBegin, -1, 0, phase_id_);
      traced_ = true;
    }
  }
  Registry* reg = current();
  if (reg == nullptr) return;
  // Spans opened inside a parallel_for body would be recorded only by
  // whichever workers happen to carry the installed registry (the calling
  // thread), making the span tree depend on the thread count. Suppress them
  // uniformly - at every thread count, including the inline single-worker
  // path - so trace trees are bit-identical across CHORDAL_THREADS. The
  // charge_* statics stay live: they target the enclosing span and the
  // engines merge per-worker deltas in worker order, which is already
  // thread-count-invariant.
  if (support::in_parallel_region()) return;
  registry_ = reg;
  node_ = reg->open_span(std::string(name));
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (traced_) {
    if (Tracer* t = tracer()) {
      t->emit(TraceEventKind::kPhaseEnd, -1, 0, phase_id_);
    }
  }
  if (node_ == nullptr) return;
  std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - start_;
  node_->wall_ms = elapsed.count();
  registry_->close_span(node_);
}

void Span::add_rounds(std::int64_t rounds) {
  if (node_ != nullptr) node_->rounds += rounds;
}

void Span::add_messages(std::int64_t count, std::int64_t payload_words) {
  if (node_ == nullptr) return;
  node_->messages += count;
  node_->payload_words += payload_words;
}

void Span::set_rounds(std::int64_t rounds) {
  if (node_ != nullptr) node_->rounds = rounds;
}

void Span::note(std::string_view key, double value) {
  if (node_ != nullptr) node_->note(key, value);
}

void Span::charge_rounds(std::int64_t rounds) {
  Registry* reg = current();
  if (reg == nullptr) return;
  if (SpanNode* node = reg->active_span()) node->rounds += rounds;
}

void Span::charge_messages(std::int64_t count, std::int64_t payload_words) {
  Registry* reg = current();
  if (reg == nullptr) return;
  if (SpanNode* node = reg->active_span()) {
    node->messages += count;
    node->payload_words += payload_words;
  }
}

void Span::annotate(std::string_view key, double value) {
  Registry* reg = current();
  if (reg == nullptr) return;
  if (SpanNode* node = reg->active_span()) node->note(key, value);
}

}  // namespace chordal::obs
