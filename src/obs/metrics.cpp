#include "obs/metrics.hpp"

#include <stdexcept>

namespace chordal::obs {

namespace {

thread_local Registry* g_current = nullptr;

void write_span(JsonWriter& w, const SpanNode& node) {
  w.begin_object();
  w.key("name").value(node.name);
  w.key("wall_ms").value(node.wall_ms);
  w.key("rounds").value(node.rounds);
  w.key("messages").value(node.messages);
  w.key("payload_words").value(node.payload_words);
  w.key("notes");
  w.begin_object();
  for (const auto& [key, value] : node.notes) {
    w.key(key).value(value);
  }
  w.end_object();
  w.key("children");
  w.begin_array();
  for (const auto& child : node.children) write_span(w, *child);
  w.end_array();
  w.end_object();
}

}  // namespace

void SpanNode::note(std::string_view key, double value) {
  for (auto& [k, v] : notes) {
    if (k == key) {
      v = value;
      return;
    }
  }
  notes.emplace_back(std::string(key), value);
}

Registry::Registry() {
  root_.name = "root";
  stack_.push_back(&root_);
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

SpanNode* Registry::open_span(std::string name) {
  auto node = std::make_unique<SpanNode>();
  node->name = std::move(name);
  SpanNode* raw = node.get();
  stack_.back()->children.push_back(std::move(node));
  stack_.push_back(raw);
  return raw;
}

void Registry::close_span(SpanNode* node) {
  if (stack_.size() <= 1 || stack_.back() != node) {
    throw std::logic_error("Registry: spans must close innermost-first");
  }
  stack_.pop_back();
}

SpanNode* Registry::active_span() {
  return stack_.size() > 1 ? stack_.back() : nullptr;
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  // Telemetry layout version. 1 (implicit, no key) = the original layout;
  // 2 = identical layout plus this marker. Consumers (bench_diff.py,
  // bench_gate.py) accept both.
  w.key("schema").value(static_cast<std::int64_t>(2));
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(c.value());
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).value(g.value());
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count").value(h.count());
    if (h.count() > 0) {
      w.key("min").value(h.min());
      w.key("max").value(h.max());
      w.key("mean").value(h.mean());
      w.key("p50").value(h.p50());
      w.key("p95").value(h.p95());
    }
    w.end_object();
  }
  w.end_object();
  w.key("spans");
  w.begin_array();
  for (const auto& child : root_.children) write_span(w, *child);
  w.end_array();
  w.end_object();
}

std::string Registry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

void Delta::add_counter(std::string_view name, std::int64_t delta) {
  for (auto& [k, v] : counters_) {
    if (k == name) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

void Delta::add_histogram(std::string_view name, double value) {
  for (auto& [k, samples] : histograms_) {
    if (k == name) {
      samples.push_back(value);
      return;
    }
  }
  histograms_.emplace_back(std::string(name), std::vector<double>{value});
}

bool Delta::empty() const {
  return counters_.empty() && histograms_.empty() && rounds_ == 0 &&
         messages_ == 0 && payload_words_ == 0;
}

void Delta::clear() {
  counters_.clear();
  histograms_.clear();
  rounds_ = 0;
  messages_ = 0;
  payload_words_ = 0;
}

void Delta::flush() const {
  Registry* reg = current();
  if (reg == nullptr) return;
  for (const auto& [name, value] : counters_) reg->counter(name).add(value);
  for (const auto& [name, samples] : histograms_) {
    auto& hist = reg->histogram(name);
    for (double v : samples) hist.add(v);
  }
  if (SpanNode* node = reg->active_span()) {
    node->rounds += rounds_;
    node->messages += messages_;
    node->payload_words += payload_words_;
  }
}

Registry* current() { return g_current; }

ScopedRegistry::ScopedRegistry(Registry& registry) : previous_(g_current) {
  g_current = &registry;
}

ScopedRegistry::~ScopedRegistry() { g_current = previous_; }

}  // namespace chordal::obs
