// Minimal streaming JSON writer for the telemetry layer.
//
// No external JSON dependency is available in this codebase, so the emitter
// is a small nesting-aware string builder: it inserts commas, escapes
// strings, and rejects structurally invalid sequences (value without a key
// inside an object, unbalanced end_*) by throwing std::logic_error. Doubles
// that are not finite are emitted as null - JSON has no Inf/NaN literals.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chordal::obs {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::size_t v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// The finished document; valid only once all containers are closed.
  const std::string& str() const;

  static std::string escape(std::string_view s);

 private:
  enum class Frame : char { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;  // parallel to stack_
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace chordal::obs
