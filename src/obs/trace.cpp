#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "obs/json.hpp"
#include "support/parallel.hpp"

namespace chordal::obs {

namespace {

thread_local Tracer* g_tracer = nullptr;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KindInfo {
  const char* name;
  const char* category;
};

KindInfo kind_info(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kPhaseBegin:
      return {"phase.begin", "phase"};
    case TraceEventKind::kPhaseEnd:
      return {"phase.end", "phase"};
    case TraceEventKind::kNetSend:
      return {"net.send", "net"};
    case TraceEventKind::kNetDeliver:
      return {"net.deliver", "net"};
    case TraceEventKind::kNetRound:
      return {"net.round", "net"};
    case TraceEventKind::kPeelDecision:
      return {"peel.decision", "peel"};
    case TraceEventKind::kPeelCommit:
      return {"peel.commit", "peel"};
    case TraceEventKind::kLocalDecision:
      return {"local.decision", "peel"};
    case TraceEventKind::kAuditDecision:
      return {"audit.decision", "audit"};
    case TraceEventKind::kColorCommit:
      return {"color.commit", "color"};
    case TraceEventKind::kRecolor:
      return {"color.recolor", "color"};
    case TraceEventKind::kMisPick:
      return {"mis.pick", "mis"};
    case TraceEventKind::kCacheHit:
      return {"cache.hit", "cache"};
    case TraceEventKind::kCacheMiss:
      return {"cache.miss", "cache"};
    case TraceEventKind::kCacheExtend:
      return {"cache.extend", "cache"};
    case TraceEventKind::kCacheInvalidate:
      return {"cache.invalidate", "cache"};
    case TraceEventKind::kForestBuild:
      return {"forest.build", "forest"};
  }
  return {"unknown", "unknown"};
}

}  // namespace

const char* trace_event_name(TraceEventKind kind) {
  return kind_info(kind).name;
}

const char* trace_event_category(TraceEventKind kind) {
  return kind_info(kind).category;
}

bool trace_event_is_cache(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCacheHit:
    case TraceEventKind::kCacheMiss:
    case TraceEventKind::kCacheExtend:
    case TraceEventKind::kCacheInvalidate:
      return true;
    default:
      return false;
  }
}

TraceEvent& TraceBuf::push(const TraceEvent& e) {
  if (events_.size() < capacity_) {
    events_.push_back(e);
    return events_.back();
  }
  // Full: wrap over the oldest slot.
  TraceEvent& slot = events_[head_];
  slot = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  return slot;
}

void TraceBuf::emit(TraceEventKind kind, std::int32_t node, std::int32_t round,
                    std::int64_t arg0, std::int64_t arg1,
                    std::int64_t lineage) {
  TraceEvent e;
  e.wall_ns = now_ns();
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.lineage = lineage;
  e.node = node;
  e.round = round;
  e.kind = kind;
  push(e);
}

void TraceBuf::clear() {
  events_.clear();
  head_ = 0;
  // dropped_ survives clear() on purpose: it counts lifetime losses.
}

void TraceBuf::drain_to(std::vector<TraceEvent>& out) const {
  for (std::size_t i = head_; i < events_.size(); ++i) out.push_back(events_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(events_[i]);
}

Tracer::Tracer(std::size_t capacity, std::size_t worker_capacity)
    : ring_(capacity), worker_capacity_(worker_capacity) {
  int workers = support::num_threads();
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back(new TraceBuf(worker_capacity_));
  }
}

void Tracer::emit(TraceEventKind kind, std::int32_t node, std::int32_t round,
                  std::int64_t arg0, std::int64_t arg1, std::int64_t lineage) {
  TraceEvent e;
  e.wall_ns = now_ns();
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.lineage = lineage;
  e.node = node;
  e.round = round;
  e.kind = kind;
  std::int64_t before = ring_.dropped_;
  ring_.push(e).tick = ++tick_;
  merged_dropped_ += ring_.dropped_ - before;
}

TraceBuf& Tracer::worker(std::size_t w) {
  while (workers_.size() <= w) {
    workers_.emplace_back(new TraceBuf(worker_capacity_));
  }
  return *workers_[w];
}

void Tracer::merge_workers() {
  for (auto& buf : workers_) {
    if (buf->events_.empty()) continue;
    merge_scratch_.clear();
    buf->drain_to(merge_scratch_);
    for (const TraceEvent& e : merge_scratch_) {
      std::int64_t before = ring_.dropped_;
      ring_.push(e).tick = ++tick_;  // keeps the worker's wall stamp
      merged_dropped_ += ring_.dropped_ - before;
    }
    merged_dropped_ += buf->dropped_;
    buf->clear();
    buf->dropped_ = 0;
  }
}

std::int64_t Tracer::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::int64_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::int64_t>(names_.size() - 1);
}

std::vector<TraceEvent> Tracer::ordered_events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.events_.size());
  ring_.drain_to(out);
  return out;
}

std::int64_t Tracer::dropped() const { return merged_dropped_; }

Tracer* tracer() { return g_tracer; }

ScopedTracer::ScopedTracer(Tracer& t) : previous_(g_tracer) { g_tracer = &t; }

ScopedTracer::~ScopedTracer() { g_tracer = previous_; }

void trace_emit(TraceBuf* worker_buf, TraceEventKind kind, std::int32_t node,
                std::int32_t round, std::int64_t arg0, std::int64_t arg1,
                std::int64_t lineage) {
  if (worker_buf != nullptr) {
    worker_buf->emit(kind, node, round, arg0, arg1, lineage);
    return;
  }
  // Inside a parallel region the calling thread doubles as worker 0 and
  // still sees the thread-local tracer; appending directly would order its
  // events differently from workers that staged theirs. Without a wired
  // buffer, record nothing (cf. the Span suppression in obs/span.cpp).
  if (support::in_parallel_region()) return;
  if (Tracer* t = g_tracer) {
    t->emit(kind, node, round, arg0, arg1, lineage);
  }
}

namespace {

/// Chrome trace_event tid layout: 0 = the phase track, 1 = coordinator
/// events (node == -1), node v >= 0 lands on tid v + 2.
std::int64_t chrome_tid(const TraceEvent& e) {
  if (e.kind == TraceEventKind::kPhaseBegin ||
      e.kind == TraceEventKind::kPhaseEnd) {
    return 0;
  }
  return e.node < 0 ? 1 : static_cast<std::int64_t>(e.node) + 2;
}

void write_event_args(JsonWriter& w, const TraceEvent& e,
                      const std::vector<std::string>& names) {
  w.key("tick").value(e.tick);
  w.key("round").value(static_cast<std::int64_t>(e.round));
  w.key("arg0").value(e.arg0);
  w.key("arg1").value(e.arg1);
  if (e.lineage != 0) w.key("lineage").value(e.lineage);
  if ((e.kind == TraceEventKind::kPhaseBegin ||
       e.kind == TraceEventKind::kPhaseEnd) &&
      e.arg0 >= 0 && e.arg0 < static_cast<std::int64_t>(names.size())) {
    w.key("phase").value(names[static_cast<std::size_t>(e.arg0)]);
  }
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::vector<TraceEvent> ordered = ordered_events();
  std::int64_t t0 = ordered.empty() ? 0 : ordered.front().wall_ns;
  for (const TraceEvent& e : ordered) t0 = std::min(t0, e.wall_ns);

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  // Thread-name metadata for every track, in first-appearance order.
  std::unordered_map<std::int64_t, bool> named;
  auto name_track = [&](std::int64_t tid, const std::string& name) {
    if (named.count(tid)) return;
    named[tid] = true;
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("thread_name");
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(tid);
    w.key("args");
    w.begin_object();
    w.key("name").value(name);
    w.end_object();
    w.end_object();
  };
  for (const TraceEvent& e : ordered) {
    std::int64_t tid = chrome_tid(e);
    if (tid == 0) {
      name_track(tid, "phases");
    } else if (tid == 1) {
      name_track(tid, "coordinator");
    } else {
      name_track(tid, "node " + std::to_string(e.node));
    }
    w.begin_object();
    KindInfo info = kind_info(e.kind);
    bool phase = e.kind == TraceEventKind::kPhaseBegin ||
                 e.kind == TraceEventKind::kPhaseEnd;
    if (phase && e.arg0 >= 0 &&
        e.arg0 < static_cast<std::int64_t>(names_.size())) {
      w.key("name").value(names_[static_cast<std::size_t>(e.arg0)]);
    } else {
      w.key("name").value(info.name);
    }
    w.key("cat").value(info.category);
    if (e.kind == TraceEventKind::kPhaseBegin) {
      w.key("ph").value("B");
    } else if (e.kind == TraceEventKind::kPhaseEnd) {
      w.key("ph").value("E");
    } else {
      w.key("ph").value("i");
      w.key("s").value("t");
    }
    // Microseconds relative to the first event; 3 decimals keeps ns info.
    double ts = static_cast<double>(e.wall_ns - t0) / 1000.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", ts);
    w.key("ts").value(std::strtod(buf, nullptr));
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(chrome_tid(e));
    w.key("args");
    w.begin_object();
    write_event_args(w, e, names_);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("schema").value(std::int64_t{1});
  w.key("events").value(static_cast<std::int64_t>(ordered.size()));
  w.key("dropped_events").value(dropped());
  w.end_object();
  w.end_object();
  return w.str();
}

std::string Tracer::to_jsonl() const {
  std::vector<TraceEvent> ordered = ordered_events();
  std::string out;
  {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value(std::int64_t{1});
    w.key("events").value(static_cast<std::int64_t>(ordered.size()));
    w.key("dropped_events").value(dropped());
    w.end_object();
    out += w.str();
    out += '\n';
  }
  for (const TraceEvent& e : ordered) {
    JsonWriter w;
    w.begin_object();
    w.key("tick").value(e.tick);
    w.key("wall_ns").value(e.wall_ns);
    w.key("kind").value(kind_info(e.kind).name);
    w.key("node").value(static_cast<std::int64_t>(e.node));
    w.key("round").value(static_cast<std::int64_t>(e.round));
    w.key("arg0").value(e.arg0);
    w.key("arg1").value(e.arg1);
    w.key("lineage").value(e.lineage);
    if ((e.kind == TraceEventKind::kPhaseBegin ||
         e.kind == TraceEventKind::kPhaseEnd) &&
        e.arg0 >= 0 && e.arg0 < static_cast<std::int64_t>(names_.size())) {
      w.key("phase").value(names_[static_cast<std::size_t>(e.arg0)]);
    }
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::events_for_node(std::int32_t node) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.node == node) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::round_slice(std::int32_t round) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.round == round) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceQuery::lineage_chain(std::int64_t id) const {
  std::vector<TraceEvent> out;
  if (id == 0) return out;
  for (const TraceEvent& e : events_) {
    if (e.lineage == id) out.push_back(e);
  }
  return out;
}

bool TraceQuery::lineage_intact() const {
  std::unordered_map<std::int64_t, std::int64_t> send_tick;
  std::unordered_map<std::int64_t, int> send_count;
  for (const TraceEvent& e : events_) {
    if (e.kind == TraceEventKind::kNetSend && e.lineage != 0) {
      send_tick[e.lineage] = e.tick;
      ++send_count[e.lineage];
    }
  }
  for (const TraceEvent& e : events_) {
    if (e.kind != TraceEventKind::kNetDeliver) continue;
    auto it = send_tick.find(e.lineage);
    if (it == send_tick.end()) return false;     // deliver without a send
    if (send_count[e.lineage] != 1) return false;  // ambiguous origin
    if (it->second >= e.tick) return false;      // send not strictly earlier
  }
  return true;
}

}  // namespace chordal::obs
