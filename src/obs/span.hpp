// Phase-scoped RAII trace spans.
//
// A Span marks one named phase of an algorithm run ("pruning Gamma^{10k}
// (Alg 3)", "peel layer 4", "CV color reduction", ...). Spans nest: opening
// a Span while another is live attaches it as a child, so a run decomposes
// into the exact phase tree of the paper's round-budget arithmetic. Each
// span records wall time automatically and accumulates the LOCAL-model
// costs (rounds, messages, payload words) charged to it, either explicitly
// by the algorithm or implicitly by instrumented substrates (the Network
// engine charges each deliver() to the innermost live span).
//
// When no Registry is installed (obs::current() == nullptr) construction
// and every method are no-ops - a pointer check - so instrumented code pays
// nothing in normal library use. Construction is also a no-op inside a
// support::parallel_for body (at any thread count): per-worker spans would
// otherwise be recorded only by the thread carrying the registry, making
// the trace tree depend on CHORDAL_THREADS. The charge_* statics remain
// live everywhere; parallel engines route worker charges through
// obs::Delta merges, which are thread-count-invariant.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace chordal::obs {

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Whether this span is actually recording (a registry was installed).
  bool live() const { return node_ != nullptr; }

  void add_rounds(std::int64_t rounds);
  void add_messages(std::int64_t count, std::int64_t payload_words);
  /// Overwrites the span's round total (for algorithms that compute the
  /// phase cost as a closed form rather than accumulating it).
  void set_rounds(std::int64_t rounds);
  void note(std::string_view key, double value);

  /// Charge the innermost live span, wherever it is (used by substrates
  /// that do not know which phase invoked them). No-op without a sink.
  static void charge_rounds(std::int64_t rounds);
  static void charge_messages(std::int64_t count, std::int64_t payload_words);
  static void annotate(std::string_view key, double value);

 private:
  Registry* registry_ = nullptr;
  SpanNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::int64_t phase_id_ = -1;  // interned name in the installed Tracer
  bool traced_ = false;
};

}  // namespace chordal::obs
