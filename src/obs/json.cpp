#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace chordal::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Frame::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value in object requires key()");
    }
    key_pending_ = false;
  } else {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    // Shortest representation that round-trips: %.12g silently corrupted
    // integer-valued counters above ~2^39 (13+ significant digits). Try
    // increasing precision until strtod recovers the exact value; %.17g
    // always does for finite doubles (DBL_DECIMAL_DIG).
    char buf[40];
    for (int precision = 12; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace chordal::obs
