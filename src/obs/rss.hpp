// Peak resident-set-size probe for the scale benchmarks and the check.sh
// memory gate. getrusage's ru_maxrss is a process-lifetime high-water mark
// (monotone, never decreases), so before/after substrate comparisons must
// run each configuration in its own process and merge the reports.
#pragma once

#include <cstdint>

namespace chordal::obs {

/// Peak resident set size of the current process in bytes, from
/// getrusage(RUSAGE_SELF). Returns 0 if the probe is unavailable.
std::uint64_t peak_rss_bytes();

}  // namespace chordal::obs
