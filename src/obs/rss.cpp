#include "obs/rss.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace chordal::obs {

std::uint64_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;  // kilobytes
#else
  return 0;
#endif
}

}  // namespace chordal::obs
