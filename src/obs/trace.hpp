// Round-level causal event tracing for the LOCAL simulator.
//
// The Registry (obs/metrics.hpp) aggregates: it can say *how many* cache
// hits or peel commits a run had, but not which round, which node, or which
// message caused a given decision. The Tracer records the individual
// events: a flat stream of fixed-size TraceEvent records - peel decisions,
// per-node pruning decisions, color commits, cache hits/misses/
// invalidations, per-family forest builds, network sends and delivers -
// each stamped with a logical tick (total order), the acting node, the
// round/iteration it belongs to, and an optional causal lineage id that
// links a delivered message back to the exact send() that produced it.
//
// Zero-cost disabled path: sites go through obs::tracer(), a thread-local
// pointer that is null unless a ScopedTracer is installed (the
// null-registry pattern of obs::current()). Every hook is one pointer load
// and a branch when tracing is off.
//
// Determinism: the merged stream is bit-identical at any CHORDAL_THREADS
// value (timestamps aside). Main-thread sites append directly to the
// tracer's ring. Sites inside a support::parallel_for body append to the
// per-worker TraceBuf ring the driver wired for the region (all of a
// worker's events - driver decisions and library cache/forest events alike
// - share that one buffer, so their interleaving is the worker's own
// program order); Tracer::merge_workers() then drains the buffers in worker
// order, which under the static index partition equals global index order.
// An instrumented library site that runs inside a parallel region *without*
// a wired buffer records nothing - mirroring how obs::Span suppresses
// itself in parallel regions - so the stream never depends on which thread
// happened to carry the tracer. Ticks are assigned at append (main thread)
// or at merge (worker events); wall_ns is captured at emit time and is the
// only nondeterministic field.
//
// Buffers are bounded single-writer rings: storage grows geometrically to
// the configured capacity, then wraps, dropping the *oldest* events and
// counting the drops (reported by both exporters). Cross-thread
// determinism holds as long as nothing was dropped - per-worker drop
// points depend on the partition - so size generously or treat a nonzero
// drop count as "timeline truncated".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace chordal::obs {

/// Event vocabulary. Stable names (for exporters) live in
/// trace_event_name/trace_event_category.
enum class TraceEventKind : std::int16_t {
  kPhaseBegin = 0,   // arg0 = interned phase-name id
  kPhaseEnd,         // arg0 = interned phase-name id
  kNetSend,          // node = sender, arg0 = recipient, arg1 = payload words,
                     // lineage = message id, round = network round
  kNetDeliver,       // node = recipient, arg0 = sender, arg1 = payload words,
                     // lineage = message id of the originating send
  kNetRound,         // node = -1, arg0 = delivered messages, arg1 = words
  kPeelDecision,     // node = first clique of the taken path, arg0 = path
                     // length (cliques), arg1 = owned vertices
  kPeelCommit,       // node = peeled vertex, round = peel iteration
  kLocalDecision,    // node = deciding vertex, arg0 = 1 if it removes itself
  kAuditDecision,    // node = audited vertex, arg0 = local, arg1 = global
  kColorCommit,      // node = vertex, arg0 = color, round = layer
  kRecolor,          // node = vertex, arg0 = new color, round = layer
  kMisPick,          // node = chosen vertex, round = layer
  kCacheHit,         // node = ball center, arg0 = radius, arg1 = ball size
                     // (vertices), round = cache epoch at lookup
  kCacheMiss,        // same fields as kCacheHit (full or view-only rebuild)
  kCacheExtend,      // node = center, arg0 = new radius, arg1 = ball size
  kCacheInvalidate,  // node = deactivated vertex, arg0 = entries killed
                     // across all shards, arg1 = resident words freed,
                     // round = epoch of the deactivation batch
  kForestBuild,      // node = observer (-1 for the global forest),
                     // arg0 = cliques considered, arg1 = edges chosen
};

const char* trace_event_name(TraceEventKind kind);
const char* trace_event_category(TraceEventKind kind);

/// True for the cache.* kinds - the only events that legitimately differ
/// between cache-on and cache-off runs of the same workload (mirrors the
/// cache.* scrub of scripts/bench_diff.py --parity).
bool trace_event_is_cache(TraceEventKind kind);

/// One fixed-size trace record. `tick` is the logical position in the
/// merged deterministic order (1-based, strictly increasing); `wall_ns` is
/// steady-clock nanoseconds at emit time and is the only field that varies
/// between runs or thread counts.
struct TraceEvent {
  std::int64_t tick = 0;
  std::int64_t wall_ns = 0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
  std::int64_t lineage = 0;  // 0 = no causal link
  std::int32_t node = -1;    // -1 = coordinator/global
  std::int32_t round = 0;
  TraceEventKind kind = TraceEventKind::kPhaseBegin;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Single-writer bounded event ring. The tracer owns one as the merged
/// stream (writer: the installing thread) and one per parallel worker as a
/// staging buffer (writer: that worker). Storage grows geometrically until
/// `capacity` slots, then wraps over the oldest events.
class TraceBuf {
 public:
  explicit TraceBuf(std::size_t capacity = 1u << 18) : capacity_(capacity) {}

  void emit(TraceEventKind kind, std::int32_t node, std::int32_t round,
            std::int64_t arg0 = 0, std::int64_t arg1 = 0,
            std::int64_t lineage = 0);

  std::size_t size() const { return events_.size(); }
  std::int64_t dropped() const { return dropped_; }
  void clear();

  /// Events in insertion order (oldest first); resolves the ring wrap.
  void drain_to(std::vector<TraceEvent>& out) const;

 private:
  friend class Tracer;

  /// Stores `e` (growing to capacity, then wrapping over the oldest slot)
  /// and returns the stored record for post-hoc stamping.
  TraceEvent& push(const TraceEvent& e);

  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once wrapped
  std::int64_t dropped_ = 0;
};

/// Owner of the merged deterministic event stream plus per-worker staging
/// rings. Install with ScopedTracer; reach from instrumentation sites via
/// obs::tracer().
class Tracer {
 public:
  /// `capacity` bounds the merged stream; each worker staging ring gets
  /// `worker_capacity` (a staging ring only ever holds one parallel
  /// region's events for one worker, so it can be smaller).
  explicit Tracer(std::size_t capacity = 1u << 20,
                  std::size_t worker_capacity = 1u << 18);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends to the merged stream, assigning the next tick. Main-thread
  /// sites only (single-writer); library code should go through
  /// obs::trace_emit, which drops the event instead when called inside a
  /// parallel region without a wired worker buffer.
  void emit(TraceEventKind kind, std::int32_t node, std::int32_t round,
            std::int64_t arg0 = 0, std::int64_t arg1 = 0,
            std::int64_t lineage = 0);

  /// The staging ring for one parallel worker. Drivers pass &worker(w) into
  /// region bodies (and wire it to BallWorkspace::trace for library sites).
  /// Growing the ring table is NOT thread-safe: call ensure_workers()
  /// before the parallel region so in-region worker(w) calls only read.
  TraceBuf& worker(std::size_t w);

  /// Pre-creates the staging rings for workers [0, count). Drivers call
  /// this (typically with support::num_threads()) before any parallel
  /// region whose body calls worker(w).
  void ensure_workers(std::size_t count) {
    if (count > 0) worker(count - 1);
  }

  std::size_t num_workers() const { return workers_.size(); }

  /// Drains every worker staging ring into the merged stream, in worker
  /// order, assigning ticks. Call after each parallel_for join (never
  /// inside a region). Worker drop counts accumulate into the tracer-wide
  /// drop counter.
  void merge_workers();

  /// Interns a phase name for kPhaseBegin/kPhaseEnd arg0.
  std::int64_t intern(std::string_view name);
  const std::vector<std::string>& interned_names() const { return names_; }

  const std::vector<TraceEvent>& events() const { return ring_.events_; }
  /// Merged events in tick order (resolves the ring wrap; copies).
  std::vector<TraceEvent> ordered_events() const;
  std::int64_t dropped() const;
  std::int64_t next_message_id() { return ++message_ids_; }

  /// Exporters. Chrome trace_event JSON loads in Perfetto or
  /// chrome://tracing: instants on one track per node (tid = node + 2,
  /// tid 1 = the coordinator track for node == -1), phase begin/end as
  /// duration events on tid 0, ts in microseconds relative to the first
  /// event. JSONL is one event object per line after a header line, for
  /// scripting.
  std::string to_chrome_json() const;
  std::string to_jsonl() const;

 private:
  TraceBuf ring_;
  std::vector<std::unique_ptr<TraceBuf>> workers_;
  std::size_t worker_capacity_;
  std::int64_t tick_ = 0;
  std::int64_t merged_dropped_ = 0;
  std::int64_t message_ids_ = 0;
  std::vector<std::string> names_;
  std::vector<TraceEvent> merge_scratch_;
};

/// The installed tracer, or nullptr when tracing is off (the fast path).
/// Thread-local like obs::current(): pool workers always see nullptr.
Tracer* tracer();

/// RAII installer mirroring ScopedRegistry; scopes may nest.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer& t);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

/// Library-site hook: records into `worker_buf` when one is wired (inside a
/// parallel region), else into the installed tracer - but never the tracer
/// from inside a parallel region, where the calling thread doubles as
/// worker 0 and direct appends would interleave differently at different
/// thread counts. One pointer check when tracing is off.
void trace_emit(TraceBuf* worker_buf, TraceEventKind kind, std::int32_t node,
                std::int32_t round, std::int64_t arg0 = 0,
                std::int64_t arg1 = 0, std::int64_t lineage = 0);

/// Read-side helpers over a merged stream, used by tests and tools.
class TraceQuery {
 public:
  explicit TraceQuery(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}

  const std::vector<TraceEvent>& events() const { return events_; }

  /// All events acted by `node`, in tick order.
  std::vector<TraceEvent> events_for_node(std::int32_t node) const;

  /// All events stamped with `round`, in tick order.
  std::vector<TraceEvent> round_slice(std::int32_t round) const;

  /// All events carrying lineage id `id` (the send and every deliver of
  /// that message), in tick order.
  std::vector<TraceEvent> lineage_chain(std::int64_t id) const;

  /// True when every kNetDeliver resolves to exactly one kNetSend with the
  /// same lineage id at a strictly smaller tick.
  bool lineage_intact() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace chordal::obs
