// Telemetry core: named counters / gauges / histograms and a tree of
// phase-scoped trace spans, owned by a Registry.
//
// The LOCAL model's currency is rounds, messages, and payload words; the
// registry makes those first-class so every bench can decompose a measured
// round total against the paper's per-lemma round budgets (see the Span
// type in obs/span.hpp for the phase tree itself).
//
// Collection is opt-in and zero-cost when off: instrumentation sites go
// through the process-wide current() pointer, which is null unless a sink
// (ScopedRegistry) is installed. Every hot-path hook therefore reduces to
// one pointer load and a branch when telemetry is disabled.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "support/stats.hpp"

namespace chordal::obs {

/// Monotonically increasing integer metric (e.g. "net.messages").
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-write-wins numeric metric (e.g. a workload parameter).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution metric reporting count/min/max/mean/p50/p95 (e.g. per-node
/// max-congestion across a run). Backed by support/stats Samples.
class Histogram {
 public:
  void add(double v) { samples_.add(v); }
  std::size_t count() const { return samples_.count(); }
  double sum() const { return samples_.sum(); }
  double min() const { return samples_.min(); }
  double max() const { return samples_.max(); }
  double mean() const { return samples_.mean(); }
  double p50() const { return samples_.p50(); }
  double p95() const { return samples_.p95(); }
  double percentile(double q) const { return samples_.percentile(q); }

 private:
  Samples samples_;
};

/// One node of the phase trace: a named phase with the LOCAL-model costs it
/// consumed plus free-form numeric annotations ("layers", "k", ...).
struct SpanNode {
  std::string name;
  double wall_ms = 0.0;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t payload_words = 0;
  std::vector<std::pair<std::string, double>> notes;
  std::vector<std::unique_ptr<SpanNode>> children;

  void note(std::string_view key, double value);
};

class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Named metric accessors; created on first use, stable references.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Lookup without creation (nullptr when absent); for tests/inspection.
  const Counter* find_counter(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Full metric maps, for auditors and exporters that need to enumerate
  /// every published name (e.g. the conservation checks in src/audit).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Span-stack plumbing used by obs::Span; spans nest strictly.
  SpanNode* open_span(std::string name);
  void close_span(SpanNode* node);
  SpanNode* active_span();
  const SpanNode& span_root() const { return root_; }

  /// Serializes {counters, gauges, histograms, spans} as one JSON object.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  SpanNode root_;
  std::vector<SpanNode*> stack_;  // stack_[0] == &root_
};

/// The installed sink, or nullptr when telemetry is off (the fast path).
/// Thread-local: a ScopedRegistry installs the sink only on its own thread,
/// so pool workers of support::parallel_for always see nullptr and
/// instrumentation sites stay race-free (and no-ops) there. Parallel
/// drivers that want worker telemetry record into per-worker Deltas and
/// merge them in worker order at the join point.
Registry* current();

/// Per-worker telemetry accumulation buffer for parallel sections.
///
/// Registry and Span are single-threaded by design; inside a parallel_for a
/// worker instead records into its own Delta, and the driver merges the
/// per-worker Deltas *in worker order* after the join. With the static
/// index partition of support::parallel_for, worker order equals global
/// index order, so merged counters, histogram sample sequences, and span
/// charges are bit-identical at any thread count.
class Delta {
 public:
  void add_counter(std::string_view name, std::int64_t delta);
  void add_histogram(std::string_view name, double value);
  void charge_rounds(std::int64_t rounds) { rounds_ += rounds; }
  void charge_messages(std::int64_t count, std::int64_t payload_words) {
    messages_ += count;
    payload_words_ += payload_words;
  }

  bool empty() const;
  void clear();

  /// Applies the buffered telemetry to the current() registry (counters and
  /// histogram samples in recorded order) and charges the buffered
  /// rounds/messages to the innermost live span. No-op without a sink.
  void flush() const;

 private:
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  std::vector<std::pair<std::string, std::vector<double>>> histograms_;
  std::int64_t rounds_ = 0;
  std::int64_t messages_ = 0;
  std::int64_t payload_words_ = 0;
};

/// RAII installer; restores the previous sink on destruction, so scopes may
/// nest (e.g. a test registry inside a bench registry).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& registry);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

}  // namespace chordal::obs
