// Small statistics helpers used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace chordal {

/// Streaming accumulator for min/max/mean/variance (Welford's algorithm).
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set (linear interpolation); q in [0, 1].
double percentile(std::vector<double> samples, double q);

}  // namespace chordal
