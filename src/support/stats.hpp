// Small statistics helpers used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace chordal {

/// Streaming accumulator for min/max/mean/variance (Welford's algorithm).
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set (linear interpolation); q in [0, 1].
double percentile(std::vector<double> samples, double q);

/// Sample store with percentile queries (p50/p95/...), the backing type of
/// the telemetry histograms. Keeps every sample; sorting is deferred to the
/// first quantile query after an insertion, so add() stays O(1) amortized
/// and interleaved add/query workloads only re-sort when dirty.
class Samples {
 public:
  void add(double x);

  std::size_t count() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

  /// Linear-interpolation percentile; q in [0, 1]. Throws on empty sets.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace chordal
