#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chordal {

void StatAccumulator::add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  std::sort(samples.begin(), samples.end());
  if (q <= 0) return samples.front();
  if (q >= 1) return samples.back();
  double pos = q * static_cast<double>(samples.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1 - frac) + samples[lo + 1] * frac;
}

}  // namespace chordal
