#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chordal {

void StatAccumulator::add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

namespace {

/// Shared interpolation kernel; `sorted` must be ascending and non-empty.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

void Samples::add(double x) {
  sorted_ = data_.empty() || (sorted_ && x >= data_.back());
  data_.push_back(x);
  sum_ += x;
}

double Samples::min() const {
  if (data_.empty()) throw std::invalid_argument("Samples::min: empty");
  return percentile(0.0);
}

double Samples::max() const {
  if (data_.empty()) throw std::invalid_argument("Samples::max: empty");
  return percentile(1.0);
}

double Samples::mean() const {
  if (data_.empty()) throw std::invalid_argument("Samples::mean: empty");
  return sum_ / static_cast<double>(data_.size());
}

double Samples::percentile(double q) const {
  if (data_.empty()) {
    throw std::invalid_argument("Samples::percentile: empty sample");
  }
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  return percentile_sorted(data_, q);
}

}  // namespace chordal
