#include "support/cachectl.hpp"

#include <cstdlib>

namespace chordal::support {

namespace {

int g_override = -1;  // -1 = follow environment, 0 = off, 1 = on
int g_forest_override = -1;

bool env_enabled() {
  const char* value = std::getenv("CHORDAL_BALL_CACHE");
  if (value == nullptr || value[0] == '\0') return true;
  return !(value[0] == '0' && value[1] == '\0');
}

bool env_forest_reference() {
  const char* value = std::getenv("CHORDAL_FOREST_REFERENCE");
  return value != nullptr && value[0] == '1' && value[1] == '\0';
}

}  // namespace

bool cache_enabled() {
  if (g_override >= 0) return g_override != 0;
  static const bool from_env = env_enabled();
  return from_env;
}

void set_cache_enabled(int enabled) {
  g_override = enabled < 0 ? -1 : (enabled != 0 ? 1 : 0);
}

bool forest_reference_enabled() {
  if (g_forest_override >= 0) return g_forest_override != 0;
  static const bool from_env = env_forest_reference();
  return from_env;
}

void set_forest_reference(int enabled) {
  g_forest_override = enabled < 0 ? -1 : (enabled != 0 ? 1 : 0);
}

}  // namespace chordal::support
