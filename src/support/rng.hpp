// Deterministic pseudo-random number generation for workload generators and
// randomized algorithms. All experiments in this repository are seeded, so a
// given (generator, seed, parameters) triple always produces the same graph
// and the same algorithm run.
#pragma once

#include <cstdint>
#include <vector>

namespace chordal {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Reference: Steele, Lea, Flood, "Fast splittable pseudorandom
/// number generators" (OOPSLA 2014).
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and good enough for
/// synthetic-workload generation; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Throws std::invalid_argument when
  /// bound == 0 (the range is empty; the old behavior was a division by
  /// zero, i.e. a SIGFPE crash on hostile parameters).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Throws std::invalid_argument
  /// when hi < lo. Well-defined for every lo <= hi, including ranges wider
  /// than INT64_MAX and the full 64-bit span.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> permutation(int n);

 private:
  std::uint64_t s_[4];
};

}  // namespace chordal
