#include "support/parallel.hpp"

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace chordal::support {

namespace {

int env_default_threads() {
  if (const char* env = std::getenv("CHORDAL_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int g_thread_override = 0;  // 0 = use environment/hardware default

thread_local bool tl_in_parallel_region = false;

/// Persistent pool. Workers sleep on a condition variable between jobs; a
/// job is published as a generation bump plus the static partition
/// parameters, and each pool thread executes exactly the range of its slot.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(std::size_t n, std::size_t workers, const RangeBody& body) {
    std::vector<std::exception_ptr> errors(workers);
    {
      std::unique_lock<std::mutex> lock(mu_);
      ensure_threads(workers - 1);
      body_ = &body;
      job_n_ = n;
      job_workers_ = workers;
      errors_ = errors.data();
      remaining_ = workers - 1;
      ++generation_;
      work_cv_.notify_all();
    }
    // The calling thread is worker 0.
    tl_in_parallel_region = true;
    try {
      body(0, n / workers, 0);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    tl_in_parallel_region = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return remaining_ == 0; });
      body_ = nullptr;
      errors_ = nullptr;
    }
    // Deterministic propagation: the lowest worker index wins.
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      shutdown_ = true;
      work_cv_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

 private:
  void ensure_threads(std::size_t count) {
    while (threads_.size() < count) {
      std::size_t slot = threads_.size();
      threads_.emplace_back([this, slot] { worker_main(slot); });
    }
  }

  void worker_main(std::size_t slot) {
    tl_in_parallel_region = true;
    std::uint64_t seen = 0;
    for (;;) {
      const RangeBody* body = nullptr;
      std::size_t n = 0, workers = 0;
      std::exception_ptr* errors = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        std::size_t w = slot + 1;
        if (w >= job_workers_) continue;  // not part of this job
        body = body_;
        n = job_n_;
        workers = job_workers_;
        errors = errors_;
      }
      std::size_t w = slot + 1;
      try {
        (*body)(n * w / workers, n * (w + 1) / workers, w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  std::vector<std::thread> threads_;
  // Published job (guarded by mu_; read once per generation per worker).
  const RangeBody* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_workers_ = 0;
  std::exception_ptr* errors_ = nullptr;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace

int num_threads() {
  if (g_thread_override >= 1) return g_thread_override;
  static const int from_env = env_default_threads();
  return from_env;
}

void set_num_threads(int count) {
  g_thread_override = count >= 1 ? count : 0;
}

bool in_parallel_region() { return tl_in_parallel_region; }

void parallel_for_ranges(std::size_t n, const RangeBody& body) {
  const auto workers = static_cast<std::size_t>(num_threads());
  if (n == 0) return;
  if (workers <= 1 || tl_in_parallel_region) {
    // Inline: identical to the worker-0 range of a one-worker partition.
    // The region flag must be raised here too, or code keyed on
    // in_parallel_region() would behave differently at one thread than at
    // many (restore rather than clear: this branch also serves nested
    // calls, where the flag is already up).
    bool prev = tl_in_parallel_region;
    tl_in_parallel_region = true;
    try {
      body(0, n, 0);
    } catch (...) {
      tl_in_parallel_region = prev;
      throw;
    }
    tl_in_parallel_region = prev;
    return;
  }
  ThreadPool::instance().run(n, workers, body);
}

}  // namespace chordal::support
