// Deterministic node-parallel execution for the LOCAL simulator.
//
// Nodes of a LOCAL round act independently, so the simulator's dominant
// loops ("for every active node: collect the ball and decide") are
// embarrassingly parallel. parallel_for runs such a loop on a small
// persistent thread pool using *static index-range partitioning*: worker w
// of W always receives the contiguous range [w*n/W, (w+1)*n/W), so the
// work-to-range mapping is a pure function of (n, W). Drivers that keep
// per-worker accumulators (obs deltas, counters) and merge them in worker
// order therefore observe results in global index order, making outputs and
// telemetry bit-identical at any thread count - including 1, where the body
// runs inline on the calling thread.
//
// The worker count defaults to the CHORDAL_THREADS environment variable,
// falling back to the hardware concurrency; set_num_threads() overrides it
// at runtime (tests sweep 1/2/8). parallel_for calls must not nest: a body
// that calls parallel_for again runs that inner loop inline.
#pragma once

#include <cstddef>
#include <functional>

namespace chordal::support {

/// The configured worker count (>= 1). First use reads CHORDAL_THREADS,
/// then the hardware concurrency.
int num_threads();

/// Overrides the worker count for subsequent parallel_for calls; `count`
/// <= 0 resets to the environment/hardware default.
void set_num_threads(int count);

/// True while the calling thread is executing a parallel_for body - on pool
/// workers, on the calling thread acting as worker 0, and on the inline
/// single-worker path alike, so the answer is independent of the configured
/// thread count. Code whose side effects must be bit-identical at every
/// thread count (e.g. obs::Span trees) keys off this to behave the same
/// whether a body runs inline or on a pool thread.
bool in_parallel_region();

/// body(begin, end, worker): one contiguous index range per worker, with
/// worker ids 0..num_threads()-1 (worker 0 runs on the calling thread).
/// Blocks until every range finished. The first exception (by worker index)
/// is rethrown. Ranges may be empty when n < num_threads().
using RangeBody =
    std::function<void(std::size_t begin, std::size_t end, std::size_t worker)>;
void parallel_for_ranges(std::size_t n, const RangeBody& body);

/// Per-index convenience wrapper; body(index, worker).
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  parallel_for_ranges(
      n, [&body](std::size_t begin, std::size_t end, std::size_t worker) {
        for (std::size_t i = begin; i < end; ++i) body(i, worker);
      });
}

}  // namespace chordal::support
