// Plain-text table printer used by the bench harnesses to emit the
// paper-claim-vs-measured rows recorded in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace chordal {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats the table with aligned columns and a header separator.
  std::string to_string() const;

  /// Convenience: prints to stdout.
  void print() const;

  /// Raw cells, for structured (JSON) emission alongside the text render.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  static std::string fmt(double v, int precision = 3);
  static std::string fmt(long long v);
  static std::string fmt(long v) { return fmt(static_cast<long long>(v)); }
  static std::string fmt(int v) { return fmt(static_cast<long long>(v)); }
  static std::string fmt(unsigned long v) {
    return fmt(static_cast<long long>(v));
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chordal
