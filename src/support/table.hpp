// Plain-text table printer used by the bench harnesses to emit the
// paper-claim-vs-measured rows recorded in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace chordal {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats the table with aligned columns and a header separator.
  std::string to_string() const;

  /// Convenience: prints to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 3);
  static std::string fmt(long long v);
  static std::string fmt(long v) { return fmt(static_cast<long long>(v)); }
  static std::string fmt(int v) { return fmt(static_cast<long long>(v)); }
  static std::string fmt(unsigned long v) {
    return fmt(static_cast<long long>(v));
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chordal
