#include "support/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace chordal {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace chordal
