// Process-wide switch for the cross-iteration simulator caches
// (local::BallCache and cliqueforest::PathMetricCache).
//
// The caches are simulator-speed optimizations that are proven (and
// fuzz-tested) to keep outputs, round ledgers, and telemetry bit-identical
// to the uncached paths, so they default to ON. The switch exists for the
// parity harnesses themselves: `CHORDAL_BALL_CACHE=0` (or
// set_cache_enabled(0)) forces every driver through the uncached recompute
// path, which is what the before/after BENCH evidence and the check.sh
// cache-parity smoke step compare against.
#pragma once

namespace chordal::support {

/// True when the cross-iteration caches should be used. Reads the
/// CHORDAL_BALL_CACHE environment variable once ("0" disables, anything
/// else - including unset - enables), unless overridden.
bool cache_enabled();

/// Runtime override: 1 forces caches on, 0 forces them off, any negative
/// value restores the environment default. Mirrors set_num_threads; callers
/// (tests, benches) toggle it between runs, never mid-driver.
void set_cache_enabled(int enabled);

}  // namespace chordal::support
