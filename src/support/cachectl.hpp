// Process-wide switches for the simulator-speed engines: the
// cross-iteration caches (local::BallCache and
// cliqueforest::PathMetricCache) and the clique-forest construction
// engine (cliqueforest ForestScratch fast path vs. the allocating
// reference path).
//
// The caches and the forest engine are simulator-speed optimizations that
// are proven (and fuzz-tested) to keep outputs, round ledgers, and
// telemetry bit-identical to the plain paths, so the fast paths default to
// ON. The switches exist for the parity harnesses themselves:
// `CHORDAL_BALL_CACHE=0` (or set_cache_enabled(0)) forces every driver
// through the uncached recompute path, and `CHORDAL_FOREST_REFERENCE=1`
// (or set_forest_reference(1)) forces every spanning-forest selection
// through the reference sorted-merge Kruskal - which is what the
// before/after BENCH evidence and the check.sh parity smoke steps compare
// against.
#pragma once

namespace chordal::support {

/// True when the cross-iteration caches should be used. Reads the
/// CHORDAL_BALL_CACHE environment variable once ("0" disables, anything
/// else - including unset - enables), unless overridden.
bool cache_enabled();

/// Runtime override: 1 forces caches on, 0 forces them off, any negative
/// value restores the environment default. Mirrors set_num_threads; callers
/// (tests, benches) toggle it between runs, never mid-driver.
void set_cache_enabled(int enabled);

/// True when the clique-forest engine must use the reference (allocating,
/// sorted-merge) spanning-forest path instead of the counting-sort
/// ForestScratch engine. Reads CHORDAL_FOREST_REFERENCE once ("1" forces
/// the reference path; unset or anything else selects the fast engine),
/// unless overridden.
bool forest_reference_enabled();

/// Runtime override: 1 forces the reference forest path, 0 forces the fast
/// engine, any negative value restores the environment default.
void set_forest_reference(int enabled);

}  // namespace chordal::support
