#include "support/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace chordal {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("Rng::next_below: bound must be positive");
  }
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) {
    throw std::invalid_argument("Rng::uniform_int: hi < lo (empty range)");
  }
  // Span arithmetic in unsigned space: hi - lo as signed overflows for
  // ranges wider than INT64_MAX, and the full-width span wraps +1 to 0.
  std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  std::uint64_t offset =
      span == ~std::uint64_t{0} ? next() : next_below(span + 1);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::vector<int> Rng::permutation(int n) {
  if (n < 0) throw std::invalid_argument("Rng::permutation: negative n");
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  shuffle(p);
  return p;
}

}  // namespace chordal
