#include "support/union_find.hpp"

#include <numeric>

namespace chordal {

UnionFind::UnionFind(int n)
    : parent_(static_cast<std::size_t>(n)),
      rank_(static_cast<std::size_t>(n), 0),
      num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::find(int x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(int a, int b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --num_sets_;
  return true;
}

}  // namespace chordal
