// Disjoint-set forest with union by rank and path halving. Used by the
// Kruskal construction of the clique forest (Section 3 of the paper).
#pragma once

#include <vector>

namespace chordal {

class UnionFind {
 public:
  explicit UnionFind(int n);

  int find(int x);
  /// Merge the sets containing a and b; returns false if already merged.
  bool unite(int a, int b);
  bool same(int a, int b) { return find(a) == find(b); }
  int num_sets() const { return num_sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int num_sets_;
};

}  // namespace chordal
