// Experiment E6: the Theorem 9 lower bound, reproduced empirically.
//
// Theorem 9: every (possibly randomized) r-round LOCAL algorithm with
// expected approximation 1 + eps for MIS on uniformly labeled paths needs
// r = Omega(1/eps). We run the natural r-round algorithm family - "join iff
// you are in the label-greedy MIS of every neighbor's (r-1)-ball" - whose
// measured ratio exhibits the matching 1 + Theta(1/r) floor, and print it
// next to the closed-form bound extracted from the proof.
#pragma once

#include <cstdint>

namespace chordal::lowerbound {

struct PathMisSample {
  int n = 0;
  int r = 0;
  double mean_set_size = 0.0;
  double mean_ratio = 0.0;   // alpha / E|I| >= 1
  double theory_floor = 0.0; // ratio floor implied by the Theorem 9 proof
};

/// Simulates `trials` uniformly labeled n-paths under the r-round local
/// greedy strategy; the output set is always independent (verified).
PathMisSample simulate_r_round_path_mis(int n, int r, int trials,
                                        std::uint64_t seed);

/// The proof of Theorem 9 bounds the per-vertex selection probability by
/// p <= (r + 5/4 + O(1/n)) / (2r + 3); the induced approximation-ratio
/// floor is (1/2) / p = (2r + 3) / (2r + 2.5) (n -> infinity).
double theorem9_ratio_floor(int r);

}  // namespace chordal::lowerbound
