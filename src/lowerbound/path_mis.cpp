#include "lowerbound/path_mis.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace chordal::lowerbound {

// The r-round strategy family: "markers + parity fill", scale s.
//
//  * A vertex is a marker iff its label beats every label within distance s
//    (computable in s rounds). Markers are pairwise non-adjacent; marker
//    gaps are ~2s in expectation with exponentially decaying tails.
//  * Every other vertex looks for the nearest marker to its left within
//    distance r - s (its marker status is known by round r) and joins iff
//    its offset from that marker is even and its right neighbor is not a
//    marker.
//
// Each member is a genuine r-round LOCAL algorithm. The two loss terms
// trade off through s - half a slot per odd marker gap (~1/(8s) per
// vertex) versus stretches with no marker within reach (~exp(-(r-s)/2s)) -
// so we report the best member per r, the honest upper-bound companion to
// the Theorem 9 lower bound: implied eps decays as ~Theta(log r / r).

namespace {

double run_strategy(int n, int r, int s, int trials, Rng& rng) {
  const int search = std::max(0, r - s);
  double total_size = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> label = rng.permutation(n);
    std::vector<char> marker(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      bool is_max = true;
      for (int u = std::max(0, v - s); is_max && u <= std::min(n - 1, v + s);
           ++u) {
        is_max = u == v || label[v] > label[u];
      }
      marker[v] = is_max ? 1 : 0;
    }
    std::vector<char> chosen(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      if (marker[v]) {
        chosen[v] = 1;
        continue;
      }
      int m = -1;
      for (int u = v - 1; u >= std::max(0, v - search); --u) {
        if (marker[u]) {
          m = u;
          break;
        }
      }
      if (m == -1) continue;
      bool right_is_marker = v + 1 < n && marker[v + 1];
      if ((v - m) % 2 == 0 && !right_is_marker) chosen[v] = 1;
    }
    // Safety: verify independence.
    int size = 0;
    for (int v = 0; v < n; ++v) {
      if (!chosen[v]) continue;
      ++size;
      if (v + 1 < n && chosen[v + 1]) {
        throw std::logic_error("lower bound sim: dependent output");
      }
    }
    total_size += size;
  }
  return total_size / trials;
}

}  // namespace

PathMisSample simulate_r_round_path_mis(int n, int r, int trials,
                                        std::uint64_t seed) {
  if (n < 2 || r < 1 || trials < 1) {
    throw std::invalid_argument("simulate_r_round_path_mis: bad parameters");
  }
  Rng rng(seed);
  PathMisSample sample;
  sample.n = n;
  sample.r = r;
  sample.theory_floor = theorem9_ratio_floor(r);
  const int opt = (n + 1) / 2;

  double best = 0.0;
  for (int s = 1; s <= std::max(1, r / 2); s *= 2) {
    best = std::max(best, run_strategy(n, r, s, trials, rng));
    if (r / 2 < 1) break;
  }
  sample.mean_set_size = best;
  sample.mean_ratio = static_cast<double>(opt) / sample.mean_set_size;
  return sample;
}

double theorem9_ratio_floor(int r) {
  return (2.0 * r + 3.0) / (2.0 * r + 2.5);
}

}  // namespace chordal::lowerbound
