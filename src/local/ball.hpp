// Round accounting and distance-d ball collection.
//
// In the LOCAL model an r-round algorithm is exactly one whose output at a
// node is a function of the node's distance-r ball; the headline algorithms
// of the paper are phrased as ball collections ("collect Gamma^{10k}(v)").
// The RoundLedger keeps one clock per node so the asynchronous phase
// structure of Algorithm 2 (nodes leave pruning at different times) is
// reproduced faithfully; the reported round complexity of a run is the
// maximum clock, matching the analysis in Lemma 12.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::local {

class RoundLedger {
 public:
  explicit RoundLedger(int num_nodes)
      : clock_(static_cast<std::size_t>(num_nodes), 0) {}

  /// Node spends `rounds` additional communication rounds.
  void charge(int node, std::int64_t rounds) { clock_[node] += rounds; }

  void charge_all(std::int64_t rounds) {
    for (auto& c : clock_) c += rounds;
  }

  /// Node waits (idles) until time t: clock = max(clock, t).
  void wait_until(int node, std::int64_t t) {
    clock_[node] = std::max(clock_[node], t);
  }

  /// Synchronizes a group of nodes to their common maximum (e.g. all nodes
  /// of one layer leaving the pruning phase together).
  void synchronize(std::span<const int> nodes);

  std::int64_t clock(int node) const { return clock_[node]; }

  /// The run's round complexity: the last node to finish.
  std::int64_t max_clock() const;

 private:
  std::vector<std::int64_t> clock_;
};

/// A node's collected distance-`radius` ball in the subgraph induced by
/// {u : active == nullptr || (*active)[u]}.
struct Ball {
  std::vector<VertexId> vertices;  // BFS order; vertices[0] == center
  Graph graph;   // induced subgraph, indices into `vertices`
  std::vector<int> dist;  // distance from center, per local index
};

/// Collects the ball and charges `radius` rounds to `center` on the ledger
/// (if provided) - flooding d hops costs d rounds.
Ball collect_ball(const Graph& g, int center, int radius,
                  const std::vector<char>* active = nullptr,
                  RoundLedger* ledger = nullptr);

}  // namespace chordal::local
