#include "local/ruling_set.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "local/cole_vishkin.hpp"
#include "obs/span.hpp"

namespace chordal::local {

std::vector<int> interval_distances_from(const PathIntervals& rep,
                                         std::size_t source, int max_level) {
  const std::size_t n = rep.vertices.size();
  std::vector<int> dist(n, -1);
  dist[source] = 0;
  // The distance-<=L set always spans a contiguous coordinate range, so BFS
  // reduces to growing a span and absorbing, per level, the not-yet-seen
  // intervals that touch it: a prefix of the lo-ascending order on the
  // right and a prefix of the hi-descending order on the left. Each vertex
  // is absorbed exactly once.
  std::vector<std::size_t> by_lo(n), by_hi(n);
  for (std::size_t i = 0; i < n; ++i) by_lo[i] = by_hi[i] = i;
  std::sort(by_lo.begin(), by_lo.end(), [&rep](std::size_t x, std::size_t y) {
    return rep.lo[x] < rep.lo[y];
  });
  std::sort(by_hi.begin(), by_hi.end(), [&rep](std::size_t x, std::size_t y) {
    return rep.hi[x] > rep.hi[y];
  });
  std::size_t right = 0, left = 0;
  int span_lo = rep.lo[source];
  int span_hi = rep.hi[source];
  for (int level = 1; max_level < 0 || level <= max_level; ++level) {
    int new_lo = span_lo, new_hi = span_hi;
    bool any = false;
    while (right < n && rep.lo[by_lo[right]] <= span_hi) {
      std::size_t v = by_lo[right++];
      if (dist[v] == -1 && rep.hi[v] >= span_lo) {
        dist[v] = level;
        any = true;
        new_lo = std::min(new_lo, rep.lo[v]);
        new_hi = std::max(new_hi, rep.hi[v]);
      }
    }
    while (left < n && rep.hi[by_hi[left]] >= span_lo) {
      std::size_t v = by_hi[left++];
      if (dist[v] == -1 && rep.lo[v] <= span_hi) {
        dist[v] = level;
        any = true;
        new_lo = std::min(new_lo, rep.lo[v]);
        new_hi = std::max(new_hi, rep.hi[v]);
      }
    }
    if (!any) break;
    span_lo = new_lo;
    span_hi = new_hi;
  }
  return dist;
}

RulingSetResult distance_k_mis_interval(const PathIntervals& rep, int k) {
  if (k < 1) throw std::invalid_argument("distance_k_mis_interval: k < 1");
  const std::size_t n = rep.vertices.size();
  RulingSetResult result;
  if (n == 0) return result;
  obs::Span span("distance-k MIS on G^k (ruling set)");
  span.note("k", k);
  span.note("n", static_cast<double>(n));

  // --- Symmetry breaking (measured rounds): Cole-Vishkin on the
  // rightmost-neighbor pseudoforest. succ(v) = the neighbor maximizing
  // (hi, id); following succ strictly increases (hi, id), so it is acyclic.
  std::vector<int> parent(n, -1);
  {
    // best vertex (by (hi, id)) among intervals with lo <= p, per position.
    std::vector<int> best_at(static_cast<std::size_t>(rep.num_positions), -1);
    auto better = [&](int x, int y) {  // is x better than y
      if (x == -1) return false;  // "no vertex" never wins (positions before
                                  // the first interval leave -1 slots)
      if (y == -1) return true;
      if (rep.hi[x] != rep.hi[y]) return rep.hi[x] > rep.hi[y];
      return rep.vertices[x] > rep.vertices[y];
    };
    for (std::size_t v = 0; v < n; ++v) {
      int& slot = best_at[rep.lo[v]];
      if (better(static_cast<int>(v), slot)) slot = static_cast<int>(v);
    }
    for (int p = 1; p < rep.num_positions; ++p) {
      if (best_at[p] == -1 || better(best_at[p - 1], best_at[p])) {
        best_at[p] = best_at[p - 1];
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      int b = best_at[rep.hi[v]];
      if (b != static_cast<int>(v)) parent[v] = b;
    }
  }
  std::vector<std::int64_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = rep.vertices[v];
  CvResult cv = cole_vishkin_pseudoforest(ids, parent);
  // Each Cole-Vishkin iteration is simulated on G^k (k rounds per hop) and
  // the fragment sweeps after symmetry breaking cost a constant number of
  // distance-k exchanges.
  result.rounds = static_cast<std::int64_t>(cv.rounds + 3) * k;
  // The G^k simulation relays each exchange over k hops: every vertex
  // forwards its k-neighborhood's words each sweep round.
  span.set_rounds(result.rounds);
  span.add_messages(3 * static_cast<std::int64_t>(k) * static_cast<std::int64_t>(n),
                    3 * static_cast<std::int64_t>(k) * static_cast<std::int64_t>(n) * 2);

  // --- Canonical anchor selection: repeatedly take the (hi, id)-smallest
  // vertex at distance > k from every chosen anchor. Produces a maximal
  // independent set of G^k. Vertices left of the scan pointer stay covered
  // forever, and each anchor's BFS is capped at k levels and restricted to
  // a coordinate window that k hops cannot escape, so the selection runs in
  // near-linear total time.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&rep](std::size_t x, std::size_t y) {
    if (rep.hi[x] != rep.hi[y]) return rep.hi[x] < rep.hi[y];
    return rep.vertices[x] < rep.vertices[y];
  });
  std::vector<std::size_t> by_lo(n);
  for (std::size_t i = 0; i < n; ++i) by_lo[i] = i;
  std::sort(by_lo.begin(), by_lo.end(),
            [&rep](std::size_t x, std::size_t y) {
              return rep.lo[x] < rep.lo[y];
            });
  int max_len = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_len = std::max(max_len, rep.hi[i] - rep.lo[i] + 1);
  }
  std::vector<char> covered(n, 0);
  std::size_t ptr = 0;
  for (;;) {
    while (ptr < n && covered[order[ptr]]) ++ptr;
    if (ptr == n) break;
    std::size_t next = order[ptr];
    result.anchors.push_back(next);
    // One hop extends the reachable span by at most max_len positions.
    long long reach = static_cast<long long>(k + 1) * max_len;
    int win_lo = static_cast<int>(
        std::max<long long>(0, rep.lo[next] - reach));
    int win_hi = static_cast<int>(rep.hi[next] + reach);
    std::vector<std::size_t> cand;
    auto first = std::lower_bound(
        by_lo.begin(), by_lo.end(), win_lo,
        [&rep](std::size_t v, int key) { return rep.lo[v] < key; });
    std::size_t anchor_local = 0;
    for (auto it = first; it != by_lo.end() && rep.lo[*it] <= win_hi; ++it) {
      if (rep.hi[*it] >= win_lo) {
        if (*it == next) anchor_local = cand.size();
        cand.push_back(*it);
      }
    }
    PathIntervals window;
    window.num_positions = rep.num_positions;
    for (std::size_t i : cand) {
      window.vertices.push_back(rep.vertices[i]);
      window.lo.push_back(rep.lo[i]);
      window.hi.push_back(rep.hi[i]);
    }
    auto dist = interval_distances_from(window, anchor_local, k);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (dist[i] != -1 && dist[i] <= k) covered[cand[i]] = 1;
    }
  }
  span.note("anchors", static_cast<double>(result.anchors.size()));
  return result;
}

}  // namespace chordal::local
