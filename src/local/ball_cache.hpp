// Cross-iteration ball/view cache with monotone-deactivation invalidation.
//
// The pruning drivers (Algorithm 3 / Lemma 12) have every active node
// re-derive its layer decision from its distance-10k ball at each peel
// iteration, and the simulator used to pay full price for that: a fresh BFS
// and local-view reconstruction per node per iteration. Lemma 5 makes that
// recomputation almost always redundant - between iterations the induced
// subgraph only ever *shrinks* (vertices are deactivated, never activated),
// and a node's restricted ball is determined entirely by the vertices
// inside it:
//
//   * every shortest restricted path that realizes a ball distance lies
//     inside the ball (its interior vertices sit at strictly smaller
//     distance), so deactivating vertices *outside* the ball cannot change
//     any member's distance, and
//   * a non-member was at restricted distance > r at build time and
//     deactivation only increases restricted distances, so it stays out.
//
// Hence a cached ball for v is bit-valid exactly until some vertex inside
// it is deactivated. BallCache tracks that with per-vertex deactivation
// epochs plus a reverse member index: deactivating v walks only the entries
// v belongs to (no scan of the cache), flipping their validity flag, so the
// per-lookup validity check is O(1). Growing a radius-r entry to r' resumes
// the BFS at the cached frontier (dist == r suffix) instead of re-flooding
// from the center; the discovery order of a fresh BFS is reproduced
// exactly, so the extended ball is bit-identical to a fresh collection.
//
// The cache is a simulator-speed optimization, never a round-complexity
// change: cache hits replay the exact RoundLedger charge and telemetry
// (counters, histogram samples, span round/message charges) of a fresh
// collection, so ledgers and telemetry JSON stay byte-identical to the
// uncached path. Stale entries rebuild through the PR-2 BallWorkspace path
// (a rebuild re-BFSing only inside the stale ball was rejected: the stale
// CSR enumerates neighbors in ball-local id order, which would change the
// BFS discovery order and break bit-identity with fresh collection).
//
// Invalidation-bound centers bypass: peeling deactivates vertices spread
// across the whole graph every iteration, so when the query radius reaches
// a constant fraction of the graph's diameter (the audits' 10k balls on
// small worklads) every entry dies before it is ever served and the cache
// would pay registration and residency for nothing. A per-entry wasted-
// rebuild counter detects that regime: after kMaxWastedRebuilds rebuilds
// that were invalidated without a single hit or extension, the center stops
// caching (each lookup recomputes exactly, at uncached cost) until the
// cache is destroyed. The policy depends only on the center's own entry
// history, so counters stay thread-invariant.
//
// Concurrency: one Shard per parallel_for worker. A shard owns the entries
// of the centers its worker processes (the static index partition gives
// every center a fixed worker for the cache's lifetime) plus its own
// workspace and reverse index, so parallel regions touch disjoint shard
// state. deactivate() must only be called between parallel regions (it is
// coordinator-side and walks all shards). Hit/miss accounting is per-shard
// and summed on read; because entry histories per center are independent of
// the partition, the cache.* counters are bit-identical at any
// CHORDAL_THREADS value.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cliqueforest/local_view.hpp"
#include "graph/graph.hpp"
#include "local/ball.hpp"
#include "local/workspace.hpp"
#include "support/cachectl.hpp"

namespace chordal::local {

class BallCache {
 public:
  class Shard;

  /// Result of a local-view lookup. `revision` is the entry's content
  /// version: two lookups of the same center returning equal revisions are
  /// guaranteed to have bit-identical ball and view, so drivers can memoize
  /// work derived from the view (see core/local_decision.cpp). `hit` means
  /// the call was served entirely from cache; on a hit the shard's distance
  /// stamps are *not* refreshed - call Shard::ensure_dists first if
  /// ball_dist queries are needed.
  struct ViewRef {
    const Ball* ball;
    const LocalView* view;
    std::uint64_t revision;
    bool hit;
  };

  struct Stats {
    std::int64_t hits = 0;           // served fully from cache
    std::int64_t misses = 0;         // full BFS rebuild (or view rebuild)
    std::int64_t extensions = 0;     // radius grown by frontier BFS
    std::int64_t invalidations = 0;  // entries killed by deactivation
    std::int64_t resident_words = 0; // words held by valid entries now
  };

  /// Shards match support::num_threads() at construction; all vertices
  /// start active. When `enabled` is false every lookup recomputes through
  /// the workspace path (bit-identical results, no memoization, no stats).
  explicit BallCache(const Graph& g);
  BallCache(const Graph& g, bool enabled);
  ~BallCache();
  BallCache(const BallCache&) = delete;
  BallCache& operator=(const BallCache&) = delete;

  bool enabled() const { return enabled_; }
  const Graph& graph() const { return *g_; }

  /// The activity mask lookups are restricted to. Owned by the cache so
  /// invalidation and the mask can never drift apart; drivers read it in
  /// place of their former local masks.
  const std::vector<char>& active() const { return active_; }

  /// Deactivates the given vertices (idempotent for already-inactive ones)
  /// and invalidates exactly the entries whose ball contains one of them,
  /// via the reverse member index - no cache scan. Coordinator-side only:
  /// never call inside a parallel region.
  void deactivate(std::span<const int> vertices);

  /// Deactivation/invalidation batches applied so far (the per-vertex epoch
  /// clock).
  std::uint64_t epoch() const { return epoch_; }

  /// Batch in which v was deactivated, or 0 while it is still active.
  /// Reset to 0 when v is reactivated - the epoch alone cannot distinguish
  /// incarnations, which is what activity_generation is for.
  std::uint64_t deactivation_epoch(int v) const { return deact_epoch_[v]; }

  /// True invalidation for the dynamic layer: kills every cached entry
  /// whose ball contains one of `vertices` (via the reverse member index),
  /// without touching the activity mask. Called after graph mutations (see
  /// rebind) with the adjacency-changed vertex set. Coordinator-side only.
  void invalidate_touched(std::span<const int> vertices);

  /// Re-activates previously deactivated vertices (idempotent for active
  /// ones). Monotone deactivation epochs cannot express this: a ball that
  /// excludes v because v was inactive at build time is *not* indexed under
  /// v, yet a fresh BFS could now absorb v - so besides flipping the mask
  /// this kills every entry containing v or a current graph neighbor of v
  /// (only balls holding a neighbor at distance <= r-1 can grow to reach
  /// v), resets v's deactivation epoch, and bumps its activity generation.
  /// Coordinator-side only.
  void reactivate(std::span<const int> vertices);

  /// Incarnation counter: bumped each time v is reactivated. Consumers that
  /// key derived state by vertex id use it to detect slot reuse across a
  /// remove/re-insert cycle instead of aliasing the old incarnation.
  std::uint64_t activity_generation(int v) const { return activity_gen_[v]; }

  /// Swaps in a fresh graph snapshot (DynamicChordal::materialize keeps
  /// slot ids stable) and grows the per-vertex tables for new slots (born
  /// active). The caller must then invalidate_touched the adjacency-changed
  /// slots and reconcile activity (reactivate revived slots, deactivate
  /// killed ones). Entries whose ball region is untouched stay bit-valid:
  /// their members' rows and the restricted distances are unchanged in the
  /// new snapshot.
  void rebind(const Graph& g);

  Shard& shard(std::size_t worker) { return *shards_[worker]; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Totals across shards. Zero when the cache is disabled.
  Stats stats() const;

  /// Adds cache.hits/misses/extensions/invalidations counters and the
  /// cache.resident_words gauge to obs::current(). Called once by the
  /// destructor; explicit calls mark the stats published so the destructor
  /// becomes a no-op. Publishes nothing when disabled, so telemetry stays
  /// byte-identical to a run without the cache compiled in.
  void publish_stats();

 private:
  friend class Shard;

  void reset_dist_stamps();

  const Graph* g_;
  bool enabled_;
  std::vector<char> active_;
  std::vector<std::uint64_t> deact_epoch_;
  std::vector<std::uint64_t> activity_gen_;
  std::uint64_t epoch_ = 0;
  bool published_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Per-worker cache shard; also the uncached fall-through path when the
/// cache is disabled. Never shared between concurrent workers.
class BallCache::Shard {
 public:
  /// Identical observable behavior to local::collect_ball(g, center,
  /// radius, &cache.active(), ledger, ws, out): same Ball, same ledger
  /// charge, same telemetry - but served from cache when possible. The
  /// returned reference is stable until the next lookup of this center on
  /// this shard (or its invalidation).
  const Ball& collect_ball(int center, int radius,
                           RoundLedger* ledger = nullptr);

  /// Identical view to local::compute_local_view(g, center, radius,
  /// &cache.active(), ws, out). After a non-hit return the distance stamps
  /// answer for `center`; after a hit call ensure_dists first.
  ViewRef local_view(int center, int radius);

  /// Distance from the current stamp center to v inside its cached ball,
  /// or -1 when v is outside it. The cache-aware replacement for
  /// BallWorkspace::last_ball_dist.
  int ball_dist(int v) const {
    return dist_src_ != nullptr && ws_.visit_stamp[v] == ws_.epoch
               ? (*dist_src_)[static_cast<std::size_t>(ws_.local_id[v])]
               : -1;
  }

  /// Re-stamps the distance tables from `center`'s cached entry so
  /// ball_dist answers for it. O(ball) when the stamp center changes, O(1)
  /// when it is already current. `center` must have a valid entry (i.e. the
  /// preceding lookup for it returned hit).
  void ensure_dists(int center);

  BallWorkspace& workspace() { return ws_; }

 private:
  friend class BallCache;

  struct Entry {
    int center = -1;
    int radius = -1;
    std::int32_t slot = -1;
    bool valid = false;
    bool has_view = false;
    bool used_since_build = false;   // hit or extension since last rebuild
    std::uint8_t wasted_rebuilds = 0;  // consecutive never-used invalidations
    std::uint32_t build_id = 0;    // reverse-index registration tag; bumps
                                   // on full rebuild only, so members added
                                   // by extension share the live tag
    std::uint64_t revision = 0;    // content version; bumps on rebuild AND
                                   // extension (drives ViewRef memoization)
    std::uint64_t built_epoch = 0;
    std::int64_t resident_words = 0;
    Ball ball;
    LocalView view;
  };

  struct MemberRef {
    std::int32_t slot;
    std::uint32_t build_id;
  };

  explicit Shard(BallCache* owner) : owner_(owner) {}

  Entry& entry_for(int center);
  void rebuild(Entry& e, int center, int radius);
  void extend(Entry& e, int to_radius);
  void add_view(Entry& e, int radius);
  void register_members(const Entry& e, std::size_t from_index);
  /// Kills every live entry whose ball contains v; returns the number of
  /// entries invalidated and adds their resident words to *words_freed
  /// (both thread-count invariant, unlike any per-shard ordering).
  int invalidate_refs(int v, std::int64_t* words_freed);
  /// Extends the per-vertex tables after a rebind grew the graph.
  void grow_tables(std::size_t n);
  void stamp_dists(const Entry& e);
  void charge_collect(const Ball& ball, int radius, RoundLedger* ledger);

  BallCache* owner_;
  BallWorkspace ws_;
  std::vector<std::int32_t> slot_of_;            // per center, -1 = none
  std::vector<Entry> entries_;
  std::vector<std::vector<MemberRef>> member_of_;  // per vertex
  std::uint64_t revision_counter_ = 0;
  const std::vector<int>* dist_src_ = nullptr;  // dist array of the stamp
  int dists_for_ = -1;                          // center of current stamp
  Ball scratch_ball_;      // uncached-mode storage
  LocalView scratch_view_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t extensions_ = 0;
  std::int64_t invalidations_ = 0;
  std::int64_t resident_words_ = 0;
};

}  // namespace chordal::local
