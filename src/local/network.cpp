#include "local/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::local {

Network::Network(const Graph& g)
    : graph_(&g),
      inboxes_(static_cast<std::size_t>(g.num_vertices())),
      pending_(static_cast<std::size_t>(g.num_vertices())) {
  stats_.node_max_inbox_messages.assign(
      static_cast<std::size_t>(g.num_vertices()), 0);
  stats_.node_max_inbox_words.assign(
      static_cast<std::size_t>(g.num_vertices()), 0);
}

Network::~Network() { publish_metrics(); }

void Network::send(int from, int to, Payload data) {
  if (!graph_->has_edge(from, to)) {
    throw std::invalid_argument("Network::send: recipient is not a neighbor");
  }
  auto words = static_cast<std::int64_t>(data.size());
  ++stats_.total_messages;
  stats_.total_payload_words += words;
  stats_.max_message_words = std::max(stats_.max_message_words, words);
  if (pending_[to].empty()) dirty_.push_back(to);
  std::int64_t id = next_message_id();
  obs::trace_emit(nullptr, obs::TraceEventKind::kNetSend, from, rounds_, to,
                  words, id);
  pending_[to].push_back({from, Message{from, PayloadRef(std::move(data)),
                                        id}});
}

void Network::broadcast(int from, const Payload& data) {
  // One shared slab for all copies: stats below still account d full
  // messages, but the simulator stores the payload words once. Each copy is
  // a distinct LOCAL-model message, so each gets its own lineage id.
  PayloadRef shared{Payload(data)};
  auto words = static_cast<std::int64_t>(data.size());
  for (int to : graph_->neighbors(from)) {
    ++stats_.total_messages;
    stats_.total_payload_words += words;
    stats_.max_message_words = std::max(stats_.max_message_words, words);
    if (pending_[to].empty()) dirty_.push_back(to);
    std::int64_t id = next_message_id();
    obs::trace_emit(nullptr, obs::TraceEventKind::kNetSend, from, rounds_, to,
                    words, id);
    pending_[to].push_back({from, Message{from, shared, id}});
  }
}

std::int64_t Network::next_message_id() {
  // Lineage ids must be unique across every Network a trace covers (a run
  // may simulate several algorithms, each on its own Network), so a live
  // tracer hands them out; without one the per-network counter suffices.
  if (!support::in_parallel_region()) {
    if (obs::Tracer* t = obs::tracer()) return t->next_message_id();
  }
  return ++next_msg_id_;
}

void Network::deliver() {
  // Nodes with neither queued traffic nor a stale inbox contribute zero to
  // every sum and never raise a maximum, so touching only the dirty list
  // leaves NetworkStats bit-identical to the full O(n) sweep.
  for (int v : live_inboxes_) inboxes_[v].clear();
  live_inboxes_.clear();
  std::sort(dirty_.begin(), dirty_.end());
  std::int64_t round_messages = 0;
  std::int64_t round_words = 0;
  obs::Tracer* tr =
      support::in_parallel_region() ? nullptr : obs::tracer();
  for (int v : dirty_) {
    std::int64_t inbox_words = 0;
    for (auto& [from, msg] : pending_[v]) {
      auto words = static_cast<std::int64_t>(msg.data.size());
      inbox_words += words;
      if (tr != nullptr) {
        tr->emit(obs::TraceEventKind::kNetDeliver, v, rounds_, from, words,
                 msg.id);
      }
      inboxes_[v].push_back(std::move(msg));
    }
    auto inbox_messages = static_cast<std::int64_t>(inboxes_[v].size());
    round_messages += inbox_messages;
    round_words += inbox_words;
    auto& node_msgs = stats_.node_max_inbox_messages[v];
    auto& node_words = stats_.node_max_inbox_words[v];
    node_msgs = std::max(node_msgs, inbox_messages);
    node_words = std::max(node_words, inbox_words);
    stats_.max_inbox_messages =
        std::max(stats_.max_inbox_messages, inbox_messages);
    stats_.max_inbox_words = std::max(stats_.max_inbox_words, inbox_words);
    pending_[v].clear();
  }
  if (tr != nullptr) {
    tr->emit(obs::TraceEventKind::kNetRound, -1, rounds_, round_messages,
             round_words);
  }
  live_inboxes_ = std::move(dirty_);
  dirty_.clear();
  ++rounds_;
  if (obs::Registry* reg = obs::current()) {
    reg->histogram("net.round_messages")
        .add(static_cast<double>(round_messages));
    reg->histogram("net.round_payload_words")
        .add(static_cast<double>(round_words));
    obs::Span::charge_rounds(1);
    obs::Span::charge_messages(round_messages, round_words);
  }
}

void Network::publish_metrics() const {
  obs::Registry* reg = obs::current();
  if (reg == nullptr || published_) return;
  // Publish whenever the run left any trace. Gating on rounds_ alone
  // silently dropped nonzero totals when traffic was sent but deliver()
  // was never called — exactly the runs whose ledgers need inspecting.
  if (rounds_ == 0 && stats_.total_messages == 0) return;
  published_ = true;
  reg->counter("net.messages").add(stats_.total_messages);
  reg->counter("net.payload_words").add(stats_.total_payload_words);
  reg->counter("net.rounds").add(rounds_);
  auto& msgs = reg->histogram("net.node_max_inbox_messages");
  auto& words = reg->histogram("net.node_max_inbox_words");
  for (int v = 0; v < num_nodes(); ++v) {
    msgs.add(static_cast<double>(stats_.node_max_inbox_messages[v]));
    words.add(static_cast<double>(stats_.node_max_inbox_words[v]));
  }
}

}  // namespace chordal::local
