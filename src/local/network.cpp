#include "local/network.hpp"

#include <stdexcept>

namespace chordal::local {

Network::Network(const Graph& g)
    : graph_(&g),
      inboxes_(static_cast<std::size_t>(g.num_vertices())),
      pending_(static_cast<std::size_t>(g.num_vertices())) {}

void Network::send(int from, int to, Payload data) {
  if (!graph_->has_edge(from, to)) {
    throw std::invalid_argument("Network::send: recipient is not a neighbor");
  }
  pending_[to].push_back({from, Message{from, std::move(data)}});
}

void Network::broadcast(int from, const Payload& data) {
  for (int to : graph_->neighbors(from)) {
    pending_[to].push_back({from, Message{from, data}});
  }
}

void Network::deliver() {
  for (int v = 0; v < num_nodes(); ++v) {
    inboxes_[v].clear();
    for (auto& [from, msg] : pending_[v]) {
      inboxes_[v].push_back(std::move(msg));
    }
    pending_[v].clear();
  }
  ++rounds_;
}

}  // namespace chordal::local
