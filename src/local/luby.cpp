#include "local/luby.hpp"

#include <algorithm>

#include "local/network.hpp"
#include "obs/span.hpp"
#include "support/rng.hpp"

namespace chordal::local {

LubyResult luby_mis(const Graph& g, std::uint64_t seed) {
  const int n = g.num_vertices();
  obs::Span span("Luby MIS (draw/join/deactivate)");
  Network net(g);
  Rng rng(seed);

  enum class State { kActive, kIn, kOut };
  std::vector<State> state(static_cast<std::size_t>(n), State::kActive);
  std::vector<std::uint64_t> draw(static_cast<std::size_t>(n), 0);

  LubyResult result;
  auto any_active = [&] {
    return std::any_of(state.begin(), state.end(),
                       [](State s) { return s == State::kActive; });
  };

  while (any_active()) {
    ++result.phases;
    // Round 1: active nodes draw and broadcast their value.
    for (int v = 0; v < n; ++v) {
      if (state[v] != State::kActive) continue;
      draw[v] = rng.next();
      net.broadcast(v, {static_cast<std::int64_t>(draw[v] >> 1), v});
    }
    net.deliver();
    // Round 2: a node joins if its (value, id) beats every active
    // neighbor's; joiners announce.
    std::vector<char> joined(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      if (state[v] != State::kActive) continue;
      bool wins = true;
      for (const auto& msg : net.inbox(v)) {
        std::uint64_t their = static_cast<std::uint64_t>(msg.data[0]);
        std::uint64_t mine = draw[v] >> 1;
        if (their > mine || (their == mine && msg.data[1] > v)) wins = false;
      }
      if (wins) {
        joined[v] = 1;
        net.broadcast(v, {1});
      }
    }
    net.deliver();
    // Round 3: joiners enter the MIS; their neighbors leave; everyone
    // re-announces liveness implicitly by the next phase's broadcasts.
    for (int v = 0; v < n; ++v) {
      if (joined[v]) {
        state[v] = State::kIn;
        continue;
      }
      if (state[v] != State::kActive) continue;
      if (!net.inbox(v).empty()) state[v] = State::kOut;
    }
    net.deliver();  // liveness settling round
  }
  result.rounds = net.rounds();
  for (int v = 0; v < n; ++v) {
    if (state[v] == State::kIn) result.independent_set.push_back(v);
  }
  span.note("phases", result.phases);
  span.note("mis_size", static_cast<double>(result.independent_set.size()));
  return result;
}

}  // namespace chordal::local
