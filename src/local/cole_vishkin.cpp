#include "local/cole_vishkin.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/span.hpp"

namespace chordal::local {

namespace {

/// Index of the lowest bit where a and b differ; a != b required.
int lowest_differing_bit(std::uint64_t a, std::uint64_t b) {
  return __builtin_ctzll(a ^ b);
}

}  // namespace

CvResult cole_vishkin_pseudoforest(std::span<const std::int64_t> ids,
                                   std::span<const int> parent) {
  const std::size_t n = ids.size();
  if (parent.size() != n) {
    throw std::invalid_argument("cole_vishkin: ids/parent size mismatch");
  }
  obs::Span span("CV color reduction");
  CvResult result;
  std::vector<std::uint64_t> color(n);
  std::int64_t non_roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    color[v] = static_cast<std::uint64_t>(ids[v]);
    if (parent[v] >= 0) {
      ++non_roots;
      if (ids[parent[v]] == ids[v]) {
        throw std::invalid_argument("cole_vishkin: parent shares id");
      }
    }
  }

  // Phase 1: iterate new = 2 * i + bit_i(color) where i is the lowest bit in
  // which the node's color differs from its parent's; roots compare bit 0
  // against an imaginary parent. Each iteration reads the parent's current
  // color: one round.
  auto max_color = [&color] {
    return color.empty() ? 0 : *std::max_element(color.begin(), color.end());
  };
  while (max_color() >= 6) {
    std::vector<std::uint64_t> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (parent[v] < 0) {
        next[v] = color[v] & 1u;  // i = 0 versus the imaginary parent
      } else {
        int i = lowest_differing_bit(color[v], color[parent[v]]);
        next[v] = 2 * static_cast<std::uint64_t>(i) + ((color[v] >> i) & 1u);
      }
    }
    color = std::move(next);
    ++result.rounds;
  }

  // Phase 2: eliminate colors 5, 4, 3. Per target color: a shift-down round
  // (everyone adopts the parent's color, so all children of a node agree,
  // roots rotate their color) and a recolor round (nodes holding the target
  // color pick a free color in {0,1,2}: they now conflict with at most their
  // parent's color and their uniform children color).
  for (std::uint64_t target = 5; target >= 3; --target) {
    std::vector<std::uint64_t> shifted(n);
    for (std::size_t v = 0; v < n; ++v) {
      shifted[v] = parent[v] < 0 ? (color[v] + 1) % 3 : color[parent[v]];
    }
    ++result.rounds;
    std::vector<std::uint64_t> chosen = shifted;
    for (std::size_t v = 0; v < n; ++v) {
      if (shifted[v] != target) continue;
      std::uint64_t parent_color = parent[v] < 0 ? target : shifted[parent[v]];
      std::uint64_t children_color = color[v];  // all children adopted this
      for (std::uint64_t c = 0; c < 3; ++c) {
        if (c != parent_color && c != children_color) {
          chosen[v] = c;
          break;
        }
      }
    }
    ++result.rounds;
    color = std::move(chosen);
  }

  result.colors.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    result.colors[v] = static_cast<int>(color[v]);
  }
  // Bandwidth model: every round each non-root reads its parent's current
  // color - one 1-word message per non-root per round.
  span.set_rounds(result.rounds);
  span.add_messages(result.rounds * non_roots, result.rounds * non_roots);
  return result;
}

CvResult cole_vishkin_path(std::span<const std::int64_t> ids) {
  std::vector<int> parent(ids.size());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    parent[v] = static_cast<int>(v) - 1;
  }
  return cole_vishkin_pseudoforest(ids, parent);
}

}  // namespace chordal::local
