#include "local/ball_cache.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace chordal::local {

namespace {

// Rebuilds of one center that died without serving a hit (or extension)
// before the center stops caching. Peel-style drivers whose deactivations
// touch every ball each iteration trip this after two iterations, bounding
// the cache's overhead (registration, residency) at roughly two wasted
// rebuilds per center; hit-friendly regimes never trip it.
constexpr std::uint8_t kMaxWastedRebuilds = 2;

std::int64_t ball_words(const Ball& ball) {
  return static_cast<std::int64_t>(ball.vertices.size() +
                                   2 * ball.graph.num_edges());
}

std::int64_t view_words(const LocalView& view) {
  std::int64_t words = static_cast<std::int64_t>(
      view.trusted_vertices.size() + 2 * view.forest_edges.size());
  for (const auto& clique : view.cliques) {
    words += static_cast<std::int64_t>(clique.size());
  }
  return words;
}

/// Grows an exact radius-`from_radius` ball to `to_radius` by resuming the
/// BFS at the cached frontier. Reproduces a fresh collect_ball_core run
/// bit-for-bit: the cached vertex list is exactly the prefix a fresh BFS
/// would discover (entry validity guarantees no member was deactivated, so
/// member distances are unchanged; interior vertices were already fully
/// expanded at build time), and frontier/new vertices expand against the
/// current activity mask exactly as a fresh run would. Leaves ws stamped
/// with the full extended ball.
void extend_ball_core(const Graph& g, int from_radius, int to_radius,
                      const std::vector<char>& active, BallWorkspace& ws,
                      Ball& ball) {
  ws.ensure(g);
  const std::uint64_t visit = ++ws.epoch;
  const std::size_t old_size = ball.vertices.size();
  for (std::size_t i = 0; i < old_size; ++i) {
    ws.visit_stamp[ball.vertices[i]] = visit;
    ws.local_id[ball.vertices[i]] = static_cast<int>(i);
  }
  // dist is nondecreasing in BFS order, so the unexpanded frontier
  // (dist == from_radius) is a suffix of the cached list.
  std::size_t head = old_size;
  while (head > 0 && ball.dist[head - 1] == from_radius) --head;
  for (; head < ball.vertices.size(); ++head) {
    int u = static_cast<int>(ball.vertices[head]);
    int du = ball.dist[head];
    if (du >= to_radius) continue;
    for (VertexId w : g.neighbors(u)) {
      if (ws.visit_stamp[w] == visit) continue;
      if (!active[w]) continue;
      ws.visit_stamp[w] = visit;
      ws.local_id[w] = static_cast<int>(ball.vertices.size());
      ball.vertices.push_back(w);
      ball.dist.push_back(du + 1);
    }
  }
  if (ball.vertices.size() == old_size) return;  // CSR already exact
  // Reassemble the induced CSR over the extended set: cached vertices can
  // gain edges to the new ring. Identical to the collect_ball_core tail.
  const int k = static_cast<int>(ball.vertices.size());
  ws.offsets.assign(static_cast<std::size_t>(k) + 1, 0);
  for (int i = 0; i < k; ++i) {
    for (VertexId w : g.neighbors(static_cast<int>(ball.vertices[i]))) {
      if (ws.visit_stamp[w] == visit) ++ws.offsets[i + 1];
    }
  }
  for (int i = 0; i < k; ++i) ws.offsets[i + 1] += ws.offsets[i];
  ws.adj.resize(static_cast<std::size_t>(ws.offsets[k]));
  for (int i = 0; i < k; ++i) {
    EdgeIndex cursor = ws.offsets[i];
    for (VertexId w : g.neighbors(static_cast<int>(ball.vertices[i]))) {
      if (ws.visit_stamp[w] == visit) {
        ws.adj[static_cast<std::size_t>(cursor++)] =
            static_cast<VertexId>(ws.local_id[w]);
      }
    }
    std::sort(ws.adj.begin() + ws.offsets[i], ws.adj.begin() + cursor);
  }
  ball.graph.assign_csr(k, ws.offsets, ws.adj);
}

}  // namespace

BallCache::BallCache(const Graph& g)
    : BallCache(g, support::cache_enabled()) {}

BallCache::BallCache(const Graph& g, bool enabled)
    : g_(&g),
      enabled_(enabled),
      active_(static_cast<std::size_t>(g.num_vertices()), 1),
      deact_epoch_(static_cast<std::size_t>(g.num_vertices()), 0),
      activity_gen_(static_cast<std::size_t>(g.num_vertices()), 0) {
  int workers = support::num_threads();
  shards_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    shards_.emplace_back(new Shard(this));
  }
}

BallCache::~BallCache() { publish_stats(); }

void BallCache::deactivate(std::span<const int> vertices) {
  ++epoch_;
  for (int v : vertices) {
    if (!active_[v]) continue;
    active_[v] = 0;
    deact_epoch_[v] = epoch_;
    if (!enabled_) continue;
    int killed = 0;
    std::int64_t words_freed = 0;
    for (auto& shard : shards_) {
      killed += shard->invalidate_refs(v, &words_freed);
    }
    if (killed > 0) {
      // One event per deactivated vertex, aggregated over shards: the set
      // of live entries containing v is thread-count invariant, but their
      // distribution across shards (and hence any per-entry emission
      // order) is not. Coordinator-side, so route past stale worker
      // wiring of the shard workspaces.
      obs::trace_emit(nullptr, obs::TraceEventKind::kCacheInvalidate, v,
                      static_cast<std::int32_t>(epoch_), killed, words_freed);
    }
  }
  if (!enabled_) return;
  // Distance stamps may refer to an entry that just died; force re-stamping.
  reset_dist_stamps();
}

void BallCache::reset_dist_stamps() {
  for (auto& shard : shards_) {
    shard->dists_for_ = -1;
    shard->dist_src_ = nullptr;
  }
}

void BallCache::invalidate_touched(std::span<const int> vertices) {
  if (!enabled_) return;
  ++epoch_;
  for (int v : vertices) {
    if (v < 0 || static_cast<std::size_t>(v) >= active_.size()) continue;
    int killed = 0;
    std::int64_t words_freed = 0;
    for (auto& shard : shards_) {
      killed += shard->invalidate_refs(v, &words_freed);
    }
    if (killed > 0) {
      obs::trace_emit(nullptr, obs::TraceEventKind::kCacheInvalidate, v,
                      static_cast<std::int32_t>(epoch_), killed, words_freed);
    }
  }
  reset_dist_stamps();
}

void BallCache::reactivate(std::span<const int> vertices) {
  ++epoch_;
  for (int v : vertices) {
    if (v < 0 || static_cast<std::size_t>(v) >= active_.size()) continue;
    if (active_[v]) continue;
    active_[v] = 1;
    deact_epoch_[v] = 0;
    ++activity_gen_[v];
    if (!enabled_) continue;
    // A cached ball is not indexed under v (v was inactive at build time),
    // yet after reactivation a fresh BFS from its center could absorb v -
    // exactly when the ball holds a neighbor of v at distance <= r-1. Kill
    // every entry containing v (stale-incarnation refs) or any current
    // neighbor of v; the rest are bit-valid as-is.
    int killed = 0;
    std::int64_t words_freed = 0;
    for (auto& shard : shards_) {
      killed += shard->invalidate_refs(v, &words_freed);
    }
    for (VertexId w : g_->neighbors(v)) {
      for (auto& shard : shards_) {
        killed += shard->invalidate_refs(static_cast<int>(w), &words_freed);
      }
    }
    if (killed > 0) {
      obs::trace_emit(nullptr, obs::TraceEventKind::kCacheInvalidate, v,
                      static_cast<std::int32_t>(epoch_), killed, words_freed);
    }
  }
  if (!enabled_) return;
  reset_dist_stamps();
}

void BallCache::rebind(const Graph& g) {
  g_ = &g;
  auto n = static_cast<std::size_t>(g.num_vertices());
  if (active_.size() < n) {
    active_.resize(n, 1);
    deact_epoch_.resize(n, 0);
    activity_gen_.resize(n, 0);
  }
  for (auto& shard : shards_) shard->grow_tables(n);
  reset_dist_stamps();
}

BallCache::Stats BallCache::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    s.hits += shard->hits_;
    s.misses += shard->misses_;
    s.extensions += shard->extensions_;
    s.invalidations += shard->invalidations_;
    s.resident_words += shard->resident_words_;
  }
  return s;
}

void BallCache::publish_stats() {
  if (published_ || !enabled_) return;
  published_ = true;
  obs::Registry* reg = obs::current();
  if (reg == nullptr) return;
  Stats s = stats();
  reg->counter("cache.hits").add(s.hits);
  reg->counter("cache.misses").add(s.misses);
  reg->counter("cache.extensions").add(s.extensions);
  reg->counter("cache.invalidations").add(s.invalidations);
  reg->histogram("cache.resident_words").add(
      static_cast<double>(s.resident_words));
}

BallCache::Shard::Entry& BallCache::Shard::entry_for(int center) {
  if (slot_of_.empty()) {
    slot_of_.assign(static_cast<std::size_t>(owner_->g_->num_vertices()), -1);
  }
  std::int32_t slot = slot_of_[static_cast<std::size_t>(center)];
  if (slot < 0) {
    slot = static_cast<std::int32_t>(entries_.size());
    entries_.emplace_back();
    entries_.back().slot = slot;
    entries_.back().center = center;
    slot_of_[static_cast<std::size_t>(center)] = slot;
  }
  return entries_[static_cast<std::size_t>(slot)];
}

void BallCache::Shard::register_members(const Entry& e,
                                        std::size_t from_index) {
  if (member_of_.empty()) {
    member_of_.resize(static_cast<std::size_t>(owner_->g_->num_vertices()));
  }
  for (std::size_t i = from_index; i < e.ball.vertices.size(); ++i) {
    member_of_[static_cast<std::size_t>(e.ball.vertices[i])].push_back(
        {e.slot, e.build_id});
  }
}

int BallCache::Shard::invalidate_refs(int v, std::int64_t* words_freed) {
  if (member_of_.empty()) return 0;
  int killed = 0;
  auto& refs = member_of_[static_cast<std::size_t>(v)];
  for (MemberRef ref : refs) {
    Entry& e = entries_[static_cast<std::size_t>(ref.slot)];
    if (e.valid && e.build_id == ref.build_id) {
      e.valid = false;
      resident_words_ -= e.resident_words;
      *words_freed += e.resident_words;
      ++killed;
      e.resident_words = 0;
      ++invalidations_;
      if (e.used_since_build) {
        e.wasted_rebuilds = 0;
      } else if (e.wasted_rebuilds < kMaxWastedRebuilds) {
        ++e.wasted_rebuilds;
      }
    }
  }
  refs.clear();
  return killed;
}

void BallCache::Shard::grow_tables(std::size_t n) {
  // Lazily-built tables stay empty until first use; built ones must cover
  // the new slot range (new slots: no entry, no memberships).
  if (!slot_of_.empty() && slot_of_.size() < n) slot_of_.resize(n, -1);
  if (!member_of_.empty() && member_of_.size() < n) member_of_.resize(n);
}

void BallCache::Shard::rebuild(Entry& e, int center, int radius) {
  ++misses_;
  if (e.valid) {
    resident_words_ -= e.resident_words;
    e.resident_words = 0;
  }
  detail::collect_ball_core(*owner_->g_, center, radius, &owner_->active_,
                            ws_, e.ball);
  e.radius = radius;
  e.has_view = false;
  e.used_since_build = false;
  e.revision = ++revision_counter_;
  ++e.build_id;
  e.built_epoch = owner_->epoch_;
  if (e.wasted_rebuilds >= kMaxWastedRebuilds) {
    // Invalidation-bound center: serve the fresh ball but stop caching it,
    // so the reverse index and resident set stop churning (see header).
    e.valid = false;
    e.resident_words = 0;
  } else {
    e.valid = true;
    e.resident_words = ball_words(e.ball);
    resident_words_ += e.resident_words;
    register_members(e, 0);
  }
  obs::trace_emit(ws_.trace, obs::TraceEventKind::kCacheMiss, center,
                  static_cast<std::int32_t>(owner_->epoch_), radius,
                  static_cast<std::int64_t>(e.ball.vertices.size()));
  dist_src_ = &e.ball.dist;
  dists_for_ = center;
}

void BallCache::Shard::extend(Entry& e, int to_radius) {
  ++extensions_;
  resident_words_ -= e.resident_words;
  const std::size_t old_size = e.ball.vertices.size();
  extend_ball_core(*owner_->g_, e.radius, to_radius, owner_->active_, ws_,
                   e.ball);
  e.radius = to_radius;
  e.has_view = false;  // the view was derived at the old radius
  e.used_since_build = true;  // the cached prefix did useful work
  e.revision = ++revision_counter_;
  e.resident_words = ball_words(e.ball);
  resident_words_ += e.resident_words;
  register_members(e, old_size);  // same build_id: live-tagged for refs
  obs::trace_emit(ws_.trace, obs::TraceEventKind::kCacheExtend, e.center,
                  static_cast<std::int32_t>(owner_->epoch_), to_radius,
                  static_cast<std::int64_t>(e.ball.vertices.size()));
  dist_src_ = &e.ball.dist;
  dists_for_ = e.center;
}

void BallCache::Shard::add_view(Entry& e, int radius) {
  detail::view_from_ball(e.ball, radius, ws_, e.view);
  e.has_view = true;
  if (!e.valid) return;  // bypassed entry: not resident, never served again
  std::int64_t words = view_words(e.view);
  e.resident_words += words;
  resident_words_ += words;
}

void BallCache::Shard::stamp_dists(const Entry& e) {
  ws_.ensure(*owner_->g_);
  const std::uint64_t visit = ++ws_.epoch;
  for (std::size_t i = 0; i < e.ball.vertices.size(); ++i) {
    ws_.visit_stamp[e.ball.vertices[i]] = visit;
    ws_.local_id[e.ball.vertices[i]] = static_cast<int>(i);
  }
  dist_src_ = &e.ball.dist;
  dists_for_ = e.center;
}

void BallCache::Shard::ensure_dists(int center) {
  if (dists_for_ == center) return;
  Entry& e = entry_for(center);
  assert(e.valid);
  stamp_dists(e);
}

void BallCache::Shard::charge_collect(const Ball& ball, int radius,
                                      RoundLedger* ledger) {
  // Exactly the observable side effects of local::collect_ball, replayed
  // from the cached ball so hit and miss paths are indistinguishable in
  // ledgers and telemetry.
  if (ledger != nullptr) {
    ledger->charge(static_cast<int>(ball.vertices[0]), radius);
  }
  std::int64_t words = ball_words(ball);
  if (obs::Registry* reg = obs::current()) {
    reg->counter("ball.collections").add(1);
    reg->histogram("ball.volume_words").add(static_cast<double>(words));
    obs::Span::charge_rounds(radius);
    obs::Span::charge_messages(
        static_cast<std::int64_t>(ball.vertices.size()), words);
  } else if (ws_.obs_active) {
    ws_.obs.add_counter("ball.collections", 1);
    ws_.obs.add_histogram("ball.volume_words", static_cast<double>(words));
    ws_.obs.charge_rounds(radius);
    ws_.obs.charge_messages(static_cast<std::int64_t>(ball.vertices.size()),
                            words);
  }
}

const Ball& BallCache::Shard::collect_ball(int center, int radius,
                                           RoundLedger* ledger) {
  if (!owner_->enabled_) {
    local::collect_ball(*owner_->g_, center, radius, &owner_->active_, ledger,
                        ws_, scratch_ball_);
    dist_src_ = &scratch_ball_.dist;
    dists_for_ = center;
    return scratch_ball_;
  }
  Entry& e = entry_for(center);
  if (e.valid && e.radius == radius) {
    ++hits_;
    e.used_since_build = true;
    obs::trace_emit(ws_.trace, obs::TraceEventKind::kCacheHit, center,
                    static_cast<std::int32_t>(owner_->epoch_), radius,
                    static_cast<std::int64_t>(e.ball.vertices.size()));
  } else if (e.valid && e.radius < radius) {
    extend(e, radius);
  } else {
    rebuild(e, center, radius);
  }
  charge_collect(e.ball, radius, ledger);
  return e.ball;
}

BallCache::ViewRef BallCache::Shard::local_view(int center, int radius) {
  if (!owner_->enabled_) {
    local::compute_local_view(*owner_->g_, center, radius, &owner_->active_,
                              ws_, scratch_view_);
    dist_src_ = &ws_.ball.dist;  // compute_local_view collects into ws.ball
    dists_for_ = center;
    return {&ws_.ball, &scratch_view_, ++revision_counter_, false};
  }
  Entry& e = entry_for(center);
  if (e.valid && e.radius == radius && e.has_view) {
    ++hits_;
    e.used_since_build = true;
    obs::trace_emit(ws_.trace, obs::TraceEventKind::kCacheHit, center,
                    static_cast<std::int32_t>(owner_->epoch_), radius,
                    static_cast<std::int64_t>(e.ball.vertices.size()));
    return {&e.ball, &e.view, e.revision, true};
  }
  if (e.valid && e.radius == radius) {
    ++misses_;  // cached ball, missing view: skip the BFS, redo the view
    e.used_since_build = true;
    obs::trace_emit(ws_.trace, obs::TraceEventKind::kCacheMiss, center,
                    static_cast<std::int32_t>(owner_->epoch_), radius,
                    static_cast<std::int64_t>(e.ball.vertices.size()));
    stamp_dists(e);
  } else if (e.valid && e.radius < radius) {
    extend(e, radius);
  } else {
    rebuild(e, center, radius);
  }
  add_view(e, radius);
  return {&e.ball, &e.view, e.revision, false};
}

}  // namespace chordal::local
