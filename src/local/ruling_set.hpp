// Distance-K maximal independent sets ("anchors") on interval graphs - the
// stand-in for MISUnitInterval of Schneider & Wattenhofer [31].
//
// Substitution note (see DESIGN.md): [31]'s bounded-independence machinery
// is reproduced in spirit, not verbatim. The genuinely-local
// symmetry-breaking ingredient - Cole-Vishkin on the rightmost-neighbor
// pseudoforest - is executed for real and supplies the measured log* n
// component of the round count; anchor selection then follows the canonical
// left-to-right greedy, which every node could derive consistently from its
// O(K)-ball once symmetry is broken. The output contract matches [31]:
// a maximal independent set of G^K, delivered in O(K log* n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "cliqueforest/paths.hpp"

namespace chordal::local {

struct RulingSetResult {
  /// Indices into rep.vertices of the chosen anchors, in left-to-right
  /// (hi, id) order.
  std::vector<std::size_t> anchors;
  std::int64_t rounds = 0;
};

/// Maximal distance-K independent set of a *connected* interval graph given
/// by clique-path positions. K >= 1. Anchors are pairwise at distance > K
/// and every vertex is within distance K of some anchor.
RulingSetResult distance_k_mis_interval(const PathIntervals& rep, int k);

/// Exact single-source distances in the interval model, O(n log n) via a
/// two-pointer span sweep; vertices beyond `max_level` (when >= 0) are left
/// at -1 alongside unreachable ones. Exposed for reuse and testing.
std::vector<int> interval_distances_from(const PathIntervals& rep,
                                         std::size_t source,
                                         int max_level = -1);

}  // namespace chordal::local
