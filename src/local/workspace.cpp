#include "local/workspace.hpp"

#include <algorithm>
#include <stdexcept>

#include "cliqueforest/forest.hpp"
#include "graph/cliques.hpp"
#include "obs/span.hpp"

namespace chordal::local {

void BallWorkspace::ensure(const Graph& g) {
  auto n = static_cast<std::size_t>(g.num_vertices());
  if (visit_stamp.size() < n) {
    visit_stamp.resize(n, 0);
    local_id.resize(n, 0);
  }
}

namespace detail {

/// Radius-limited BFS + induced-CSR assembly; fills out.vertices (BFS
/// order), out.dist and out.graph exactly as the allocating collect_ball
/// does, but touches only ball-sized state. No ledger, no telemetry.
void collect_ball_core(const Graph& g, int center, int radius,
                       const std::vector<char>* active, BallWorkspace& ws,
                       Ball& out) {
  ws.ensure(g);
  if (center < 0 || center >= g.num_vertices()) {
    throw std::out_of_range("bfs: source out of range");
  }
  if (active != nullptr && !(*active)[center]) {
    throw std::invalid_argument("bfs: inactive source");
  }
  const std::uint64_t visit = ++ws.epoch;
  out.vertices.clear();
  out.dist.clear();
  ws.visit_stamp[center] = visit;
  ws.local_id[center] = 0;
  out.vertices.push_back(center);
  out.dist.push_back(0);
  for (std::size_t head = 0; head < out.vertices.size(); ++head) {
    int u = static_cast<int>(out.vertices[head]);
    int du = out.dist[head];
    if (radius >= 0 && du >= radius) continue;
    for (VertexId w : g.neighbors(u)) {
      if (ws.visit_stamp[w] == visit) continue;
      if (active != nullptr && !(*active)[w]) continue;
      ws.visit_stamp[w] = visit;
      ws.local_id[w] = static_cast<int>(out.vertices.size());
      out.vertices.push_back(w);
      out.dist.push_back(du + 1);
    }
  }
  // Induced subgraph in ball-local ids. Neighbor lists sorted ascending by
  // local id, matching Graph::induced_subgraph.
  const int k = static_cast<int>(out.vertices.size());
  ws.offsets.assign(static_cast<std::size_t>(k) + 1, 0);
  for (int i = 0; i < k; ++i) {
    for (VertexId w : g.neighbors(static_cast<int>(out.vertices[i]))) {
      if (ws.visit_stamp[w] == visit) ++ws.offsets[i + 1];
    }
  }
  for (int i = 0; i < k; ++i) ws.offsets[i + 1] += ws.offsets[i];
  ws.adj.resize(static_cast<std::size_t>(ws.offsets[k]));
  for (int i = 0; i < k; ++i) {
    EdgeIndex cursor = ws.offsets[i];
    for (VertexId w : g.neighbors(static_cast<int>(out.vertices[i]))) {
      if (ws.visit_stamp[w] == visit) {
        ws.adj[static_cast<std::size_t>(cursor++)] =
            static_cast<VertexId>(ws.local_id[w]);
      }
    }
    std::sort(ws.adj.begin() + ws.offsets[i], ws.adj.begin() + cursor);
  }
  out.graph.assign_csr(k, ws.offsets, ws.adj);
}

}  // namespace detail

void collect_ball(const Graph& g, int center, int radius,
                  const std::vector<char>* active, RoundLedger* ledger,
                  BallWorkspace& ws, Ball& out) {
  detail::collect_ball_core(g, center, radius, active, ws, out);
  if (ledger != nullptr) ledger->charge(center, radius);
  auto words = static_cast<std::int64_t>(out.vertices.size() +
                                         2 * out.graph.num_edges());
  if (obs::Registry* reg = obs::current()) {
    reg->counter("ball.collections").add(1);
    reg->histogram("ball.volume_words").add(static_cast<double>(words));
    obs::Span::charge_rounds(radius);
    obs::Span::charge_messages(static_cast<std::int64_t>(out.vertices.size()),
                               words);
  } else if (ws.obs_active) {
    ws.obs.add_counter("ball.collections", 1);
    ws.obs.add_histogram("ball.volume_words", static_cast<double>(words));
    ws.obs.charge_rounds(radius);
    ws.obs.charge_messages(static_cast<std::int64_t>(out.vertices.size()),
                           words);
  }
}

namespace detail {

void view_from_ball(const Ball& ball, int radius, BallWorkspace& ws,
                    LocalView& out) {
  // Maximal cliques of the ball graph containing a vertex at distance
  // <= radius-1 are maximal cliques of G (see cliqueforest/local_view.cpp,
  // the allocating reference implementation of this function).
  auto local_cliques = maximal_cliques_chordal(ball.graph);
  out.cliques.clear();
  out.forest_edges.clear();
  out.trusted_vertices.clear();
  // Filter + globalize the nested words in place, sort the surviving
  // prefix, then flatten into the reused CliqueFamily slabs.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < local_cliques.size(); ++i) {
    auto& clique = local_cliques[i];
    bool trusted = false;
    for (int lv : clique) trusted = trusted || ball.dist[lv] <= radius - 1;
    if (!trusted) continue;
    for (int& lv : clique) lv = static_cast<int>(ball.vertices[lv]);
    std::sort(clique.begin(), clique.end());
    if (i != kept) local_cliques[kept] = std::move(clique);
    ++kept;
  }
  local_cliques.resize(kept);
  std::sort(local_cliques.begin(), local_cliques.end());
  for (const auto& clique : local_cliques) out.cliques.push_word(clique);

  // Flat phi index: (vertex, clique) pairs sorted by vertex then clique,
  // giving each family in increasing clique-index order.
  ws.phi_pairs.clear();
  for (std::size_t c = 0; c < out.cliques.size(); ++c) {
    for (VertexId v : out.cliques[c]) {
      ws.phi_pairs.emplace_back(static_cast<int>(v), static_cast<int>(c));
    }
  }
  std::sort(ws.phi_pairs.begin(), ws.phi_pairs.end());

  for (std::size_t lv = 0; lv < ball.vertices.size(); ++lv) {
    if (ball.dist[lv] <= radius - 1) {
      out.trusted_vertices.push_back(static_cast<int>(ball.vertices[lv]));
    }
  }
  std::sort(out.trusted_vertices.begin(), out.trusted_vertices.end());

  // For each trusted u, the MWSF of the W-edges of phi(u) via the
  // ForestScratch engine: counting-everything weights, weight-bucketed
  // counting sort, integer tie-breaks (word order == index order for the
  // sorted view cliques). Identical chosen edges to
  // max_weight_spanning_forest on the same family, with zero allocations
  // once the scratch is warm.
  auto& edges_out = out.forest_edges;
  std::size_t p = 0;
  for (int u : out.trusted_vertices) {
    while (p < ws.phi_pairs.size() && ws.phi_pairs[p].first < u) ++p;
    ws.family.clear();
    while (p < ws.phi_pairs.size() && ws.phi_pairs[p].first == u) {
      ws.family.push_back(static_cast<CliqueId>(ws.phi_pairs[p].second));
      ++p;
    }
    std::size_t before = edges_out.size();
    family_forest_edges(out.cliques, ws.family, ws.forest, edges_out);
    if (ws.family.size() >= 2) {
      // One per-family MWSF build event per trusted vertex whose family
      // actually has edges to choose (singleton families are trivial).
      obs::trace_emit(ws.trace, obs::TraceEventKind::kForestBuild, u,
                      /*round=*/0,
                      static_cast<std::int64_t>(ws.family.size()),
                      static_cast<std::int64_t>(edges_out.size() - before));
    }
  }
  std::sort(edges_out.begin(), edges_out.end());
  edges_out.erase(std::unique(edges_out.begin(), edges_out.end()),
                  edges_out.end());
}

}  // namespace detail

void compute_local_view(const Graph& g, int observer, int radius,
                        const std::vector<char>* active, BallWorkspace& ws,
                        LocalView& out) {
  if (radius < 1) throw std::invalid_argument("local view: radius < 1");
  detail::collect_ball_core(g, observer, radius, active, ws, ws.ball);
  detail::view_from_ball(ws.ball, radius, ws, out);
}

}  // namespace chordal::local
