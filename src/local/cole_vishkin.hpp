// Cole-Vishkin deterministic color reduction on oriented pseudoforests.
//
// Each node knows only its own state and (per round) its parent's current
// color, so one iteration is one LOCAL round. Colors drop from O(log n) bits
// to 6 in log* n iterations, then to 3 with six shift-down/recolor rounds
// (Goldberg-Plotkin-Shannon). This is the deterministic symmetry-breaking
// engine behind the O(log* n) terms in Theorems 4, 6 and 8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace chordal::local {

struct CvResult {
  std::vector<int> colors;  // in {0, 1, 2}
  int rounds = 0;           // communication rounds consumed
};

/// 3-colors an oriented pseudoforest. `parent[v]` is v's out-neighbor or -1
/// for roots; `ids[v]` are distinct node identifiers (initial colors).
/// Following parent pointers must be acyclic.
CvResult cole_vishkin_pseudoforest(std::span<const std::int64_t> ids,
                                   std::span<const int> parent);

/// Convenience: 3-coloring of a path given ids in path order.
CvResult cole_vishkin_path(std::span<const std::int64_t> ids);

}  // namespace chordal::local
