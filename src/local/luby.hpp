// Luby's randomized maximal independent set, run as a genuine
// message-passing program on the Network engine. Used as the classic
// baseline in experiment E9 and as a reference implementation of the
// three-round phase pattern (draw, join, deactivate).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::local {

struct LubyResult {
  std::vector<int> independent_set;  // sorted vertex list
  int rounds = 0;                    // communication rounds used
  int phases = 0;                    // Luby phases (3 rounds each)
};

/// Runs Luby's algorithm to completion. Expected O(log n) phases.
LubyResult luby_mis(const Graph& g, std::uint64_t seed);

}  // namespace chordal::local
