// Round-based LOCAL-model message-passing engine.
//
// The LOCAL model: per round, every node may send an unbounded message to
// each neighbor, receive its neighbors' messages, and compute arbitrarily.
// Algorithms drive the engine in a strict pattern - a compute pass over all
// nodes issuing send() calls, then deliver() to advance the round - so
// information demonstrably travels one hop per round.
//
// The engine doubles as the telemetry layer's ground truth for bandwidth:
// it keeps exact per-run NetworkStats (message counts, payload words, and
// per-node congestion maxima - what CONGEST would have to pay), charges
// each round's traffic to the innermost live obs::Span, and publishes
// per-node congestion histograms to the installed obs::Registry when the
// run ends. All registry traffic is guarded by the null-registry fast path;
// the always-on NetworkStats counters are a handful of integer adds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::local {

/// Unbounded message payload (LOCAL allows arbitrary sizes).
using Payload = std::vector<std::int64_t>;

/// Read-only view of a message payload, backed by a reference-counted slab.
/// send() gives each message a private slab; broadcast() materializes the
/// payload once and shares the slab across all d copies, so a degree-d
/// broadcast costs O(|payload| + d) simulator work and memory instead of
/// O(d * |payload|). This is purely a simulator optimization: NetworkStats
/// still charges every delivered copy in full, because the LOCAL model sends
/// d real messages over d real edges.
class PayloadRef {
 public:
  PayloadRef() = default;
  explicit PayloadRef(Payload data)
      : slab_(std::make_shared<const Payload>(std::move(data))) {}

  std::size_t size() const { return slab_ == nullptr ? 0 : slab_->size(); }
  bool empty() const { return size() == 0; }
  std::int64_t operator[](std::size_t i) const { return (*slab_)[i]; }
  auto begin() const { return slab_ == nullptr ? nullptr : slab_->data(); }
  auto end() const {
    return slab_ == nullptr ? nullptr : slab_->data() + slab_->size();
  }
  /// Identity of the backing slab; two refs with the same non-null slab()
  /// share storage. Exposed so tests can assert broadcast deduplication.
  const Payload* slab() const { return slab_.get(); }

 private:
  std::shared_ptr<const Payload> slab_;
};

struct Message {
  int from = -1;
  PayloadRef data;
  /// Causal lineage: per-network id stamped at send()/broadcast() (each
  /// broadcast copy gets its own). When an obs::Tracer is installed, the
  /// kNetSend and kNetDeliver events of this message carry the same id, so
  /// a delivered payload links back to its originating send and round; 0
  /// when the message predates the id counter (never, in practice).
  std::int64_t id = 0;
};

/// Exact traffic accounting for one Network run. "Words" are payload
/// entries (std::int64_t each); congestion is measured at the receiver,
/// per round.
struct NetworkStats {
  std::int64_t total_messages = 0;
  std::int64_t total_payload_words = 0;
  std::int64_t max_message_words = 0;   // largest single message
  std::int64_t max_inbox_messages = 0;  // worst node-round, message count
  std::int64_t max_inbox_words = 0;     // worst node-round, payload volume
  /// Per-node worst round (the congestion hot-spot profile).
  std::vector<std::int64_t> node_max_inbox_messages;
  std::vector<std::int64_t> node_max_inbox_words;
};

class Network {
 public:
  explicit Network(const Graph& g);
  ~Network();

  const Graph& graph() const { return *graph_; }
  int num_nodes() const { return graph_->num_vertices(); }

  /// Queues a message for delivery at the end of the current round. `to`
  /// must be a neighbor of `from` (enforced - this is the LOCAL model's
  /// communication constraint).
  void send(int from, int to, Payload data);

  /// Queues the same payload to every neighbor of `from`.
  void broadcast(int from, const Payload& data);

  /// Messages delivered to `node` in the previous round.
  const std::vector<Message>& inbox(int node) const { return inboxes_[node]; }

  /// Ends the communication phase: delivers all queued messages and advances
  /// the round counter.
  void deliver();

  int rounds() const { return rounds_; }

  const NetworkStats& stats() const { return stats_; }

  /// Pushes this run's totals and per-node congestion histograms
  /// ("net.node_max_inbox_messages" / "net.node_max_inbox_words") to the
  /// current obs::Registry. Called automatically on destruction; no-op when
  /// telemetry is off or no round ever ran.
  void publish_metrics() const;

 private:
  const Graph* graph_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<std::pair<int, Message>>> pending_;  // per recipient batches
  // Recipients with queued traffic this round, deduplicated at send time.
  // deliver() walks only this list (plus last round's non-empty inboxes),
  // so a quiet round costs O(active senders) instead of O(n).
  std::vector<int> dirty_;
  std::vector<int> live_inboxes_;  // recipients whose inbox is non-empty
  int rounds_ = 0;
  // Lineage-id fallback when no tracer is installed; with one, ids come
  // from Tracer::next_message_id() so they are unique across Networks.
  std::int64_t next_msg_id_ = 0;
  std::int64_t next_message_id();
  NetworkStats stats_;
  mutable bool published_ = false;
};

}  // namespace chordal::local
