// Round-based LOCAL-model message-passing engine.
//
// The LOCAL model: per round, every node may send an unbounded message to
// each neighbor, receive its neighbors' messages, and compute arbitrarily.
// Algorithms drive the engine in a strict pattern - a compute pass over all
// nodes issuing send() calls, then deliver() to advance the round - so
// information demonstrably travels one hop per round.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace chordal::local {

/// Unbounded message payload (LOCAL allows arbitrary sizes).
using Payload = std::vector<std::int64_t>;

struct Message {
  int from = -1;
  Payload data;
};

class Network {
 public:
  explicit Network(const Graph& g);

  const Graph& graph() const { return *graph_; }
  int num_nodes() const { return graph_->num_vertices(); }

  /// Queues a message for delivery at the end of the current round. `to`
  /// must be a neighbor of `from` (enforced - this is the LOCAL model's
  /// communication constraint).
  void send(int from, int to, Payload data);

  /// Queues the same payload to every neighbor of `from`.
  void broadcast(int from, const Payload& data);

  /// Messages delivered to `node` in the previous round.
  const std::vector<Message>& inbox(int node) const { return inboxes_[node]; }

  /// Ends the communication phase: delivers all queued messages and advances
  /// the round counter.
  void deliver();

  int rounds() const { return rounds_; }

 private:
  const Graph* graph_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<std::pair<int, Message>>> pending_;  // per recipient batches
  int rounds_ = 0;
};

}  // namespace chordal::local
