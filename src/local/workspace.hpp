// Allocation-lean ball collection and local-view reconstruction.
//
// The per-node work of every driver in this repo starts with "collect the
// distance-d ball of v" - in the naive form that costs O(n) per call just
// to reset visited marks and relabel tables, which dwarfs the actual
// ball-sized work on large sparse instances and makes node loops
// cache-hostile. A BallWorkspace owns epoch-stamped tables (visited marks,
// ball-local ids) sized once to the host graph plus reusable CSR assembly
// buffers, so a ball collection touches only ball-sized state: zero O(n)
// clears, zero allocations once the buffers are warm.
//
// The workspace overloads compute bit-identical results to the allocating
// forms in local/ball.cpp and cliqueforest/local_view.cpp (asserted by
// tests/workspace_test.cpp). One workspace per worker thread makes the
// per-node loops embarrassingly parallel; telemetry from workers is
// buffered in the workspace's obs::Delta and flushed in worker order so
// counters stay bit-identical at any thread count (see support/parallel.hpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cliqueforest/local_view.hpp"
#include "cliqueforest/wcig.hpp"
#include "graph/graph.hpp"
#include "local/ball.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chordal::local {

/// Reusable scratch for collect_ball / compute_local_view. One workspace
/// per worker thread; a workspace must not be shared between concurrent
/// calls. All stamped tables grow on first use and are never cleared.
class BallWorkspace {
 public:
  /// Grows the stamped tables to the graph's vertex count (no-op once
  /// sized); called by every workspace function.
  void ensure(const Graph& g);

  /// Distance from the observer of the last compute_local_view call on this
  /// workspace to global vertex v, or -1 if v fell outside that ball. The
  /// collected ball is radius-limited and restricted to the active set, so
  /// for ball members this equals the restricted BFS distance. Invalidated
  /// by the next workspace call.
  int last_ball_dist(int v) const {
    return visit_stamp[v] == epoch ? ball.dist[local_id[v]] : -1;
  }

  /// Telemetry buffer for parallel workers. When obs::current() is null
  /// (the worker threads) and obs_active is true, the workspace functions
  /// record their counters here instead; the driver flushes each worker's
  /// delta in worker order at the end of the parallel region, which equals
  /// the sequential recording order. Workers never touch the registry.
  obs::Delta obs;
  bool obs_active = false;

  /// Event-trace staging ring for parallel workers: when a driver runs
  /// under an obs::Tracer it wires this to Tracer::worker(w) for the
  /// region, and library sites (cache lookups, per-family forest builds)
  /// emit through obs::trace_emit(trace, ...). Null when tracing is off or
  /// the driver is not trace-aware; the driver merges the worker rings in
  /// worker order after the join (see obs/trace.hpp).
  obs::TraceBuf* trace = nullptr;

  // Internal state (used by the workspace.cpp implementations). CSR
  // assembly buffers use the compact id types so assign_csr is a straight
  // slab copy with no widening pass.
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> visit_stamp;  // per vertex, ball epoch
  std::vector<int> local_id;               // ball-local index, if stamped
  std::vector<EdgeIndex> offsets;          // CSR assembly, ball-sized
  std::vector<VertexId> adj;               // CSR assembly, ball-sized
  std::vector<std::pair<int, int>> phi_pairs;  // (vertex, clique index)
  std::vector<CliqueId> family;                // phi(u) clique indices
  ForestScratch forest;  // per-family MWSF engine scratch (Lemma 2)
  Ball ball;             // reused by local view
};

/// Workspace form of collect_ball: identical Ball (vertices, graph, dist),
/// identical ledger charge and telemetry, but `out`'s storage is reused and
/// no O(n) state is touched.
void collect_ball(const Graph& g, int center, int radius,
                  const std::vector<char>* active, RoundLedger* ledger,
                  BallWorkspace& ws, Ball& out);

/// Workspace form of chordal::compute_local_view: identical LocalView, but
/// reuses `ws` and `out` storage and skips the per-trusted-vertex O(n)
/// membership tables of the allocating path (the family cliques of a vertex
/// pairwise intersect, so their spanning forest needs no global index).
void compute_local_view(const Graph& g, int observer, int radius,
                        const std::vector<char>* active, BallWorkspace& ws,
                        LocalView& out);

namespace detail {

/// The BFS + induced-CSR stage of collect_ball: fills out.vertices (BFS
/// order, [0] = center), out.dist and out.graph, with no ledger charge and
/// no telemetry. Leaves ws stamped with the ball (visit_stamp/local_id at
/// ws.epoch), so ws.ball-independent distance queries can be layered on
/// top. Exposed for local::BallCache, which rebuilds entries through it.
void collect_ball_core(const Graph& g, int center, int radius,
                       const std::vector<char>* active, BallWorkspace& ws,
                       Ball& out);

/// The clique/forest stage of compute_local_view, from an already collected
/// radius-`radius` ball of the observer. Uses ws only for flat scratch
/// (phi_pairs/family); does not disturb the stamped tables. Exposed for
/// local::BallCache, which derives views from cached balls.
void view_from_ball(const Ball& ball, int radius, BallWorkspace& ws,
                    LocalView& out);

}  // namespace detail

}  // namespace chordal::local
