#include "local/ball.hpp"

#include "graph/bfs.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace chordal::local {

void RoundLedger::synchronize(std::span<const int> nodes) {
  std::int64_t latest = 0;
  for (int v : nodes) latest = std::max(latest, clock_[v]);
  for (int v : nodes) clock_[v] = latest;
}

std::int64_t RoundLedger::max_clock() const {
  std::int64_t latest = 0;
  for (auto c : clock_) latest = std::max(latest, c);
  return latest;
}

Ball collect_ball(const Graph& g, int center, int radius,
                  const std::vector<char>* active, RoundLedger* ledger) {
  Ball ball;
  ball.vertices = active == nullptr
                      ? ball_vertices(g, center, radius)
                      : ball_vertices_restricted(g, center, radius, *active);
  ball.graph = g.induced_subgraph(ball.vertices);
  ball.dist = bfs_distances(ball.graph, 0);
  if (ledger != nullptr) ledger->charge(center, radius);
  if (obs::Registry* reg = obs::current()) {
    // Flooding a radius-r ball costs r rounds; the collected view is the
    // ball's adjacency encoding (one word per vertex, two per edge).
    auto words = static_cast<std::int64_t>(ball.vertices.size() +
                                           2 * ball.graph.num_edges());
    reg->counter("ball.collections").add(1);
    reg->histogram("ball.volume_words").add(static_cast<double>(words));
    obs::Span::charge_rounds(radius);
    obs::Span::charge_messages(static_cast<std::int64_t>(ball.vertices.size()),
                               words);
  }
  return ball;
}

}  // namespace chordal::local
