#include "local/ball.hpp"

#include "graph/bfs.hpp"

namespace chordal::local {

void RoundLedger::synchronize(std::span<const int> nodes) {
  std::int64_t latest = 0;
  for (int v : nodes) latest = std::max(latest, clock_[v]);
  for (int v : nodes) clock_[v] = latest;
}

std::int64_t RoundLedger::max_clock() const {
  std::int64_t latest = 0;
  for (auto c : clock_) latest = std::max(latest, c);
  return latest;
}

Ball collect_ball(const Graph& g, int center, int radius,
                  const std::vector<char>* active, RoundLedger* ledger) {
  Ball ball;
  ball.vertices = active == nullptr
                      ? ball_vertices(g, center, radius)
                      : ball_vertices_restricted(g, center, radius, *active);
  ball.graph = g.induced_subgraph(ball.vertices);
  ball.dist = bfs_distances(ball.graph, 0);
  if (ledger != nullptr) ledger->charge(center, radius);
  return ball;
}

}  // namespace chordal::local
