// Experiment E7 - ColIntGraph (Halldorsson-Konrad [21] stand-in): interval
// graphs are colored with at most floor((1+1/k) chi) + 1 colors in
// O(k log* n) rounds. Rounds should be flat in n and linear in k.
#include "bench_common.hpp"
#include "interval/col_int_graph.hpp"
#include "interval/rep.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv,
                     "E7: distributed interval coloring (ColIntGraph)",
                     "[21] via Lemma 9 - colors <= floor((1+1/k) chi) + 1 in "
                     "O(k log* n) rounds");

  Table table({"workload", "n", "k", "chi", "colors", "bound", "rounds",
               "violations"});
  auto run = [&table](const char* name, const GeneratedInterval& gen,
                      int k) {
    obs::Span span(std::string("run ") + name + " n=" +
                   std::to_string(gen.graph.num_vertices()) +
                   " k=" + std::to_string(k));
    auto rep = interval::from_geometry(gen.left, gen.right);
    auto result = interval::col_int_graph(rep, k);
    table.add_row({name, Table::fmt(gen.graph.num_vertices()),
                   Table::fmt(k), Table::fmt(result.omega),
                   Table::fmt(result.num_colors),
                   Table::fmt(result.color_bound), Table::fmt(result.rounds),
                   Table::fmt(result.palette_violations)});
  };
  for (int n : {1000, 8000, 64000}) {
    for (int k : {2, 4, 8, 16}) {
      run("staircase", staircase_interval(n, 0.62, 0.05, 31), k);
    }
  }
  for (int n : {2000, 16000}) {
    run("dense random",
        random_interval({.n = n, .window = n / 20.0, .min_len = 0.5,
                         .max_len = 4.0, .seed = 17}),
        4);
  }
  table.print();
  ctx.add_table("interval_coloring", table);
  return 0;
}
