// Experiment E13 - the near-linear clique-forest engine. Construction of
// the clique forest (Section 2) and of the per-vertex Lemma 2 family
// forests is the substrate under every driver in this repo; this harness
// records its cost model: full-forest builds across workload scales and a
// per-family MWSF sweep in the exact call shape of compute_local_view.
//
// Engine selection follows CHORDAL_FOREST_REFERENCE, so the same binary
// produces the before (=1: sorted-merge weights, comparator sort, O(n)
// membership tables) and after (default: counting-sort engine) evidence:
//
//   CHORDAL_FOREST_REFERENCE=1 bench_forest --json BENCH_FOREST_BEFORE.json
//   bench_forest --json BENCH_FOREST_AFTER.json
//
// Every table cell is engine-invariant (sizes, edge counts, weights, output
// hashes) - the two runs must agree cell-for-cell, which scripts/check.sh
// enforces with bench_diff.py --parity. Timings live in the span telemetry
// (wall_ms, scrubbed by --parity) and allocation counts in the engine.*
// counters (also scrubbed: they are effectiveness telemetry, not output).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "cliqueforest/forest.hpp"
#include "graph/generators.hpp"

// Process-wide allocation counter: phase deltas measure how many heap
// allocations each engine path performs (the fast path must be
// allocation-free once its scratch is warm).
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// new/delete pair; the replacement new below allocates with malloc, so the
// pairing is correct by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace chordal;

std::uint64_t hash_pair(std::uint64_t h, long long a, long long b) {
  // FNV-1a over the two words; order-sensitive, so identical edge lists
  // (same edges, same order) are required for identical hashes.
  for (std::uint64_t w : {static_cast<std::uint64_t>(a),
                          static_cast<std::uint64_t>(b)}) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

long long intersection_size(CliqueWord a, CliqueWord b) {
  long long w = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++w, ++i, ++j;
    }
  }
  return w;
}

void add_engine_counter(const char* name, long long value) {
  if (obs::Registry* reg = obs::current()) {
    reg->counter(name).add(value);
  }
}

struct Workload {
  std::string name;
  Graph graph;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  const char* shape_names[] = {"path", "caterpillar", "random", "binary",
                               "spider"};
  for (int bags : {256, 1024, 4096}) {
    for (TreeShape shape :
         {TreeShape::kRandom, TreeShape::kPath, TreeShape::kSpider}) {
      CliqueTreeConfig config;
      config.num_bags = bags;
      config.shape = shape;
      config.seed = 12345;
      out.push_back({std::string(shape_names[static_cast<int>(shape)]) +
                         " bags=" + std::to_string(bags),
                     random_chordal_from_clique_tree(config).graph});
    }
  }
  // Tie storms: every separator of a k-tree has exactly k vertices and a
  // unit-interval staircase keeps all clique overlaps near-equal, so whole
  // weight classes collide and only the deterministic word order (integer
  // rank comparisons in the engine) decides the forest.
  out.push_back({"k_tree k=4 n=4096", random_k_tree(4096, 4, 9)});
  out.push_back(
      {"staircase n=4096", staircase_interval(4096, 0.7, 0.1, 5).graph});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(
      argc, argv, "E13: near-linear clique-forest engine",
      "forest construction and per-family MWSF are near-linear with "
      "integer tie-breaks; outputs are bit-identical to the reference "
      "order (weight, then lexicographic clique words)");

  Table build_table({"workload", "n", "edges", "cliques", "forest edges",
                     "forest weight", "edge hash"});
  std::vector<std::pair<Workload, CliqueForest>> forests;
  for (auto& w : workloads()) {
    long long allocs_before = g_allocs.load(std::memory_order_relaxed);
    std::optional<CliqueForest> forest;
    {
      obs::Span span("build " + w.name);
      forest.emplace(CliqueForest::build(w.graph));
    }
    add_engine_counter("engine.build.allocs",
                       g_allocs.load(std::memory_order_relaxed) -
                           allocs_before);
    long long weight = 0;
    std::uint64_t hash = 1469598103934665603ull;
    for (auto [a, b] : forest->forest_edges()) {
      weight += intersection_size(forest->clique(a), forest->clique(b));
      hash = hash_pair(hash, a, b);
    }
    build_table.add_row(
        {w.name, Table::fmt(w.graph.num_vertices()),
         Table::fmt(w.graph.num_edges()),
         Table::fmt(static_cast<long long>(forest->cliques().size())),
         Table::fmt(static_cast<long long>(forest->forest_edges().size())),
         Table::fmt(weight),
         Table::fmt(static_cast<long long>(hash % 1000000007ull))});
    forests.emplace_back(std::move(w), std::move(*forest));
  }
  build_table.print();
  ctx.add_table("forest_build", build_table);

  // Per-family MWSF in the exact call shape of compute_local_view: one
  // family_forest_edges call per vertex against a warm per-worker scratch.
  // One warm-up sweep sizes the scratch; the measured sweeps must then be
  // allocation-free on the fast path (engine.family.allocs == 0).
  std::printf("\n");
  Table family_table({"workload", "n", "families >= 2", "edges per sweep",
                      "sweeps", "edge hash"});
  constexpr int kSweeps = 5;
  ForestScratch scratch;
  std::vector<std::pair<int, int>> edges;
  for (const auto& [w, forest] : forests) {
    long long families = 0, emitted = 0;
    std::uint64_t hash = 1469598103934665603ull;
    auto sweep = [&](bool record) {
      for (int v = 0; v < w.graph.num_vertices(); ++v) {
        const auto& family = forest.cliques_of(v);
        if (family.size() < 2) continue;
        edges.clear();
        family_forest_edges(forest.cliques(), family, scratch, edges);
        if (!record) continue;
        ++families;
        emitted += static_cast<long long>(edges.size());
        for (auto [a, b] : edges) hash = hash_pair(hash, a, b);
      }
    };
    sweep(false);  // warm-up: reach the scratch high-water marks
    {
      obs::Span span("family sweep " + w.name);
      long long allocs_before = g_allocs.load(std::memory_order_relaxed);
      sweep(true);
      for (int rep = 1; rep < kSweeps; ++rep) sweep(false);
      add_engine_counter("engine.family.allocs",
                         g_allocs.load(std::memory_order_relaxed) -
                             allocs_before);
    }
    family_table.add_row({w.name, Table::fmt(w.graph.num_vertices()),
                          Table::fmt(families), Table::fmt(emitted),
                          Table::fmt(kSweeps),
                          Table::fmt(static_cast<long long>(
                              hash % 1000000007ull))});
  }
  family_table.print();
  ctx.add_table("family_mwsf", family_table);

  std::printf(
      "\nboth tables are engine-invariant: a CHORDAL_FOREST_REFERENCE=1 run "
      "must agree cell-for-cell (bench_diff.py --parity enforces this).\n");
  return 0;
}
