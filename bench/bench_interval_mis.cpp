// Experiment E4 - Theorems 5/6: Algorithm 5 computes a (1+eps)-approximate
// MIS on interval graphs in O((1/eps) log* n) rounds. Rounds should be
// essentially flat in n (the log* term) and linear in 1/eps; the measured
// ratio must stay below 1+eps.
#include "bench_common.hpp"
#include "interval/mis_interval.hpp"
#include "interval/offline.hpp"
#include "interval/rep.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv,
                     "E4: interval-graph MIS approximation and rounds",
                     "Theorems 5/6 - ratio <= 1+eps in O((1/eps) log* n) "
                     "rounds");

  Table table({"workload", "n", "eps", "ours", "opt", "ratio", "1+eps",
               "rounds"});
  auto run = [&table](const char* name, const GeneratedInterval& gen,
                      double eps) {
    obs::Span span(std::string("run ") + name + " n=" +
                   std::to_string(gen.graph.num_vertices()));
    auto rep = interval::from_geometry(gen.left, gen.right);
    auto ours = interval::approx_mis_interval(rep, eps);
    int opt = interval::alpha(rep);
    table.add_row({name, Table::fmt(gen.graph.num_vertices()),
                   Table::fmt(eps, 3),
                   Table::fmt((long long)ours.chosen.size()),
                   Table::fmt(opt),
                   Table::fmt(static_cast<double>(opt) /
                                  static_cast<double>(ours.chosen.size()),
                              4),
                   Table::fmt(1.0 + eps, 3), Table::fmt(ours.rounds)});
  };

  for (int n : {1000, 8000, 64000}) {
    for (double eps : {0.5, 0.25, 0.125}) {
      run("staircase", staircase_interval(n, 0.62, 0.05, 99), eps);
    }
  }
  for (int n : {1000, 8000}) {
    run("dense random",
        random_interval({.n = n, .window = n / 4.0, .min_len = 0.5,
                         .max_len = 3.0, .seed = 11}),
        0.25);
  }
  table.print();
  ctx.add_table("interval_mis", table);
  std::printf("\nNote: rounds are flat in n (log* n) and scale with 1/eps "
              "on the staircase; dense instances collapse to exact local "
              "solves after the domination reduction.\n");
  return 0;
}
