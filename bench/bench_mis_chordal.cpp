// Experiment E5 - Theorems 7/8: Algorithm 6 computes a (1+eps)-approximate
// MIS on chordal graphs in O((1/eps) log(1/eps) log* n) rounds, processing
// only the first O(log(1/eps)) peel layers. Includes the d-override
// ablation: the paper's worst-case constant d = 64/eps is far larger than
// random workloads need.
#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "core/mis.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv, "E5: chordal MIS approximation and rounds",
                     "Theorems 7/8 - ratio <= 1+eps, O((1/eps) log(1/eps) "
                     "log* n) rounds, O(log(1/eps)) peel iterations");

  Table table({"shape", "n", "eps", "d", "iters", "ours", "alpha", "ratio",
               "rounds"});
  for (TreeShape shape : {TreeShape::kRandom, TreeShape::kCaterpillar}) {
    const char* shape_name =
        shape == TreeShape::kRandom ? "random" : "caterpillar";
    for (int n : {1024, 8192}) {
      for (double eps : {0.4, 0.2, 0.1}) {
        obs::Span span(std::string("run ") + shape_name +
                       " n=" + std::to_string(n) +
                       " eps=" + std::to_string(eps));
        auto gen = bench::chordal_workload(n, shape, 3 + n);
        auto ours = core::mis_chordal(gen.graph, {.eps = eps});
        int opt = baselines::independence_number_chordal(gen.graph);
        table.add_row({shape_name, Table::fmt(gen.graph.num_vertices()),
                       Table::fmt(eps, 2), Table::fmt(ours.d),
                       Table::fmt(ours.iterations),
                       Table::fmt((long long)ours.chosen.size()),
                       Table::fmt(opt),
                       Table::fmt(static_cast<double>(opt) /
                                      static_cast<double>(ours.chosen.size()),
                                  4),
                       Table::fmt(ours.rounds)});
      }
    }
  }
  table.print();
  ctx.add_table("mis_chordal", table);

  std::printf("\nAblation: overriding the worst-case constant d = 64/eps "
              "(quality on random workloads barely moves, rounds shrink):\n\n");
  Table ablation({"d", "iters", "ours", "alpha", "ratio", "rounds"});
  auto gen = bench::chordal_workload(8192, TreeShape::kRandom, 5);
  int opt = baselines::independence_number_chordal(gen.graph);
  for (int d : {0, 64, 16, 8, 4}) {  // 0 = paper default
    auto ours = core::mis_chordal(gen.graph, {.eps = 0.2, .d_override = d});
    ablation.add_row({d == 0 ? "64/eps (paper)" : Table::fmt(d),
                      Table::fmt(ours.iterations),
                      Table::fmt((long long)ours.chosen.size()),
                      Table::fmt(opt),
                      Table::fmt(static_cast<double>(opt) /
                                     static_cast<double>(ours.chosen.size()),
                                 4),
                      Table::fmt(ours.rounds)});
  }
  ablation.print();
  ctx.add_table("d_override_ablation", ablation);
  return 0;
}
