// Shared helpers for the experiment harnesses (E1-E9). Every binary prints
// a header naming the paper claim it regenerates and a table of
// paper-expected vs. measured values; EXPERIMENTS.md records the outputs.
//
// All harnesses additionally accept
//
//   --json <path>
//
// which installs an obs::Registry for the whole run and, on exit, dumps a
// machine-readable report: the experiment name/claim, every registered
// table, and the telemetry tree (counters, per-node congestion histograms,
// and the phase-scoped trace spans with {rounds, messages, payload_words,
// wall_ms} per phase). This is what the BENCH_*.json perf trajectory is
// built from.
//
// Orthogonally,
//
//   --trace <path>         Chrome trace_event JSON (chrome://tracing,
//                          Perfetto) of the whole run
//   --trace-jsonl <path>   the same event stream as compact JSONL
//
// install an obs::Tracer for the run and export the causal event trace on
// exit: phases, per-round network sends/delivers with message lineage,
// peel/color/MIS decisions, cache hits/misses, forest builds. Tracing also
// installs the registry (spans need it to record), so --trace alone still
// produces phase tracks. scripts/trace_check.py validates the output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"

namespace chordal::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n\n");
}

/// Per-binary harness state: arg parsing, the banner, table registration,
/// and (with --json) telemetry collection plus the end-of-run JSON dump.
class Context {
 public:
  Context(int argc, char** argv, const char* experiment, const char* claim)
      : experiment_(experiment), claim_(claim) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path_ = arg.substr(7);
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (arg.rfind("--trace=", 0) == 0) {
        trace_path_ = arg.substr(8);
      } else if (arg == "--trace-jsonl" && i + 1 < argc) {
        trace_jsonl_path_ = argv[++i];
      } else if (arg.rfind("--trace-jsonl=", 0) == 0) {
        trace_jsonl_path_ = arg.substr(14);
      } else if (arg == "--json" || arg == "--trace" ||
                 arg == "--trace-jsonl") {
        std::fprintf(stderr, "%s requires a value\n%s", arg.c_str(), kUsage);
        std::exit(2);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("%s", kUsage);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n%s", arg.c_str(), kUsage);
        std::exit(2);
      }
    }
    // Spans only record under a live registry, so tracing implies one: a
    // --trace run without --json still gets its phase track (the registry
    // report is simply not written).
    if (!json_path_.empty() || trace_enabled()) scope_.emplace(registry_);
    if (trace_enabled()) {
      tracer_ = std::make_unique<obs::Tracer>();
      trace_scope_.emplace(*tracer_);
    }
    header(experiment, claim);
  }

  ~Context() {
    if (trace_enabled()) {
      trace_scope_.reset();  // stop tracing before serialization
      if (!trace_path_.empty()) write_file(trace_path_, tracer_->to_chrome_json(), "trace");
      if (!trace_jsonl_path_.empty()) {
        write_file(trace_jsonl_path_, tracer_->to_jsonl(), "trace");
      }
    }
    if (json_path_.empty()) {
      scope_.reset();
      return;
    }
    scope_.reset();  // stop collecting before serialization
    obs::JsonWriter w;
    w.begin_object();
    w.key("experiment").value(experiment_);
    w.key("claim").value(claim_);
    w.key("tables");
    w.begin_array();
    for (const auto& [name, table] : tables_) {
      w.begin_object();
      w.key("name").value(name);
      w.key("headers");
      w.begin_array();
      for (const auto& h : table.headers()) w.value(h);
      w.end_array();
      w.key("rows");
      w.begin_array();
      for (const auto& row : table.rows()) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("telemetry");
    registry_.write_json(w);
    w.end_object();
    write_file(json_path_, w.str(), "json report");
  }

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  bool json_enabled() const { return !json_path_.empty(); }
  bool trace_enabled() const {
    return !trace_path_.empty() || !trace_jsonl_path_.empty();
  }
  obs::Registry& registry() { return registry_; }

  /// Records a (printed) table for the JSON report; copies the cells.
  void add_table(const char* name, const Table& table) {
    if (json_enabled()) tables_.emplace_back(name, table);
  }

 private:
  static constexpr const char* kUsage =
      "usage: <bench> [--json <path>] [--trace <path>] "
      "[--trace-jsonl <path>]\n";

  static void write_file(const std::string& path, const std::string& body,
                         const char* what) {
    std::ofstream out(path);
    out << body << "\n";
    out.flush();
    if (!out) {
      // A destructor cannot change main()'s exit status, so fail as loudly
      // as a library may: diagnose and abort the process with a nonzero code.
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::printf("\n[%s written to %s]\n", what, path.c_str());
  }

  std::string experiment_;
  std::string claim_;
  std::string json_path_;
  std::string trace_path_;
  std::string trace_jsonl_path_;
  std::vector<std::pair<std::string, Table>> tables_;
  obs::Registry registry_;
  std::optional<obs::ScopedRegistry> scope_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::optional<obs::ScopedTracer> trace_scope_;
};

/// Standard chordal workload used across experiments: prescribed clique
/// tree with the given shape scaled to ~n vertices (bags average ~4 fresh
/// vertices each).
inline GeneratedChordal chordal_workload(int approx_n, TreeShape shape,
                                         std::uint64_t seed) {
  CliqueTreeConfig config;
  config.num_bags = std::max(2, approx_n / 4);
  config.min_bag_size = 2;
  config.max_bag_size = 6;
  config.max_shared = 3;
  config.shape = shape;
  config.seed = seed;
  return random_chordal_from_clique_tree(config);
}

}  // namespace chordal::bench
