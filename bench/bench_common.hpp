// Shared helpers for the experiment harnesses (E1-E9). Every binary prints
// a header naming the paper claim it regenerates and a table of
// paper-expected vs. measured values; EXPERIMENTS.md records the outputs.
#pragma once

#include <cstdio>

#include "graph/generators.hpp"
#include "support/table.hpp"

namespace chordal::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n\n");
}

/// Standard chordal workload used across experiments: prescribed clique
/// tree with the given shape scaled to ~n vertices (bags average ~4 fresh
/// vertices each).
inline GeneratedChordal chordal_workload(int approx_n, TreeShape shape,
                                         std::uint64_t seed) {
  CliqueTreeConfig config;
  config.num_bags = std::max(2, approx_n / 4);
  config.min_bag_size = 2;
  config.max_bag_size = 6;
  config.max_shared = 3;
  config.shape = shape;
  config.seed = seed;
  return random_chordal_from_clique_tree(config);
}

}  // namespace chordal::bench
