// Shared helpers for the experiment harnesses (E1-E9). Every binary prints
// a header naming the paper claim it regenerates and a table of
// paper-expected vs. measured values; EXPERIMENTS.md records the outputs.
//
// All harnesses additionally accept
//
//   --json <path>
//
// which installs an obs::Registry for the whole run and, on exit, dumps a
// machine-readable report: the experiment name/claim, every registered
// table, and the telemetry tree (counters, per-node congestion histograms,
// and the phase-scoped trace spans with {rounds, messages, payload_words,
// wall_ms} per phase). This is what the BENCH_*.json perf trajectory is
// built from.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/table.hpp"

namespace chordal::bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n\n");
}

/// Per-binary harness state: arg parsing, the banner, table registration,
/// and (with --json) telemetry collection plus the end-of-run JSON dump.
class Context {
 public:
  Context(int argc, char** argv, const char* experiment, const char* claim)
      : experiment_(experiment), claim_(claim) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg == "--json") {
        std::fprintf(stderr, "--json requires a value\nusage: %s [--json <path>]\n",
                     argv[0]);
        std::exit(2);
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path_ = arg.substr(7);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("usage: %s [--json <path>]\n", argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\nusage: %s [--json <path>]\n",
                     arg.c_str(), argv[0]);
        std::exit(2);
      }
    }
    if (!json_path_.empty()) scope_.emplace(registry_);
    header(experiment, claim);
  }

  ~Context() {
    if (json_path_.empty()) return;
    scope_.reset();  // stop collecting before serialization
    obs::JsonWriter w;
    w.begin_object();
    w.key("experiment").value(experiment_);
    w.key("claim").value(claim_);
    w.key("tables");
    w.begin_array();
    for (const auto& [name, table] : tables_) {
      w.begin_object();
      w.key("name").value(name);
      w.key("headers");
      w.begin_array();
      for (const auto& h : table.headers()) w.value(h);
      w.end_array();
      w.key("rows");
      w.begin_array();
      for (const auto& row : table.rows()) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("telemetry");
    registry_.write_json(w);
    w.end_object();
    std::ofstream out(json_path_);
    out << w.str() << "\n";
    out.flush();
    if (!out) {
      // A destructor cannot change main()'s exit status, so fail as loudly
      // as a library may: diagnose and abort the process with a nonzero code.
      std::fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      std::exit(1);
    }
    std::printf("\n[json report written to %s]\n", json_path_.c_str());
  }

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  bool json_enabled() const { return !json_path_.empty(); }
  obs::Registry& registry() { return registry_; }

  /// Records a (printed) table for the JSON report; copies the cells.
  void add_table(const char* name, const Table& table) {
    if (json_enabled()) tables_.emplace_back(name, table);
  }

 private:
  std::string experiment_;
  std::string claim_;
  std::string json_path_;
  std::vector<std::pair<std::string, Table>> tables_;
  obs::Registry registry_;
  std::optional<obs::ScopedRegistry> scope_;
};

/// Standard chordal workload used across experiments: prescribed clique
/// tree with the given shape scaled to ~n vertices (bags average ~4 fresh
/// vertices each).
inline GeneratedChordal chordal_workload(int approx_n, TreeShape shape,
                                         std::uint64_t seed) {
  CliqueTreeConfig config;
  config.num_bags = std::max(2, approx_n / 4);
  config.min_bag_size = 2;
  config.max_bag_size = 6;
  config.max_shared = 3;
  config.shape = shape;
  config.seed = seed;
  return random_chordal_from_clique_tree(config);
}

}  // namespace chordal::bench
