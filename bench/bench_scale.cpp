// Experiment E16 - the compact million-node memory substrate.
//
// Measures the before/after of the struct-of-arrays CSR slab work: wall
// time, heap allocations, peak resident set size, and resident bytes per
// adjacency slot for graph construction at n = 10^5..10^7, comparing the
// legacy staging pipeline (GraphBuilder pair lists, per-clique vectors)
// against the streaming generators that emit edges directly into the final
// offsets/adjacency slabs.
//
// Peak RSS (getrusage ru_maxrss) is a process-lifetime high-water mark, so
// one process cannot measure two substrates: the parent re-executes itself
// with --probe for every (family, n, mode) cell and each child reports its
// own peak. The parent merges the rows into the table, the scale.* gauges,
// and (with --json) BENCH_SCALE.json for scripts/bench_gate.py, whose
// peak-RSS budget column turns substrate regressions into CI failures.
//
//   bench_scale --json BENCH_SCALE.json     # full matrix, 10^7 included
//   bench_scale --smoke --rss-ceiling-mb 512  # n=10^5 gate for check.sh
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "local/workspace.hpp"
#include "obs/rss.hpp"

// Process-wide allocation counter (same pattern as bench_forest): the
// steady-state query audit must be allocation-free once scratch is warm.
namespace {
std::atomic<long long> g_allocs{0};
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace chordal;

struct ProbeResult {
  long long n = 0;
  long long adj_slots = 0;       // 2m
  double build_ms = 0;
  long long build_allocs = 0;
  long long query_allocs = 0;    // steady-state ball queries (see below)
  double graph_mb = 0;           // resident CSR slab bytes
  double peak_rss_mb = 0;        // process high-water mark
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Steady-state query audit: repeated ball collections through one warm
/// BallWorkspace. After the first lap sizes the scratch, the remaining laps
/// must not allocate - the substrate's epoch-stamped scratch contract.
long long query_audit(const Graph& g) {
  local::BallWorkspace ws;
  local::Ball ball;
  const int n = g.num_vertices();
  if (n == 0) return 0;
  auto lap = [&] {
    for (int i = 0; i < 64; ++i) {
      int v = static_cast<int>((static_cast<long long>(i) * 2654435761ll) %
                               n);
      local::collect_ball(g, v, 2, nullptr, nullptr, ws, ball);
    }
  };
  lap();  // warm-up: reach the scratch high-water marks
  long long before = g_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 4; ++rep) lap();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

/// Child-process body: build one (family, n, mode) cell and print a
/// machine-readable PROBE line on stdout.
int run_probe(const std::string& family, long long n,
              const std::string& mode) {
  constexpr std::uint64_t kSeed = 16;
  ProbeResult r;
  r.n = n;
  Graph g;
  long long allocs_before = g_allocs.load(std::memory_order_relaxed);
  double t0 = now_ms();
  if (family == "interval") {
    if (mode == "compact") {
      StreamingIntervalConfig config;
      config.n = n;
      config.seed = kSeed;
      g = std::move(streaming_interval_graph(config).graph);
    } else {
      RandomIntervalConfig config;
      config.n = static_cast<int>(n);
      // Same expected density as the streaming config: lefts spread over
      // n * gap_mean, lengths uniform in [min_len, max_len].
      config.window = static_cast<double>(n) * 1.0;
      config.min_len = 4.0;
      config.max_len = 8.0;
      config.seed = kSeed;
      g = std::move(random_interval(config).graph);
    }
  } else if (family == "ktree") {
    g = mode == "compact" ? streaming_k_tree(n, 3, kSeed)
                          : random_k_tree(static_cast<int>(n), 3, kSeed);
  } else {
    std::fprintf(stderr, "unknown probe family: %s\n", family.c_str());
    return 2;
  }
  r.build_ms = now_ms() - t0;
  r.build_allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  r.adj_slots = 2 * static_cast<long long>(g.num_edges());
  r.graph_mb = static_cast<double>(g.memory_bytes()) / (1024.0 * 1024.0);
  r.query_allocs = query_audit(g);
  r.peak_rss_mb =
      static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0);
  std::printf("PROBE family=%s n=%lld mode=%s adj_slots=%lld build_ms=%.1f "
              "build_allocs=%lld query_allocs=%lld graph_mb=%.1f "
              "peak_rss_mb=%.1f\n",
              family.c_str(), r.n, mode.c_str(), r.adj_slots, r.build_ms,
              r.build_allocs, r.query_allocs, r.graph_mb, r.peak_rss_mb);
  return 0;
}

/// Runs `self --probe family n mode` and parses its PROBE line.
bool run_child(const std::string& self, const std::string& family,
               long long n, const std::string& mode, ProbeResult* out) {
  std::string tmp = "bench_scale_probe.tmp";
  std::string cmd = self + " --probe " + family + " " + std::to_string(n) +
                    " " + mode + " > " + tmp;
  if (std::system(cmd.c_str()) != 0) return false;
  std::ifstream in(tmp);
  std::string line;
  bool ok = false;
  while (std::getline(in, line)) {
    char fam[32], md[32];
    ProbeResult r;
    if (std::sscanf(line.c_str(),
                    "PROBE family=%31s n=%lld mode=%31s adj_slots=%lld "
                    "build_ms=%lf build_allocs=%lld query_allocs=%lld "
                    "graph_mb=%lf peak_rss_mb=%lf",
                    fam, &r.n, md, &r.adj_slots, &r.build_ms,
                    &r.build_allocs, &r.query_allocs, &r.graph_mb,
                    &r.peak_rss_mb) == 9) {
      *out = r;
      ok = true;
    }
  }
  std::remove(tmp.c_str());
  return ok;
}

void add_gauge(const char* name, double value) {
  if (obs::Registry* reg = obs::current()) reg->gauge(name).set(value);
}

std::string cell_key(const std::string& family, long long n,
                     const std::string& mode) {
  return "scale." + family + ".n" + std::to_string(n) + "." + mode;
}

}  // namespace

int main(int argc, char** argv) {
  // Child probe mode: bypass the Context harness entirely (no banner, no
  // telemetry - one PROBE line on stdout).
  if (argc >= 5 && std::strcmp(argv[1], "--probe") == 0) {
    return run_probe(argv[2], std::atoll(argv[3]), argv[4]);
  }

  // Strip bench_scale's own flags before Context sees the rest.
  bool smoke = false;
  bool full = false;
  double rss_ceiling_mb = 0;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--rss-ceiling-mb" && i + 1 < argc) {
      rss_ceiling_mb = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Context ctx(
      static_cast<int>(passthrough.size()), passthrough.data(),
      "E16: compact memory substrate at scale",
      "32-bit struct-of-arrays CSR slabs plus streaming generators hold "
      "million-node graphs in a fraction of the legacy staging pipeline's "
      "peak RSS, with allocation-free steady-state queries");

  struct Cell {
    const char* family;
    long long n;
    const char* mode;
    // MB budget for the bench_gate.py peak-RSS column: generous (2x-ish
    // observed) so only substrate regressions trip it, not noise.
    double rss_budget_mb;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells = {{"interval", 100'000, "compact", 512.0},
             {"ktree", 100'000, "compact", 512.0}};
  } else {
    cells = {{"interval", 100'000, "legacy", 0},
             {"interval", 100'000, "compact", 0},
             {"interval", 1'000'000, "legacy", 0},
             {"interval", 1'000'000, "compact", 1024.0},
             {"ktree", 100'000, "legacy", 0},
             {"ktree", 100'000, "compact", 0},
             {"ktree", 1'000'000, "legacy", 0},
             {"ktree", 1'000'000, "compact", 1024.0}};
    if (full) cells.push_back({"interval", 10'000'000, "compact", 6144.0});
  }

  Table table({"family", "n", "mode", "adj slots (2m)", "build ms",
               "build allocs", "query allocs", "graph MB", "peak RSS MB",
               "bytes/slot"});
  const std::string self = argv[0];
  bool ceiling_ok = true;
  // (family, n) -> {legacy rss, compact rss} for the reduction summary.
  struct Pair {
    double legacy = 0, compact = 0;
    std::string label;
  };
  std::vector<Pair> pairs;
  auto pair_for = [&](const std::string& label) -> Pair& {
    for (auto& p : pairs) {
      if (p.label == label) return p;
    }
    pairs.push_back({});
    pairs.back().label = label;
    return pairs.back();
  };

  for (const Cell& cell : cells) {
    ProbeResult r;
    if (!run_child(self, cell.family, cell.n, cell.mode, &r)) {
      std::fprintf(stderr, "probe failed: %s n=%lld %s\n", cell.family,
                   cell.n, cell.mode);
      return 1;
    }
    double bytes_per_slot =
        r.adj_slots > 0
            ? r.peak_rss_mb * 1024.0 * 1024.0 /
                  static_cast<double>(r.adj_slots)
            : 0.0;
    table.add_row({cell.family, Table::fmt(r.n), cell.mode,
                   Table::fmt(r.adj_slots),
                   Table::fmt(static_cast<long long>(r.build_ms)),
                   Table::fmt(r.build_allocs), Table::fmt(r.query_allocs),
                   Table::fmt(static_cast<long long>(r.graph_mb)),
                   Table::fmt(static_cast<long long>(r.peak_rss_mb)),
                   Table::fmt(static_cast<long long>(bytes_per_slot))});
    std::string key = cell_key(cell.family, cell.n, cell.mode);
    add_gauge((key + ".peak_rss_mb").c_str(), r.peak_rss_mb);
    add_gauge((key + ".build_ms").c_str(), r.build_ms);
    add_gauge((key + ".query_allocs").c_str(),
              static_cast<double>(r.query_allocs));
    if (cell.rss_budget_mb > 0) {
      add_gauge((key + ".rss_budget_mb").c_str(), cell.rss_budget_mb);
    }
    std::string label =
        std::string(cell.family) + " n=" + std::to_string(cell.n);
    if (std::strcmp(cell.mode, "legacy") == 0) {
      pair_for(label).legacy = r.peak_rss_mb;
    } else {
      pair_for(label).compact = r.peak_rss_mb;
    }
    if (rss_ceiling_mb > 0 && r.peak_rss_mb > rss_ceiling_mb) {
      std::fprintf(stderr,
                   "FAIL: %s %s peak RSS %.1f MB exceeds ceiling %.1f MB\n",
                   cell.family, cell.mode, r.peak_rss_mb, rss_ceiling_mb);
      ceiling_ok = false;
    }
  }
  table.print();
  ctx.add_table("scale", table);

  std::printf("\npeak-RSS reduction, legacy staging -> compact substrate "
              "(same family, n, density):\n");
  for (const Pair& p : pairs) {
    if (p.legacy <= 0 || p.compact <= 0) continue;
    double reduction = 100.0 * (1.0 - p.compact / p.legacy);
    std::printf("  %-24s %8.1f MB -> %8.1f MB  (%.0f%% lower)\n",
                p.label.c_str(), p.legacy, p.compact, reduction);
  }
  std::printf("\nquery allocs must be 0: steady-state ball queries reuse "
              "epoch-stamped scratch, never the heap.\n");
  if (!ceiling_ok) return 1;
  return 0;
}
