// Experiment E9 - comparison against classic baselines: colors used by the
// paper's MVC vs. optimal chi vs. distributed (Delta+1) greedy, and MIS
// size vs. exact alpha vs. Luby's maximal independent set.
#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "core/mis.hpp"
#include "core/mvc.hpp"
#include "local/luby.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv, "E9: baselines comparison",
                     "the (1+eps) algorithms beat (Delta+1)/maximal "
                     "baselines on quality while staying polylog-local");

  Table coloring({"n", "Delta", "chi", "ours eps=.5", "ours eps=.25",
                  "(Delta+1) greedy", "greedy rounds", "our rounds(.25)"});
  for (int n : {1024, 4096, 16384}) {
    obs::Span run("coloring n=" + std::to_string(n));
    auto gen = bench::chordal_workload(n, TreeShape::kRandom, 23);
    const Graph& g = gen.graph;
    auto ours_05 = core::mvc_chordal(g, {.eps = 0.5});
    auto ours_025 = core::mvc_chordal(g, {.eps = 0.25});
    auto greedy = baselines::dplus1_coloring(g, 9);
    coloring.add_row(
        {Table::fmt(g.num_vertices()), Table::fmt(g.max_degree()),
         Table::fmt(ours_05.omega), Table::fmt(ours_05.num_colors),
         Table::fmt(ours_025.num_colors), Table::fmt(greedy.num_colors),
         Table::fmt(greedy.rounds), Table::fmt(ours_025.rounds)});
  }
  std::printf("Coloring (colors used; lower is better):\n\n");
  coloring.print();
  ctx.add_table("coloring", coloring);

  Table mis({"n", "alpha", "ours eps=.2", "Luby (maximal)", "Luby rounds",
             "our rounds"});
  for (int n : {1024, 4096, 16384}) {
    obs::Span run("mis n=" + std::to_string(n));
    auto gen = bench::chordal_workload(n, TreeShape::kRandom, 29);
    const Graph& g = gen.graph;
    auto ours = core::mis_chordal(g, {.eps = 0.2});
    auto luby = local::luby_mis(g, 5);
    mis.add_row({Table::fmt(g.num_vertices()),
                 Table::fmt(baselines::independence_number_chordal(g)),
                 Table::fmt((long long)ours.chosen.size()),
                 Table::fmt((long long)luby.independent_set.size()),
                 Table::fmt(luby.rounds), Table::fmt(ours.rounds)});
  }
  std::printf("\nIndependent sets (size; higher is better):\n\n");
  mis.print();
  ctx.add_table("mis", mis);
  return 0;
}
