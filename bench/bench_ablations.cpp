// Ablations for the design choices called out in DESIGN.md section 4:
//  (a) layer-coloring mode - Algorithm 1's distributed-feasible ColIntGraph
//      versus the centralized optimal shortcut (how much of the color
//      budget the subroutine actually costs);
//  (b) workload shape - the incremental generator's chain bias controls how
//      path-like the clique forest is, driving layer counts and rounds;
//  (c) correction pressure - how many vertices the color-correction phase
//      actually recolors as eps shrinks.
#include "bench_common.hpp"
#include "core/mvc.hpp"
#include "local/ball.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv,
                     "Ablations: layer coloring mode, workload shape, "
                     "correction",
                     "design-choice sensitivity (no direct paper claim)");

  std::printf("(a) layer coloring mode at eps = 0.5:\n\n");
  Table mode_table({"n", "chi", "colors ColIntGraph", "colors optimal-layers",
                    "rounds ColIntGraph", "rounds optimal-layers"});
  for (int n : {1024, 8192}) {
    auto gen = bench::chordal_workload(n, TreeShape::kRandom, 77);
    auto dist = core::mvc_chordal(gen.graph,
                                  {.eps = 0.5,
                                   .layer_coloring =
                                       core::LayerColoringMode::kColIntGraph});
    auto opt = core::mvc_chordal(gen.graph,
                                 {.eps = 0.5,
                                  .layer_coloring =
                                      core::LayerColoringMode::kOptimal});
    mode_table.add_row({Table::fmt(gen.graph.num_vertices()),
                        Table::fmt(dist.omega), Table::fmt(dist.num_colors),
                        Table::fmt(opt.num_colors), Table::fmt(dist.rounds),
                        Table::fmt(opt.rounds)});
  }
  mode_table.print();
  ctx.add_table("layer_coloring_mode", mode_table);

  std::printf("\n(b) chain bias of the incremental generator (n = 4000, "
              "eps = 0.5):\n\n");
  Table bias_table({"chain bias", "layers", "rounds", "colors", "chi"});
  for (double bias : {0.0, 0.5, 0.9, 0.99}) {
    RandomChordalConfig config;
    config.n = 4000;
    config.max_clique = 6;
    config.chain_bias = bias;
    config.seed = 31;
    Graph g = random_chordal(config);
    auto result = core::mvc_chordal(g, {.eps = 0.5});
    bias_table.add_row({Table::fmt(bias, 2), Table::fmt(result.num_layers),
                        Table::fmt(result.rounds),
                        Table::fmt(result.num_colors),
                        Table::fmt(result.omega)});
  }
  bias_table.print();
  ctx.add_table("chain_bias", bias_table);

  std::printf("\n(c) correction pressure vs eps (caterpillar, n ~ 4000):\n\n");
  Table corr_table({"eps", "k", "recolored vertices", "correction rounds",
                    "colors"});
  auto gen = bench::chordal_workload(4000, TreeShape::kCaterpillar, 41);
  for (double eps : {1.0, 0.5, 0.25, 0.125}) {
    auto result = core::mvc_chordal(gen.graph, {.eps = eps});
    corr_table.add_row({Table::fmt(eps, 3), Table::fmt(result.k),
                        Table::fmt(result.recolored_vertices),
                        Table::fmt(result.correction_rounds),
                        Table::fmt(result.num_colors)});
  }
  corr_table.print();
  ctx.add_table("correction_pressure", corr_table);

  std::printf("\n(d) LOCAL's hidden cost: the Gamma^{10k} balls the pruning "
              "phase collects (eps = 0.5 => radius 40):\n\n");
  Table ball_table({"n", "radius", "mean |ball|", "max |ball|",
                    "max/graph"});
  for (int n : {1024, 4096, 16384}) {
    auto gen2 = bench::chordal_workload(n, TreeShape::kRandom, 53);
    for (int radius : {2, 5, 10, 40}) {
      StatAccumulator acc;
      for (int v = 0; v < gen2.graph.num_vertices();
           v += std::max(1, gen2.graph.num_vertices() / 200)) {
        auto ball = local::collect_ball(gen2.graph, v, radius);
        acc.add(static_cast<double>(ball.vertices.size()));
      }
      ball_table.add_row(
          {Table::fmt(gen2.graph.num_vertices()), Table::fmt(radius),
           Table::fmt(acc.mean(), 1), Table::fmt(acc.max(), 0),
           Table::fmt(acc.max() / gen2.graph.num_vertices(), 3)});
    }
  }
  ball_table.print();
  ctx.add_table("ball_volumes", ball_table);
  std::printf("\nLOCAL charges d rounds for a distance-d ball regardless of "
              "volume; the table shows what a bandwidth-limited (CONGEST) "
              "implementation would actually have to ship.\n");
  return 0;
}
