// Experiment E1 - Theorem 4 (approximation): the distributed MVC algorithm
// is a (1+eps)-approximation on chordal graphs.
#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "core/mvc.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv, "E1: MVC approximation factor vs eps and n",
                     "Theorem 4 - colors <= (1+eps) * chi for eps >= 2/chi "
                     "(via <= floor((1+1/k) chi) + 1, k = ceil(2/eps))");

  Table table({"shape", "n", "eps", "chi", "colors", "bound", "ratio",
               "ok"});
  for (TreeShape shape : {TreeShape::kRandom, TreeShape::kCaterpillar,
                          TreeShape::kBinary}) {
    const char* shape_name = shape == TreeShape::kRandom ? "random"
                             : shape == TreeShape::kCaterpillar
                                 ? "caterpillar"
                                 : "binary";
    for (int n : {256, 1024, 4096, 16384}) {
      for (double eps : {1.0, 0.5, 0.25, 0.125}) {
        obs::Span run(std::string("run ") + shape_name +
                      " n=" + std::to_string(n));
        auto gen = bench::chordal_workload(n, shape, 42 + n);
        auto result = core::mvc_chordal(gen.graph, {.eps = eps});
        int chi = result.omega;
        int bound = chi + chi / result.k + 1;
        bool ok = result.num_colors <= bound &&
                  result.palette_violations == 0;
        table.add_row({shape_name, Table::fmt(gen.graph.num_vertices()),
                       Table::fmt(eps, 3), Table::fmt(chi),
                       Table::fmt(result.num_colors), Table::fmt(bound),
                       Table::fmt(static_cast<double>(result.num_colors) /
                                      chi,
                                  3),
                       ok ? "yes" : "NO"});
      }
    }
  }
  table.print();
  ctx.add_table("approximation", table);
  return 0;
}
