// Experiment E8 - Section 3 / Lemma 2: nodes obtain coherent local views of
// the global clique forest from O(k)-balls. We check, across workloads and
// radii, that every locally derived forest edge is a global forest edge and
// that every trusted vertex reconstructs its full subtree T(v).
#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "cliqueforest/forest.hpp"
#include "cliqueforest/local_view.hpp"
#include "local/ball_cache.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv, "E8: coherence of local clique-forest views",
                     "Lemma 2 - the MWSF of W[phi(v)] computed from a ball "
                     "equals the global subtree T(v)");

  Table table({"shape", "n", "radius", "observers", "edges checked",
               "subtrees checked", "violations"});
  for (TreeShape shape : {TreeShape::kRandom, TreeShape::kCaterpillar,
                          TreeShape::kSpider}) {
    const char* names[] = {"path", "caterpillar", "random", "binary",
                           "spider"};
    // One workload and one ball cache per shape: the ascending radii then
    // grow each observer's cached ball by frontier extension instead of
    // re-flooding from scratch, and the cache.* counters land in the --json
    // telemetry as the effectiveness record.
    auto gen = bench::chordal_workload(600, shape, 5);
    const Graph& g = gen.graph;
    CliqueForest global = CliqueForest::build(g);
    std::map<std::pair<std::vector<int>, std::vector<int>>, char> edges;
    for (auto [a, b] : global.forest_edges()) {
      std::vector<int> ca = word_vec(global.clique(a));
      std::vector<int> cb = word_vec(global.clique(b));
      auto key = std::minmax(ca, cb);
      edges[{key.first, key.second}] = 1;
    }
    local::BallCache cache(g);
    for (int radius : {2, 4, 8}) {
      obs::Span span(std::string("views ") + names[static_cast<int>(shape)] +
                     " radius=" + std::to_string(radius));
      long long checked_edges = 0, checked_subtrees = 0, violations = 0;
      int observers = 0;
      for (int v = 0; v < g.num_vertices(); v += 11) {
        ++observers;
        const LocalView& view = *cache.shard(0).local_view(v, radius).view;
        for (auto [a, b] : view.forest_edges) {
          ++checked_edges;
          std::vector<int> ca = word_vec(view.cliques[a]);
          std::vector<int> cb = word_vec(view.cliques[b]);
          auto key = std::minmax(ca, cb);
          if (!edges.count({key.first, key.second})) ++violations;
        }
        for (int u : view.trusted_vertices) {
          ++checked_subtrees;
          int expected =
              static_cast<int>(global.cliques_of(u).size()) - 1;
          int found = 0;
          for (auto [a, b] : view.forest_edges) {
            const auto& ca = view.cliques[a];
            const auto& cb = view.cliques[b];
            if (std::binary_search(ca.begin(), ca.end(), u) &&
                std::binary_search(cb.begin(), cb.end(), u)) {
              ++found;
            }
          }
          if (found != expected) ++violations;
        }
      }
      table.add_row({names[static_cast<int>(shape)],
                     Table::fmt(g.num_vertices()), Table::fmt(radius),
                     Table::fmt(observers), Table::fmt(checked_edges),
                     Table::fmt(checked_subtrees), Table::fmt(violations)});
    }
  }
  table.print();
  ctx.add_table("local_views", table);
  std::printf("\nviolations must be 0: all local views agree with the "
              "global decomposition.\n");
  return 0;
}
