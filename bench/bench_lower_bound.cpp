// Experiment E6 - Theorem 9: every (1+eps)-approximate MIS algorithm needs
// Omega(1/eps) rounds, even on paths. We run the natural r-round local
// strategy on uniformly labeled paths; its measured ratio decays like
// 1 + Theta(1/r), tracking the proof's floor (2r+3)/(2r+2.5): halving the
// target eps requires doubling r.
#include "bench_common.hpp"
#include "lowerbound/path_mis.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv,
                     "E6: rounds vs approximation on labeled paths",
                     "Theorem 9 - (1+eps)-MIS on paths requires r = "
                     "Omega(1/eps) rounds");

  Table table({"r (rounds)", "E|I| / n", "measured ratio", "theory floor",
               "implied eps", "1/(4r)"});
  const int n = 20001;
  const int trials = 8;
  for (int r : {1, 2, 4, 8, 16, 32, 64}) {
    auto sample = lowerbound::simulate_r_round_path_mis(n, r, trials, 1234);
    double eps = sample.mean_ratio - 1.0;
    table.add_row({Table::fmt(r),
                   Table::fmt(sample.mean_set_size / n, 4),
                   Table::fmt(sample.mean_ratio, 5),
                   Table::fmt(sample.theory_floor, 5),
                   Table::fmt(eps, 5),
                   Table::fmt(1.0 / (4.0 * r), 5)});
  }
  table.print();
  ctx.add_table("lower_bound", table);
  std::printf("\nimplied eps tracks Theta(1/r): to reach approximation "
              "1+eps you need r = Omega(1/eps) rounds.\n");
  return 0;
}
