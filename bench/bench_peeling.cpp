// Experiment E3 - Lemma 6 (Pruning Lemma): the peeling process finishes in
// at most ceil(log2 n) iterations because the number of forest vertices of
// degree >= 3 at least halves per iteration.
#include <cmath>

#include "bench_common.hpp"
#include "core/peeling.hpp"

int main(int argc, char** argv) {
  using namespace chordal;
  bench::Context ctx(argc, argv,
                     "E3: peeling layer counts and the halving invariant",
                     "Lemma 6 / Corollary 1 - <= ceil(log2 n) layers; "
                     "degree->=3 counts halve each iteration");

  Table table({"shape", "n", "cliques", "layers", "ceil(log2 n)",
               "halving held", "deg>=3 trace"});
  for (TreeShape shape : {TreeShape::kPath, TreeShape::kCaterpillar,
                          TreeShape::kRandom, TreeShape::kBinary,
                          TreeShape::kSpider}) {
    const char* names[] = {"path", "caterpillar", "random", "binary",
                           "spider"};
    for (int n : {1024, 8192, 65536}) {
      obs::Span run(std::string("peel ") + names[static_cast<int>(shape)] +
                    " n=" + std::to_string(n));
      auto gen = bench::chordal_workload(n, shape, 13);
      CliqueForest forest = CliqueForest::build(gen.graph);
      core::PeelConfig config;
      config.mode = core::PeelMode::kColoring;
      config.k = 4;
      auto result = core::peel(gen.graph, forest, config);
      bool halves = true;
      std::string trace;
      for (std::size_t i = 0; i < result.high_degree_counts.size(); ++i) {
        if (i > 0) {
          halves = halves && result.high_degree_counts[i] <=
                                 result.high_degree_counts[i - 1] / 2;
          trace += ",";
        }
        trace += Table::fmt(result.high_degree_counts[i]);
      }
      table.add_row(
          {names[static_cast<int>(shape)],
           Table::fmt(gen.graph.num_vertices()),
           Table::fmt(forest.num_cliques()), Table::fmt(result.num_layers),
           Table::fmt(static_cast<int>(
               std::ceil(std::log2(gen.graph.num_vertices())))),
           halves ? "yes" : "NO", trace});
    }
  }
  table.print();
  ctx.add_table("halving", table);
  return 0;
}
